package meg_test

import (
	"fmt"

	"meg"
	"meg/internal/mobility"
)

// ExampleFlood demonstrates the basic pipeline: build a stationary
// edge-Markovian evolving graph, flood from node 0, and inspect the
// result. Everything is deterministic under a fixed seed.
func ExampleFlood() {
	model := meg.NewEdgeMarkovian(meg.EdgeConfig{N: 256, P: 0.02, Q: 0.5})
	model.Reset(meg.NewRNG(7))
	res := meg.Flood(model, 0, meg.DefaultRoundCap(256))
	fmt.Println("completed:", res.Completed)
	fmt.Println("informed after round 0:", res.Trajectory[0])
	// Output:
	// completed: true
	// informed after round 0: 1
}

// ExampleNewGeometric runs flooding on the paper's Section 3 model:
// n mobile nodes random-walking on a grid, connected within radius R.
func ExampleNewGeometric() {
	model := meg.NewGeometric(meg.GeometricConfig{
		N:          1024,
		R:          8, // transmission radius
		MoveRadius: 4, // node speed per step
	})
	model.Reset(meg.NewRNG(1))
	res := meg.Flood(model, 0, meg.DefaultRoundCap(1024))
	fmt.Println("completed:", res.Completed)
	fmt.Println("all arrivals recorded:", len(res.Arrival) == 1024)
	// Output:
	// completed: true
	// all arrivals recorded: true
}

// ExampleFloodingTime estimates the flooding time of the evolving graph
// (the maximum completion time over sources) by sampling sources.
func ExampleFloodingTime() {
	model := meg.NewEdgeMarkovian(meg.EdgeConfig{N: 128, P: 0.05, Q: 0.5})
	res := meg.FloodingTime(model, []int{0, 42, 127}, meg.DefaultRoundCap(128), meg.NewRNG(3))
	fmt.Println("worst-source run completed:", res.Completed)
	// Output:
	// worst-source run completed: true
}

// ExampleNewMobilityDynamics plugs an alternative mobility model (the
// billiard / random-direction-with-reflection model) into the same
// flooding machinery.
func ExampleNewMobilityDynamics() {
	mob := mobility.NewBilliard(512, 22.6, 2.0, 0.1)
	d := meg.NewMobilityDynamics(mob, 6.0)
	d.Reset(meg.NewRNG(5))
	res := meg.Flood(d, 0, meg.DefaultRoundCap(512))
	fmt.Println("completed:", res.Completed)
	// Output:
	// completed: true
}

// ExampleFloodParsimonious shows the k-round-budget flooding variant:
// nodes stop transmitting after a fixed number of rounds, trading
// redundancy for message savings.
func ExampleFloodParsimonious() {
	model := meg.NewEdgeMarkovian(meg.EdgeConfig{N: 256, P: 0.02, Q: 0.5})
	model.Reset(meg.NewRNG(9))
	res := meg.FloodParsimonious(model, 0, 2 /* rounds of activity */, meg.DefaultRoundCap(256))
	fmt.Println("completed:", res.Completed)
	// Output:
	// completed: true
}

// ExampleWalkCover runs the other exploration primitive on the same
// dynamics: a token random walk until every node is visited.
func ExampleWalkCover() {
	model := meg.NewEdgeMarkovian(meg.EdgeConfig{N: 64, P: 0.05, Q: 0.5})
	model.Reset(meg.NewRNG(11))
	res := meg.WalkCover(model, 0, 100000, meg.NewRNG(12))
	fmt.Println("covered:", res.Done)
	fmt.Println("visited:", res.Visited.Count())
	// Output:
	// covered: true
	// visited: 64
}
