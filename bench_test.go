// Benchmarks that regenerate every experiment of the paper
// reproduction (one benchmark per table/figure, E1–E13 in DESIGN.md) at
// Quick scale, reporting each experiment's headline metrics, plus
// micro-benchmarks of the core simulation loops. cmd/megbench prints
// the full tables; these benches track wall-clock cost and the key
// measured quantities per run.
package meg_test

import (
	"math"
	"testing"

	"meg"
	"meg/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		rep := e.Run(experiments.Params{Scale: experiments.Quick, Seed: uint64(i) + 1})
		if !rep.Passed() {
			for _, c := range rep.Checks {
				if !c.Pass {
					b.Logf("%s check failed: %s — %s", id, c.Name, c.Detail)
				}
			}
		}
		if i == b.N-1 {
			for name, v := range rep.Metrics {
				b.ReportMetric(v, name)
			}
		}
	}
}

func BenchmarkE1_GeneralBound(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2_CellOccupancy(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3_GeometricExpansion(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_GeometricScaling(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5_GeometricLowerBound(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6_Stationarity(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7_EdgeExpansion(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8_EdgeScaling(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9_EdgeGrowth(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10_StationaryVsWorstCase(b *testing.B) {
	benchExperiment(b, "E10")
}
func BenchmarkE11_MobilityModels(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12_DensityScaling(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13_SubThreshold(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14_FloodVsDiameter(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15_Parsimonious(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16_Protocols(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17_Connectivity(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18_MeanField(b *testing.B)       { benchExperiment(b, "E18") }
func BenchmarkE19_Uniformity(b *testing.B)      { benchExperiment(b, "E19") }
func BenchmarkE20_Faults(b *testing.B)          { benchExperiment(b, "E20") }

func benchFloodGeometric(b *testing.B, opt meg.FloodOptions) {
	n := 4096
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	cfg := meg.GeometricConfig{N: n, R: radius, MoveRadius: radius / 2}
	r := meg.NewRNG(1)
	model := meg.NewGeometric(cfg)
	rounds := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Reset(r.Split())
		res := meg.FloodOpt(model, 0, meg.DefaultRoundCap(n), opt)
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
}

// BenchmarkFloodGeometric measures one full stationary geometric-MEG
// flooding run (sample π, then flood to completion) at the paper's
// canonical parameters, using the direction-optimizing default kernel.
func BenchmarkFloodGeometric(b *testing.B) { benchFloodGeometric(b, meg.FloodOptions{}) }

// BenchmarkFloodGeometricPush pins the sparse push kernel (the
// pre-direction-optimizing behavior) for comparison.
func BenchmarkFloodGeometricPush(b *testing.B) {
	benchFloodGeometric(b, meg.FloodOptions{Kernel: meg.KernelPush})
}

func benchFloodEdge(b *testing.B, opt meg.FloodOptions) {
	n := 4096
	pHat := 4 * math.Log(float64(n)) / float64(n)
	cfg := meg.EdgeConfig{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}
	r := meg.NewRNG(1)
	model := meg.NewEdgeMarkovian(cfg)
	rounds := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Reset(r.Split())
		res := meg.FloodOpt(model, 0, meg.DefaultRoundCap(n), opt)
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
}

// BenchmarkFloodEdge measures one full stationary edge-MEG flooding run
// at p̂ = 4·log n/n with the direction-optimizing default kernel.
func BenchmarkFloodEdge(b *testing.B) { benchFloodEdge(b, meg.FloodOptions{}) }

// BenchmarkFloodEdgePush pins the sparse push kernel (the
// pre-direction-optimizing behavior) for comparison.
func BenchmarkFloodEdgePush(b *testing.B) {
	benchFloodEdge(b, meg.FloodOptions{Kernel: meg.KernelPush})
}

// BenchmarkFloodEdgeMulti64 amortizes one stationary edge-MEG snapshot
// sequence across 64 sources with the bit-parallel batched engine; the
// per-source cost ("flood/op" = time/64) is the number to compare
// against BenchmarkFloodEdge.
func BenchmarkFloodEdgeMulti64(b *testing.B) {
	n := 4096
	pHat := 4 * math.Log(float64(n)) / float64(n)
	cfg := meg.EdgeConfig{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}
	r := meg.NewRNG(1)
	model := meg.NewEdgeMarkovian(cfg)
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i * (n / 64)
	}
	rounds := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Reset(r.Split())
		for _, res := range meg.FloodMulti(model, sources, meg.DefaultRoundCap(n)) {
			rounds += float64(res.Rounds)
		}
	}
	b.ReportMetric(rounds/float64(b.N)/64, "rounds/flood")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/flood")
}
