// Package meg is the public API of this repository: a library for
// simulating information spreading (flooding) in stationary Markovian
// evolving graphs, reproducing Clementi, Monti, Pasquale, Silvestri,
// "Information Spreading in Stationary Markovian Evolving Graphs"
// (IEEE IPDPS 2009).
//
// # Overview
//
// A Markovian evolving graph (MEG) is a Markov chain over graphs on a
// fixed node set. The paper bounds the completion time of the flooding
// mechanism — the process in which every informed node forwards the
// message to all current neighbors each round — on any stationary MEG
// in terms of parameterized node-expansion, and instantiates the bound
// for two concrete models:
//
//   - geometric MEGs: n mobile nodes performing independent random
//     walks on a √n×√n grid, connected within transmission radius R
//     (Theorem 3.4: flooding completes in O(√n/R + log log R) rounds);
//   - edge-MEGs: every potential edge is an independent two-state
//     Markov chain with birth rate p and death rate q (Theorem 4.3:
//     O(log n/log(np̂) + log log(np̂)) rounds, p̂ = p/(p+q)).
//
// # Quick start
//
//	model := meg.NewEdgeMarkovian(meg.EdgeConfig{N: 1024, P: 0.004, Q: 0.5})
//	r := meg.NewRNG(1)
//	model.Reset(r)
//	res := meg.Flood(model, 0, meg.DefaultRoundCap(1024))
//	fmt.Println(res.Rounds, res.Completed)
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the per-theorem reproduction
// results.
package meg

import (
	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/graph"
	"meg/internal/mobility"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/walk"
)

// Dynamics is a Markovian evolving graph: see core.Dynamics.
type Dynamics = core.Dynamics

// FloodResult reports one flooding run: completion time, trajectory of
// informed-set sizes, and the final informed set.
type FloodResult = core.FloodResult

// Graph is an immutable CSR snapshot of an evolving graph.
type Graph = graph.Graph

// RNG is the deterministic random number generator used by every model.
type RNG = rng.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Kernel selects the flooding engine's per-round strategy; all kernels
// compute exactly the same FloodResult, so the choice is purely a
// performance knob.
type Kernel = core.Kernel

// Kernel values: KernelAuto is the direction-optimizing default — push
// (scan informed senders' adjacency lists) while the informed set is
// small, pull (each uninformed node checks word-parallel for an
// informed neighbor) once it exceeds the switch threshold. KernelPush
// and KernelPull pin one strategy.
const (
	KernelAuto = core.KernelAuto
	KernelPush = core.KernelPush
	KernelPull = core.KernelPull
)

// FloodOptions tunes the flooding engine. The zero value (KernelAuto
// with a derived push→pull threshold) is right almost always: the
// switch point defaults to an informed-set fraction of 1/√d̄ for
// expected degree d̄, clamped to [0.02, 0.5] — the fraction at which
// the two kernels' expected per-round costs balance. The estimate d̄
// comes from the model when it knows its stationary degree
// (core.DegreeHinter), else from each snapshot. Set PullThreshold to
// move the switch point, Kernel to pin a strategy outright, or
// Parallelism to run the sharded engine — results are byte-identical
// for every worker count.
type FloodOptions = core.FloodOptions

// MultiOptions tunes FloodMultiOpt (cancellation, progress, and the
// sharded engine's Parallelism).
type MultiOptions = core.MultiOptions

// Parallelizable is implemented by dynamics whose snapshot construction
// can use a worker pool (all models in this repository); snapshots stay
// byte-identical for every worker count. The flooding engine forwards
// its own Parallelism automatically, so most callers never touch this.
type Parallelizable = core.Parallelizable

// DeltaDynamics is implemented by dynamics that can report each step's
// edge churn directly (all models in this repository); with
// FloodOptions.Snapshot = SnapshotDelta the engines then maintain the
// snapshot incrementally — rebuilding only the adjacency rows the
// churn touches — instead of re-materializing O(n + m) per round.
// Results are byte-identical to the full path.
type DeltaDynamics = core.DeltaDynamics

// Delta is the edge difference between consecutive snapshots: births
// and deaths as packed, ascending edge-key lists (graph.PackEdge).
type Delta = graph.Delta

// SnapshotMode selects the engines' per-round snapshot path.
type SnapshotMode = core.SnapshotMode

// Snapshot modes: full rebuild per round, or incremental maintenance
// from the model's edge churn (low-churn regimes' fast path).
const (
	SnapshotFull  = core.SnapshotFull
	SnapshotDelta = core.SnapshotDelta
)

// Flood runs the flooding process on d from the given source with a
// round cap; see core.Flood for exact semantics.
func Flood(d Dynamics, source, maxRounds int) FloodResult {
	return core.Flood(d, source, maxRounds)
}

// FloodOpt is Flood with explicit engine options (kernel selection and
// push→pull switch threshold); see core.FloodOpt.
func FloodOpt(d Dynamics, source, maxRounds int, opt FloodOptions) FloodResult {
	return core.FloodOpt(d, source, maxRounds, opt)
}

// FloodMulti floods from every source simultaneously over one shared
// realization of d, packing up to 64 sources per machine word so one
// snapshot scan advances all runs at once; see core.FloodMulti for the
// exact coupling semantics. Call Reset on d first.
func FloodMulti(d Dynamics, sources []int, maxRounds int) []FloodResult {
	return core.FloodMulti(d, sources, maxRounds)
}

// FloodMultiOpt is FloodMulti with explicit options (cancellation,
// progress hooks, sharded-engine parallelism); see core.FloodMultiOpt.
func FloodMultiOpt(d Dynamics, sources []int, maxRounds int, opt MultiOptions) []FloodResult {
	return core.FloodMultiOpt(d, sources, maxRounds, opt)
}

// FloodAll is FloodMulti from every node — the full per-source flooding
// profile of one realization; see core.FloodAll.
func FloodAll(d Dynamics, maxRounds int) []FloodResult {
	return core.FloodAll(d, maxRounds)
}

// FloodingTime estimates the flooding time (max over the given
// sources), resetting d before each run; see core.FloodingTime.
func FloodingTime(d Dynamics, sources []int, maxRounds int, r *RNG) FloodResult {
	return core.FloodingTime(d, sources, maxRounds, r)
}

// DefaultRoundCap returns a safe default cap on flooding rounds.
func DefaultRoundCap(n int) int { return core.DefaultRoundCap(n) }

// GeometricConfig parameterizes a geometric MEG (random-walk mobility
// on a grid); see the geommeg package for field documentation.
type GeometricConfig = geommeg.Config

// Geometric is a geometric Markovian evolving graph.
type Geometric = geommeg.Model

// NewGeometric returns a geometric MEG, panicking on invalid
// configuration (use geommeg.New directly for error returns).
func NewGeometric(cfg GeometricConfig) *Geometric { return geommeg.MustNew(cfg) }

// EdgeConfig parameterizes an edge-Markovian MEG; see the edgemeg
// package for field documentation.
type EdgeConfig = edgemeg.Config

// EdgeMarkovian is an edge-Markovian evolving graph.
type EdgeMarkovian = edgemeg.Model

// NewEdgeMarkovian returns an edge-MEG, panicking on invalid
// configuration (use edgemeg.New directly for error returns).
func NewEdgeMarkovian(cfg EdgeConfig) *EdgeMarkovian { return edgemeg.MustNew(cfg) }

// Mobility is a node mobility process usable with NewMobilityDynamics.
type Mobility = mobility.Mobility

// NewMobilityDynamics turns any Mobility into a Dynamics with
// transmission radius R.
func NewMobilityDynamics(m Mobility, radius float64) Dynamics {
	return mobility.NewDynamics(m, radius)
}

// Static wraps a fixed graph as a constant Dynamics (the paper's static
// baseline).
func Static(g *Graph) Dynamics { return core.NewStatic(g) }

// Protocol is a broadcast protocol runnable on any Dynamics; the
// protocol package provides Flooding, Probabilistic, PushGossip,
// PushPull and LossyFlooding — the family for which flooding is the
// latency baseline. These are the simple per-node reference
// implementations; Gossip runs the same protocols on the bit-parallel
// sharded engine with byte-identical results.
type Protocol = protocol.Protocol

// ProtocolResult is the outcome of a protocol run, including message
// accounting.
type ProtocolResult = protocol.Result

// GossipProtocol selects a protocol kernel of the gossip engine.
type GossipProtocol = core.GossipProtocol

// Gossip engine protocol kernels: push rumor spreading, push–pull,
// probabilistic (Gnutella-style) flooding, and lossy flooding.
const (
	GossipPush       = core.GossipPush
	GossipPushPull   = core.GossipPushPull
	GossipProbFlood  = core.GossipProbFlood
	GossipLossyFlood = core.GossipLossyFlood
)

// GossipOptions tunes a Gossip run: the protocol parameters (Beta,
// Loss), the sharded engine's Parallelism, and cancellation/progress
// hooks. Results are byte-identical for every Parallelism value.
type GossipOptions = core.GossipOptions

// GossipResult is the outcome of a Gossip run: the reference
// ProtocolResult fields plus the final informed set and per-node
// arrival times.
type GossipResult = core.GossipResult

// Gossip runs the selected protocol on the bit-parallel sharded gossip
// engine — byte-identical to the reference Protocol implementations on
// the same seeds at every worker count; see core.Gossip.
func Gossip(d Dynamics, proto GossipProtocol, source, maxRounds int, r *RNG, opt GossipOptions) GossipResult {
	return core.Gossip(d, proto, source, maxRounds, r, opt)
}

// ParseGossip converts a protocol name (push|push-pull|probabilistic|
// lossy) into a GossipProtocol.
func ParseGossip(name string) (GossipProtocol, error) { return core.ParseGossip(name) }

// WalkResult is the outcome of a random-walk run (hitting or covering).
type WalkResult = walk.Result

// WalkHit runs a random walk on d from start until it reaches target;
// see walk.Hit.
func WalkHit(d Dynamics, start, target, maxSteps int, r *RNG) WalkResult {
	return walk.Hit(d, start, target, maxSteps, r)
}

// WalkCover runs a random walk on d from start until every node has
// been visited; see walk.Cover.
func WalkCover(d Dynamics, start, maxSteps int, r *RNG) WalkResult {
	return walk.Cover(d, start, maxSteps, r)
}

// FloodParsimonious runs the k-round-budget (amnesiac) flooding variant
// of the paper's reference [4]; see core.FloodParsimonious.
func FloodParsimonious(d Dynamics, source, activeRounds, maxRounds int) FloodResult {
	return core.FloodParsimonious(d, source, activeRounds, maxRounds)
}
