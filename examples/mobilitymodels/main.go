// Mobilitymodels compares information spreading across six mobility
// models that all share the uniformity property the paper's expansion
// argument needs — the lattice random walk analyzed in Section 3, the
// walkers model on a toroidal grid, the random waypoint model on a
// torus, the random direction model with reflection (billiard), a
// continuous-space walkers model, and the memoryless restricted-disk
// model of the paper's reference [24].
//
// The theory predicts they all flood in Θ(√n/R) rounds with only the
// constants differing; this example measures those constants.
//
//	go run ./examples/mobilitymodels
package main

import (
	"fmt"
	"math"
	"os"

	"meg"
	"meg/internal/flood"
	"meg/internal/mobility"
	"meg/internal/table"
)

func main() {
	const n = 4096
	const trials = 8
	side := math.Sqrt(float64(n))
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	speed := radius / 2

	fmt.Printf("n=%d, square side %.0f, R=%.2f, node speed ≈ %.2f, √n/R = %.2f\n\n",
		n, side, radius, speed, side/radius)

	models := []struct {
		name    string
		factory flood.Factory
	}{
		{"lattice random walk (paper §3)", func() meg.Dynamics {
			return meg.NewGeometric(meg.GeometricConfig{N: n, R: radius, MoveRadius: speed})
		}},
		{"walkers on toroidal grid", func() meg.Dynamics {
			return meg.NewGeometric(meg.GeometricConfig{N: n, R: radius, MoveRadius: speed, Torus: true})
		}},
		{"random waypoint (torus)", func() meg.Dynamics {
			return meg.NewMobilityDynamics(mobility.NewWaypointTorus(n, side, speed/2, speed), radius)
		}},
		{"random direction + reflection", func() meg.Dynamics {
			return meg.NewMobilityDynamics(mobility.NewBilliard(n, side, speed, 0.1), radius)
		}},
		{"walkers (continuous torus)", func() meg.Dynamics {
			return meg.NewMobilityDynamics(mobility.NewWalkersTorus(n, side, speed), radius)
		}},
		{"restricted i.i.d. disk [24]", func() meg.Dynamics {
			return meg.NewMobilityDynamics(mobility.NewRestrictedDisk(n, side, 2*radius), radius)
		}},
	}

	tbl := table.New("flooding time by mobility model (stationary starts)",
		"model", "rounds mean", "rounds min", "rounds max", "rounds/(√n/R)")
	x := side / radius
	for _, m := range models {
		camp := flood.Run(m.factory, flood.Options{Trials: trials, Seed: 3})
		if camp.Incomplete > 0 {
			fmt.Printf("%s: %d incomplete runs\n", m.name, camp.Incomplete)
			continue
		}
		tbl.AddRow(m.name, camp.Summary.Mean, camp.Summary.Min, camp.Summary.Max, camp.Summary.Mean/x)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nAll six models land in one narrow constant band around √n/R: the expansion")
	fmt.Println("argument never used the walk's details, only the near-uniform stationary")
	fmt.Println("distribution of positions — exactly as the paper's Section 1 claims.")
}
