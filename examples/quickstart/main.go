// Quickstart: build a stationary Markovian evolving graph, run the
// flooding process, and compare the completion time with the paper's
// bound — in under 40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"meg"
)

func main() {
	const n = 4096

	// An edge-Markovian evolving graph: every potential edge flips
	// on/off as an independent 2-state Markov chain. With birth rate p
	// and death rate q the stationary snapshot is G(n, p̂), p̂=p/(p+q).
	pHat := 4 * math.Log(float64(n)) / float64(n) // safely connected
	cfg := meg.EdgeConfig{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}
	model := meg.NewEdgeMarkovian(cfg)

	// Reset samples G_0 from the stationary distribution ("perfect
	// simulation"), so the very first snapshot already looks typical.
	r := meg.NewRNG(1)
	model.Reset(r)

	// Flood from node 0: every informed node forwards to all current
	// neighbors, every round, while the graph keeps evolving.
	res := meg.Flood(model, 0, meg.DefaultRoundCap(n))

	fmt.Printf("n=%d  p̂=%.4f  (np̂=%.1f)\n", n, pHat, float64(n)*pHat)
	fmt.Printf("flooding completed: %v in %d rounds\n", res.Completed, res.Rounds)
	fmt.Printf("informed nodes per round: %v\n", res.Trajectory)

	// Theorem 4.3 predicts Θ(log n / log(np̂)) rounds.
	theory := math.Log(float64(n)) / math.Log(float64(n)*pHat)
	fmt.Printf("theory Θ(log n/log np̂) = %.2f  → measured/theory = %.2f\n",
		theory, float64(res.Rounds)/theory)
}
