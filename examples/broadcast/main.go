// Broadcast compares dissemination protocols on one evolving network —
// the evaluation the paper's introduction describes ("flooding is often
// used in order to evaluate the relative efficiency of alternative
// protocols"). Pick latency or message budget; this prints the menu.
//
// Scenario: a 4096-node mobile mesh (geometric-MEG). The operator can
// broadcast via full flooding (fastest, most radio time), Gnutella-style
// probabilistic flooding, push gossip, push-pull, or flooding over a
// lossy radio layer.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"math"
	"os"

	"meg"
	"meg/internal/core"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

func main() {
	const n = 4096
	const trials = 8
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	cfg := meg.GeometricConfig{N: n, R: radius, MoveRadius: radius / 2}

	protocols := []meg.Protocol{
		protocol.Flooding{},
		protocol.Probabilistic{Beta: 0.8},
		protocol.Probabilistic{Beta: 0.5},
		protocol.PushGossip{},
		protocol.PushPull{},
		protocol.LossyFlooding{Loss: 0.5},
	}

	fmt.Printf("mobile mesh: n=%d, R=%.2f, node speed %.2f\n\n", n, radius, radius/2)
	tbl := table.New("broadcast protocol menu (mean over trials, stationary starts)",
		"protocol", "success", "rounds", "messages", "msgs/node")
	base := rng.New(2024)
	for _, p := range protocols {
		success := 0
		var rounds, msgs stats.Accumulator
		for i := 0; i < trials; i++ {
			model := meg.NewGeometric(cfg)
			model.Reset(base.Split())
			res := p.Run(model, i%n, core.DefaultRoundCap(n), base.Split())
			if res.Completed {
				success++
				rounds.Add(float64(res.Rounds))
			}
			msgs.Add(float64(res.Messages))
		}
		tbl.AddRow(p.Name(), success, rounds.Mean(), msgs.Mean(), msgs.Mean()/n)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nReading the menu: flooding is the latency floor (the paper's baseline);")
	fmt.Println("gossip cuts messages by >20× at a few× the latency; β-flooding sits between;")
	fmt.Println("and even 50% message loss barely dents flooding thanks to retransmission.")
}
