// P2pchurn models message dissemination in an unstructured peer-to-peer
// overlay under churn.
//
// Scenario: peers hold links that appear and disappear over time —
// connections drop (death rate q) and new ones are dialed (birth rate
// p). Gossip/flooding is the standard dissemination primitive in such
// overlays (Gnutella-style search, blockchain transaction relay). Two
// operational questions:
//
//  1. How fast does a message reach everyone in steady state, and does
//     the *churn rate* matter or only the average connectivity?
//  2. How much slower is dissemination right after a network-wide cold
//     start (all links down), the worst case of the paper's reference
//     [9]?
//
// The paper's answers: in steady state only p̂ = p/(p+q) matters —
// flooding takes Θ(log n/log np̂) rounds regardless of how fast links
// churn — while a cold start can be exponentially slower when links are
// born rarely (Section 1's stationary/worst-case gap).
//
//	go run ./examples/p2pchurn
package main

import (
	"fmt"
	"math"
	"os"

	"meg"
	"meg/internal/edgemeg"
	"meg/internal/flood"
	"meg/internal/table"
)

func main() {
	const n = 4096
	const trials = 10
	pHat := 4 * math.Log(float64(n)) / float64(n) // avg degree np̂ ≈ 33

	fmt.Printf("overlay: n=%d peers, mean degree np̂=%.1f\n\n", n, float64(n)*pHat)

	// 1. Sweep the churn rate at a fixed stationary degree: q from
	// "links live ~100 rounds" to "links live ~1.1 rounds".
	tbl := table.New("steady-state dissemination vs churn rate (fixed p̂)",
		"q (drop rate)", "link lifetime 1/q", "p", "rounds mean", "rounds max")
	for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.9} {
		p := q * pHat / (1 - pHat)
		cfg := meg.EdgeConfig{N: n, P: p, Q: q}
		camp := flood.Run(func() meg.Dynamics { return meg.NewEdgeMarkovian(cfg) },
			flood.Options{Trials: trials, Seed: 11})
		tbl.AddRow(q, 1/q, p, camp.Summary.Mean, camp.Summary.Max)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		panic(err)
	}
	theory := math.Log(float64(n)) / math.Log(float64(n)*pHat)
	fmt.Printf("\nTheorem 4.3: Θ(log n/log np̂) = %.2f rounds for every row — churn speed is\n", theory)
	fmt.Println("irrelevant in steady state; only the stationary connectivity p̂ matters.")

	// 2. Cold start vs steady state in a sparse-birth overlay.
	fmt.Println()
	tbl2 := table.New("cold start (all links down) vs steady state — sparse births",
		"n", "steady-state rounds", "cold-start rounds", "slowdown")
	for _, nn := range []int{1024, 2048, 4096} {
		nf := float64(nn)
		p := math.Pow(nf, -1.5)          // rare link births
		q := nf * p / (3 * math.Log(nf)) // lifetime tuned for p̂ ≈ 3·log n/n
		warm := flood.Run(func() meg.Dynamics {
			return meg.NewEdgeMarkovian(meg.EdgeConfig{N: nn, P: p, Q: q})
		}, flood.Options{Trials: trials, Seed: 13, MaxRounds: 16 * nn})
		cold := flood.Run(func() meg.Dynamics {
			return meg.NewEdgeMarkovian(meg.EdgeConfig{N: nn, P: p, Q: q, Init: edgemeg.InitEmpty})
		}, flood.Options{Trials: trials, Seed: 17, MaxRounds: 16 * nn})
		tbl2.AddRow(nn, warm.Summary.Mean, cold.Summary.Mean, cold.Summary.Mean/warm.Summary.Mean)
	}
	if err := tbl2.WriteText(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println("\nThe slowdown grows polynomially in n (≈ n^ε): a freshly wiped overlay is")
	fmt.Println("dramatically slower than the steady state it converges to. Operationally:")
	fmt.Println("keep warm links alive through restarts, or bootstrap from a seed set.")
}
