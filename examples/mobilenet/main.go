// Mobilenet sizes the transmission radius of a mobile sensor network.
//
// Scenario: n battery-powered sensors drift through a deployment square
// (drones, vehicles, wildlife tags — anything that random-walks), and a
// measurement taken by one node must reach the whole swarm by flooding.
// Transmission power (the radius R) is the dominant energy cost, so the
// operator wants the smallest R that still delivers data quickly.
//
// The paper's Corollary 3.6 answers this: flooding takes Θ(√n/R) rounds
// for any R above the connectivity scale c√log n, and node speed r ≤ R
// is irrelevant. This example sweeps R, measures delivery time, and
// shows both predictions holding on the simulated swarm.
//
//	go run ./examples/mobilenet
package main

import (
	"fmt"
	"math"
	"os"

	"meg"
	"meg/internal/flood"
	"meg/internal/table"
)

func main() {
	const n = 4096   // swarm size
	const trials = 8 // Monte Carlo repetitions per configuration
	side := math.Sqrt(float64(n))
	connScale := math.Sqrt(math.Log(float64(n))) // c=1 connectivity scale

	fmt.Printf("sensor swarm: n=%d over a %.0f×%.0f square; connectivity scale √log n = %.2f\n\n",
		n, side, side, connScale)

	tbl := table.New("delivery time vs transmission radius (node speed r = R/2)",
		"R/√log n", "R", "rounds mean", "rounds p90", "√n/R", "rounds/(√n/R)")
	for _, mult := range []float64{1.5, 2, 3, 4, 6, 8} {
		radius := mult * connScale
		cfg := meg.GeometricConfig{N: n, R: radius, MoveRadius: radius / 2}
		camp := flood.Run(func() meg.Dynamics { return meg.NewGeometric(cfg) },
			flood.Options{Trials: trials, Seed: 42})
		if camp.Incomplete > 0 {
			fmt.Printf("R=%.2f: %d/%d floods incomplete (radius too small)\n", radius, camp.Incomplete, trials)
			continue
		}
		x := side / radius
		tbl.AddRow(mult, radius, camp.Summary.Mean, camp.Summary.P90, x, camp.Summary.Mean/x)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		panic(err)
	}

	fmt.Println("\nThe last column is ≈ constant: delivery time scales as √n/R (Corollary 3.6),")
	fmt.Println("so doubling the radius halves latency — and quadruples per-packet energy (∝R²).")

	// Second prediction: node speed does not matter while r ≤ R.
	radius := 3 * connScale
	tbl2 := table.New("\ndelivery time vs node speed at fixed R = 3√log n",
		"r/R", "rounds mean")
	for _, f := range []float64{0, 0.25, 0.5, 1} {
		cfg := meg.GeometricConfig{N: n, R: radius, MoveRadius: f * radius}
		camp := flood.Run(func() meg.Dynamics { return meg.NewGeometric(cfg) },
			flood.Options{Trials: trials, Seed: 7})
		tbl2.AddRow(f, camp.Summary.Mean)
	}
	if err := tbl2.WriteText(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println("\nMobility is (nearly) free: the rows differ by small constants only —")
	fmt.Println("the paper's headline result that motion neither helps nor hurts when r = O(R).")
}
