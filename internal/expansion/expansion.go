// Package expansion measures the parameterized node expansion of graph
// snapshots empirically. Verifying the (h,k)-expander property of
// Definition 2.2 exactly requires minimizing |N(I)|/|I| over all
// 2^n subsets; this package instead evaluates adversarial candidate
// families that witness the worst cases for the models in this
// repository:
//
//   - BFS balls: prefixes of breadth-first orders. In any graph they
//     have the smallest boundary among "organically grown" sets and are
//     the worst case for G(n,p)-like graphs.
//   - Spatial balls (provided by the caller as a generator): the h
//     nodes nearest a point, provably the boundary-minimizing sets for
//     geometric graphs.
//   - Random sets: a baseline family showing the typical (much larger)
//     expansion.
//
// The reported k(h) = min over candidates of |N(I)|/|I| is an upper
// bound on the true expansion and, for these families, an accurate
// estimate of the constants in Theorems 3.2 and 4.1.
package expansion

import (
	"math"

	"meg/internal/bitset"
	"meg/internal/core"
	"meg/internal/graph"
	"meg/internal/rng"
)

// Generator produces candidate node sets of exactly size h (sets of
// different sizes are allowed but only sets with 1 ≤ |I| ≤ h are
// considered by the measurement).
type Generator func(h, count int, r *rng.RNG) [][]int

// RandomSets returns a Generator drawing uniform h-subsets of [0, n).
func RandomSets(n int) Generator {
	return func(h, count int, r *rng.RNG) [][]int {
		if h > n {
			h = n
		}
		out := make([][]int, count)
		for i := range out {
			out[i] = r.Sample(n, h)
		}
		return out
	}
}

// BFSBalls returns a Generator producing prefixes of BFS orders of g
// from random roots: the h nodes closest (in hops) to a random node,
// ties broken by traversal order. If a root's component has fewer than
// h nodes, the whole component is used.
func BFSBalls(g *graph.Graph) Generator {
	return func(h, count int, r *rng.RNG) [][]int {
		n := g.N()
		if h > n {
			h = n
		}
		out := make([][]int, 0, count)
		visited := bitset.New(n)
		queue := make([]int32, 0, n)
		for c := 0; c < count; c++ {
			root := r.Intn(n)
			visited.Clear()
			queue = append(queue[:0], int32(root))
			visited.Add(root)
			for head := 0; head < len(queue) && len(queue) < h; head++ {
				u := queue[head]
				for _, v := range g.Neighbors(int(u)) {
					if !visited.Contains(int(v)) {
						visited.Add(int(v))
						queue = append(queue, v)
						if len(queue) == h {
							break
						}
					}
				}
			}
			set := make([]int, len(queue))
			for i, v := range queue {
				set[i] = int(v)
			}
			out = append(out, set)
		}
		return out
	}
}

// Fixed returns a Generator that always produces the given sets,
// truncated to size h; useful for plugging in model-specific
// adversarial families such as geometric spatial balls.
func Fixed(sets [][]int) Generator {
	return func(h, count int, r *rng.RNG) [][]int {
		out := make([][]int, 0, len(sets))
		for _, s := range sets {
			if len(s) <= h {
				out = append(out, s)
			} else {
				out = append(out, s[:h])
			}
		}
		return out
	}
}

// Combine merges generators: the candidate family is the union of each
// generator's output.
func Combine(gens ...Generator) Generator {
	return func(h, count int, r *rng.RNG) [][]int {
		var out [][]int
		for _, g := range gens {
			out = append(out, g(h, count, r)...)
		}
		return out
	}
}

// Point is one measured point of an expansion profile.
type Point struct {
	// H is the set size the candidates were generated for.
	H int
	// K is the minimum observed |N(I)|/|I| over all candidates.
	K float64
	// Sets is the number of candidate sets evaluated.
	Sets int
}

// MinExpansion returns the minimum |N(I)|/|I| over the candidate sets
// (ignoring empty sets), or -1 if no usable candidate was supplied.
func MinExpansion(g *graph.Graph, sets [][]int) float64 {
	inSet := bitset.New(g.N())
	mark := bitset.New(g.N())
	best := -1.0
	for _, members := range sets {
		if len(members) == 0 {
			continue
		}
		inSet.Clear()
		for _, u := range members {
			inSet.Add(u)
		}
		nb := core.NeighborhoodSize(g, members, inSet, mark)
		ratio := float64(nb) / float64(len(members))
		if best < 0 || ratio < best {
			best = ratio
		}
	}
	return best
}

// Profile measures k(h) for each set size in hs using gen, evaluating
// setsPerSize candidates per size.
func Profile(g *graph.Graph, hs []int, gen Generator, setsPerSize int, r *rng.RNG) []Point {
	out := make([]Point, 0, len(hs))
	for _, h := range hs {
		sets := gen(h, setsPerSize, r)
		k := MinExpansion(g, sets)
		out = append(out, Point{H: h, K: k, Sets: len(sets)})
	}
	return out
}

// GeometricSizes returns a log-spaced ladder of set sizes from 1 to
// n/2, suitable as the hs argument of Profile.
func GeometricSizes(n, points int) []int {
	if points < 2 {
		panic("expansion: need at least two ladder points")
	}
	half := n / 2
	if half < 1 {
		half = 1
	}
	out := make([]int, 0, points)
	last := 0
	for i := 0; i < points; i++ {
		// Geometric interpolation between 1 and n/2.
		x := math.Pow(float64(half), float64(i)/float64(points-1))
		v := int(x + 0.5)
		if v <= last {
			v = last + 1
		}
		if v > half {
			v = half
		}
		out = append(out, v)
		last = v
		if v == half {
			break
		}
	}
	return out
}
