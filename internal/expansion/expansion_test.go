package expansion

import (
	"math"
	"testing"

	"meg/internal/graph"
	"meg/internal/rng"
)

func TestMinExpansionComplete(t *testing.T) {
	// On K_n, |N(I)| = n − |I| for every non-empty I.
	g := graph.Complete(12)
	sets := [][]int{{0}, {0, 1, 2}, {5, 6, 7, 8}}
	got := MinExpansion(g, sets)
	want := (12.0 - 4) / 4 // the size-4 set minimizes (n-h)/h
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinExpansion = %v, want %v", got, want)
	}
}

func TestMinExpansionIgnoresEmpty(t *testing.T) {
	g := graph.Complete(5)
	if got := MinExpansion(g, [][]int{{}, {0}}); got != 4 {
		t.Fatalf("MinExpansion = %v, want 4", got)
	}
	if got := MinExpansion(g, [][]int{{}}); got != -1 {
		t.Fatalf("MinExpansion with no usable sets = %v, want -1", got)
	}
}

func TestRandomSetsGenerator(t *testing.T) {
	gen := RandomSets(50)
	r := rng.New(1)
	sets := gen(7, 5, r)
	if len(sets) != 5 {
		t.Fatalf("generated %d sets", len(sets))
	}
	for _, s := range sets {
		if len(s) != 7 {
			t.Fatalf("set size %d, want 7", len(s))
		}
		seen := map[int]bool{}
		for _, u := range s {
			if u < 0 || u >= 50 || seen[u] {
				t.Fatalf("invalid set %v", s)
			}
			seen[u] = true
		}
	}
	// h larger than n clamps.
	big := gen(100, 1, r)
	if len(big[0]) != 50 {
		t.Fatalf("oversized h not clamped: %d", len(big[0]))
	}
}

func TestBFSBallsOnCycleAreArcs(t *testing.T) {
	// On a cycle, a BFS ball is a contiguous arc, so its neighborhood
	// is exactly 2 for any 1 < h < n-1.
	g := graph.Cycle(20)
	gen := BFSBalls(g)
	r := rng.New(2)
	sets := gen(5, 10, r)
	for _, s := range sets {
		if len(s) != 5 {
			t.Fatalf("BFS ball size %d, want 5", len(s))
		}
	}
	if got := MinExpansion(g, sets); math.Abs(got-2.0/5) > 1e-12 {
		t.Fatalf("cycle arc expansion = %v, want 0.4", got)
	}
}

func TestBFSBallsSmallComponent(t *testing.T) {
	// A component smaller than h yields the whole component.
	g := graph.FromEdges(10, [][2]int{{0, 1}, {1, 2}})
	gen := BFSBalls(g)
	r := rng.New(3)
	for _, s := range gen(8, 30, r) {
		if len(s) > 8 {
			t.Fatalf("ball exceeded h: %v", s)
		}
		if len(s) != 1 && len(s) != 3 && len(s) != 8 {
			// Components have sizes 3 (nodes 0-2) and 1 (isolated).
			t.Fatalf("unexpected ball size %d", len(s))
		}
	}
}

func TestFixedGenerator(t *testing.T) {
	sets := [][]int{{1, 2, 3}, {4, 5}}
	gen := Fixed(sets)
	out := gen(2, 99, nil)
	if len(out) != 2 {
		t.Fatalf("Fixed returned %d sets", len(out))
	}
	if len(out[0]) != 2 || len(out[1]) != 2 {
		t.Fatalf("Fixed truncation wrong: %v", out)
	}
}

func TestCombine(t *testing.T) {
	gen := Combine(RandomSets(20), RandomSets(20))
	r := rng.New(4)
	if got := len(gen(3, 4, r)); got != 8 {
		t.Fatalf("Combine produced %d sets, want 8", got)
	}
}

func TestProfile(t *testing.T) {
	g := graph.Complete(16)
	r := rng.New(5)
	points := Profile(g, []int{1, 2, 4, 8}, RandomSets(16), 3, r)
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		want := float64(16-pt.H) / float64(pt.H)
		if math.Abs(pt.K-want) > 1e-12 {
			t.Errorf("h=%d: k=%v, want %v", pt.H, pt.K, want)
		}
		if pt.Sets != 3 {
			t.Errorf("h=%d: sets=%d", pt.H, pt.Sets)
		}
	}
}

func TestGeometricSizes(t *testing.T) {
	hs := GeometricSizes(1000, 8)
	if hs[0] != 1 {
		t.Fatalf("ladder must start at 1: %v", hs)
	}
	if hs[len(hs)-1] != 500 {
		t.Fatalf("ladder must end at n/2: %v", hs)
	}
	for i := 1; i < len(hs); i++ {
		if hs[i] <= hs[i-1] {
			t.Fatalf("ladder not strictly increasing: %v", hs)
		}
	}
}

func TestGeometricSizesSmallN(t *testing.T) {
	hs := GeometricSizes(6, 10)
	if hs[len(hs)-1] != 3 {
		t.Fatalf("ladder end = %d, want 3", hs[len(hs)-1])
	}
	for i := 1; i < len(hs); i++ {
		if hs[i] <= hs[i-1] {
			t.Fatalf("not increasing: %v", hs)
		}
	}
}

func TestGeometricSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeometricSizes(100, 1)
}
