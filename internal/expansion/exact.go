package expansion

import (
	"meg/internal/bitset"
	"meg/internal/core"
	"meg/internal/graph"
)

// ExactMinExpansion computes min |N(I)|/|I| over ALL node subsets I
// with 1 ≤ |I| ≤ h by exhaustive enumeration — the exact quantity of
// Definition 2.2. The cost is Σ_{s≤h} C(n,s) set evaluations, so it is
// only feasible for small n (the tests use it to validate the
// adversarial candidate families used at scale). It panics if h < 1 or
// h > n.
func ExactMinExpansion(g *graph.Graph, h int) float64 {
	n := g.N()
	if h < 1 || h > n {
		panic("expansion: h out of range")
	}
	inSet := bitset.New(n)
	mark := bitset.New(n)
	best := -1.0
	members := make([]int, 0, h)
	idx := make([]int, h)
	for size := 1; size <= h; size++ {
		// Enumerate all C(n, size) combinations with a running index
		// vector idx[0] < idx[1] < … < idx[size-1].
		for i := 0; i < size; i++ {
			idx[i] = i
		}
		for {
			members = members[:0]
			inSet.Clear()
			for i := 0; i < size; i++ {
				members = append(members, idx[i])
				inSet.Add(idx[i])
			}
			nb := core.NeighborhoodSize(g, members, inSet, mark)
			ratio := float64(nb) / float64(size)
			if best < 0 || ratio < best {
				best = ratio
			}
			// Advance the combination.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return best
}

// ExactProfile computes the exact k(h) for each h in hs (see
// ExactMinExpansion); only feasible for small n.
func ExactProfile(g *graph.Graph, hs []int) []Point {
	out := make([]Point, 0, len(hs))
	for _, h := range hs {
		out = append(out, Point{H: h, K: ExactMinExpansion(g, h), Sets: -1})
	}
	return out
}
