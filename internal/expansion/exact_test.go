package expansion

import (
	"math"
	"testing"

	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

func TestExactMinExpansionCycle(t *testing.T) {
	// On a cycle the worst set of size s is a contiguous arc with
	// |N| = 2, so k(h) = 2/h exactly.
	g := graph.Cycle(10)
	for _, h := range []int{1, 2, 3, 4, 5} {
		want := 2.0 / float64(h)
		if got := ExactMinExpansion(g, h); math.Abs(got-want) > 1e-12 {
			t.Fatalf("cycle k(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestExactMinExpansionComplete(t *testing.T) {
	// On K_n, |N(I)| = n-|I| for every I: k(h) = (n-h)/h.
	g := graph.Complete(9)
	for _, h := range []int{1, 2, 4} {
		want := float64(9-h) / float64(h)
		if got := ExactMinExpansion(g, h); math.Abs(got-want) > 1e-12 {
			t.Fatalf("K9 k(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestExactMinExpansionStar(t *testing.T) {
	// On a star, the worst set of size h is h leaves: |N| = 1 (the
	// center), so k(h) = 1/h.
	g := graph.Star(8)
	for _, h := range []int{1, 2, 3} {
		want := 1.0 / float64(h)
		if got := ExactMinExpansion(g, h); math.Abs(got-want) > 1e-12 {
			t.Fatalf("star k(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestExactMinExpansionDisconnected(t *testing.T) {
	// An isolated node has |N| = 0: k = 0.
	g := graph.FromEdges(4, [][2]int{{0, 1}})
	if got := ExactMinExpansion(g, 1); got != 0 {
		t.Fatalf("disconnected k(1) = %v, want 0", got)
	}
}

func TestExactProfile(t *testing.T) {
	g := graph.Cycle(8)
	pts := ExactProfile(g, []int{1, 2, 4})
	want := []float64{2, 1, 0.5}
	for i, pt := range pts {
		if math.Abs(pt.K-want[i]) > 1e-12 {
			t.Fatalf("profile[%d] = %v, want %v", i, pt.K, want[i])
		}
	}
}

func TestExactPanics(t *testing.T) {
	g := graph.Cycle(5)
	for _, fn := range []func(){
		func() { ExactMinExpansion(g, 0) },
		func() { ExactMinExpansion(g, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestAdversarialFamiliesNearExact is the soundness check for the
// at-scale methodology: on small random graphs the BFS-ball + random
// family must land within a modest factor of the exhaustive minimum
// (it is an upper bound by construction).
func TestAdversarialFamiliesNearExact(t *testing.T) {
	r := rng.New(42)
	const n = 14
	const h = 5
	for trial := 0; trial < 8; trial++ {
		g := edgemeg.SampleGNP(n, 0.35, r.Split())
		exact := ExactMinExpansion(g, h)
		gen := Combine(BFSBalls(g), RandomSets(n))
		sets := gen(h, 40, r.Split())
		// Include all smaller sizes as the exact check does.
		for s := 1; s < h; s++ {
			sets = append(sets, gen(s, 40, r.Split())...)
		}
		approx := MinExpansion(g, sets)
		if approx < exact-1e-9 {
			t.Fatalf("approximate min %v below exact %v — impossible", approx, exact)
		}
		if exact > 0 && approx > 3*exact+1 {
			t.Fatalf("adversarial family too loose: approx %v vs exact %v", approx, exact)
		}
	}
}
