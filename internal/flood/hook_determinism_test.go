package flood

import (
	"sync"
	"testing"

	"meg/internal/core"
	"meg/internal/metrics"
	"meg/internal/spec"
)

// recorderSet hands each trial its own PhaseRecorder and remembers them
// all, so tests can both attach hooks and assert they actually fired.
type recorderSet struct {
	mu   sync.Mutex
	recs []*metrics.PhaseRecorder
}

func (rs *recorderSet) factory(trial int) core.PhaseHook {
	pr := metrics.NewPhaseRecorder(nil)
	rs.mu.Lock()
	rs.recs = append(rs.recs, pr)
	rs.mu.Unlock()
	return pr
}

func (rs *recorderSet) totals() metrics.PhaseTotals {
	var total metrics.PhaseTotals
	rs.mu.Lock()
	for _, pr := range rs.recs {
		total.Merge(pr.Totals())
	}
	rs.mu.Unlock()
	return total
}

// runHooked executes a flooding campaign with per-trial phase
// recorders attached and returns the campaign plus the merged totals.
func runHooked(t *testing.T, s spec.Spec, parallelism int, batch bool) (Campaign, metrics.PhaseTotals) {
	t.Helper()
	s.Parallelism = parallelism
	s.Engine.BatchSources = batch
	factory, _, err := s.NewFactory()
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	opt, err := OptionsFromSpec(s)
	if err != nil {
		t.Fatalf("OptionsFromSpec: %v", err)
	}
	var rs recorderSet
	opt.Hook = rs.factory
	camp := Run(factory, opt)
	return camp, rs.totals()
}

// TestHooksPreserveDeterminism is the observability layer's core
// contract: attaching phase hooks must not change a single byte of the
// results, at any parallelism, batched or not. Hooks observe — they
// never feed back into RNG draws or traversal order.
func TestHooksPreserveDeterminism(t *testing.T) {
	s := allModelSpecs(t)[0] // geometric; the full model sweep runs hookless in determinism_test.go
	for _, cse := range []struct {
		label string
		par   int
		batch bool
	}{
		{"P1", 1, false},
		{"P8", 8, false},
		{"P1/batched", 1, true},
		{"P8/batched", 8, true},
	} {
		bare := runWithParallelism(t, s, cse.par, cse.batch)
		hooked, totals := runHooked(t, s, cse.par, cse.batch)
		campaignsEqual(t, "hooked/"+cse.label, bare, hooked)
		if totals.Rounds == 0 {
			t.Errorf("%s: hooks attached but recorded no rounds (vacuous comparison)", cse.label)
		}
		if totals.KernelNS <= 0 || totals.SnapshotNS <= 0 {
			t.Errorf("%s: phase spans empty: kernel=%dns snapshot=%dns", cse.label, totals.KernelNS, totals.SnapshotNS)
		}
	}
	// Cross-parallelism with hooks on both sides: still identical.
	h1, _ := runHooked(t, s, 1, false)
	h8, _ := runHooked(t, s, 8, false)
	campaignsEqual(t, "hooked/P1-vs-P8", h1, h8)
}

// TestHooksPreserveDeterminismDeltaSnapshot covers the incremental
// snapshot path, whose step/delta-apply spans are distinct phases.
func TestHooksPreserveDeterminismDeltaSnapshot(t *testing.T) {
	s := allModelSpecs(t)[2] // edge: churn-native, exercises StepDelta
	s.Snapshot = "delta"
	bare := runWithParallelism(t, s, 8, false)
	hooked, totals := runHooked(t, s, 8, false)
	campaignsEqual(t, "hooked/delta", bare, hooked)
	if totals.DeltaApplyNS <= 0 {
		t.Errorf("delta path recorded no delta-apply time: %+v", totals)
	}
}

// TestHooksPreserveDeterminismGossip runs the push-pull kernel engine
// hooked and hookless at both parallelisms.
func TestHooksPreserveDeterminismGossip(t *testing.T) {
	s := allModelSpecs(t)[0]
	s.Protocol = spec.Protocol{Name: "push-pull"}
	run := func(par int, hook func(int) core.PhaseHook) ProtocolCampaign {
		s.Parallelism = par
		factory, _, err := s.NewFactory()
		if err != nil {
			t.Fatalf("NewFactory: %v", err)
		}
		opt, err := ProtocolOptionsFromSpec(s)
		if err != nil {
			t.Fatalf("ProtocolOptionsFromSpec: %v", err)
		}
		opt.Hook = hook
		return RunProtocol(factory, opt)
	}
	for _, par := range []int{1, 8} {
		var rs recorderSet
		bare := run(par, nil)
		hooked := run(par, rs.factory)
		protocolCampaignsEqual(t, "gossip/hooked", bare, hooked)
		if rs.totals().Rounds == 0 {
			t.Errorf("par=%d: gossip hooks recorded no rounds", par)
		}
	}
}
