package flood

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
	"meg/internal/spec"
)

func pathFactory(n int) Factory {
	return func() core.Dynamics { return core.NewStatic(graph.Path(n)) }
}

func TestRunBasics(t *testing.T) {
	c := Run(pathFactory(9), Options{Trials: 4, Seed: 1})
	if len(c.Trials) != 4 {
		t.Fatalf("trials = %d", len(c.Trials))
	}
	if c.Incomplete != 0 {
		t.Fatalf("incomplete = %d", c.Incomplete)
	}
	// Source 0 on a 9-path: always 8 rounds.
	if c.Summary.Mean != 8 || c.MaxRounds() != 8 {
		t.Fatalf("mean=%v max=%v, want 8", c.Summary.Mean, c.MaxRounds())
	}
	if c.MeanRounds() != 8 {
		t.Fatalf("MeanRounds = %v", c.MeanRounds())
	}
}

func TestRunMultiSourceMax(t *testing.T) {
	// With many sources per trial on a path, the max over sources
	// approaches n-1 (an endpoint source).
	c := Run(pathFactory(7), Options{Trials: 6, SourcesPerTrial: 10, Seed: 2})
	if c.MaxRounds() != 6 {
		t.Fatalf("max = %v, want 6 (endpoint source found)", c.MaxRounds())
	}
	for _, tr := range c.Trials {
		if tr.RoundsToHalf < 0 {
			t.Fatal("RoundsToHalf missing")
		}
	}
}

func TestRunIncomplete(t *testing.T) {
	disconnected := func() core.Dynamics {
		return core.NewStatic(graph.FromEdges(4, [][2]int{{0, 1}}))
	}
	c := Run(disconnected, Options{Trials: 3, Seed: 3, MaxRounds: 5})
	if c.Incomplete != 3 {
		t.Fatalf("incomplete = %d, want 3", c.Incomplete)
	}
	if len(c.Rounds) != 0 {
		t.Fatal("rounds recorded for incomplete trials")
	}
	if !math.IsNaN(c.MeanRounds()) {
		t.Fatal("MeanRounds should be NaN with no completions")
	}
	if c.MaxRounds() != 0 {
		t.Fatal("MaxRounds should be 0 with no completions")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() Campaign {
		return Run(pathFactory(15), Options{Trials: 5, SourcesPerTrial: 3, Seed: 42, Workers: 4})
	}
	a, b := mk(), mk()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatal("round counts differ")
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("trial %d differs: %v vs %v", i, a.Rounds[i], b.Rounds[i])
		}
	}
}

func TestRunWorkerIndependence(t *testing.T) {
	one := Run(pathFactory(15), Options{Trials: 6, SourcesPerTrial: 2, Seed: 9, Workers: 1})
	many := Run(pathFactory(15), Options{Trials: 6, SourcesPerTrial: 2, Seed: 9, Workers: 8})
	for i := range one.Rounds {
		if one.Rounds[i] != many.Rounds[i] {
			t.Fatalf("worker-count dependence at trial %d", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(10)
	if o.Trials != 1 || o.SourcesPerTrial != 1 || o.MaxRounds != core.DefaultRoundCap(10) {
		t.Fatalf("defaults = %+v", o)
	}
}

// TestRunBatchSourcesMatchesUnbatchedSingleSource pins the estimator
// compatibility guarantee: with SourcesPerTrial == 1 the batched and
// unbatched paths consume the same RNG stream and must produce
// bit-identical campaigns.
func TestRunBatchSourcesMatchesUnbatchedSingleSource(t *testing.T) {
	mk := func(batch bool) Campaign {
		return Run(func() core.Dynamics {
			return edgemeg.MustNew(edgemeg.Config{N: 128, P: 0.05, Q: 0.5})
		}, Options{Trials: 6, Seed: 5, BatchSources: batch})
	}
	a, b := mk(false), mk(true)
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ra, rb := a.Trials[i].Result, b.Trials[i].Result
		if ra.Rounds != rb.Rounds || ra.Completed != rb.Completed || ra.Source != rb.Source {
			t.Fatalf("trial %d diverged: (%d,%v) vs (%d,%v)", i, ra.Rounds, ra.Completed, rb.Rounds, rb.Completed)
		}
		if !ra.Informed.Equal(rb.Informed) {
			t.Fatalf("trial %d informed sets differ", i)
		}
	}
}

// TestRunBatchSourcesMultiSource checks the batched multi-source path
// end to end: max-over-sources on a path graph still finds the endpoint
// worst case, and the campaign is deterministic across worker counts.
func TestRunBatchSourcesMultiSource(t *testing.T) {
	opts := func(workers int) Options {
		return Options{Trials: 6, SourcesPerTrial: 10, Seed: 2, Workers: workers, BatchSources: true}
	}
	c := Run(pathFactory(7), opts(0))
	if c.MaxRounds() != 6 {
		t.Fatalf("max = %v, want 6 (endpoint source found)", c.MaxRounds())
	}
	for _, tr := range c.Trials {
		if tr.RoundsToHalf < 0 {
			t.Fatal("RoundsToHalf missing")
		}
	}
	// Worker-count independence of the batched fan-out.
	serial := Run(pathFactory(7), opts(1))
	four := Run(pathFactory(7), opts(4))
	for i := range serial.Trials {
		if serial.Trials[i].Result.Rounds != c.Trials[i].Result.Rounds ||
			four.Trials[i].Result.Rounds != c.Trials[i].Result.Rounds {
			t.Fatalf("batched campaign depends on worker count at trial %d", i)
		}
	}
}

// slowDynamics is an edgeless (never-completing) dynamics whose Step
// sleeps, so a run without cancellation takes maxRounds·delay.
type slowDynamics struct {
	g     *graph.Graph
	delay time.Duration
}

func (s *slowDynamics) N() int              { return s.g.N() }
func (s *slowDynamics) Reset(*rng.RNG)      {}
func (s *slowDynamics) Graph() *graph.Graph { return s.g }
func (s *slowDynamics) Step()               { time.Sleep(s.delay) }

func TestRunContextCancelPrompt(t *testing.T) {
	// One trial of 10 000 rounds at 1 ms/round ≈ 10 s uncancelled.
	// Cancellation must abort mid-trial, not wait for the trial to end.
	factory := func() core.Dynamics {
		return &slowDynamics{g: graph.Empty(16), delay: time.Millisecond}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, factory, Options{Trials: 1, MaxRounds: 10000, Seed: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("cancelled campaign returned nil error")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; want prompt (≈30ms + one round)", elapsed)
	}
}

func TestRunContextCancelBatched(t *testing.T) {
	factory := func() core.Dynamics {
		return &slowDynamics{g: graph.Empty(16), delay: time.Millisecond}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, factory, Options{
		Trials: 1, SourcesPerTrial: 8, BatchSources: true, MaxRounds: 10000, Seed: 1,
	})
	if err == nil {
		t.Fatalf("cancelled batched campaign returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batched cancellation took %v; want prompt", elapsed)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	opt := Options{Trials: 5, SourcesPerTrial: 3, Seed: 7}
	want := Run(pathFactory(17), opt)
	got, err := RunContext(context.Background(), pathFactory(17), opt)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(got.Trials) != len(want.Trials) || got.Summary != want.Summary {
		t.Fatalf("RunContext diverged from Run:\n got %+v\nwant %+v", got.Summary, want.Summary)
	}
}

func TestRunProgressCallbacks(t *testing.T) {
	var mu sync.Mutex
	rounds := 0
	trialsDone := 0
	lastInformed := make(map[int]int)
	c := Run(pathFactory(9), Options{
		Trials: 3,
		Seed:   1,
		OnRound: func(trial, round, informed int) {
			mu.Lock()
			rounds++
			lastInformed[trial] = informed
			mu.Unlock()
		},
		OnTrialDone: func(trial int, tr Trial) {
			mu.Lock()
			trialsDone++
			mu.Unlock()
		},
	})
	if c.Incomplete != 0 {
		t.Fatalf("incomplete = %d", c.Incomplete)
	}
	if trialsDone != 3 {
		t.Fatalf("OnTrialDone fired %d times, want 3", trialsDone)
	}
	// A 9-path from source 0 completes in 8 rounds per trial.
	if rounds != 3*8 {
		t.Fatalf("OnRound fired %d times, want 24", rounds)
	}
	for trial, informed := range lastInformed {
		if informed != 9 {
			t.Fatalf("trial %d last informed = %d, want 9", trial, informed)
		}
	}
}

func TestOptionsFromSpec(t *testing.T) {
	s, err := spec.Parse([]byte(`{
		"model": {"name": "edge", "n": 64},
		"trials": 4, "sources": 2, "seed": 9,
		"engine": {"kernel": "push", "pullThreshold": 0.3, "batchSources": true}
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	opt, err := OptionsFromSpec(s)
	if err != nil {
		t.Fatalf("OptionsFromSpec: %v", err)
	}
	if opt.Trials != 4 || opt.SourcesPerTrial != 2 || opt.Seed != 9 {
		t.Fatalf("campaign fields wrong: %+v", opt)
	}
	if opt.Kernel != core.KernelPush || opt.PullThreshold != 0.3 || !opt.BatchSources {
		t.Fatalf("engine fields wrong: %+v", opt)
	}
	if opt.MaxRounds != core.DefaultRoundCap(64) {
		t.Fatalf("round cap not materialized: %d", opt.MaxRounds)
	}
}
