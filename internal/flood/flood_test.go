package flood

import (
	"math"
	"testing"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/graph"
)

func pathFactory(n int) Factory {
	return func() core.Dynamics { return core.NewStatic(graph.Path(n)) }
}

func TestRunBasics(t *testing.T) {
	c := Run(pathFactory(9), Options{Trials: 4, Seed: 1})
	if len(c.Trials) != 4 {
		t.Fatalf("trials = %d", len(c.Trials))
	}
	if c.Incomplete != 0 {
		t.Fatalf("incomplete = %d", c.Incomplete)
	}
	// Source 0 on a 9-path: always 8 rounds.
	if c.Summary.Mean != 8 || c.MaxRounds() != 8 {
		t.Fatalf("mean=%v max=%v, want 8", c.Summary.Mean, c.MaxRounds())
	}
	if c.MeanRounds() != 8 {
		t.Fatalf("MeanRounds = %v", c.MeanRounds())
	}
}

func TestRunMultiSourceMax(t *testing.T) {
	// With many sources per trial on a path, the max over sources
	// approaches n-1 (an endpoint source).
	c := Run(pathFactory(7), Options{Trials: 6, SourcesPerTrial: 10, Seed: 2})
	if c.MaxRounds() != 6 {
		t.Fatalf("max = %v, want 6 (endpoint source found)", c.MaxRounds())
	}
	for _, tr := range c.Trials {
		if tr.RoundsToHalf < 0 {
			t.Fatal("RoundsToHalf missing")
		}
	}
}

func TestRunIncomplete(t *testing.T) {
	disconnected := func() core.Dynamics {
		return core.NewStatic(graph.FromEdges(4, [][2]int{{0, 1}}))
	}
	c := Run(disconnected, Options{Trials: 3, Seed: 3, MaxRounds: 5})
	if c.Incomplete != 3 {
		t.Fatalf("incomplete = %d, want 3", c.Incomplete)
	}
	if len(c.Rounds) != 0 {
		t.Fatal("rounds recorded for incomplete trials")
	}
	if !math.IsNaN(c.MeanRounds()) {
		t.Fatal("MeanRounds should be NaN with no completions")
	}
	if c.MaxRounds() != 0 {
		t.Fatal("MaxRounds should be 0 with no completions")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() Campaign {
		return Run(pathFactory(15), Options{Trials: 5, SourcesPerTrial: 3, Seed: 42, Workers: 4})
	}
	a, b := mk(), mk()
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatal("round counts differ")
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("trial %d differs: %v vs %v", i, a.Rounds[i], b.Rounds[i])
		}
	}
}

func TestRunWorkerIndependence(t *testing.T) {
	one := Run(pathFactory(15), Options{Trials: 6, SourcesPerTrial: 2, Seed: 9, Workers: 1})
	many := Run(pathFactory(15), Options{Trials: 6, SourcesPerTrial: 2, Seed: 9, Workers: 8})
	for i := range one.Rounds {
		if one.Rounds[i] != many.Rounds[i] {
			t.Fatalf("worker-count dependence at trial %d", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(10)
	if o.Trials != 1 || o.SourcesPerTrial != 1 || o.MaxRounds != core.DefaultRoundCap(10) {
		t.Fatalf("defaults = %+v", o)
	}
}

// TestRunBatchSourcesMatchesUnbatchedSingleSource pins the estimator
// compatibility guarantee: with SourcesPerTrial == 1 the batched and
// unbatched paths consume the same RNG stream and must produce
// bit-identical campaigns.
func TestRunBatchSourcesMatchesUnbatchedSingleSource(t *testing.T) {
	mk := func(batch bool) Campaign {
		return Run(func() core.Dynamics {
			return edgemeg.MustNew(edgemeg.Config{N: 128, P: 0.05, Q: 0.5})
		}, Options{Trials: 6, Seed: 5, BatchSources: batch})
	}
	a, b := mk(false), mk(true)
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ra, rb := a.Trials[i].Result, b.Trials[i].Result
		if ra.Rounds != rb.Rounds || ra.Completed != rb.Completed || ra.Source != rb.Source {
			t.Fatalf("trial %d diverged: (%d,%v) vs (%d,%v)", i, ra.Rounds, ra.Completed, rb.Rounds, rb.Completed)
		}
		if !ra.Informed.Equal(rb.Informed) {
			t.Fatalf("trial %d informed sets differ", i)
		}
	}
}

// TestRunBatchSourcesMultiSource checks the batched multi-source path
// end to end: max-over-sources on a path graph still finds the endpoint
// worst case, and the campaign is deterministic across worker counts.
func TestRunBatchSourcesMultiSource(t *testing.T) {
	opts := func(workers int) Options {
		return Options{Trials: 6, SourcesPerTrial: 10, Seed: 2, Workers: workers, BatchSources: true}
	}
	c := Run(pathFactory(7), opts(0))
	if c.MaxRounds() != 6 {
		t.Fatalf("max = %v, want 6 (endpoint source found)", c.MaxRounds())
	}
	for _, tr := range c.Trials {
		if tr.RoundsToHalf < 0 {
			t.Fatal("RoundsToHalf missing")
		}
	}
	// Worker-count independence of the batched fan-out.
	serial := Run(pathFactory(7), opts(1))
	four := Run(pathFactory(7), opts(4))
	for i := range serial.Trials {
		if serial.Trials[i].Result.Rounds != c.Trials[i].Result.Rounds ||
			four.Trials[i].Result.Rounds != c.Trials[i].Result.Rounds {
			t.Fatalf("batched campaign depends on worker count at trial %d", i)
		}
	}
}
