package flood

import (
	"testing"

	"meg/internal/core"
	"meg/internal/spec"
)

// allModelSpecs builds one small spec per evolving-graph model — the
// complete set the spec factory knows.
func allModelSpecs(t *testing.T) []spec.Spec {
	t.Helper()
	names := []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"}
	specs := make([]spec.Spec, 0, len(names))
	for _, name := range names {
		s := spec.Spec{
			Model:   spec.Model{Name: name, N: 600, RFrac: 0.5},
			Trials:  2,
			Sources: 3,
			Seed:    11,
		}
		if _, err := s.Canonical(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		specs = append(specs, s)
	}
	return specs
}

// runWithParallelism executes a spec's campaign with the given
// intra-trial parallelism.
func runWithParallelism(t *testing.T, s spec.Spec, parallelism int, batch bool) Campaign {
	t.Helper()
	s.Parallelism = parallelism
	s.Engine.BatchSources = batch
	factory, _, err := s.NewFactory()
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	opt, err := OptionsFromSpec(s)
	if err != nil {
		t.Fatalf("OptionsFromSpec: %v", err)
	}
	return Run(factory, opt)
}

// campaignsEqual compares two campaigns trial by trial, arrival arrays
// included — the byte-identity contract of the Parallelism knob.
func campaignsEqual(t *testing.T, label string, a, b Campaign) {
	t.Helper()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	if a.Incomplete != b.Incomplete {
		t.Fatalf("%s: incomplete %d vs %d", label, a.Incomplete, b.Incomplete)
	}
	for i := range a.Trials {
		ra, rb := a.Trials[i].Result, b.Trials[i].Result
		if ra.Source != rb.Source || ra.Rounds != rb.Rounds || ra.Completed != rb.Completed {
			t.Fatalf("%s: trial %d headers differ: {src %d rounds %d %v} vs {src %d rounds %d %v}",
				label, i, ra.Source, ra.Rounds, ra.Completed, rb.Source, rb.Rounds, rb.Completed)
		}
		if len(ra.Trajectory) != len(rb.Trajectory) {
			t.Fatalf("%s: trial %d trajectory lengths differ", label, i)
		}
		for j := range ra.Trajectory {
			if ra.Trajectory[j] != rb.Trajectory[j] {
				t.Fatalf("%s: trial %d trajectory[%d] = %d vs %d", label, i, j, ra.Trajectory[j], rb.Trajectory[j])
			}
		}
		if len(ra.Arrival) != len(rb.Arrival) {
			t.Fatalf("%s: trial %d arrival lengths differ", label, i)
		}
		for v := range ra.Arrival {
			if ra.Arrival[v] != rb.Arrival[v] {
				t.Fatalf("%s: trial %d arrival[%d] = %d vs %d", label, i, v, ra.Arrival[v], rb.Arrival[v])
			}
		}
	}
}

// TestParallelismIdenticalAcrossAllModels is the determinism gate for
// the sharded engine: on every one of the seven models, Parallelism 1
// and Parallelism 8 must produce identical campaigns — same trials,
// rounds, trajectories and per-node arrival times — because the worker
// pool is an execution hint, never a semantic.
func TestParallelismIdenticalAcrossAllModels(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		name := s.Model.Name
		serial := runWithParallelism(t, s, 1, false)
		sharded := runWithParallelism(t, s, 8, false)
		campaignsEqual(t, name, serial, sharded)
		if serial.Incomplete > 0 {
			t.Errorf("%s: determinism case never completed (vacuous comparison)", name)
		}
	}
}

// TestParallelismIdenticalBatchedMulti covers the FloodMulti path: the
// batched bit-parallel estimator must also be worker-count independent.
func TestParallelismIdenticalBatchedMulti(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		s.Sources = 70 // spans two 64-wide groups
		serial := runWithParallelism(t, s, 1, true)
		sharded := runWithParallelism(t, s, 8, true)
		campaignsEqual(t, s.Model.Name+"/batched", serial, sharded)
	}
}

// TestParallelismZeroMeansSerial pins the compatibility contract: the
// zero value runs the serial engine and matches Parallelism 1 exactly.
func TestParallelismZeroMeansSerial(t *testing.T) {
	s := allModelSpecs(t)[0]
	zero := runWithParallelism(t, s, 0, false)
	one := runWithParallelism(t, s, 1, false)
	campaignsEqual(t, "zero-vs-one", zero, one)
}

// TestParallelismAcrossKernels pins kernel × parallelism: pinned push
// and pull kernels must agree with each other under sharding.
func TestParallelismAcrossKernels(t *testing.T) {
	s := allModelSpecs(t)[0]
	var base Campaign
	for i, kernel := range []core.Kernel{core.KernelPush, core.KernelPull} {
		s.Engine.Kernel = kernel.String()
		c := runWithParallelism(t, s, 4, false)
		if i == 0 {
			base = c
			continue
		}
		campaignsEqual(t, "push-vs-pull/sharded", base, c)
	}
}
