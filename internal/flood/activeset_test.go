package flood

import (
	"testing"

	"meg/internal/core"
	"meg/internal/spec"
)

// runWithActiveSetFrac executes a flooding campaign with the active-set
// crossover pinned to frac (0 = pure complement scan, 1 = list from the
// first pull round); frac < 0 leaves the default crossover in place.
func runWithActiveSetFrac(t *testing.T, s spec.Spec, frac float64, parallelism int) Campaign {
	t.Helper()
	if frac >= 0 {
		defer core.SetActiveSetFracForTest(frac)()
	}
	return runWithParallelism(t, s, parallelism, false)
}

// TestActiveSetEquivalenceAllModels is the equivalence gate of the
// active-set pull kernel: on every one of the seven models, a campaign
// run with the active set forced on from the first pull round (frac 1)
// and one with it disabled entirely (frac 0, the pure complement scan)
// must be byte-identical — trajectories and per-node arrival arrays
// included — at Parallelism 1 and 8 alike. The default crossover must
// match both. This is the contract that keeps the crossover fraction an
// execution heuristic, never a semantic.
func TestActiveSetEquivalenceAllModels(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		name := s.Model.Name
		baseline := runWithActiveSetFrac(t, s, 0, 1)
		for _, par := range []int{1, 8} {
			for _, frac := range []float64{1, -1} {
				got := runWithActiveSetFrac(t, s, frac, par)
				campaignsEqual(t, name+"/active-set", baseline, got)
			}
		}
		if baseline.Incomplete > 0 {
			t.Errorf("%s: equivalence case never completed (vacuous comparison)", name)
		}
	}
}

// TestActiveSetEquivalenceDelta covers the skip layer: on the delta
// path the active set consults the Mutable's row-change stamps and the
// previous round's frontier to probe only candidate nodes, so every
// model × Parallelism must still reproduce the complement-scan
// campaign byte for byte with the list forced on from the first pull
// round — the regime where skipped probes are most common.
func TestActiveSetEquivalenceDelta(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		name := s.Model.Name
		s.Snapshot = "delta"
		baseline := runWithActiveSetFrac(t, s, 0, 1)
		for _, par := range []int{1, 8} {
			got := runWithActiveSetFrac(t, s, 1, par)
			campaignsEqual(t, name+"/active-set-delta", baseline, got)
		}
	}
}

// TestActiveSetEquivalenceLossy covers the other consumer of the
// active set — lossy flooding's per-edge coin-flip scan — on every
// model: forced-on, forced-off and default crossover must agree on the
// kernel engine at Parallelism 1 and 8. The per-(node, round) RNG
// streams make the coin flips independent of scan order, which is what
// the list walk changes.
func TestActiveSetEquivalenceLossy(t *testing.T) {
	models := []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"}
	for _, m := range models {
		s := spec.Spec{
			Model:    spec.Model{Name: m, N: 500, RFrac: 0.5},
			Protocol: spec.Protocol{Name: "lossy", Loss: 0.25},
			Trials:   2,
			Sources:  2,
			Seed:     13,
		}
		if _, err := s.Canonical(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		baseline := func() ProtocolCampaign {
			defer core.SetActiveSetFracForTest(0)()
			return runProtocolWith(t, s, EngineKernel, 1)
		}()
		for _, par := range []int{1, 8} {
			for _, frac := range []float64{1, -1} {
				got := func() ProtocolCampaign {
					if frac >= 0 {
						defer core.SetActiveSetFracForTest(frac)()
					}
					return runProtocolWith(t, s, EngineKernel, par)
				}()
				protocolCampaignsEqual(t, m+"/lossy-active-set", baseline, got)
			}
		}
	}
}

// TestActiveSetDenseRowsDelta pins the SetDenseRows consumer: on a
// graph dense enough for the bit-matrix pull kernel (n ≤ 8192,
// avg degree ≥ 64), the delta path — where the rows are built once and
// then kept coherent by Mutable.ApplyDelta's O(churn) bit flips — must
// reproduce the full-rebuild campaign byte for byte, across several
// trials so the pooled Mutable is also reused with rows attached and
// detached between runs.
func TestActiveSetDenseRowsDelta(t *testing.T) {
	s := spec.Spec{
		Model:     spec.Model{Name: "edge", N: 1024, PhatMult: 16, Q: 0.05},
		Trials:    3,
		Sources:   2,
		Seed:      17,
		MaxRounds: 30,
	}
	if _, err := s.Canonical(); err != nil {
		t.Fatal(err)
	}
	full := runWithSnapshot(t, s, "full", 1, false)
	for _, par := range []int{1, 8} {
		delta := runWithSnapshot(t, s, "delta", par, false)
		campaignsEqual(t, "dense-rows/delta-vs-full", full, delta)
	}
	if full.Incomplete > 0 {
		t.Errorf("dense-rows case never completed (vacuous comparison)")
	}
}
