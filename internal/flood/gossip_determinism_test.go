package flood

import (
	"testing"

	"meg/internal/spec"
)

// protocolSpecs builds one small spec per (model, protocol) pair — all
// seven models crossed with the four gossip-family protocols.
func protocolSpecs(t *testing.T) []spec.Spec {
	t.Helper()
	models := []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"}
	protos := []spec.Protocol{
		{Name: "push"},
		{Name: "push-pull"},
		{Name: "probabilistic", Beta: 0.8},
		{Name: "lossy", Loss: 0.25},
	}
	var specs []spec.Spec
	for _, m := range models {
		for _, p := range protos {
			s := spec.Spec{
				Model:    spec.Model{Name: m, N: 500, RFrac: 0.5},
				Protocol: p,
				Trials:   2,
				Sources:  2,
				Seed:     13,
			}
			if _, err := s.Canonical(); err != nil {
				t.Fatalf("%s/%s: %v", m, p.Name, err)
			}
			specs = append(specs, s)
		}
	}
	return specs
}

// runProtocolWith executes a spec's protocol campaign with the given
// engine and intra-trial parallelism.
func runProtocolWith(t *testing.T, s spec.Spec, engine string, parallelism int) ProtocolCampaign {
	t.Helper()
	s.ProtocolEngine = engine
	s.Parallelism = parallelism
	factory, _, err := s.NewFactory()
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	opt, err := ProtocolOptionsFromSpec(s)
	if err != nil {
		t.Fatalf("ProtocolOptionsFromSpec: %v", err)
	}
	return RunProtocol(factory, opt)
}

// protocolCampaignsEqual compares two protocol campaigns trial by
// trial on the fields both engines produce (the reference engine does
// not compute arrival arrays).
func protocolCampaignsEqual(t *testing.T, label string, a, b ProtocolCampaign) {
	t.Helper()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	if a.Incomplete != b.Incomplete {
		t.Fatalf("%s: incomplete %d vs %d", label, a.Incomplete, b.Incomplete)
	}
	for i := range a.Trials {
		ra, rb := a.Trials[i].Result, b.Trials[i].Result
		if ra.Source != rb.Source || ra.Rounds != rb.Rounds || ra.Completed != rb.Completed || ra.Messages != rb.Messages {
			t.Fatalf("%s: trial %d headers differ: {src %d rounds %d %v msgs %d} vs {src %d rounds %d %v msgs %d}",
				label, i, ra.Source, ra.Rounds, ra.Completed, ra.Messages, rb.Source, rb.Rounds, rb.Completed, rb.Messages)
		}
		if len(ra.Trajectory) != len(rb.Trajectory) {
			t.Fatalf("%s: trial %d trajectory lengths differ", label, i)
		}
		for j := range ra.Trajectory {
			if ra.Trajectory[j] != rb.Trajectory[j] {
				t.Fatalf("%s: trial %d trajectory[%d] = %d vs %d", label, i, j, ra.Trajectory[j], rb.Trajectory[j])
			}
		}
	}
}

// TestProtocolParallelismIdentical is the determinism gate for the
// sharded gossip engine, mirroring the flooding engine's: on every
// (model, protocol) pair, Parallelism 1 and Parallelism 8 must produce
// identical campaigns, because the worker pool is an execution hint.
func TestProtocolParallelismIdentical(t *testing.T) {
	for _, s := range protocolSpecs(t) {
		label := s.Model.Name + "/" + s.Protocol.Name
		serial := runProtocolWith(t, s, EngineKernel, 1)
		sharded := runProtocolWith(t, s, EngineKernel, 8)
		protocolCampaignsEqual(t, label, serial, sharded)
	}
}

// TestProtocolEngineEquivalence pins the oracle contract end to end at
// the campaign level: the kernel engine must reproduce the reference
// engine byte for byte on every (model, protocol) pair — the invariant
// that lets protocolEngine stay outside the spec content hash.
func TestProtocolEngineEquivalence(t *testing.T) {
	for _, s := range protocolSpecs(t) {
		label := s.Model.Name + "/" + s.Protocol.Name
		ref := runProtocolWith(t, s, EngineReference, 1)
		ker := runProtocolWith(t, s, EngineKernel, 8)
		protocolCampaignsEqual(t, label+"/ref-vs-kernel", ref, ker)
		if ref.Incomplete == len(ref.Trials) {
			t.Errorf("%s: every trial incomplete (vacuous comparison)", label)
		}
	}
}

// TestProtocolOptionsFromSpecRejectsFlooding pins the split between the
// two engines: flooding specs belong to OptionsFromSpec.
func TestProtocolOptionsFromSpecRejectsFlooding(t *testing.T) {
	s := spec.Spec{Model: spec.Model{Name: "edge", N: 128}}
	if _, err := ProtocolOptionsFromSpec(s); err == nil {
		t.Fatal("flooding spec accepted by ProtocolOptionsFromSpec")
	}
}
