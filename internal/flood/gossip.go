package flood

import (
	"context"
	"fmt"

	"meg/internal/core"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/spec"
	"meg/internal/stats"
	"meg/internal/sweep"
)

// Protocol engine spellings: which implementation runs a non-flooding
// protocol campaign. Both produce byte-identical results on the same
// seeds, so the choice is an execution hint (like Parallelism) —
// excluded from spec content hashes.
const (
	// EngineKernel is the bit-parallel sharded gossip engine
	// (core.Gossip) — the default.
	EngineKernel = "kernel"
	// EngineReference is the per-node oracle in internal/protocol,
	// retained for cross-checking and as the equivalence baseline.
	EngineReference = "reference"
)

// ProtocolOptions configures a campaign of a non-flooding protocol
// (push gossip, push-pull, probabilistic or lossy flooding): the same
// trial/source estimator as Options, plus the protocol selection and
// engine knobs.
type ProtocolOptions struct {
	// Protocol is the protocol name (push|push-pull|probabilistic|lossy).
	Protocol string
	// Beta is probabilistic flooding's forwarding probability.
	Beta float64
	// Loss is lossy flooding's per-message loss probability.
	Loss float64
	// Engine selects the implementation: EngineKernel (default, also
	// the empty string) or EngineReference. Byte-identical results.
	Engine string
	// Trials is the number of independent repetitions (default 1).
	Trials int
	// SourcesPerTrial is how many sources each trial maximizes over
	// (default 1; first source is node 0, the rest uniform).
	SourcesPerTrial int
	// MaxRounds caps each run (default core.DefaultRoundCap(n)).
	MaxRounds int
	// Seed derives every trial's RNG stream.
	Seed uint64
	// Workers bounds trial-level parallelism (default: all CPUs).
	Workers int
	// Parallelism is the intra-trial worker count of the sharded gossip
	// engine and the models' snapshot builds. Results are byte-identical
	// for every value; the reference engine ignores it for the protocol
	// rounds but still hands it to the models.
	Parallelism int
	// Snapshot selects the kernel engine's per-round snapshot path
	// (core.GossipOptions.Snapshot); byte-identical either way. The
	// reference engine always runs the full path — it drives the model
	// directly — which is exactly what the kernel-delta-vs-reference
	// equivalence tests lean on.
	Snapshot core.SnapshotMode
	// OnRound, if non-nil, receives per-round progress (kernel engine
	// only; the reference implementations have no round hooks). Called
	// concurrently from trial workers.
	OnRound func(trial, round, informed int)
	// OnTrialDone, if non-nil, is called as each trial finishes
	// (completion order, concurrently).
	OnTrialDone func(trial int, t ProtocolTrial)
	// Hook, if non-nil, is called once at the start of every trial and
	// may return a core.PhaseHook observing that trial's engine rounds
	// (kernel engine only; the reference implementations have no phase
	// structure to report). Same contract as Options.Hook: one distinct
	// hook per trial, observation only, byte-identical results.
	Hook func(trial int) core.PhaseHook
}

// ProtocolOptionsFromSpec maps a canonical non-flooding spec onto
// campaign options. It rejects flooding specs — those run on the
// flooding engine via OptionsFromSpec.
func ProtocolOptionsFromSpec(s spec.Spec) (ProtocolOptions, error) {
	c, err := s.Canonical()
	if err != nil {
		return ProtocolOptions{}, err
	}
	if c.Protocol.Name == "flooding" {
		return ProtocolOptions{}, fmt.Errorf("flood: spec runs flooding; use OptionsFromSpec")
	}
	seed, err := c.EffectiveSeed()
	if err != nil {
		return ProtocolOptions{}, err
	}
	snapshot, err := core.ParseSnapshotMode(c.Snapshot)
	if err != nil {
		return ProtocolOptions{}, err
	}
	return ProtocolOptions{
		Protocol:        c.Protocol.Name,
		Beta:            c.Protocol.Beta,
		Loss:            c.Protocol.Loss,
		Engine:          c.ProtocolEngine,
		Trials:          c.Trials,
		SourcesPerTrial: c.Sources,
		MaxRounds:       c.MaxRounds,
		Seed:            seed,
		Workers:         c.Workers,
		Parallelism:     c.Parallelism,
		Snapshot:        snapshot,
	}, nil
}

func (o ProtocolOptions) withDefaults(n int) ProtocolOptions {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.SourcesPerTrial <= 0 {
		o.SourcesPerTrial = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = core.DefaultRoundCap(n)
	}
	return o
}

// ProtocolTrial is one repetition's outcome (maximized over sources).
type ProtocolTrial struct {
	Result core.GossipResult
	// RoundsToHalf is the first round with ≥ n/2 informed (-1 if never).
	RoundsToHalf int
}

// ProtocolCampaign is the aggregate outcome of RunProtocol.
type ProtocolCampaign struct {
	Trials []ProtocolTrial
	// Rounds holds the spreading time of every completed trial.
	Rounds []float64
	// Incomplete counts trials that hit the round cap (or died out).
	Incomplete int
	// Summary summarizes Rounds (zero value if no trial completed).
	Summary stats.Summary
}

// RunProtocol executes a protocol campaign; see RunProtocolContext.
func RunProtocol(factory Factory, opt ProtocolOptions) ProtocolCampaign {
	c, _ := RunProtocolContext(context.Background(), factory, opt)
	return c
}

// RunProtocolContext runs opt.Trials independent repetitions of the
// selected protocol — fresh dynamics per trial, worst result over the
// trial's sources — in parallel and deterministically with respect to
// opt.Seed. The kernel and reference engines produce byte-identical
// campaigns on every field the reference computes (Source, Rounds,
// Completed, Trajectory, Messages); the kernel additionally populates
// Informed and Arrival, which the reference adapter leaves nil.
// Cancellation mirrors RunContext (kernel runs abort at the next
// round, reference runs at the next source).
func RunProtocolContext(ctx context.Context, factory Factory, opt ProtocolOptions) (ProtocolCampaign, error) {
	probe := factory()
	n := probe.N()
	opt = opt.withDefaults(n)

	var ref protocol.Protocol
	var gp core.GossipProtocol
	var err error
	if opt.Engine == EngineReference {
		ref, err = protocol.ByName(opt.Protocol, opt.Beta, opt.Loss)
	} else {
		gp, err = core.ParseGossip(opt.Protocol)
	}
	if err != nil {
		return ProtocolCampaign{}, err
	}

	stop := func() bool { return ctx.Err() != nil }
	trials, err := sweep.RepeatCtx(ctx, opt.Trials, opt.Seed, opt.Workers, func(rep int, r *rng.RNG) ProtocolTrial {
		d := factory()
		sources := make([]int, opt.SourcesPerTrial)
		// First source fixed for comparability; the rest sampled.
		for i := 1; i < len(sources); i++ {
			sources[i] = r.Intn(n)
		}
		var progress func(round, informed int)
		if opt.OnRound != nil {
			progress = func(round, informed int) { opt.OnRound(rep, round, informed) }
		}
		var hook core.PhaseHook
		if opt.Hook != nil {
			hook = opt.Hook(rep)
		}
		var worst core.GossipResult
		for i, src := range sources {
			if ctx.Err() != nil && i > 0 {
				break
			}
			d.Reset(r.Split())
			var res core.GossipResult
			if ref != nil {
				out := ref.Run(d, src, opt.MaxRounds, r)
				res = core.GossipResult{
					Source:     src,
					Rounds:     out.Rounds,
					Completed:  out.Completed,
					Trajectory: out.Trajectory,
					Messages:   out.Messages,
				}
			} else {
				res = core.Gossip(d, gp, src, opt.MaxRounds, r, core.GossipOptions{
					Beta: opt.Beta, Loss: opt.Loss,
					Parallelism: opt.Parallelism,
					Snapshot:    opt.Snapshot,
					Stop:        stop, Progress: progress,
					Hook: hook,
				})
			}
			if i == 0 || worseResult(res, worst) {
				worst = res
			}
		}
		t := ProtocolTrial{Result: worst, RoundsToHalf: worst.RoundsToHalf(n)}
		if opt.OnTrialDone != nil && ctx.Err() == nil {
			opt.OnTrialDone(rep, t)
		}
		return t
	})
	if err != nil {
		return ProtocolCampaign{}, err
	}

	c := ProtocolCampaign{Trials: trials}
	for _, t := range trials {
		if t.Result.Completed {
			c.Rounds = append(c.Rounds, float64(t.Result.Rounds))
		} else {
			c.Incomplete++
		}
	}
	if len(c.Rounds) > 0 {
		c.Summary = stats.Summarize(c.Rounds)
	}
	return c, nil
}

// worseResult mirrors core's flooding-time ordering: incomplete beats
// complete, then more rounds beats fewer.
func worseResult(a, b core.GossipResult) bool {
	if a.Completed != b.Completed {
		return !a.Completed
	}
	return a.Rounds > b.Rounds
}
