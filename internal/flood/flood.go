// Package flood runs Monte Carlo flooding campaigns over any
// core.Dynamics: repeated independent trials (each with its own
// dynamics instance and RNG stream, executed in parallel), source
// maximization, and the aggregate statistics the experiments report.
package flood

import (
	"context"
	"math"

	"meg/internal/core"
	"meg/internal/rng"
	"meg/internal/spec"
	"meg/internal/stats"
	"meg/internal/sweep"
)

// OptionsFromSpec is the spec-driven constructor: it maps a canonical
// simulation spec onto campaign options (trials, sources, round cap,
// effective seed, kernel tuning). Progress callbacks are left nil for
// the caller to attach.
func OptionsFromSpec(s spec.Spec) (Options, error) {
	c, err := s.Canonical()
	if err != nil {
		return Options{}, err
	}
	kernel, err := c.Kernel()
	if err != nil {
		return Options{}, err
	}
	seed, err := c.EffectiveSeed()
	if err != nil {
		return Options{}, err
	}
	snapshot, err := core.ParseSnapshotMode(c.Snapshot)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Trials:          c.Trials,
		SourcesPerTrial: c.Sources,
		MaxRounds:       c.MaxRounds,
		Seed:            seed,
		Workers:         c.Workers,
		Parallelism:     c.Parallelism,
		Kernel:          kernel,
		PullThreshold:   c.Engine.PullThreshold,
		BatchSources:    c.Engine.BatchSources,
		Snapshot:        snapshot,
	}, nil
}

// Factory builds a fresh, independent dynamics instance for one trial.
// Trials run concurrently, so instances must not share mutable state.
type Factory func() core.Dynamics

// Options configures a flooding campaign.
type Options struct {
	// Trials is the number of independent repetitions (default 1).
	Trials int
	// SourcesPerTrial is how many sources each trial maximizes over
	// (default 1; the first source of every trial is node 0, further
	// sources are uniform). Flooding time is defined as a max over
	// sources; stationary models are node-symmetric, so a small sample
	// converges quickly.
	SourcesPerTrial int
	// MaxRounds caps each run (default core.DefaultRoundCap(n)).
	MaxRounds int
	// Seed derives every trial's RNG stream (deterministic campaign).
	Seed uint64
	// Workers bounds parallelism (default: all CPUs).
	Workers int
	// Parallelism is the intra-trial worker count of the sharded
	// flooding engine and the models' parallel snapshot builds
	// (core.FloodOptions.Parallelism). Results are byte-identical for
	// every value; 0 or 1 keeps the serial kernels. Trial-level Workers
	// and intra-trial Parallelism multiply, so campaigns typically
	// raise one or the other: many short trials want Workers, few huge
	// trials want Parallelism.
	Parallelism int
	// Kernel selects the flooding engine's per-round strategy
	// (default core.KernelAuto, the direction-optimizing push/pull
	// switch). All kernels produce identical results.
	Kernel core.Kernel
	// PullThreshold overrides the informed-set fraction at which the
	// auto kernel switches push→pull; ≤ 0 derives it from the model's
	// expected degree (see core.FloodOptions).
	PullThreshold float64
	// Snapshot selects the engines' per-round snapshot path: full
	// rebuild (the default) or incremental delta maintenance for
	// delta-capable models (core.FloodOptions.Snapshot). Results are
	// byte-identical either way; delta wins in low-churn regimes.
	Snapshot core.SnapshotMode
	// BatchSources runs each trial's sources over ONE shared
	// realization via core.FloodMulti (bit-parallel, up to 64 sources
	// per word) instead of resetting the dynamics per source. Roughly
	// SourcesPerTrial× cheaper; the per-trial max is then over runs
	// coupled through the shared snapshots, which remains a valid
	// flooding-time estimator for stationary models. With
	// SourcesPerTrial == 1 the batched and unbatched paths are
	// bit-identical. Batching applies only with the default
	// KernelAuto: pinning Kernel forces the per-source path so the
	// pinned kernel is actually the code that runs.
	BatchSources bool
	// OnRound, if non-nil, is called after every flooding round with
	// the trial index, round number, and informed count — the feed for
	// live progress streams. Trials run in parallel, so OnRound is
	// called concurrently from worker goroutines and must be safe for
	// that; in the unbatched multi-source path the round number restarts
	// once per source within a trial.
	OnRound func(trial, round, informed int)
	// OnTrialDone, if non-nil, is called as each trial finishes (in
	// completion order, concurrently — same caveats as OnRound).
	OnTrialDone func(trial int, t Trial)
	// Hook, if non-nil, is called once at the start of every trial (on
	// the trial's worker goroutine) and may return a core.PhaseHook to
	// observe that trial's engine rounds — phase timings and per-round
	// telemetry. Trials run concurrently, so the factory must hand out
	// a distinct hook per trial (or nil to skip one). Hooks observe
	// only: campaign results are byte-identical with and without them.
	Hook func(trial int) core.PhaseHook
}

// batched reports whether the batched multi-source path applies.
func (o Options) batched() bool {
	return o.BatchSources && o.Kernel == core.KernelAuto
}

func (o Options) floodOptions() core.FloodOptions {
	return core.FloodOptions{Kernel: o.Kernel, PullThreshold: o.PullThreshold, Parallelism: o.Parallelism, Snapshot: o.Snapshot}
}

func (o Options) withDefaults(n int) Options {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.SourcesPerTrial <= 0 {
		o.SourcesPerTrial = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = core.DefaultRoundCap(n)
	}
	return o
}

// Trial is the outcome of one repetition (already maximized over the
// trial's sources).
type Trial struct {
	Result core.FloodResult
	// RoundsToHalf is the first round with ≥ n/2 informed (-1 if never).
	RoundsToHalf int
}

// Campaign is the aggregate outcome of Run.
type Campaign struct {
	Trials []Trial
	// Rounds holds the flooding time of every completed trial.
	Rounds []float64
	// Incomplete counts trials that hit the round cap.
	Incomplete int
	// Summary summarizes Rounds (zero value if no trial completed).
	Summary stats.Summary
}

// MaxRounds returns the worst completed flooding time, or 0 if nothing
// completed.
func (c Campaign) MaxRounds() float64 {
	if len(c.Rounds) == 0 {
		return 0
	}
	return c.Summary.Max
}

// Run executes a flooding campaign: opt.Trials independent repetitions,
// each building a fresh dynamics from factory, resetting it into its
// initial distribution, and flooding from each of the trial's sources
// (taking the worst). Trials execute in parallel and deterministically
// with respect to opt.Seed.
func Run(factory Factory, opt Options) Campaign {
	c, _ := RunContext(context.Background(), factory, opt)
	return c
}

// RunContext is Run with cooperative cancellation: when ctx is
// cancelled, queued trials are never started, running trials abort at
// their next flooding round, and RunContext returns the zero Campaign
// together with ctx.Err(). A completed campaign is identical to Run's
// for the same options.
func RunContext(ctx context.Context, factory Factory, opt Options) (Campaign, error) {
	probe := factory()
	n := probe.N()
	opt = opt.withDefaults(n)

	stop := func() bool { return ctx.Err() != nil }
	trials, err := sweep.RepeatCtx(ctx, opt.Trials, opt.Seed, opt.Workers, func(rep int, r *rng.RNG) Trial {
		d := factory()
		sources := make([]int, opt.SourcesPerTrial)
		// First source fixed for comparability; the rest sampled.
		for i := 1; i < len(sources); i++ {
			sources[i] = r.Intn(n)
		}
		var progress func(round, informed int)
		if opt.OnRound != nil {
			progress = func(round, informed int) { opt.OnRound(rep, round, informed) }
		}
		var hook core.PhaseHook
		if opt.Hook != nil {
			hook = opt.Hook(rep)
		}
		var res core.FloodResult
		if opt.batched() {
			d.Reset(r.Split())
			res = core.WorstResult(core.FloodMultiOpt(d, sources, opt.MaxRounds,
				core.MultiOptions{Parallelism: opt.Parallelism, Snapshot: opt.Snapshot, Stop: stop, Progress: progress, Hook: hook}))
		} else {
			fo := opt.floodOptions()
			fo.Stop = stop
			fo.Progress = progress
			fo.Hook = hook
			res = core.FloodingTimeOpt(d, sources, opt.MaxRounds, r, fo)
		}
		t := Trial{Result: res, RoundsToHalf: res.RoundsToHalf(n)}
		if opt.OnTrialDone != nil && ctx.Err() == nil {
			opt.OnTrialDone(rep, t)
		}
		return t
	})
	if err != nil {
		return Campaign{}, err
	}

	c := Campaign{Trials: trials}
	for _, t := range trials {
		if t.Result.Completed {
			c.Rounds = append(c.Rounds, float64(t.Result.Rounds))
		} else {
			c.Incomplete++
		}
	}
	if len(c.Rounds) > 0 {
		c.Summary = stats.Summarize(c.Rounds)
	}
	return c, nil
}

// MeanRounds is a convenience accessor: the mean completed flooding
// time, or NaN if no trial completed.
func (c Campaign) MeanRounds() float64 {
	if len(c.Rounds) == 0 {
		return math.NaN()
	}
	return c.Summary.Mean
}
