package flood

import (
	"testing"

	"meg/internal/spec"
)

// runWithSnapshot executes a flooding campaign with the given snapshot
// path and intra-trial parallelism.
func runWithSnapshot(t *testing.T, s spec.Spec, snapshot string, parallelism int, batch bool) Campaign {
	t.Helper()
	s.Snapshot = snapshot
	return runWithParallelism(t, s, parallelism, batch)
}

// TestSnapshotDeltaIdenticalAcrossAllModels is the equivalence gate of
// the incremental snapshot path: on every delta-capable model (all
// seven), a flooding campaign run with snapshot=delta must be
// byte-identical — trajectories and per-node arrival arrays included —
// to the full-rebuild campaign, at Parallelism 1 and 8 alike. This is
// the contract that keeps the snapshot knob an execution hint outside
// the spec content hash.
func TestSnapshotDeltaIdenticalAcrossAllModels(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		name := s.Model.Name
		full := runWithSnapshot(t, s, "full", 1, false)
		for _, par := range []int{1, 8} {
			delta := runWithSnapshot(t, s, "delta", par, false)
			campaignsEqual(t, name+"/delta-vs-full", full, delta)
		}
		if full.Incomplete == len(full.Trials) {
			t.Errorf("%s: every trial incomplete (vacuous comparison)", name)
		}
	}
}

// TestSnapshotDeltaIdenticalLowChurn covers the regimes the delta path
// is actually for — lazy lattice walks and low-churn edge chains —
// where most rounds rebuild only a sliver of the snapshot.
func TestSnapshotDeltaIdenticalLowChurn(t *testing.T) {
	cases := []spec.Model{
		{Name: "geometric", N: 600, RFrac: 0.5, Jump: 0.05},
		{Name: "torus", N: 600, RFrac: 0.3, Jump: 0.1},
		{Name: "edge", N: 600, PhatMult: 2, Q: 0.02},
	}
	for _, m := range cases {
		s := spec.Spec{Model: m, Trials: 2, Sources: 3, Seed: 29}
		if _, err := s.Canonical(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		full := runWithSnapshot(t, s, "full", 8, false)
		delta := runWithSnapshot(t, s, "delta", 8, false)
		campaignsEqual(t, m.Name+"/lowchurn", full, delta)
	}
}

// TestSnapshotDeltaIdenticalBatchedMulti covers the bit-parallel
// FloodMulti path under the delta snapshot engine.
func TestSnapshotDeltaIdenticalBatchedMulti(t *testing.T) {
	for _, s := range allModelSpecs(t) {
		s.Sources = 70 // spans two 64-wide groups
		full := runWithSnapshot(t, s, "full", 1, true)
		delta := runWithSnapshot(t, s, "delta", 8, true)
		campaignsEqual(t, s.Model.Name+"/batched-delta", full, delta)
	}
}

// TestSnapshotDeltaIdenticalProtocols closes the matrix over the
// gossip family: on every (model, protocol) pair the kernel engine
// run with snapshot=delta must reproduce the full-rebuild campaign at
// Parallelism 1 and 8. Together with the reference-vs-kernel
// equivalence gate this pins delta × {all four protocols} × {P1, P8}
// to the oracle.
func TestSnapshotDeltaIdenticalProtocols(t *testing.T) {
	for _, s := range protocolSpecs(t) {
		label := s.Model.Name + "/" + s.Protocol.Name
		full := runProtocolWith(t, s, EngineKernel, 1)
		for _, par := range []int{1, 8} {
			sd := s
			sd.Snapshot = "delta"
			delta := runProtocolWith(t, sd, EngineKernel, par)
			protocolCampaignsEqual(t, label+"/delta-vs-full", full, delta)
		}
	}
}

// TestSnapshotHintDoesNotChangeHash pins the execution-hint contract:
// snapshot, like parallelism, must not perturb the spec content hash.
func TestSnapshotHintDoesNotChangeHash(t *testing.T) {
	a := spec.Spec{Model: spec.Model{Name: "geometric", N: 512, RFrac: 0.5}}
	b := a
	b.Snapshot = "delta"
	b.Parallelism = 8
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("snapshot hint changed the content hash: %s vs %s", ha, hb)
	}
}
