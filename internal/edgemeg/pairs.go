// Package edgemeg implements the edge-Markovian evolving graph of
// Section 4 of the paper: every unordered node pair carries an
// independent two-state Markov chain with birth rate p (absent →
// present) and death rate q (present → absent). The unique stationary
// distribution for 0 < p, q < 1 makes each snapshot an Erdős–Rényi
// graph G(n, p̂) with p̂ = p/(p+q).
//
// Simulating Θ(n²) independent chains naively costs Θ(n²) coin flips
// per step. This package instead advances the chain in expected
// O(|E_t| + p·n²) time per step using geometric skip sampling over the
// linearized pair-index space (the Batagelj–Brandes technique), which
// draws exactly the same distribution: births are enumerated by jumping
// between successes of a Bernoulli(p) process over absent pairs, and
// deaths by jumping between successes of a Bernoulli(q) process over
// the current edge list.
package edgemeg

import "math"

// PairCount returns the number of unordered node pairs C(n, 2).
func PairCount(n int) int64 {
	return int64(n) * int64(n-1) / 2
}

// PairIndex maps an unordered pair {u, v} with 0 ≤ u < v < n to its
// rank in the lexicographic enumeration of all pairs:
//
//	(0,1), (0,2), …, (0,n-1), (1,2), …, (n-2,n-1)
//
// The rank is u·n − u(u+1)/2 + (v−u−1). It panics unless 0 ≤ u < v < n.
func PairIndex(n, u, v int) int64 {
	if u < 0 || u >= v || v >= n {
		panic("edgemeg: PairIndex needs 0 <= u < v < n")
	}
	uu := int64(u)
	return uu*int64(n) - uu*(uu+1)/2 + int64(v-u-1)
}

// PairAt inverts PairIndex: it returns the pair {u, v} with rank k in
// the lexicographic enumeration. It panics if k is out of range.
func PairAt(n int, k int64) (u, v int) {
	if k < 0 || k >= PairCount(n) {
		panic("edgemeg: pair rank out of range")
	}
	// Row u starts at base(u) = u·n − u(u+1)/2 = u(2n−u−1)/2; solve
	// base(u) ≤ k for the largest such u with a float estimate, then
	// correct by scanning at most a couple of steps (the estimate is
	// within 1 for all feasible n).
	nf := float64(n)
	est := math.Floor(nf - 0.5 - math.Sqrt((nf-0.5)*(nf-0.5)-2*float64(k)))
	if est < 0 || math.IsNaN(est) {
		est = 0
	}
	u = int(est)
	if u > n-2 {
		u = n - 2
	}
	for u > 0 && rowBase(n, u) > k {
		u--
	}
	for u < n-2 && rowBase(n, u+1) <= k {
		u++
	}
	v = u + 1 + int(k-rowBase(n, u))
	return u, v
}

// rowBase returns the rank of pair (u, u+1), the first pair of row u.
func rowBase(n, u int) int64 {
	uu := int64(u)
	return uu*int64(n) - uu*(uu+1)/2
}

// packPair encodes (u, v) with u < v into a single uint64 key whose
// natural ordering equals the lexicographic pair ordering (and hence
// the PairIndex ordering).
func packPair(u, v int) uint64 { return uint64(u)<<32 | uint64(uint32(v)) }

// unpackPair decodes a packPair key.
func unpackPair(key uint64) (u, v int) {
	return int(key >> 32), int(uint32(key))
}
