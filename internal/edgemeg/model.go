package edgemeg

import (
	"fmt"
	"sort"

	"meg/internal/graph"
	"meg/internal/par"
	"meg/internal/rng"
)

// InitMode selects the distribution of the initial snapshot G_0.
type InitMode int

const (
	// InitStationary samples G_0 ~ G(n, p̂), the stationary
	// distribution — the paper's stationary edge-MEG and the setting of
	// Theorems 4.3/4.4.
	InitStationary InitMode = iota
	// InitEmpty starts from the edgeless graph: the worst-case initial
	// distribution used to exhibit the stationary/worst-case gap.
	InitEmpty
	// InitComplete starts from the complete graph.
	InitComplete
	// InitGraph starts from an explicit caller-provided graph.
	InitGraph
)

// String returns a short label for the mode.
func (m InitMode) String() string {
	switch m {
	case InitStationary:
		return "stationary"
	case InitEmpty:
		return "empty"
	case InitComplete:
		return "complete"
	case InitGraph:
		return "graph"
	default:
		return fmt.Sprintf("InitMode(%d)", int(m))
	}
}

// Config parameterizes an edge-Markovian evolving graph.
type Config struct {
	// N is the number of nodes.
	N int
	// P is the birth rate: an absent edge appears at the next step with
	// probability P.
	P float64
	// Q is the death rate: a present edge disappears at the next step
	// with probability Q.
	Q float64
	// Init selects the initial distribution (default InitStationary).
	Init InitMode
	// Start is the initial snapshot when Init == InitGraph.
	Start *graph.Graph
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("edgemeg: need at least 2 nodes, got %d", c.N)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("edgemeg: birth rate p=%g outside [0,1]", c.P)
	}
	if c.Q < 0 || c.Q > 1 {
		return fmt.Errorf("edgemeg: death rate q=%g outside [0,1]", c.Q)
	}
	if c.Init == InitStationary && c.P+c.Q == 0 {
		return fmt.Errorf("edgemeg: stationary init requires p+q > 0")
	}
	if c.Init == InitGraph {
		if c.Start == nil {
			return fmt.Errorf("edgemeg: InitGraph requires a Start graph")
		}
		if c.Start.N() != c.N {
			return fmt.Errorf("edgemeg: Start graph has %d nodes, want %d", c.Start.N(), c.N)
		}
	}
	return nil
}

// PHat returns the stationary edge marginal p̂ = p/(p+q); it panics if
// p+q == 0 (no unique stationary distribution).
func (c Config) PHat() float64 {
	if c.P+c.Q == 0 {
		panic("edgemeg: p̂ undefined for p = q = 0")
	}
	return c.P / (c.P + c.Q)
}

// Model is an edge-Markovian evolving graph. It implements
// core.Dynamics. The zero value is unusable; construct with New.
//
// The Θ(n²) pair-index space is split into a fixed number of
// contiguous shards (a function of n only, never of the worker count),
// each owning an independent RNG stream split from the trial generator
// at Reset in shard order. Step resamples every shard's births and
// deaths from its own stream, so the chain's realization is identical
// for every parallelism setting — the worker pool only decides how many
// shards resample concurrently.
type Model struct {
	cfg Config
	r   *rng.RNG

	// edges holds the current edge set as packPair keys in ascending
	// (lexicographic) order. Shard key ranges are contiguous, so the
	// concatenation of per-shard outputs in shard order is sorted.
	edges []uint64

	// shards partitions the pair-index space [0, C(n,2)).
	shards []edgeShard

	// parallel is the Step/Graph worker count (core.Parallelizable);
	// realizations and snapshots are byte-identical for every value.
	parallel int

	builder *graph.Builder
	g       *graph.Graph
	dirty   bool

	// merged is the double buffer the per-shard step outputs are
	// concatenated into before swapping with edges.
	merged []uint64
	// starts[i] is the offset of shard i's key range in edges
	// (len(shards)+1 entries); recomputed each Step.
	starts []int
	// sweep holds the parallel snapshot decode's per-block buffers.
	sweep graph.BlockSweep
	// deltaBirths/deltaDeaths are StepDelta's concatenation buffers.
	deltaBirths []uint64
	deltaDeaths []uint64
}

// edgeShard owns the contiguous pair-index range [lo, hi) together with
// the RNG stream and scratch buffers its resampling uses.
type edgeShard struct {
	lo, hi int64  // pair-index range
	loKey  uint64 // packPair key of pair lo
	r      *rng.RNG

	births    []uint64
	survivors []uint64
	merged    []uint64

	// deaths and birthsEff record the shard's realized delta — the
	// edges that flipped present→absent and absent→present this step.
	// step computes both as byproducts of the resample (the death skip
	// already visits every dying edge, the merge already decides which
	// birth candidates are effective), so StepDelta costs no extra
	// passes over the edge list.
	deaths    []uint64
	birthsEff []uint64
}

// shardTargetPairs sizes the pair-space shards: big enough that the
// per-shard skip-sampling loop dominates the fork/join overhead, small
// enough that a many-core pool has work to balance.
const shardTargetPairs = 1 << 21

// maxShards bounds the shard count (and hence the per-Reset stream
// splits) for very large n.
const maxShards = 64

// shardCountFor returns the number of pair-space shards for n nodes — a
// function of n only, so the chain's realization never depends on the
// worker count.
func shardCountFor(n int) int {
	s := PairCount(n) / shardTargetPairs
	if s < 1 {
		return 1
	}
	if s > maxShards {
		return maxShards
	}
	return int(s)
}

// New returns a model for the given configuration. The model is not
// usable until Reset is called.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, builder: graph.NewBuilder(cfg.N)}
	s := shardCountFor(cfg.N)
	total := PairCount(cfg.N)
	m.shards = make([]edgeShard, s)
	m.starts = make([]int, s+1)
	for i := range m.shards {
		lo := total * int64(i) / int64(s)
		hi := total * int64(i+1) / int64(s)
		u, v := PairAt(cfg.N, lo)
		m.shards[i] = edgeShard{lo: lo, hi: hi, loKey: packPair(u, v)}
	}
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// N implements core.Dynamics.
func (m *Model) N() int { return m.cfg.N }

// EdgeCount returns |E_t| of the current snapshot.
func (m *Model) EdgeCount() int { return len(m.edges) }

// ExpectedDegree implements core.DegreeHinter: the stationary expected
// degree (n−1)·p̂, which positions the flooding engine's push→pull
// switch. For the frozen chain (p = q = 0) the degree never changes
// from the initial snapshot, so the hint comes from that instead. The
// hint affects kernel choice (speed) only, never results.
func (m *Model) ExpectedDegree() float64 {
	if m.cfg.P+m.cfg.Q == 0 {
		switch m.cfg.Init {
		case InitComplete:
			return float64(m.cfg.N - 1)
		case InitGraph:
			return m.cfg.Start.AvgDegree()
		default:
			return 0
		}
	}
	return float64(m.cfg.N-1) * m.cfg.PHat()
}

// SetParallelism implements core.Parallelizable: Step resamples its
// pair-space shards and Graph decodes the snapshot on up to workers
// goroutines. Because every shard draws from its own stream regardless
// of scheduling, the realization is byte-identical for every worker
// count. 0 or 1 runs serially; < 0 uses all CPUs.
func (m *Model) SetParallelism(workers int) {
	if workers == 0 {
		workers = 1
	}
	m.parallel = par.Workers(workers)
}

// Reset implements core.Dynamics: it samples a fresh G_0 according to
// the configured InitMode, and splits one RNG stream per pair-space
// shard from r (in shard order) for subsequent steps.
func (m *Model) Reset(r *rng.RNG) {
	m.r = r
	for i := range m.shards {
		m.shards[i].r = r.Split()
	}
	m.edges = m.edges[:0]
	switch m.cfg.Init {
	case InitStationary:
		// Each shard samples the G(n, p̂) restriction to its own index
		// range from its own stream — the same product of independent
		// Bernoulli(p̂) trials, partitioned; the concatenation in shard
		// order is sorted because shard key ranges are contiguous.
		pHat := m.cfg.PHat()
		workers := m.parallel
		par.Do(workers, len(m.shards), func(i int) {
			sh := &m.shards[i]
			sh.merged = appendGNPKeysRange(sh.merged[:0], m.cfg.N, pHat, sh.lo, sh.hi, sh.r)
		})
		for i := range m.shards {
			m.edges = append(m.edges, m.shards[i].merged...)
		}
	case InitEmpty:
		// nothing
	case InitComplete:
		for u := 0; u < m.cfg.N; u++ {
			for v := u + 1; v < m.cfg.N; v++ {
				m.edges = append(m.edges, packPair(u, v))
			}
		}
	case InitGraph:
		m.cfg.Start.ForEachEdge(func(u, v int) {
			m.edges = append(m.edges, packPair(u, v))
		})
		sort.Slice(m.edges, func(i, j int) bool { return m.edges[i] < m.edges[j] })
	default:
		panic("edgemeg: unknown init mode")
	}
	m.dirty = true
}

// Step implements core.Dynamics: every present edge dies independently
// with probability q and every absent edge is born independently with
// probability p, exactly as the per-pair transition matrix prescribes.
//
// Births are drawn by geometric skip sampling over each shard's
// pair-index range; candidates that land on currently present pairs are
// discarded, which leaves precisely an independent Bernoulli(p) trial
// on each absent pair. Deaths are drawn by skip sampling over each
// shard's slice of the current edge list. Expected cost
// O(|E_t| + p·C(n,2)) total, spread over the worker pool; every shard
// draws from its own stream, so the realization does not depend on the
// worker count.
func (m *Model) Step() {
	if m.r == nil {
		panic("edgemeg: Step before Reset")
	}
	n := m.cfg.N
	p, q := m.cfg.P, m.cfg.Q

	// Locate each shard's slice of the (sorted) edge list. Shard i owns
	// keys in [loKey_i, loKey_{i+1}).
	s := len(m.shards)
	m.starts[0] = 0
	for i := 1; i < s; i++ {
		key := m.shards[i].loKey
		base := m.starts[i-1]
		m.starts[i] = base + sort.Search(len(m.edges)-base, func(j int) bool { return m.edges[base+j] >= key })
	}
	m.starts[s] = len(m.edges)

	par.Do(m.parallel, s, func(i int) {
		m.shards[i].step(n, p, q, m.edges[m.starts[i]:m.starts[i+1]])
	})

	// Concatenate shard outputs in shard order; ranges are contiguous,
	// so the result is sorted. Each shard copies into its precomputed
	// slot concurrently. The buffer then swaps with edges, so steady
	// state allocates nothing.
	total := 0
	for i := range m.shards {
		m.starts[i] = total
		total += len(m.shards[i].merged)
	}
	merged := m.merged[:0]
	if cap(merged) < total {
		merged = make([]uint64, 0, total+total/4)
	}
	merged = merged[:total]
	par.Do(m.parallel, s, func(i int) {
		copy(merged[m.starts[i]:], m.shards[i].merged)
	})
	m.merged = m.edges
	m.edges = merged
	m.dirty = true
}

// StepDelta implements core.DeltaDynamics: it advances the chain with
// the exact same resampling (and RNG draws) as Step and returns the
// realized edge churn. The sharded step already computes each shard's
// deaths and effective births before merging, so the delta is just the
// per-shard lists concatenated in shard order — ascending, because
// shard key ranges are contiguous. The edge-MEG pair keys are packed in
// graph.PackEdge layout, so no re-encoding happens.
func (m *Model) StepDelta() graph.Delta {
	m.Step()
	m.deltaBirths = m.deltaBirths[:0]
	m.deltaDeaths = m.deltaDeaths[:0]
	for i := range m.shards {
		m.deltaBirths = append(m.deltaBirths, m.shards[i].birthsEff...)
		m.deltaDeaths = append(m.deltaDeaths, m.shards[i].deaths...)
	}
	return graph.Delta{Births: m.deltaBirths, Deaths: m.deltaDeaths}
}

// step advances one shard: births against the shard's index range,
// deaths over its current edge slice, and the synchronous merge — the
// same three phases the pre-sharded Step ran globally.
func (sh *edgeShard) step(n int, p, q float64, edges []uint64) {
	// Births against the state at time t (before deaths are applied): a
	// pair that dies this step was present at time t, so it takes no
	// birth trial; discarding candidate hits on present pairs is what
	// enforces that.
	sh.births = sh.births[:0]
	if p > 0 {
		idx := sh.lo - 1
		for {
			idx += sh.r.Geometric(p) + 1
			if idx >= sh.hi {
				break
			}
			u, v := PairAt(n, idx)
			sh.births = append(sh.births, packPair(u, v))
		}
	}

	// Deaths: mark current edges that flip to absent.
	sh.survivors = sh.survivors[:0]
	sh.deaths = sh.deaths[:0]
	if q <= 0 {
		sh.survivors = append(sh.survivors, edges...)
	} else if q >= 1 {
		sh.deaths = append(sh.deaths, edges...)
	} else {
		next := -1 + sh.r.Geometric(q) + 1 // first death position
		for i, e := range edges {
			if int64(i) == next {
				next += sh.r.Geometric(q) + 1
				sh.deaths = append(sh.deaths, e)
				continue
			}
			sh.survivors = append(sh.survivors, e)
		}
	}

	// Merge survivors with effective births (those not colliding with a
	// time-t edge). Both lists are ascending; collisions are detected
	// against the original edge slice during the merge.
	sh.merged, sh.birthsEff = mergeStep(sh.merged[:0], sh.birthsEff[:0], sh.survivors, sh.births, edges)
}

// mergeStep merges survivors and births into dst, dropping any birth
// whose pair was present in original (its chain was in state 1, so the
// birth trial does not apply) and recording the births that took effect
// in eff. All inputs are ascending; both results are ascending.
func mergeStep(dst, eff, survivors, births, original []uint64) ([]uint64, []uint64) {
	oi := 0
	si := 0
	for _, b := range births {
		// Advance the original cursor to check for a collision.
		for oi < len(original) && original[oi] < b {
			oi++
		}
		if oi < len(original) && original[oi] == b {
			continue // pair already present at time t: no birth trial
		}
		// Emit survivors smaller than this birth.
		for si < len(survivors) && survivors[si] < b {
			dst = append(dst, survivors[si])
			si++
		}
		dst = append(dst, b)
		eff = append(eff, b)
	}
	dst = append(dst, survivors[si:]...)
	return dst, eff
}

// Graph implements core.Dynamics; it materializes the current snapshot
// as a CSR graph, reusing internal buffers across steps. The key decode
// and the CSR build run on the configured worker pool; per-block decode
// buffers are concatenated in block order, so the snapshot is
// byte-identical to a serial build for every worker count.
func (m *Model) Graph() *graph.Graph {
	if !m.dirty {
		return m.g
	}
	m.builder.Reset(m.cfg.N)
	m.g = m.sweep.Run(m.builder, m.parallel, len(m.edges), func(lo, hi int, srcs, dsts []int32) ([]int32, []int32) {
		for _, e := range m.edges[lo:hi] {
			u, v := unpackPair(e)
			srcs = append(srcs, int32(u))
			dsts = append(dsts, int32(v))
		}
		return srcs, dsts
	})
	m.dirty = false
	return m.g
}

// HasEdge reports whether {u, v} is present in the current snapshot.
func (m *Model) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := packPair(u, v)
	i := sort.Search(len(m.edges), func(i int) bool { return m.edges[i] >= key })
	return i < len(m.edges) && m.edges[i] == key
}

// appendGNPKeys appends the packed edge keys of a G(n, p) sample in
// ascending order using geometric skip sampling: expected time
// O(1 + p·C(n,2)).
func appendGNPKeys(dst []uint64, n int, p float64, r *rng.RNG) []uint64 {
	return appendGNPKeysRange(dst, n, p, 0, PairCount(n), r)
}

// appendGNPKeysRange is appendGNPKeys restricted to the pair-index
// range [lo, hi): an independent Bernoulli(p) trial per pair in the
// range, enumerated by geometric skips.
func appendGNPKeysRange(dst []uint64, n int, p float64, lo, hi int64, r *rng.RNG) []uint64 {
	if p <= 0 || lo >= hi {
		return dst
	}
	if p >= 1 {
		u, v := PairAt(n, lo)
		for k := lo; k < hi; k++ {
			dst = append(dst, packPair(u, v))
			v++
			if v == n {
				u++
				v = u + 1
			}
		}
		return dst
	}
	idx := lo - 1
	for {
		idx += r.Geometric(p) + 1
		if idx >= hi {
			break
		}
		u, v := PairAt(n, idx)
		dst = append(dst, packPair(u, v))
	}
	return dst
}

// SampleGNP returns one Erdős–Rényi G(n, p) snapshot — the stationary
// distribution of the edge-MEG with marginal p̂ = p. It is used directly
// by the Theorem 4.1 expansion experiments.
func SampleGNP(n int, p float64, r *rng.RNG) *graph.Graph {
	keys := appendGNPKeys(nil, n, p, r)
	b := graph.NewBuilder(n)
	for _, e := range keys {
		u, v := unpackPair(e)
		b.AddEdge(u, v)
	}
	return b.Build()
}
