package edgemeg

import (
	"fmt"
	"sort"

	"meg/internal/graph"
	"meg/internal/rng"
)

// InitMode selects the distribution of the initial snapshot G_0.
type InitMode int

const (
	// InitStationary samples G_0 ~ G(n, p̂), the stationary
	// distribution — the paper's stationary edge-MEG and the setting of
	// Theorems 4.3/4.4.
	InitStationary InitMode = iota
	// InitEmpty starts from the edgeless graph: the worst-case initial
	// distribution used to exhibit the stationary/worst-case gap.
	InitEmpty
	// InitComplete starts from the complete graph.
	InitComplete
	// InitGraph starts from an explicit caller-provided graph.
	InitGraph
)

// String returns a short label for the mode.
func (m InitMode) String() string {
	switch m {
	case InitStationary:
		return "stationary"
	case InitEmpty:
		return "empty"
	case InitComplete:
		return "complete"
	case InitGraph:
		return "graph"
	default:
		return fmt.Sprintf("InitMode(%d)", int(m))
	}
}

// Config parameterizes an edge-Markovian evolving graph.
type Config struct {
	// N is the number of nodes.
	N int
	// P is the birth rate: an absent edge appears at the next step with
	// probability P.
	P float64
	// Q is the death rate: a present edge disappears at the next step
	// with probability Q.
	Q float64
	// Init selects the initial distribution (default InitStationary).
	Init InitMode
	// Start is the initial snapshot when Init == InitGraph.
	Start *graph.Graph
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("edgemeg: need at least 2 nodes, got %d", c.N)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("edgemeg: birth rate p=%g outside [0,1]", c.P)
	}
	if c.Q < 0 || c.Q > 1 {
		return fmt.Errorf("edgemeg: death rate q=%g outside [0,1]", c.Q)
	}
	if c.Init == InitStationary && c.P+c.Q == 0 {
		return fmt.Errorf("edgemeg: stationary init requires p+q > 0")
	}
	if c.Init == InitGraph {
		if c.Start == nil {
			return fmt.Errorf("edgemeg: InitGraph requires a Start graph")
		}
		if c.Start.N() != c.N {
			return fmt.Errorf("edgemeg: Start graph has %d nodes, want %d", c.Start.N(), c.N)
		}
	}
	return nil
}

// PHat returns the stationary edge marginal p̂ = p/(p+q); it panics if
// p+q == 0 (no unique stationary distribution).
func (c Config) PHat() float64 {
	if c.P+c.Q == 0 {
		panic("edgemeg: p̂ undefined for p = q = 0")
	}
	return c.P / (c.P + c.Q)
}

// Model is an edge-Markovian evolving graph. It implements
// core.Dynamics. The zero value is unusable; construct with New.
type Model struct {
	cfg Config
	r   *rng.RNG

	// edges holds the current edge set as packPair keys in ascending
	// (lexicographic) order.
	edges []uint64

	builder *graph.Builder
	g       *graph.Graph
	dirty   bool

	// scratch buffers reused across steps.
	births    []uint64
	survivors []uint64
	merged    []uint64
}

// New returns a model for the given configuration. The model is not
// usable until Reset is called.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, builder: graph.NewBuilder(cfg.N)}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// N implements core.Dynamics.
func (m *Model) N() int { return m.cfg.N }

// EdgeCount returns |E_t| of the current snapshot.
func (m *Model) EdgeCount() int { return len(m.edges) }

// ExpectedDegree implements core.DegreeHinter: the stationary expected
// degree (n−1)·p̂, which positions the flooding engine's push→pull
// switch. For the frozen chain (p = q = 0) the degree never changes
// from the initial snapshot, so the hint comes from that instead. The
// hint affects kernel choice (speed) only, never results.
func (m *Model) ExpectedDegree() float64 {
	if m.cfg.P+m.cfg.Q == 0 {
		switch m.cfg.Init {
		case InitComplete:
			return float64(m.cfg.N - 1)
		case InitGraph:
			return m.cfg.Start.AvgDegree()
		default:
			return 0
		}
	}
	return float64(m.cfg.N-1) * m.cfg.PHat()
}

// Reset implements core.Dynamics: it samples a fresh G_0 according to
// the configured InitMode and keeps r for subsequent steps.
func (m *Model) Reset(r *rng.RNG) {
	m.r = r
	m.edges = m.edges[:0]
	switch m.cfg.Init {
	case InitStationary:
		m.edges = appendGNPKeys(m.edges, m.cfg.N, m.cfg.PHat(), r)
	case InitEmpty:
		// nothing
	case InitComplete:
		for u := 0; u < m.cfg.N; u++ {
			for v := u + 1; v < m.cfg.N; v++ {
				m.edges = append(m.edges, packPair(u, v))
			}
		}
	case InitGraph:
		m.cfg.Start.ForEachEdge(func(u, v int) {
			m.edges = append(m.edges, packPair(u, v))
		})
		sort.Slice(m.edges, func(i, j int) bool { return m.edges[i] < m.edges[j] })
	default:
		panic("edgemeg: unknown init mode")
	}
	m.dirty = true
}

// Step implements core.Dynamics: every present edge dies independently
// with probability q and every absent edge is born independently with
// probability p, exactly as the per-pair transition matrix prescribes.
//
// Births are drawn by geometric skip sampling over the full pair-index
// space; candidates that land on currently present pairs are discarded,
// which leaves precisely an independent Bernoulli(p) trial on each
// absent pair. Deaths are drawn by skip sampling over the current edge
// list. Expected cost O(|E_t| + p·C(n,2)).
func (m *Model) Step() {
	if m.r == nil {
		panic("edgemeg: Step before Reset")
	}
	n := m.cfg.N
	p, q := m.cfg.P, m.cfg.Q

	// Births against the state at time t (before deaths are applied):
	// a pair that dies this step was present at time t, so it takes no
	// birth trial; discarding candidate hits on present pairs is what
	// enforces that.
	m.births = m.births[:0]
	if p > 0 {
		total := PairCount(n)
		var idx int64 = -1
		for {
			idx += m.r.Geometric(p) + 1
			if idx >= total {
				break
			}
			u, v := PairAt(n, idx)
			m.births = append(m.births, packPair(u, v))
		}
	}

	// Deaths: mark current edges that flip to absent.
	m.survivors = m.survivors[:0]
	if q <= 0 {
		m.survivors = append(m.survivors, m.edges...)
	} else if q >= 1 {
		// all die
	} else {
		next := -1 + m.r.Geometric(q) + 1 // first death position
		for i, e := range m.edges {
			if int64(i) == next {
				next += m.r.Geometric(q) + 1
				continue
			}
			m.survivors = append(m.survivors, e)
		}
	}

	// Merge survivors with effective births (those not colliding with a
	// time-t edge). Both lists are ascending; collisions are detected
	// against the original edge list during the merge. The merged list
	// goes into a scratch buffer that then swaps with edges, so steady
	// state allocates nothing.
	merged := mergeStep(m.merged[:0], m.survivors, m.births, m.edges)
	m.merged = m.edges
	m.edges = merged
	m.dirty = true
}

// mergeStep merges survivors and births into dst, dropping any birth
// whose pair was present in original (its chain was in state 1, so the
// birth trial does not apply). All inputs are ascending; the result is
// ascending.
func mergeStep(dst, survivors, births, original []uint64) []uint64 {
	oi := 0
	si := 0
	for _, b := range births {
		// Advance the original cursor to check for a collision.
		for oi < len(original) && original[oi] < b {
			oi++
		}
		if oi < len(original) && original[oi] == b {
			continue // pair already present at time t: no birth trial
		}
		// Emit survivors smaller than this birth.
		for si < len(survivors) && survivors[si] < b {
			dst = append(dst, survivors[si])
			si++
		}
		dst = append(dst, b)
	}
	dst = append(dst, survivors[si:]...)
	return dst
}

// Graph implements core.Dynamics; it materializes the current snapshot
// as a CSR graph, reusing internal buffers across steps.
func (m *Model) Graph() *graph.Graph {
	if m.dirty {
		m.builder.Reset(m.cfg.N)
		for _, e := range m.edges {
			u, v := unpackPair(e)
			m.builder.AddEdge(u, v)
		}
		m.g = m.builder.Build()
		m.dirty = false
	}
	return m.g
}

// HasEdge reports whether {u, v} is present in the current snapshot.
func (m *Model) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := packPair(u, v)
	i := sort.Search(len(m.edges), func(i int) bool { return m.edges[i] >= key })
	return i < len(m.edges) && m.edges[i] == key
}

// appendGNPKeys appends the packed edge keys of a G(n, p) sample in
// ascending order using geometric skip sampling: expected time
// O(1 + p·C(n,2)).
func appendGNPKeys(dst []uint64, n int, p float64, r *rng.RNG) []uint64 {
	if p <= 0 {
		return dst
	}
	total := PairCount(n)
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				dst = append(dst, packPair(u, v))
			}
		}
		return dst
	}
	var idx int64 = -1
	for {
		idx += r.Geometric(p) + 1
		if idx >= total {
			break
		}
		u, v := PairAt(n, idx)
		dst = append(dst, packPair(u, v))
	}
	return dst
}

// SampleGNP returns one Erdős–Rényi G(n, p) snapshot — the stationary
// distribution of the edge-MEG with marginal p̂ = p. It is used directly
// by the Theorem 4.1 expansion experiments.
func SampleGNP(n int, p float64, r *rng.RNG) *graph.Graph {
	keys := appendGNPKeys(nil, n, p, r)
	b := graph.NewBuilder(n)
	for _, e := range keys {
		u, v := unpackPair(e)
		b.AddEdge(u, v)
	}
	return b.Build()
}
