package edgemeg

import (
	"testing"
	"testing/quick"

	"meg/internal/rng"
)

func TestPairCount(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{{2, 1}, {3, 3}, {4, 6}, {100, 4950}, {100000, 4999950000}}
	for _, c := range cases {
		if got := PairCount(c.n); got != c.want {
			t.Errorf("PairCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPairIndexExhaustiveSmall(t *testing.T) {
	// For small n, the map pair -> index must be the exact lexicographic
	// enumeration, and PairAt must invert it.
	for _, n := range []int{2, 3, 5, 17} {
		var k int64
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if got := PairIndex(n, u, v); got != k {
					t.Fatalf("n=%d PairIndex(%d,%d) = %d, want %d", n, u, v, got, k)
				}
				gu, gv := PairAt(n, k)
				if gu != u || gv != v {
					t.Fatalf("n=%d PairAt(%d) = (%d,%d), want (%d,%d)", n, k, gu, gv, u, v)
				}
				k++
			}
		}
		if k != PairCount(n) {
			t.Fatalf("n=%d enumerated %d pairs, want %d", n, k, PairCount(n))
		}
	}
}

func TestPairRoundTripProperty(t *testing.T) {
	f := func(rawN uint16, rawK uint32) bool {
		n := 2 + int(rawN%5000)
		k := int64(rawK) % PairCount(n)
		u, v := PairAt(n, k)
		if u < 0 || u >= v || v >= n {
			return false
		}
		return PairIndex(n, u, v) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPairRoundTripLargeN(t *testing.T) {
	// Indices near the extremes of a large universe, where the float
	// estimate in PairAt is most stressed.
	n := 1 << 20
	total := PairCount(n)
	for _, k := range []int64{0, 1, total / 3, total / 2, total - 2, total - 1} {
		u, v := PairAt(n, k)
		if PairIndex(n, u, v) != k {
			t.Fatalf("round trip failed at k=%d: (%d,%d)", k, u, v)
		}
	}
}

func TestPairIndexPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PairIndex(5, 2, 2) },
		func() { PairIndex(5, 3, 2) },
		func() { PairIndex(5, -1, 2) },
		func() { PairIndex(5, 0, 5) },
		func() { PairAt(5, -1) },
		func() { PairAt(5, PairCount(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPackPairOrderMatchesIndex(t *testing.T) {
	// The packed-key ordering must agree with the pair-index ordering;
	// the merge in Step relies on this.
	r := rng.New(5)
	const n = 300
	for trial := 0; trial < 2000; trial++ {
		a := r.Int63n(PairCount(n))
		b := r.Int63n(PairCount(n))
		au, av := PairAt(n, a)
		bu, bv := PairAt(n, b)
		if (a < b) != (packPair(au, av) < packPair(bu, bv)) && a != b {
			t.Fatalf("ordering mismatch: idx %d vs %d", a, b)
		}
	}
}

func TestUnpackPair(t *testing.T) {
	u, v := unpackPair(packPair(123, 45678))
	if u != 123 || v != 45678 {
		t.Fatalf("unpack = (%d,%d)", u, v)
	}
}
