package edgemeg

import (
	"testing"

	"meg/internal/rng"
)

// TestStepParallelismInvariant pins the sharded resampler's contract:
// the chain's realization depends only on the seed, never on the worker
// count, because every pair-space shard draws from its own stream.
func TestStepParallelismInvariant(t *testing.T) {
	cfg := Config{N: 500, P: 0.004, Q: 0.3}
	serial := MustNew(cfg)
	serial.SetParallelism(1)
	sharded := MustNew(cfg)
	sharded.SetParallelism(8)
	serial.Reset(rng.New(41))
	sharded.Reset(rng.New(41))
	for s := 0; s < 12; s++ {
		if len(serial.edges) != len(sharded.edges) {
			t.Fatalf("step %d: edge counts %d vs %d", s, len(serial.edges), len(sharded.edges))
		}
		for i := range serial.edges {
			if serial.edges[i] != sharded.edges[i] {
				t.Fatalf("step %d: edge %d differs", s, i)
			}
		}
		ga, gb := serial.Graph(), sharded.Graph()
		if ga.M() != gb.M() {
			t.Fatalf("step %d: snapshot edge counts differ", s)
		}
		for u := 0; u < cfg.N; u++ {
			na, nb := ga.Neighbors(u), gb.Neighbors(u)
			if len(na) != len(nb) {
				t.Fatalf("step %d: node %d degree differs", s, u)
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("step %d: node %d adjacency differs", s, u)
				}
			}
		}
		serial.Step()
		sharded.Step()
	}
}

// TestShardCountDependsOnlyOnN guards the determinism foundation: the
// shard layout is a function of n alone, so two models of the same size
// always partition the pair space identically.
func TestShardCountDependsOnlyOnN(t *testing.T) {
	a := MustNew(Config{N: 4000, P: 0.001, Q: 0.5})
	b := MustNew(Config{N: 4000, P: 0.01, Q: 0.1})
	if len(a.shards) != len(b.shards) {
		t.Fatalf("shard counts differ for equal n: %d vs %d", len(a.shards), len(b.shards))
	}
	for i := range a.shards {
		if a.shards[i].lo != b.shards[i].lo || a.shards[i].hi != b.shards[i].hi {
			t.Fatalf("shard %d ranges differ", i)
		}
	}
	// Ranges tile [0, C(n,2)) exactly.
	var prev int64
	for i, sh := range a.shards {
		if sh.lo != prev {
			t.Fatalf("shard %d starts at %d, want %d", i, sh.lo, prev)
		}
		prev = sh.hi
	}
	if prev != PairCount(4000) {
		t.Fatalf("shards cover %d pairs, want %d", prev, PairCount(4000))
	}
	if shardCountFor(100) != 1 {
		t.Fatalf("tiny n should use one shard")
	}
	if got := shardCountFor(1 << 20); got != maxShards {
		t.Fatalf("huge n should clamp to %d shards, got %d", maxShards, got)
	}
}

// TestGNPKeysRangePartitionMatchesDistribution checks that restricting
// GNP sampling to ranges tiles correctly: sampling each half of the
// index space produces sorted keys within the half's bounds and the
// p >= 1 fast path enumerates the range exactly.
func TestGNPKeysRangePartition(t *testing.T) {
	const n = 60
	total := PairCount(n)
	mid := total / 2
	full := appendGNPKeysRange(nil, n, 1, 0, total, rng.New(1))
	if int64(len(full)) != total {
		t.Fatalf("p=1 full range produced %d keys, want %d", len(full), total)
	}
	left := appendGNPKeysRange(nil, n, 1, 0, mid, rng.New(1))
	right := appendGNPKeysRange(nil, n, 1, mid, total, rng.New(1))
	if int64(len(left)) != mid || int64(len(right)) != total-mid {
		t.Fatalf("halves have %d + %d keys, want %d + %d", len(left), len(right), mid, total-mid)
	}
	for i, k := range append(left, right...) {
		if full[i] != k {
			t.Fatalf("concatenated halves diverge from full enumeration at %d", i)
		}
	}
	// Random sampling stays inside its range and sorted.
	r := rng.New(9)
	keys := appendGNPKeysRange(nil, n, 0.2, mid, total, r)
	u, v := PairAt(n, mid)
	loKey := packPair(u, v)
	for i, k := range keys {
		if k < loKey {
			t.Fatalf("key %d below range start", i)
		}
		if i > 0 && keys[i-1] >= k {
			t.Fatalf("range sample not strictly sorted at %d", i)
		}
	}
}
