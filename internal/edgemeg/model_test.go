package edgemeg

import (
	"math"
	"testing"

	"meg/internal/graph"
	"meg/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	good := Config{N: 10, P: 0.1, Q: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 1, P: 0.1, Q: 0.5},
		{N: 10, P: -0.1, Q: 0.5},
		{N: 10, P: 1.1, Q: 0.5},
		{N: 10, P: 0.1, Q: -1},
		{N: 10, P: 0.1, Q: 2},
		{N: 10, P: 0, Q: 0, Init: InitStationary},
		{N: 10, P: 0.1, Q: 0.5, Init: InitGraph},                        // missing Start
		{N: 10, P: 0.1, Q: 0.5, Init: InitGraph, Start: graph.Empty(9)}, // wrong size
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPHat(t *testing.T) {
	c := Config{N: 10, P: 0.02, Q: 0.08}
	if got := c.PHat(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("PHat = %v", got)
	}
}

func TestInitModes(t *testing.T) {
	r := rng.New(1)
	empty := MustNew(Config{N: 20, P: 0.1, Q: 0.5, Init: InitEmpty})
	empty.Reset(r.Split())
	if empty.EdgeCount() != 0 || empty.Graph().M() != 0 {
		t.Error("empty init has edges")
	}

	full := MustNew(Config{N: 20, P: 0.1, Q: 0.5, Init: InitComplete})
	full.Reset(r.Split())
	if int64(full.EdgeCount()) != PairCount(20) {
		t.Errorf("complete init has %d edges", full.EdgeCount())
	}

	start := graph.Cycle(20)
	fromG := MustNew(Config{N: 20, P: 0.1, Q: 0.5, Init: InitGraph, Start: start})
	fromG.Reset(r.Split())
	g := fromG.Graph()
	if g.M() != 20 {
		t.Errorf("graph init has %d edges, want 20", g.M())
	}
	for i := 0; i < 20; i++ {
		if !g.HasEdge(i, (i+1)%20) {
			t.Errorf("cycle edge (%d,%d) missing", i, (i+1)%20)
		}
	}
}

func TestInitModeString(t *testing.T) {
	if InitStationary.String() != "stationary" || InitEmpty.String() != "empty" ||
		InitComplete.String() != "complete" || InitGraph.String() != "graph" {
		t.Error("InitMode labels wrong")
	}
	if InitMode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestStationaryMarginal(t *testing.T) {
	// The stationary snapshot is G(n, p̂): the observed edge count must
	// match p̂·C(n,2) within a few standard deviations.
	const n = 400
	cfg := Config{N: n, P: 0.01, Q: 0.09} // p̂ = 0.1
	m := MustNew(cfg)
	r := rng.New(42)
	total := PairCount(n)
	want := cfg.PHat() * float64(total)
	sd := math.Sqrt(float64(total) * cfg.PHat() * (1 - cfg.PHat()))
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		m.Reset(r.Split())
		sum += float64(m.EdgeCount())
	}
	mean := sum / reps
	if math.Abs(mean-want) > 4*sd/math.Sqrt(reps) {
		t.Fatalf("stationary edge count mean %v, want %v ± %v", mean, want, 4*sd/math.Sqrt(reps))
	}
}

func TestStepPreservesStationarity(t *testing.T) {
	// Starting stationary, the expected edge count is invariant under
	// Step. Average over independent chains after several steps.
	const n = 300
	cfg := Config{N: n, P: 0.02, Q: 0.18} // p̂ = 0.1
	want := cfg.PHat() * float64(PairCount(n))
	r := rng.New(7)
	const reps = 25
	const steps = 10
	var sum float64
	for i := 0; i < reps; i++ {
		m := MustNew(cfg)
		m.Reset(r.Split())
		for s := 0; s < steps; s++ {
			m.Step()
		}
		sum += float64(m.EdgeCount())
	}
	mean := sum / reps
	sd := math.Sqrt(float64(PairCount(n)) * 0.1 * 0.9)
	if math.Abs(mean-want) > 5*sd/math.Sqrt(reps) {
		t.Fatalf("edge count after steps: mean %v, want %v", mean, want)
	}
}

func TestBirthAndDeathRates(t *testing.T) {
	// Measure the one-step transition frequencies of individual pairs
	// and compare with p and q.
	const n = 200
	cfg := Config{N: n, P: 0.03, Q: 0.2}
	m := MustNew(cfg)
	r := rng.New(11)
	m.Reset(r)

	var bornTrials, born, deadTrials, died float64
	const steps = 40
	prev := map[uint64]bool{}
	for _, e := range m.edges {
		prev[e] = true
	}
	for s := 0; s < steps; s++ {
		m.Step()
		cur := map[uint64]bool{}
		for _, e := range m.edges {
			cur[e] = true
		}
		total := float64(PairCount(n))
		present := float64(len(prev))
		bornTrials += total - present
		deadTrials += present
		for e := range cur {
			if !prev[e] {
				born++
			}
		}
		for e := range prev {
			if !cur[e] {
				died++
			}
		}
		prev = cur
	}
	pObs := born / bornTrials
	qObs := died / deadTrials
	if math.Abs(pObs-cfg.P) > 0.15*cfg.P {
		t.Errorf("observed birth rate %v, want %v", pObs, cfg.P)
	}
	if math.Abs(qObs-cfg.Q) > 0.15*cfg.Q {
		t.Errorf("observed death rate %v, want %v", qObs, cfg.Q)
	}
}

func TestStepExtremes(t *testing.T) {
	r := rng.New(13)
	// q = 1: every edge dies each step.
	dieAll := MustNew(Config{N: 30, P: 0, Q: 1, Init: InitComplete})
	dieAll.Reset(r.Split())
	dieAll.Step()
	if dieAll.EdgeCount() != 0 {
		t.Error("q=1 left survivors")
	}
	// p = 1, q = 0: everything is born and nothing dies.
	bornAll := MustNew(Config{N: 30, P: 1, Q: 0, Init: InitEmpty})
	bornAll.Reset(r.Split())
	bornAll.Step()
	if int64(bornAll.EdgeCount()) != PairCount(30) {
		t.Errorf("p=1 produced %d edges", bornAll.EdgeCount())
	}
	// p = 0, q = 0: frozen.
	frozen := MustNew(Config{N: 30, P: 0, Q: 0, Init: InitGraph, Start: graph.Cycle(30)})
	frozen.Reset(r.Split())
	for i := 0; i < 5; i++ {
		frozen.Step()
	}
	if frozen.Graph().M() != 30 {
		t.Error("frozen chain changed")
	}
}

func TestEdgesSortedInvariant(t *testing.T) {
	cfg := Config{N: 150, P: 0.02, Q: 0.3}
	m := MustNew(cfg)
	m.Reset(rng.New(17))
	for s := 0; s < 25; s++ {
		for i := 1; i < len(m.edges); i++ {
			if m.edges[i-1] >= m.edges[i] {
				t.Fatalf("edge list not strictly sorted at step %d", s)
			}
		}
		m.Step()
	}
}

func TestHasEdgeMatchesGraph(t *testing.T) {
	cfg := Config{N: 60, P: 0.05, Q: 0.3}
	m := MustNew(cfg)
	m.Reset(rng.New(19))
	m.Step()
	g := m.Graph()
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			if u == v {
				if m.HasEdge(u, v) {
					t.Fatal("self-loop reported")
				}
				continue
			}
			if m.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 100, P: 0.02, Q: 0.2}
	a, b := MustNew(cfg), MustNew(cfg)
	a.Reset(rng.New(23))
	b.Reset(rng.New(23))
	for s := 0; s < 10; s++ {
		if a.EdgeCount() != b.EdgeCount() {
			t.Fatalf("edge counts diverged at step %d", s)
		}
		for i, e := range a.edges {
			if b.edges[i] != e {
				t.Fatalf("edge sets diverged at step %d", s)
			}
		}
		a.Step()
		b.Step()
	}
}

// TestStepAgainstNaiveReference compares the skip-sampling Step with a
// naive per-pair implementation distributionally: over many one-step
// transitions from the same graph, birth and death counts must match in
// mean within sampling error.
func TestStepAgainstNaiveReference(t *testing.T) {
	const n = 80
	const p, q = 0.04, 0.3
	start := graph.Cycle(n) // fixed, known starting graph: 80 edges

	naiveOneStep := func(r *rng.RNG) (int, int) {
		born, died := 0, 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				d := v - u
				isEdge := d == 1 || d == n-1
				if isEdge {
					if r.Bernoulli(q) {
						died++
					}
				} else if r.Bernoulli(p) {
					born++
				}
			}
		}
		return born, died
	}

	r := rng.New(29)
	const reps = 60
	var nBorn, nDied, sBorn, sDied float64
	for i := 0; i < reps; i++ {
		b, d := naiveOneStep(r.Split())
		nBorn += float64(b)
		nDied += float64(d)

		m := MustNew(Config{N: n, P: p, Q: q, Init: InitGraph, Start: start})
		m.Reset(r.Split())
		before := map[uint64]bool{}
		for _, e := range m.edges {
			before[e] = true
		}
		m.Step()
		for _, e := range m.edges {
			if !before[e] {
				sBorn++
			}
		}
		after := map[uint64]bool{}
		for _, e := range m.edges {
			after[e] = true
		}
		for e := range before {
			if !after[e] {
				sDied++
			}
		}
	}
	// Expected births ≈ (C(n,2)-n)·p ≈ 123.2, deaths ≈ n·q = 24.
	meanBornNaive, meanBornSkip := nBorn/reps, sBorn/reps
	meanDiedNaive, meanDiedSkip := nDied/reps, sDied/reps
	if math.Abs(meanBornNaive-meanBornSkip) > 0.15*meanBornNaive {
		t.Errorf("birth means differ: naive %v vs skip %v", meanBornNaive, meanBornSkip)
	}
	if math.Abs(meanDiedNaive-meanDiedSkip) > 0.2*meanDiedNaive {
		t.Errorf("death means differ: naive %v vs skip %v", meanDiedNaive, meanDiedSkip)
	}
}

func TestSampleGNP(t *testing.T) {
	r := rng.New(31)
	g := SampleGNP(300, 0.05, r)
	if g.N() != 300 {
		t.Fatal("wrong node count")
	}
	want := 0.05 * float64(PairCount(300))
	sd := math.Sqrt(float64(PairCount(300)) * 0.05 * 0.95)
	if math.Abs(float64(g.M())-want) > 6*sd {
		t.Fatalf("G(n,p) edges = %d, want ≈ %v", g.M(), want)
	}
	if SampleGNP(50, 0, r).M() != 0 {
		t.Error("G(n,0) has edges")
	}
	if int64(SampleGNP(20, 1, r).M()) != PairCount(20) {
		t.Error("G(n,1) not complete")
	}
}

func TestStepBeforeResetPanics(t *testing.T) {
	m := MustNew(Config{N: 10, P: 0.1, Q: 0.5})
	defer func() {
		if recover() == nil {
			t.Fatal("Step before Reset did not panic")
		}
	}()
	m.Step()
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{N: 1, P: 0.1, Q: 0.1}); err == nil {
		t.Fatal("New accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{N: 1, P: 0.1, Q: 0.1})
}

func BenchmarkStepSparse(b *testing.B) {
	cfg := Config{N: 4096, P: 0.002 * 0.5 / (1 - 0.002), Q: 0.5}
	m := MustNew(cfg)
	m.Reset(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkGNPSample(b *testing.B) {
	r := rng.New(1)
	n := 4096
	pHat := 4 * math.Log(float64(n)) / float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SampleGNP(n, pHat, r)
	}
}

// naiveFullStep advances the chain with one Bernoulli draw per pair —
// the O(n²) reference the skip-sampling Step replaces. Used only by the
// ablation benchmark.
func naiveFullStep(m *Model, r *rng.RNG) {
	n := m.cfg.N
	var next []uint64
	i := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			key := packPair(u, v)
			present := i < len(m.edges) && m.edges[i] == key
			if present {
				i++
				if !r.Bernoulli(m.cfg.Q) {
					next = append(next, key)
				}
			} else if r.Bernoulli(m.cfg.P) {
				next = append(next, key)
			}
		}
	}
	m.edges = next
	m.dirty = true
}

// BenchmarkStepAblationSkip and BenchmarkStepAblationNaive quantify the
// design choice called out in DESIGN.md: geometric skip sampling makes
// the per-step cost O(|E| + p·n²_expected) instead of Θ(n²).
func BenchmarkStepAblationSkip(b *testing.B) {
	n := 2048
	pHat := 4 * math.Log(float64(n)) / float64(n)
	m := MustNew(Config{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5})
	m.Reset(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkStepAblationNaive(b *testing.B) {
	n := 2048
	pHat := 4 * math.Log(float64(n)) / float64(n)
	m := MustNew(Config{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5})
	r := rng.New(1)
	m.Reset(r.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveFullStep(m, r)
	}
}

// TestTimeIndependentSpecialCase checks the q = 1−p special case the
// paper singles out (Section 1): the chain degenerates to independent
// G(n,p) snapshots, so the indicator of an edge at time t carries no
// information about time t+1. We estimate the conditional probabilities
// P(edge at t+1 | edge at t) and P(edge at t+1 | no edge at t): both
// must equal p.
func TestTimeIndependentSpecialCase(t *testing.T) {
	const n = 120
	const p = 0.3
	cfg := Config{N: n, P: p, Q: 1 - p}
	m := MustNew(cfg)
	r := rng.New(77)
	m.Reset(r)
	var bothOn, onAtT, onAtTplus1FromOff, offAtT float64
	prev := map[uint64]bool{}
	for _, e := range m.edges {
		prev[e] = true
	}
	const steps = 50
	total := float64(PairCount(n))
	for s := 0; s < steps; s++ {
		m.Step()
		cur := map[uint64]bool{}
		for _, e := range m.edges {
			cur[e] = true
		}
		onAtT += float64(len(prev))
		offAtT += total - float64(len(prev))
		for e := range cur {
			if prev[e] {
				bothOn++
			} else {
				onAtTplus1FromOff++
			}
		}
		prev = cur
	}
	pOnGivenOn := bothOn / onAtT
	pOnGivenOff := onAtTplus1FromOff / offAtT
	if d := pOnGivenOn - pOnGivenOff; d > 0.02 || d < -0.02 {
		t.Fatalf("time-dependence detected: P(on|on)=%v vs P(on|off)=%v", pOnGivenOn, pOnGivenOff)
	}
	if pOnGivenOn < p-0.02 || pOnGivenOn > p+0.02 {
		t.Fatalf("P(on|on) = %v, want ≈ %v", pOnGivenOn, p)
	}
}
