package core

import (
	"testing"

	"meg/internal/graph"
	"meg/internal/rng"
)

func TestParseGossip(t *testing.T) {
	cases := map[string]GossipProtocol{
		"push": GossipPush, "push-gossip": GossipPush,
		"push-pull": GossipPushPull, "pushpull": GossipPushPull,
		"probabilistic": GossipProbFlood, "prob": GossipProbFlood,
		"lossy": GossipLossyFlood,
	}
	for in, want := range cases {
		got, err := ParseGossip(in)
		if err != nil || got != want {
			t.Errorf("ParseGossip(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"flooding", "", "warp"} {
		if _, err := ParseGossip(bad); err == nil {
			t.Errorf("ParseGossip(%q) accepted", bad)
		}
	}
	if GossipPush.String() != "push" || GossipPushPull.String() != "push-pull" ||
		GossipProbFlood.String() != "probabilistic" || GossipLossyFlood.String() != "lossy" {
		t.Error("String spellings wrong")
	}
}

func TestGossipSingleNode(t *testing.T) {
	for _, p := range []GossipProtocol{GossipPush, GossipPushPull, GossipProbFlood, GossipLossyFlood} {
		res := Gossip(NewStatic(graph.Empty(1)), p, 0, 5, rng.New(1), GossipOptions{Beta: 0.5, Loss: 0.1})
		if !res.Completed || res.Rounds != 0 || res.Messages != 0 {
			t.Fatalf("%s single node: %+v", p, res)
		}
	}
}

func TestGossipArgPanics(t *testing.T) {
	g := NewStatic(graph.Path(4))
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("source", func() { Gossip(g, GossipPush, 9, 5, rng.New(1), GossipOptions{}) })
	expectPanic("maxRounds", func() { Gossip(g, GossipPush, 0, 0, rng.New(1), GossipOptions{}) })
	expectPanic("beta", func() { Gossip(g, GossipProbFlood, 0, 5, rng.New(1), GossipOptions{}) })
	expectPanic("loss", func() { Gossip(g, GossipLossyFlood, 0, 5, rng.New(1), GossipOptions{Loss: 1}) })
}

func TestGossipStopAborts(t *testing.T) {
	// Stop after the second round: the run must end promptly, incomplete,
	// with Rounds pinned to the cap.
	rounds := 0
	res := Gossip(NewStatic(graph.Path(64)), GossipPush, 0, 50, rng.New(1), GossipOptions{
		Progress: func(round, informed int) { rounds = round },
		Stop:     func() bool { return rounds >= 2 },
	})
	if res.Completed || res.Rounds != 50 {
		t.Fatalf("stopped run: %+v", res)
	}
	if rounds != 2 {
		t.Fatalf("ran %d rounds after stop", rounds)
	}
}

func TestGossipProbFloodDiesOutEarly(t *testing.T) {
	// With tiny β on a path the process usually dies at the first
	// non-forwarding node; the run must stop early, not burn the cap.
	died := false
	r := rng.New(3)
	for i := 0; i < 40 && !died; i++ {
		res := Gossip(NewStatic(graph.Path(50)), GossipProbFlood, 0, 1000, r.Split(), GossipOptions{Beta: 0.05})
		if !res.Completed {
			died = true
			if res.Rounds >= 1000 {
				t.Fatal("die-out not detected early")
			}
		}
	}
	if !died {
		t.Fatal("β=0.05 never died out on a path — implausible")
	}
}

func TestGossipLossyZeroLossIsFlooding(t *testing.T) {
	// loss=0 delivers every copy: rounds must match the flooding engine.
	for _, g := range []*graph.Graph{graph.Path(10), graph.Complete(8), graph.Cycle(12)} {
		want := Flood(NewStatic(g), 0, DefaultRoundCap(g.N()))
		got := Gossip(NewStatic(g), GossipLossyFlood, 0, DefaultRoundCap(g.N()), rng.New(1), GossipOptions{})
		if got.Rounds != want.Rounds || got.Completed != want.Completed {
			t.Fatalf("n=%d: lossy(0) %d/%v vs flood %d/%v", g.N(), got.Rounds, got.Completed, want.Rounds, want.Completed)
		}
	}
}
