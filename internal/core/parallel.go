package core

import (
	"math/bits"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/par"
)

// Parallelizable is optionally implemented by Dynamics whose snapshot
// construction can use a worker pool. Implementations must keep the
// produced snapshots byte-identical for every worker count — the knob
// is an execution hint, never a semantic. The flooding engine hands its
// own Parallelism setting to the dynamics before the first round.
type Parallelizable interface {
	// SetParallelism sets the worker count for subsequent snapshot
	// builds: 0 or 1 means serial, < 0 means all CPUs.
	SetParallelism(workers int)
}

// engineWorkers resolves an options Parallelism knob to a concrete
// worker count and forwards it to the dynamics when supported.
func engineWorkers(parallelism int, d Dynamics) int {
	if parallelism == 0 {
		parallelism = 1 // zero value keeps the serial engine
	}
	workers := par.Workers(parallelism)
	if pz, ok := d.(Parallelizable); ok {
		pz.SetParallelism(workers)
	}
	return workers
}

// shardEngine holds the per-run scratch of the shard-parallel flooding
// kernels: one private frontier bitmap per worker plus per-shard newly
// lists. Every round runs as fork/join phases over contiguous shards —
// senders are split by position for the push scan, the node space is
// split by word range for the merge and the pull scan — and shard
// outputs are combined in shard order, so the informed set, arrival
// times and trajectory come out byte-identical for every worker count.
type shardEngine struct {
	workers   int
	words     int        // words of the node universe
	frontiers [][]uint64 // per-worker private frontier bitmaps
	newly     [][]int32  // per-shard newly-informed lists
	uninf     activeSet  // shrinking uninformed list of the pull kernels
	hook      PhaseHook  // nil unless the run is instrumented
}

func newShardEngine(n, workers int) *shardEngine {
	words := (n + 63) / 64
	e := &shardEngine{
		workers:   workers,
		words:     words,
		frontiers: make([][]uint64, workers),
		newly:     make([][]int32, workers),
	}
	for i := range e.frontiers {
		e.frontiers[i] = make([]uint64, words)
		e.newly[i] = make([]int32, 0, 256)
	}
	return e
}

// reset truncates every shard's newly list. A round with fewer shards
// than workers leaves the tail shards unexecuted, so the combine loops
// (which always walk all worker slots in order) must never see a stale
// list from an earlier round.
func (e *shardEngine) reset() {
	for i := range e.newly {
		e.newly[i] = e.newly[i][:0]
	}
}

// pushRound is the sharded push kernel: phase 1 splits the senders of
// I_t into contiguous shards, each worker marking the uninformed
// neighbors it discovers in its private frontier bitmap; phase 2 splits
// the node space into contiguous word ranges, ORs the frontiers
// together, and applies the union to the shared informed set and
// arrival array — each word is owned by exactly one shard, so no write
// races and no locks. Phase boundaries are full barriers (par.ForBlocks
// joins before returning).
func (e *shardEngine) pushRound(g *graph.Graph, senders []int32, informed *bitset.Set, arrival []int32, t int, newly []int32) []int32 {
	words := informed.MutableWords()
	e.reset()
	// par.ForBlocks runs min(workers, len(senders)) blocks, so only the
	// first `used` frontiers are written this round; the merge phase
	// must OR exactly those (reset cleared newly, not the frontiers).
	used := e.workers
	if used > len(senders) {
		used = len(senders)
	}
	frontiers := e.frontiers[:used]
	par.ForBlocks(e.workers, len(senders), func(shard, lo, hi int) {
		f := e.frontiers[shard]
		for i := range f {
			f[i] = 0
		}
		for _, u := range senders[lo:hi] {
			for _, v := range g.Neighbors(int(u)) {
				if words[v>>6]&(1<<(uint(v)&63)) == 0 {
					f[v>>6] |= 1 << (uint(v) & 63)
				}
			}
		}
	})
	return e.mergeFrontiers(frontiers, words, arrival, t, newly)
}

// mergeFrontiers is the shared phase 2 of every frontier-marking
// kernel: the node space is split into contiguous word ranges, the
// given frontiers are ORed together, and the union is applied to the
// shared informed words and arrival array — each word owned by exactly
// one shard, discoveries collected per shard and concatenated in shard
// order, so newly comes out in node order for every worker count. The
// span is reported as PhaseMerge, nested inside the enclosing round's
// PhaseKernel.
func (e *shardEngine) mergeFrontiers(frontiers [][]uint64, words []uint64, arrival []int32, t int, newly []int32) []int32 {
	h := e.hook
	if h != nil {
		h.BeginPhase(PhaseMerge)
	}
	par.ForBlocks(e.workers, e.words, func(shard, lo, hi int) {
		out := e.newly[shard][:0]
		for wi := lo; wi < hi; wi++ {
			m := uint64(0)
			for _, f := range frontiers {
				m |= f[wi]
			}
			m &^= words[wi]
			if m == 0 {
				continue
			}
			words[wi] |= m
			base := wi * 64
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				v := int32(base + b)
				arrival[v] = int32(t + 1)
				out = append(out, v)
			}
		}
		e.newly[shard] = out
	})
	for shard := 0; shard < e.workers; shard++ {
		newly = append(newly, e.newly[shard]...)
	}
	if h != nil {
		h.EndPhase(PhaseMerge)
	}
	return newly
}

// pullRound is the sharded pull kernel: the uninformed side is split
// into contiguous shards — word ranges of the complement while the
// uninformed set is large, ranges of the shrinking active-set list in
// the straggler regime — each worker testing its own nodes for an
// informed neighbor (CSR walk, or word-parallel row intersection when
// rows is non-nil) and recording hits in its shard's newly list. The
// informed set is only read during the scan — hits are applied after
// the join, in shard order, preserving the synchronous semantics and
// worker-count independence of the serial kernel. Both enumerations
// visit the same nodes ascending (list shards are contiguous slices of
// an ascending list), so the result is byte-identical either way. With
// the skip layer armed (see activeSet), each shard walks its slice but
// probes only marked or churned nodes — the same candidate set the
// serial kernel selects, since marks and stamps are round-start state.
func (e *shardEngine) pullRound(g *graph.Graph, rows *graph.DenseRows, informed *bitset.Set, arrival []int32, t int, newly []int32, uninformed int) []int32 {
	words := informed.MutableWords()
	n := informed.Len()
	e.reset()
	if e.uninf.enabled(words, n, uninformed) {
		list := e.uninf.nodes
		if e.uninf.skipping() {
			marks := e.uninf.marks
			stamps := e.uninf.stamps
			var epoch uint32
			if stamps != nil {
				epoch = e.uninf.epoch()
			}
			par.ForBlocks(e.workers, len(list), func(shard, lo, hi int) {
				out := e.newly[shard][:0]
				for _, v := range list[lo:hi] {
					if !marks[v] && (stamps == nil || stamps[v] != epoch) {
						continue
					}
					marks[v] = false
					if pullHit(g, rows, words, informed, int(v)) {
						arrival[v] = int32(t + 1)
						out = append(out, v)
					}
				}
				e.newly[shard] = out
			})
		} else {
			par.ForBlocks(e.workers, len(list), func(shard, lo, hi int) {
				out := e.newly[shard][:0]
				for _, v := range list[lo:hi] {
					if pullHit(g, rows, words, informed, int(v)) {
						arrival[v] = int32(t + 1)
						out = append(out, v)
					}
				}
				e.newly[shard] = out
			})
		}
		start := len(newly)
		newly = e.applyPull(words, newly)
		e.uninf.markNeighbors(g, newly[start:])
		if len(newly) > start {
			// No discoveries → the list is unchanged; skip the
			// compaction walk (see the serial kernel).
			e.uninf.compact(words)
		}
		return newly
	}
	par.ForBlocks(e.workers, e.words, func(shard, lo, hi int) {
		out := e.newly[shard][:0]
		for wi := lo; wi < hi; wi++ {
			rem := ^words[wi]
			if rem == 0 {
				continue
			}
			base := wi * 64
			for rem != 0 {
				b := bits.TrailingZeros64(rem)
				rem &= rem - 1
				v := base + b
				if v >= n {
					break
				}
				if pullHit(g, rows, words, informed, v) {
					arrival[v] = int32(t + 1)
					out = append(out, int32(v))
				}
			}
		}
		e.newly[shard] = out
	})
	return e.applyPull(words, newly)
}

// applyPull is the post-join apply of the receiver-driven kernels —
// the pull-side merge span: shard outputs folded into the shared
// informed words in shard order.
func (e *shardEngine) applyPull(words []uint64, newly []int32) []int32 {
	h := e.hook
	if h != nil {
		h.BeginPhase(PhaseMerge)
	}
	for shard := 0; shard < e.workers; shard++ {
		for _, v := range e.newly[shard] {
			words[v>>6] |= 1 << (uint(v) & 63)
		}
		newly = append(newly, e.newly[shard]...)
	}
	if h != nil {
		h.EndPhase(PhaseMerge)
	}
	return newly
}
