package core

import (
	"testing"
	"testing/quick"

	"meg/internal/graph"
	"meg/internal/rng"
)

func TestFloodPathFromEnd(t *testing.T) {
	// On a static path, information moves one hop per round: flooding
	// from an endpoint takes n-1 rounds.
	for _, n := range []int{2, 3, 10, 33} {
		d := NewStatic(graph.Path(n))
		res := Flood(d, 0, DefaultRoundCap(n))
		if !res.Completed || res.Rounds != n-1 {
			t.Fatalf("path n=%d from end: rounds=%d completed=%v", n, res.Rounds, res.Completed)
		}
	}
}

func TestFloodPathFromMiddle(t *testing.T) {
	d := NewStatic(graph.Path(11))
	res := Flood(d, 5, DefaultRoundCap(11))
	if !res.Completed || res.Rounds != 5 {
		t.Fatalf("path from middle: rounds=%d", res.Rounds)
	}
}

func TestFloodCompleteGraph(t *testing.T) {
	d := NewStatic(graph.Complete(20))
	res := Flood(d, 7, 100)
	if !res.Completed || res.Rounds != 1 {
		t.Fatalf("complete graph: rounds=%d", res.Rounds)
	}
}

func TestFloodStar(t *testing.T) {
	// From the center all leaves are informed in one round; from a leaf
	// the center is informed in round 1, everyone else in round 2.
	d := NewStatic(graph.Star(9))
	if res := Flood(d, 0, 100); res.Rounds != 1 {
		t.Fatalf("star from center: rounds=%d", res.Rounds)
	}
	if res := Flood(d, 3, 100); res.Rounds != 2 {
		t.Fatalf("star from leaf: rounds=%d", res.Rounds)
	}
}

func TestFloodCycle(t *testing.T) {
	// Two fronts move in opposite directions: ⌈(n-1)/2⌉ rounds.
	for _, n := range []int{4, 5, 12, 13} {
		d := NewStatic(graph.Cycle(n))
		res := Flood(d, 0, DefaultRoundCap(n))
		want := (n - 1 + 1) / 2
		if res.Rounds != want {
			t.Fatalf("cycle n=%d: rounds=%d, want %d", n, res.Rounds, want)
		}
	}
}

func TestFloodSingleNode(t *testing.T) {
	d := NewStatic(graph.Empty(1))
	res := Flood(d, 0, 10)
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("single node: rounds=%d completed=%v", res.Rounds, res.Completed)
	}
}

func TestFloodDisconnectedHitsCap(t *testing.T) {
	d := NewStatic(graph.FromEdges(4, [][2]int{{0, 1}}))
	res := Flood(d, 0, 17)
	if res.Completed {
		t.Fatal("flood completed on disconnected graph")
	}
	if res.Rounds != 17 {
		t.Fatalf("rounds=%d, want the cap", res.Rounds)
	}
	if res.Informed.Count() != 2 {
		t.Fatalf("informed=%d, want 2", res.Informed.Count())
	}
}

func TestFloodTrajectoryMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(30)
		b := graph.NewBuilder(n)
		seen := map[[2]int]bool{}
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		res := Flood(NewStatic(b.Build()), r.Intn(n), 4*n)
		if res.Trajectory[0] != 1 {
			return false
		}
		for i := 1; i < len(res.Trajectory); i++ {
			if res.Trajectory[i] < res.Trajectory[i-1] {
				return false
			}
		}
		if res.Completed && res.Trajectory[len(res.Trajectory)-1] != n {
			return false
		}
		return res.Informed.Count() == res.Trajectory[len(res.Trajectory)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFloodSynchronousSemantics verifies that a node informed in round
// t does not transmit during round t: on a path from node 0, node 2 is
// informed exactly at round 2, never at round 1.
func TestFloodSynchronousSemantics(t *testing.T) {
	d := NewStatic(graph.Path(3))
	res := Flood(d, 0, 10)
	if res.Trajectory[1] != 2 {
		t.Fatalf("after round 1: %d informed, want 2", res.Trajectory[1])
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds=%d, want 2", res.Rounds)
	}
}

// TestFloodUsesSnapshotSequence checks that the flooding process reads
// a fresh snapshot each round: a "blinking" sequence where the needed
// edge exists only in alternating steps.
func TestFloodUsesSnapshotSequence(t *testing.T) {
	// G0 has edge 0-1 only; G1 has edge 1-2 only. Flooding from 0
	// completes in exactly 2 rounds: 0→1 via G0, then 1→2 via G1.
	g0 := graph.FromEdges(3, [][2]int{{0, 1}})
	g1 := graph.FromEdges(3, [][2]int{{1, 2}})
	d := NewSequence(g0, g1)
	d.Reset(nil)
	res := Flood(d, 0, 10)
	if !res.Completed || res.Rounds != 2 {
		t.Fatalf("blinking sequence: rounds=%d completed=%v", res.Rounds, res.Completed)
	}

	// Flooding from node 2 sees G0 first (useless), then G1 (2→1),
	// then G0 again (1→0): 3 rounds.
	d.Reset(nil)
	res = Flood(d, 2, 10)
	if !res.Completed || res.Rounds != 3 {
		t.Fatalf("blinking from 2: rounds=%d completed=%v", res.Rounds, res.Completed)
	}
}

func TestFloodPanics(t *testing.T) {
	d := NewStatic(graph.Path(3))
	for _, fn := range []func(){
		func() { Flood(d, -1, 10) },
		func() { Flood(d, 3, 10) },
		func() { Flood(d, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFloodingTimeMaxOverSources(t *testing.T) {
	// On a path, the flooding time from the middle is (n-1)/2 but from
	// an endpoint it is n-1: the max over all sources must find n-1.
	n := 9
	d := NewStatic(graph.Path(n))
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	res := FloodingTime(d, sources, DefaultRoundCap(n), rng.New(1))
	if res.Rounds != n-1 {
		t.Fatalf("max rounds = %d, want %d", res.Rounds, n-1)
	}
}

func TestFloodingTimePrefersIncomplete(t *testing.T) {
	// An incomplete run must dominate any complete one. Build a
	// sequence whose first snapshot connects everything (so source 0,
	// flooding through it immediately, completes) but whose later
	// snapshots strand node 0: from source 2 the first useful edges
	// appear only while 0 stays isolated forever after step 0.
	gAll := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	gCut := graph.FromEdges(3, [][2]int{{1, 2}})
	// From source 0: round 1 (gAll) informs 1 and... 0-1 and 1-2 exist,
	// so {1} joins, then round 2 (gCut) lets 1 inform 2: complete.
	// From source 2: round 1 (gAll) informs 1; afterwards only gCut
	// repeats, so node 0 is never reached: incomplete.
	// The round cap stays below the sequence's wrap-around so gAll is
	// only ever seen at t=0.
	mk := func() *Sequence { return NewSequence(gAll, gCut, gCut, gCut) }
	okRun := Flood(mk(), 0, 4)
	if !okRun.Completed {
		t.Fatal("setup: source 0 should complete")
	}
	badRun := Flood(mk(), 2, 4)
	if badRun.Completed {
		t.Fatal("setup: source 2 should not complete")
	}
	d := mk()
	res := FloodingTime(d, []int{0, 2}, 4, rng.New(1))
	if res.Completed {
		t.Fatal("expected the incomplete run to win")
	}
	if res.Source != 2 {
		t.Fatalf("worst source = %d, want 2", res.Source)
	}
}

func TestFloodingTimePanicsOnNoSources(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FloodingTime(NewStatic(graph.Path(3)), nil, 10, rng.New(1))
}

func TestGrowthFactors(t *testing.T) {
	res := FloodResult{Trajectory: []int{1, 3, 9, 9}}
	g := res.GrowthFactors()
	if len(g) != 3 || g[0] != 3 || g[1] != 3 || g[2] != 1 {
		t.Fatalf("growth = %v", g)
	}
	if (FloodResult{Trajectory: []int{1}}).GrowthFactors() != nil {
		t.Error("single-point trajectory should have nil growth")
	}
}

func TestRoundsToHalf(t *testing.T) {
	res := FloodResult{Trajectory: []int{1, 2, 5, 10}}
	if got := res.RoundsToHalf(10); got != 2 {
		t.Fatalf("RoundsToHalf = %d, want 2", got)
	}
	if got := res.RoundsToHalf(100); got != -1 {
		t.Fatalf("RoundsToHalf unreached = %d, want -1", got)
	}
}

func TestSequenceValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSequence() },
		func() { NewSequence(graph.Path(3), graph.Path(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSequenceWraps(t *testing.T) {
	g0 := graph.FromEdges(2, [][2]int{{0, 1}})
	g1 := graph.Empty(2)
	s := NewSequence(g0, g1)
	s.Reset(nil)
	if s.Graph() != g0 {
		t.Fatal("t=0 snapshot wrong")
	}
	s.Step()
	if s.Graph() != g1 {
		t.Fatal("t=1 snapshot wrong")
	}
	s.Step()
	if s.Graph() != g0 {
		t.Fatal("sequence did not wrap")
	}
	s.Reset(nil)
	if s.Graph() != g0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestStaticDynamics(t *testing.T) {
	g := graph.Cycle(5)
	d := NewStatic(g)
	if d.N() != 5 {
		t.Fatal("N wrong")
	}
	d.Reset(nil)
	d.Step()
	if d.Graph() != g {
		t.Fatal("static graph changed")
	}
}
