package core

import (
	"math/bits"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/par"
)

// FloodMulti floods from every given source simultaneously over a
// single realization of d: one snapshot sequence G_0, G_1, … is shared
// by all runs, instead of regenerating the dynamics once per source the
// way FloodingTime does. Sources are packed 64 per machine word, so one
// scan of a snapshot advances up to 64 floods at once (the bit-parallel
// multi-source BFS technique, adapted to evolving snapshots): per round
// the batch costs O(n + m) word operations total rather than per
// source.
//
// Semantics per source are exactly Flood's — I_{t+1} = I_t ∪ N(I_t) in
// G_t, synchronous rounds, the same Trajectory/Arrival/Rounds — and on
// a deterministic dynamics (Static, Sequence) the k-th result is
// bit-identical to a solo Flood from sources[k]. On random dynamics the
// marginal law of each result matches a solo run on that realization;
// jointly the runs are coupled through the shared snapshots, which is
// the point (and is harmless for stationary-model estimates that
// average or maximize over sources).
//
// FloodMulti does not Reset d: the caller controls the initial
// distribution. The chain advances until every run completes or
// maxRounds rounds have been evaluated, whichever comes first.
func FloodMulti(d Dynamics, sources []int, maxRounds int) []FloodResult {
	return FloodMultiOpt(d, sources, maxRounds, MultiOptions{})
}

// MultiOptions tunes FloodMultiOpt. The zero value is FloodMulti.
type MultiOptions struct {
	// Parallelism is the intra-batch worker count: the node space is
	// split into contiguous shards, each worker updating the masks and
	// arrival entries of its own shard, with per-shard informed-count
	// deltas reduced in shard order — results are byte-identical for
	// every value, including 1. 0 or 1 runs the serial loop; < 0 uses
	// all CPUs. A Parallelizable dynamics receives the same worker
	// count for its snapshot builds.
	Parallelism int
	// Snapshot selects the per-round snapshot path (full rebuild vs
	// incremental delta maintenance), with transparent fallback for
	// dynamics without delta support; see FloodOptions.Snapshot.
	Snapshot SnapshotMode
	// Stop, if non-nil, is polled once per round; when it returns true
	// the batch aborts with every unfinished flood left incomplete
	// (Rounds set to the cap), matching FloodOptions.Stop semantics.
	Stop func() bool
	// Progress, if non-nil, is called after every evaluated round with
	// the round number t+1 and the largest informed count across the
	// batch's floods. It runs on the flooding goroutine; keep it cheap.
	Progress func(round, informed int)
	// Hook, if non-nil, observes the batch: phase spans per round, and
	// RoundDone with Informed set to the largest informed count across
	// the batch's floods (matching Progress) and Newly to the total
	// nodes informed this round summed over floods. Observational only;
	// see FloodOptions.Hook.
	Hook PhaseHook
}

// FloodMultiOpt is FloodMulti with cancellation and progress hooks.
func FloodMultiOpt(d Dynamics, sources []int, maxRounds int, opt MultiOptions) []FloodResult {
	n := d.N()
	if len(sources) == 0 {
		panic("core: FloodMulti needs at least one source")
	}
	if maxRounds <= 0 {
		panic("core: maxRounds must be positive")
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			panic("core: flood source out of range")
		}
	}

	results := make([]FloodResult, len(sources))
	for i, s := range sources {
		arrival := make([]int32, n)
		for j := range arrival {
			arrival[j] = -1
		}
		arrival[s] = 0
		results[i] = FloodResult{
			Source:     s,
			Trajectory: append(make([]int, 0, 64), 1),
			Arrival:    arrival,
		}
	}
	if n == 1 {
		for i := range results {
			results[i].Completed = true
			results[i].Informed = informedFromArrival(results[i].Arrival)
		}
		return results
	}

	groups := make([]*multiGroup, 0, (len(sources)+63)/64)
	for base := 0; base < len(sources); base += 64 {
		size := len(sources) - base
		if size > 64 {
			size = 64
		}
		groups = append(groups, newMultiGroup(n, sources[base:base+size], results[base:base+size]))
	}

	workers := engineWorkers(opt.Parallelism, d)
	snap := newSnapshotter(d, opt.Snapshot, workers, opt.Hook)
	defer snap.release()
	remaining := len(groups)
	h := opt.Hook
	prevTotal := len(sources) // every flood starts with its source informed
	for t := 0; t < maxRounds && remaining > 0; t++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		g := snap.graph()
		if h != nil {
			h.BeginPhase(PhaseKernel)
		}
		for _, grp := range groups {
			if grp.done {
				continue
			}
			if workers > 1 {
				grp.roundParallel(g, t, workers)
			} else {
				grp.round(g, t)
			}
			if grp.done {
				remaining--
			}
		}
		if h != nil {
			h.EndPhase(PhaseKernel)
		}
		snap.step()
		if opt.Progress != nil || h != nil {
			most, total := 0, 0
			for _, grp := range groups {
				for _, c := range grp.counts {
					if c > most {
						most = c
					}
					total += c
				}
			}
			if opt.Progress != nil {
				opt.Progress(t+1, most)
			}
			if h != nil {
				h.RoundDone(RoundStats{Round: t + 1, Informed: most, Newly: total - prevTotal})
				prevTotal = total
			}
		}
	}
	for i := range results {
		if !results[i].Completed {
			results[i].Rounds = maxRounds
		}
		results[i].Informed = informedFromArrival(results[i].Arrival)
	}
	return results
}

// FloodAll is FloodMulti from every node: the exact per-source flooding
// profile of one realization, from which the realization's flooding
// time is the worst entry (WorstResult). Memory is dominated by the
// n×n int32 arrival matrix — 4n² bytes (256 MiB at n = 8192) — plus
// O(n) words per 64-source group, so it is meant for the moderate n of
// exact experiments, not the largest sweeps.
func FloodAll(d Dynamics, maxRounds int) []FloodResult {
	sources := make([]int, d.N())
	for i := range sources {
		sources[i] = i
	}
	return FloodMulti(d, sources, maxRounds)
}

// multiGroup runs up to 64 floods bit-parallel: masks[v] has bit k set
// iff node v is informed in the group's k-th flood.
type multiGroup struct {
	results []FloodResult // aliases the caller's slice
	masks   []uint64      // current informed membership per node
	next    []uint64      // scratch for the synchronous update
	counts  []int         // informed-set size per flood
	full    uint64        // mask with one bit per flood in the group
	done    bool          // every flood in the group completed

	// shardCounts holds per-shard informed-count deltas for the sharded
	// round; reduced into counts in shard order after the join.
	shardCounts [][]int
}

func newMultiGroup(n int, sources []int, results []FloodResult) *multiGroup {
	g := &multiGroup{
		results: results,
		masks:   make([]uint64, n),
		next:    make([]uint64, n),
		counts:  make([]int, len(sources)),
	}
	for k, s := range sources {
		g.masks[s] |= 1 << uint(k)
		g.counts[k] = 1
	}
	if len(sources) == 64 {
		g.full = ^uint64(0)
	} else {
		g.full = 1<<uint(len(sources)) - 1
	}
	return g
}

// round advances every incomplete flood of the group one synchronous
// step on snapshot g: next[v] = masks[v] | ⋁_{u ∈ N(v)} masks[u], all
// 64 floods at once per word operation. Reading only masks (written
// last round) while writing next keeps the update synchronous.
func (grp *multiGroup) round(g *graph.Graph, t int) {
	n := len(grp.masks)
	masks, next := grp.masks, grp.next
	full := grp.full
	for v := 0; v < n; v++ {
		acc := masks[v]
		if acc != full {
			for _, u := range g.Neighbors(v) {
				acc |= masks[u]
			}
		}
		next[v] = acc
		if diff := acc &^ masks[v]; diff != 0 {
			for diff != 0 {
				k := bits.TrailingZeros64(diff)
				diff &= diff - 1
				grp.results[k].Arrival[v] = int32(t + 1)
				grp.counts[k]++
			}
		}
	}
	grp.masks, grp.next = next, masks
	grp.finishRound(n, t)
}

// roundParallel is round on a worker pool: the node space is split into
// contiguous shards, each worker computing next[v] and arrival updates
// for its own nodes only (masks, written last round, is read-only
// during the sweep) and accumulating informed-count deltas in a
// shard-private array. Deltas are reduced in shard order after the
// join, so the group's state is byte-identical to the serial round's
// for every worker count.
func (grp *multiGroup) roundParallel(g *graph.Graph, t, workers int) {
	n := len(grp.masks)
	masks, next := grp.masks, grp.next
	full := grp.full
	if len(grp.shardCounts) < workers {
		grp.shardCounts = make([][]int, workers)
		for i := range grp.shardCounts {
			grp.shardCounts[i] = make([]int, len(grp.results))
		}
	}
	par.ForBlocks(workers, n, func(shard, lo, hi int) {
		local := grp.shardCounts[shard]
		for i := range local {
			local[i] = 0
		}
		for v := lo; v < hi; v++ {
			acc := masks[v]
			if acc != full {
				for _, u := range g.Neighbors(v) {
					acc |= masks[u]
				}
			}
			next[v] = acc
			if diff := acc &^ masks[v]; diff != 0 {
				for diff != 0 {
					k := bits.TrailingZeros64(diff)
					diff &= diff - 1
					grp.results[k].Arrival[v] = int32(t + 1)
					local[k]++
				}
			}
		}
	})
	used := workers
	if used > n {
		used = n
	}
	for shard := 0; shard < used; shard++ {
		for k, d := range grp.shardCounts[shard] {
			grp.counts[k] += d
		}
	}
	grp.masks, grp.next = next, masks
	grp.finishRound(n, t)
}

// finishRound appends the per-flood trajectory entries and marks floods
// (and the group) complete once every node is informed.
func (grp *multiGroup) finishRound(n, t int) {
	grp.done = true
	for k := range grp.results {
		res := &grp.results[k]
		if res.Completed {
			continue
		}
		res.Trajectory = append(res.Trajectory, grp.counts[k])
		if grp.counts[k] == n {
			res.Rounds = t + 1
			res.Completed = true
		} else {
			grp.done = false
		}
	}
}

// informedFromArrival reconstructs the final informed set from the
// arrival times (arrival ≥ 0 ⇔ informed).
func informedFromArrival(arrival []int32) *bitset.Set {
	s := bitset.New(len(arrival))
	for v, a := range arrival {
		if a >= 0 {
			s.Add(v)
		}
	}
	return s
}
