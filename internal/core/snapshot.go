package core

import (
	"fmt"
	"strings"
	"sync"

	"meg/internal/graph"
)

// DeltaDynamics is optionally implemented by Dynamics that can report
// each step's edge churn directly: StepDelta advances the chain exactly
// like Step but additionally returns the births and deaths G_t → G_{t+1}
// as packed edge lists. In the low-churn regimes the paper centers —
// edge-MEGs with small p and q, geometric walks with small move radius —
// the delta is a vanishing fraction of the snapshot, and the engines
// fold it into a graph.Mutable instead of paying a full O(n + m)
// rebuild per round.
//
// Contract: the realization (the snapshot sequence) must be identical
// whether the chain is advanced by Step or StepDelta, the returned
// delta must satisfy graph.Delta's ordering/disjointness rules, and the
// snapshot returned by Graph must carry sorted adjacency rows (the
// canonical order graph.Mutable maintains), so the incremental view is
// byte-identical to the full rebuild — which is what lets the snapshot
// engine choice stay an execution hint outside spec content hashes.
// The returned delta's slices are valid only until the next
// Step/StepDelta/Reset call.
type DeltaDynamics interface {
	Dynamics
	// StepDelta advances the chain one time unit (like Step) and
	// returns the edge delta of the transition.
	StepDelta() graph.Delta
}

// SnapshotMode selects how the engines materialize per-round snapshots.
type SnapshotMode int

const (
	// SnapshotFull calls Dynamics.Graph every round — the classic
	// O(n + m) rebuild path, and the default.
	SnapshotFull SnapshotMode = iota
	// SnapshotDelta maintains the snapshot incrementally from
	// DeltaDynamics.StepDelta via graph.Mutable, rebuilding only the
	// adjacency rows each round's churn touches. Dynamics that do not
	// implement DeltaDynamics fall back to the full path transparently.
	// Results are byte-identical either way, so the mode is an
	// execution hint (like Parallelism), never a semantic.
	SnapshotDelta
)

// String returns the mode's flag spelling.
func (m SnapshotMode) String() string {
	switch m {
	case SnapshotFull:
		return "full"
	case SnapshotDelta:
		return "delta"
	default:
		return fmt.Sprintf("SnapshotMode(%d)", int(m))
	}
}

// ParseSnapshotMode converts a flag value into a SnapshotMode.
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	switch strings.ToLower(s) {
	case "", "full":
		return SnapshotFull, nil
	case "delta", "incremental":
		return SnapshotDelta, nil
	default:
		return SnapshotFull, fmt.Errorf("core: unknown snapshot mode %q (want full|delta)", s)
	}
}

// snapshotter is the engines' one snapshot access path: graph() returns
// the current G_t and step() advances the chain, routing through the
// incremental Mutable when delta mode is requested and the dynamics
// supports it, and through plain Graph/Step otherwise. The probe
// happens once here, so every engine gets the transparent fallback for
// free.
type snapshotter struct {
	d       Dynamics
	dd      DeltaDynamics // non-nil only when the delta path is active
	mut     *graph.Mutable
	workers int
	hook    PhaseHook // nil unless the run is instrumented
}

func newSnapshotter(d Dynamics, mode SnapshotMode, workers int, hook PhaseHook) *snapshotter {
	s := &snapshotter{d: d, workers: workers, hook: hook}
	if mode == SnapshotDelta {
		if dd, ok := d.(DeltaDynamics); ok {
			s.dd = dd
		}
	}
	return s
}

// graph returns the current snapshot G_t. On the delta path the first
// call materializes the dynamics' snapshot once into a Mutable; later
// rounds reuse the incrementally maintained view.
func (s *snapshotter) graph() *graph.Graph {
	h := s.hook
	if h != nil {
		h.BeginPhase(PhaseSnapshot)
	}
	g := s.graphInner()
	if h != nil {
		h.EndPhase(PhaseSnapshot)
	}
	return g
}

func (s *snapshotter) graphInner() *graph.Graph {
	if s.dd == nil {
		return s.d.Graph()
	}
	if s.mut == nil {
		s.mut = getPooledMutable(s.d.Graph())
	}
	return s.mut.Graph()
}

// mutable returns the incrementally maintained snapshot when the delta
// path is active and has materialized, else nil. Engines use it to
// attach state the Mutable keeps coherent across deltas (dense rows).
func (s *snapshotter) mutable() *graph.Mutable { return s.mut }

// mutablePool recycles the per-run graph.Mutable across engine runs —
// the trial-level counterpart of graph.Builder's round-level recycling.
// A pooled Mutable is fully reinitialized by Reset before reuse (and
// detaches any dense rows), so pooling is invisible to results.
var mutablePool sync.Pool

func getPooledMutable(g *graph.Graph) *graph.Mutable {
	if v := mutablePool.Get(); v != nil {
		m := v.(*graph.Mutable)
		m.Reset(g)
		return m
	}
	return graph.NewMutable(g)
}

// release returns the run's Mutable (if any) to the pool. Engines call
// it once when the run finishes; the live snapshot view must not be
// used afterwards — engines hand results out as copies, never as
// aliases of the view, so the deferred release is safe.
func (s *snapshotter) release() {
	if s.mut != nil {
		mutablePool.Put(s.mut)
		s.mut = nil
	}
}

// step advances the chain G_t → G_{t+1}, folding the delta into the
// maintained view on the delta path. The two delta sub-spans are
// reported separately: StepDelta is the models' churn computation
// (PhaseStep, like the full path's Step), ApplyDelta the incremental
// snapshot maintenance (PhaseDeltaApply).
func (s *snapshotter) step() {
	h := s.hook
	if s.dd == nil {
		if h != nil {
			h.BeginPhase(PhaseStep)
		}
		s.d.Step()
		if h != nil {
			h.EndPhase(PhaseStep)
		}
		return
	}
	if h != nil {
		h.BeginPhase(PhaseStep)
	}
	delta := s.dd.StepDelta()
	if h != nil {
		h.EndPhase(PhaseStep)
	}
	if s.mut != nil {
		if h != nil {
			h.BeginPhase(PhaseDeltaApply)
		}
		s.mut.ApplyDelta(delta, s.workers)
		if h != nil {
			h.EndPhase(PhaseDeltaApply)
		}
	}
}
