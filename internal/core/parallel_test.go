package core

import (
	"testing"

	"meg/internal/graph"
)

// floodResultsEqual compares every field of two FloodResults, arrival
// arrays and informed sets included.
func floodResultsEqual(t *testing.T, label string, a, b FloodResult) {
	t.Helper()
	if a.Source != b.Source || a.Rounds != b.Rounds || a.Completed != b.Completed {
		t.Fatalf("%s: header mismatch: %+v vs %+v", label, a.Rounds, b.Rounds)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("%s: trajectory lengths %d vs %d", label, len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("%s: trajectory[%d] = %d vs %d", label, i, a.Trajectory[i], b.Trajectory[i])
		}
	}
	if len(a.Arrival) != len(b.Arrival) {
		t.Fatalf("%s: arrival lengths differ", label)
	}
	for v := range a.Arrival {
		if a.Arrival[v] != b.Arrival[v] {
			t.Fatalf("%s: arrival[%d] = %d vs %d", label, v, a.Arrival[v], b.Arrival[v])
		}
	}
	if !a.Informed.Equal(b.Informed) {
		t.Fatalf("%s: informed sets differ", label)
	}
}

func TestFloodParallelismByteIdentical(t *testing.T) {
	// The sharded engine must reproduce the serial engine exactly, for
	// every worker count and kernel, on deterministic dynamics
	// (randomSequence replays identical snapshots to every run).
	for _, n := range []int{5, 64, 65, 500, 2048} {
		edgeP := 2.5 / float64(n)
		for _, kernel := range []Kernel{KernelAuto, KernelPush, KernelPull} {
			serial := FloodOpt(randomSequence(n, 64, edgeP, uint64(n)), 0, DefaultRoundCap(n),
				FloodOptions{Kernel: kernel, Parallelism: 1})
			for _, p := range []int{2, 3, 8} {
				par := FloodOpt(randomSequence(n, 64, edgeP, uint64(n)), 0, DefaultRoundCap(n),
					FloodOptions{Kernel: kernel, Parallelism: p})
				floodResultsEqual(t, kernel.String(), serial, par)
			}
		}
	}
}

func TestFloodParallelismOnStaticDenseRows(t *testing.T) {
	// The static pull path exports dense rows; the parallel export must
	// not change results.
	g := graph.Complete(300)
	serial := FloodOpt(NewStatic(g), 7, 100, FloodOptions{Kernel: KernelPull, Parallelism: 1})
	par := FloodOpt(NewStatic(g), 7, 100, FloodOptions{Kernel: KernelPull, Parallelism: 8})
	floodResultsEqual(t, "static pull", serial, par)
}

func TestFloodMultiParallelismByteIdentical(t *testing.T) {
	const n = 600
	sources := make([]int, 100)
	for i := range sources {
		sources[i] = (i * 13) % n
	}
	serial := FloodMultiOpt(randomSequence(n, 64, 2.5/float64(n), 3), sources, DefaultRoundCap(n), MultiOptions{Parallelism: 1})
	for _, p := range []int{2, 8} {
		par := FloodMultiOpt(randomSequence(n, 64, 2.5/float64(n), 3), sources, DefaultRoundCap(n), MultiOptions{Parallelism: p})
		for k := range serial {
			floodResultsEqual(t, "multi", serial[k], par[k])
		}
	}
}

func TestFloodParallelIncomplete(t *testing.T) {
	// A disconnected graph must leave the same nodes uninformed under
	// both engines, and the round cap applies identically.
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	serial := FloodOpt(NewStatic(g), 0, 17, FloodOptions{Parallelism: 1})
	par := FloodOpt(NewStatic(g), 0, 17, FloodOptions{Parallelism: 4})
	if serial.Completed || par.Completed {
		t.Fatal("disconnected flood completed")
	}
	floodResultsEqual(t, "disconnected", serial, par)
	if serial.Rounds != 17 {
		t.Fatalf("incomplete run reports %d rounds, want the cap", serial.Rounds)
	}
}

func TestDefaultRoundCapRegression(t *testing.T) {
	// The cap must be logarithmic, not linear: the old 4n+32 spun a
	// stalled 512k-node flood for ~2M rounds.
	if got := DefaultRoundCap(512 * 1024); got >= 10000 {
		t.Fatalf("DefaultRoundCap(512k) = %d, still pathological", got)
	}
	if got := DefaultRoundCap(512 * 1024); got < 1000 {
		t.Fatalf("DefaultRoundCap(512k) = %d, below the geometric-MEG diameter headroom", got)
	}
	// Floor for small n.
	for _, n := range []int{0, 1, 2} {
		if got := DefaultRoundCap(n); got != minRoundCap {
			t.Fatalf("DefaultRoundCap(%d) = %d, want %d", n, got, minRoundCap)
		}
	}
	// Monotone in n.
	prev := 0
	for _, n := range []int{2, 16, 256, 4096, 65536, 1 << 20, 1 << 30} {
		got := DefaultRoundCap(n)
		if got < prev {
			t.Fatalf("DefaultRoundCap not monotone at n=%d: %d < %d", n, got, prev)
		}
		prev = got
	}
	// Exact shape: max(64, 64·⌈log₂ n⌉, ⌈√n⌉).
	if got := DefaultRoundCap(256); got != roundCapC*roundCapGrowthGuard*8 {
		t.Fatalf("DefaultRoundCap(256) = %d", got)
	}
	// At huge n the √n diameter guard takes over: a healthy geometric
	// flood needs Θ(√(n/log n)) rounds, which 64·log₂ n alone would
	// undercut past n ≈ 2^26.
	if got := DefaultRoundCap(1 << 28); got != 1<<14 {
		t.Fatalf("DefaultRoundCap(2^28) = %d, want %d (√n guard)", got, 1<<14)
	}
	// Still generous for every default-parameter model: a connected
	// geometric-MEG at n=4096 floods in ~20 rounds, edge-MEGs in O(log n).
	if got := DefaultRoundCap(4096); got < 256 {
		t.Fatalf("DefaultRoundCap(4096) = %d, too tight", got)
	}
}
