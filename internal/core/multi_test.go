package core

import (
	"math"
	"testing"

	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

// randomSequence builds a deterministic evolving graph from independent
// G(n, p) snapshots — deterministic replay makes solo and batched runs
// directly comparable.
func randomSequence(n, steps int, p float64, seed uint64) *Sequence {
	r := rng.New(seed)
	gs := make([]*graph.Graph, steps)
	for i := range gs {
		gs[i] = edgemeg.SampleGNP(n, p, r)
	}
	return NewSequence(gs...)
}

// TestFloodMultiMatchesSoloOnSequence is the batched engine's core
// guarantee: on a deterministic snapshot sequence, every result of
// FloodMulti is bit-identical to a solo Flood from that source.
func TestFloodMultiMatchesSoloOnSequence(t *testing.T) {
	n := 200
	seq := randomSequence(n, 64, 2.5/float64(n), 11)
	sources := []int{0, 1, 17, 63, 64, 65, 128, n - 1}
	seq.Reset(nil)
	multi := FloodMulti(seq, sources, DefaultRoundCap(n))
	if len(multi) != len(sources) {
		t.Fatalf("FloodMulti returned %d results for %d sources", len(multi), len(sources))
	}
	for i, s := range sources {
		seq.Reset(nil)
		solo := Flood(seq, s, DefaultRoundCap(n))
		sameResult(t, "multi vs solo", multi[i], solo)
	}
}

// TestFloodMultiManyGroups crosses the 64-source word boundary: 150
// sources split into three bit-parallel groups must still match solo
// runs exactly.
func TestFloodMultiManyGroups(t *testing.T) {
	n := 150
	seq := randomSequence(n, 64, 3.0/float64(n), 23)
	seq.Reset(nil)
	all := FloodAll(seq, DefaultRoundCap(n))
	if len(all) != n {
		t.Fatalf("FloodAll returned %d results", len(all))
	}
	for _, s := range []int{0, 63, 64, 100, 127, 128, 149} {
		seq.Reset(nil)
		solo := Flood(seq, s, DefaultRoundCap(n))
		sameResult(t, "all vs solo", all[s], solo)
	}
	// The realization's flooding time is the worst entry.
	worst := WorstResult(all)
	for _, res := range all {
		if res.Completed && worst.Completed && res.Rounds > worst.Rounds {
			t.Fatal("WorstResult is not the max")
		}
	}
}

// TestFloodMultiIncomplete checks cap semantics: sources in one
// component never reach the other, Rounds pins to the cap and arrival
// stays -1 across the cut.
func TestFloodMultiIncomplete(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	d := NewStatic(g)
	res := FloodMulti(d, []int{0, 3}, 5)
	for i, r := range res {
		if r.Completed || r.Rounds != 5 {
			t.Fatalf("result %d: rounds=%d completed=%v, want capped", i, r.Rounds, r.Completed)
		}
	}
	if res[0].Arrival[4] != -1 || res[1].Arrival[0] != -1 {
		t.Fatal("arrival crossed a disconnected cut")
	}
	if res[0].Informed.Count() != 3 || res[1].Informed.Count() != 3 {
		t.Fatal("informed sets should cover exactly one component")
	}
}

// TestFloodMultiStationaryEdge runs the batched engine on the actual
// random dynamics (not a replayed sequence) and checks the single-source
// batch agrees bit-for-bit with a solo Flood on the same seed — the
// property the flood package's BatchSources fast path relies on.
func TestFloodMultiStationaryEdge(t *testing.T) {
	n := 256
	pHat := 8 * math.Log(float64(n)) / float64(n)
	cfg := edgemeg.Config{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}

	m1 := edgemeg.MustNew(cfg)
	m1.Reset(rng.New(42))
	batched := FloodMulti(m1, []int{5}, DefaultRoundCap(n))

	m2 := edgemeg.MustNew(cfg)
	m2.Reset(rng.New(42))
	solo := Flood(m2, 5, DefaultRoundCap(n))

	sameResult(t, "single-source batch", batched[0], solo)
}

// TestFloodMultiSingleNode covers the degenerate universe.
func TestFloodMultiSingleNode(t *testing.T) {
	res := FloodMulti(NewStatic(graph.Empty(1)), []int{0}, 3)
	if !res[0].Completed || res[0].Rounds != 0 || res[0].Informed.Count() != 1 {
		t.Fatalf("single node: %+v", res[0])
	}
}

// TestFloodMultiPanics pins the argument contract.
func TestFloodMultiPanics(t *testing.T) {
	d := NewStatic(graph.Path(4))
	for name, fn := range map[string]func(){
		"no sources":    func() { FloodMulti(d, nil, 5) },
		"bad source":    func() { FloodMulti(d, []int{9}, 5) },
		"bad maxRounds": func() { FloodMulti(d, []int{0}, 0) },
		"empty worst":   func() { WorstResult(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
