// Package core implements the paper's central objects (Clementi, Monti,
// Pasquale, Silvestri: "Information Spreading in Stationary Markovian
// Evolving Graphs", IPDPS 2009):
//
//   - the Markovian evolving graph abstraction (Definitions 2.1 and 3.1):
//     a Markov chain over graphs on a fixed node set, exposed here as the
//     Dynamics interface;
//   - the flooding process of Section 2 (I_{t+1} = I_t ∪ N(I_t), with the
//     neighborhood taken in the snapshot at time t) and its completion
//     time;
//   - parameterized node expansion, the (h,k)-expander of Definition 2.2,
//     together with exact neighborhood-size computation;
//   - the bound machinery of Lemma 2.4, Theorem 2.5 and Corollary 2.6
//     that converts an expansion profile into a flooding-time bound.
//
// Concrete substrates (geometric-MEG, edge-MEG, the additional mobility
// models) live in their own packages and plug in through Dynamics.
package core

import (
	"meg/internal/graph"
	"meg/internal/rng"
)

// Dynamics is a Markovian evolving graph: a (possibly derived) Markov
// chain whose states project to graphs over the fixed node set [0, N).
//
// The protocol is: Reset samples the initial snapshot G_0 — stationary
// models sample their stationary distribution, realizing the paper's
// "perfect simulation" — then alternating Graph/Step walks the chain:
// Graph returns the current G_t and Step advances G_t → G_{t+1}.
//
// The *graph.Graph returned by Graph is only valid until the next Step
// or Reset call; implementations are free to reuse buffers.
type Dynamics interface {
	// N returns the (fixed) number of nodes.
	N() int
	// Reset replaces the current state with a freshly sampled initial
	// snapshot, drawing all randomness from r. Implementations keep r
	// (or a derived generator) for subsequent Step calls.
	Reset(r *rng.RNG)
	// Graph returns the current snapshot G_t.
	Graph() *graph.Graph
	// Step advances the chain one time unit.
	Step()
}

// Static wraps a fixed graph as a (trivially Markovian, trivially
// stationary) Dynamics whose snapshot never changes. It is the baseline
// the paper compares against: flooding time on the static stationary
// graph equals its diameter.
type Static struct {
	G *graph.Graph
}

// NewStatic returns the constant dynamics that always shows g.
func NewStatic(g *graph.Graph) *Static { return &Static{G: g} }

// N implements Dynamics.
func (s *Static) N() int { return s.G.N() }

// Reset implements Dynamics; it is a no-op since the graph is constant.
func (s *Static) Reset(*rng.RNG) {}

// Graph implements Dynamics.
func (s *Static) Graph() *graph.Graph { return s.G }

// Step implements Dynamics; it is a no-op.
func (s *Static) Step() {}

// Sequence replays an explicit, deterministic sequence of snapshots:
// the "evolving graph" of Lemma 2.4 (no randomness at all). After the
// last snapshot the sequence repeats from the beginning, which suffices
// for periodic constructions; tests that need a fixed horizon simply
// provide enough snapshots.
type Sequence struct {
	Graphs []*graph.Graph
	t      int
}

// NewSequence returns a Sequence over the given non-empty snapshot list.
// All snapshots must have the same node count.
func NewSequence(gs ...*graph.Graph) *Sequence {
	if len(gs) == 0 {
		panic("core: NewSequence needs at least one snapshot")
	}
	n := gs[0].N()
	for _, g := range gs {
		if g.N() != n {
			panic("core: Sequence snapshots must share the node set")
		}
	}
	return &Sequence{Graphs: gs}
}

// N implements Dynamics.
func (s *Sequence) N() int { return s.Graphs[0].N() }

// Reset implements Dynamics; it rewinds to the first snapshot.
func (s *Sequence) Reset(*rng.RNG) { s.t = 0 }

// Graph implements Dynamics.
func (s *Sequence) Graph() *graph.Graph { return s.Graphs[s.t%len(s.Graphs)] }

// Step implements Dynamics.
func (s *Sequence) Step() { s.t++ }
