package core

import (
	"math/bits"

	"meg/internal/graph"
)

// defaultActiveSetFrac is the crossover point of the receiver-driven
// kernels (flooding pull, lossy flooding): once the uninformed count
// drops below this fraction of n, the kernel stops scanning the full
// complement of the informed bitset every round and instead walks an
// explicitly maintained uninformed list, so a late round costs
// O(|uninformed|·deg) instead of O(n/64) word probes. Long
// sub-threshold runs — the regime the paper's flooding-time bounds
// actually describe — spend almost all rounds chasing a handful of
// stragglers, which is exactly where the list wins. Above the
// crossover the complement scan is already near-optimal (most words
// have uninformed bits) and the list would just add maintenance.
const defaultActiveSetFrac = 1.0 / 16

// activeSetFrac is defaultActiveSetFrac in production. Tests pin it to
// 0 (never activate: pure complement baseline) or 1 (activate from the
// first pull round) to prove the two enumeration strategies
// byte-identical; see SetActiveSetFracForTest.
var activeSetFrac = defaultActiveSetFrac

// SetActiveSetFracForTest overrides the active-set crossover fraction
// and returns a restore func. Test-only knob: results are
// byte-identical for every value, so production always runs the
// compile-time default.
func SetActiveSetFracForTest(frac float64) func() {
	old := activeSetFrac
	activeSetFrac = frac
	return func() { activeSetFrac = old }
}

// activeSet is the shrinking uninformed list of one engine run. The
// list is built once, by a single complement scan the first round past
// the crossover, and from then on compacted in place after every round
// — so it always holds exactly the uninformed nodes, ascending, and
// enumerating it visits the same nodes in the same order as the
// complement scan it replaces. Both kernels that use it only ever
// mutate the informed set inside their own rounds, and both engines'
// pull conditions are monotone (an informed set never shrinks), so
// once active the list can never go stale.
//
// On top of the list, the deterministic flooding pull adds a skip
// layer: an uninformed node can only gain an informed neighbor between
// two rounds if either a neighbor was newly informed in the previous
// round (tracked by marks, set from the newly list after every active
// round) or its own adjacency row changed — answered by the Mutable's
// per-row epoch stamps on the delta path, and never for static
// snapshots. A node with neither is provably still uninformed, so
// steady straggler rounds probe only the handful of candidates the
// churn and the frontier actually touched. The stamp test is an inline
// slice compare, not a call: with a few hundred stragglers and low
// churn the whole round is the candidate filter, and a per-node
// indirect call would cost as much as the degree-5 probe it skips.
// skipOn false disables the layer (full-rebuild dynamic snapshots,
// where rows may change arbitrarily, and the lossy kernels, whose
// per-round coin flips can succeed without any state change).
type activeSet struct {
	nodes  []int32
	active bool

	// skipOn arms the skip layer: the kernel may prove list nodes
	// unchanged and leave them unprobed.
	skipOn bool
	// stamps aliases the Mutable's per-row change stamps on the delta
	// path: node v's row was rebuilt by the last apply iff
	// stamps[v] == epoch() (conservative: extra trues are wasted
	// probes, never wrong results). nil with skipOn set means rows
	// never change (static snapshot).
	stamps []uint32
	// epoch yields the stamp value of the most recent apply; called
	// once per round, not per node.
	epoch func() uint32
	// marks flags nodes adjacent to the previous round's newly informed
	// set; allocated at activation when the skip layer is on.
	marks []bool
	// fresh is true only on the activation round, which probes every
	// list node once to establish the skip invariant.
	fresh bool
}

// enabled reports whether the list drives this round's enumeration,
// building it from the informed words on the first round past the
// crossover. uninformed is the exact complement size — the engines
// track the informed count every round, so no extra popcount pass.
func (a *activeSet) enabled(words []uint64, n, uninformed int) bool {
	if a.active {
		return true
	}
	if float64(uninformed) >= activeSetFrac*float64(n) {
		return false
	}
	a.nodes = appendComplement(a.nodes[:0], words, n)
	a.active = true
	if a.skipOn {
		if a.marks == nil {
			a.marks = make([]bool, n)
		}
		a.fresh = true
	}
	return true
}

// skipping reports whether this round walks only the skip candidates.
// The activation round always probes the full list.
func (a *activeSet) skipping() bool {
	if a.fresh {
		a.fresh = false
		return false
	}
	return a.skipOn
}

// markNeighbors records the nodes adjacent to this round's newly
// informed set as next-round probe candidates. Serial by design — it
// runs after the kernel's join, and in the straggler regime newly is
// bounded by the crossover fraction of n.
func (a *activeSet) markNeighbors(g *graph.Graph, newly []int32) {
	if !a.active || !a.skipOn {
		return
	}
	for _, u := range newly {
		for _, v := range g.Neighbors(int(u)) {
			a.marks[v] = true
		}
	}
}

// compact drops every node that became informed this round, keeping
// the survivors in ascending order: O(|list|), paid once per round,
// against the O(n/64) complement walk it replaces.
func (a *activeSet) compact(words []uint64) {
	kept := a.nodes[:0]
	for _, v := range a.nodes {
		if words[v>>6]&(1<<(uint(v)&63)) == 0 {
			kept = append(kept, v)
		}
	}
	a.nodes = kept
}

// appendComplement appends the ascending complement of the informed
// words over [0, n) to dst.
func appendComplement(dst []int32, words []uint64, n int) []int32 {
	for wi, w := range words {
		rem := ^w
		if rem == 0 {
			continue
		}
		base := wi * 64
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			rem &= rem - 1
			v := base + b
			if v >= n {
				break
			}
			dst = append(dst, int32(v))
		}
	}
	return dst
}
