package core

import (
	"fmt"
	"testing"

	"meg/internal/edgemeg"
	"meg/internal/rng"
)

// benchKernelSequence isolates the flooding kernel from snapshot
// generation: the G(n, p) sequence is pregenerated, so ns/op is pure
// kernel time. avgDeg controls the regime — sparse floods spend their
// rounds with small frontiers, dense ones are dominated by the late
// rounds where most of the graph is uninformed receivers.
func benchKernelSequence(b *testing.B, n int, avgDeg float64, opt FloodOptions) {
	seq := randomSequence(n, 64, avgDeg/float64(n-1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.Reset(nil)
		res := FloodOpt(seq, i%n, DefaultRoundCap(n), opt)
		if !res.Completed {
			b.Fatal("benchmark flood did not complete")
		}
	}
}

func BenchmarkKernel(b *testing.B) {
	kernels := []struct {
		name string
		opt  FloodOptions
	}{
		{"push", FloodOptions{Kernel: KernelPush}},
		{"pull", FloodOptions{Kernel: KernelPull}},
		{"auto", FloodOptions{}},
	}
	for _, cfg := range []struct {
		n      int
		avgDeg float64
	}{{4096, 12}, {4096, 64}, {4096, 256}} {
		for _, k := range kernels {
			b.Run(fmt.Sprintf("n=%d/deg=%.0f/%s", cfg.n, cfg.avgDeg, k.name), func(b *testing.B) {
				benchKernelSequence(b, cfg.n, cfg.avgDeg, k.opt)
			})
		}
	}
}

// BenchmarkMultiVsSolo pits the bit-parallel batched engine against 64
// sequential solo floods over the same stationary edge-MEG model,
// including the dynamics cost both must pay.
func BenchmarkMultiVsSolo(b *testing.B) {
	n := 2048
	cfg := edgemeg.Config{N: n, P: 0.02, Q: 0.5}
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i * (n / 64)
	}
	b.Run("multi64", func(b *testing.B) {
		m := edgemeg.MustNew(cfg)
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			m.Reset(r.Split())
			FloodMulti(m, sources, DefaultRoundCap(n))
		}
	})
	b.Run("solo64", func(b *testing.B) {
		m := edgemeg.MustNew(cfg)
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				m.Reset(r.Split())
				Flood(m, s, DefaultRoundCap(n))
			}
		}
	})
}
