package core

import (
	"math"
	"testing"

	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

// sameResult compares every observable field of two FloodResults.
func sameResult(t *testing.T, label string, a, b FloodResult) {
	t.Helper()
	if a.Source != b.Source || a.Rounds != b.Rounds || a.Completed != b.Completed {
		t.Fatalf("%s: headline mismatch: (%d,%d,%v) vs (%d,%d,%v)",
			label, a.Source, a.Rounds, a.Completed, b.Source, b.Rounds, b.Completed)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("%s: trajectory lengths %d vs %d", label, len(a.Trajectory), len(b.Trajectory))
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			t.Fatalf("%s: trajectory[%d] = %d vs %d", label, i, a.Trajectory[i], b.Trajectory[i])
		}
	}
	for v := range a.Arrival {
		if a.Arrival[v] != b.Arrival[v] {
			t.Fatalf("%s: arrival[%d] = %d vs %d", label, v, a.Arrival[v], b.Arrival[v])
		}
	}
	if !a.Informed.Equal(b.Informed) {
		t.Fatalf("%s: informed sets differ", label)
	}
}

// kernelVariants is the matrix of engine configurations that must all
// produce bit-identical results: the two pinned kernels, the auto
// default, and forced-threshold autos that pin the switch to round 0
// (always pull once any node is informed) and to never.
func kernelVariants() map[string]FloodOptions {
	return map[string]FloodOptions{
		"push":        {Kernel: KernelPush},
		"pull":        {Kernel: KernelPull},
		"auto":        {},
		"auto-pull":   {PullThreshold: 1e-9},
		"auto-never":  {PullThreshold: 2},
		"auto-switch": {PullThreshold: 0.1},
	}
}

// TestKernelEquivalenceEdge cross-checks sparse and dense flooding on
// stationary edge-MEG realizations: the kernels draw no randomness, so
// resetting the model with the same seed must reproduce the identical
// snapshot sequence and hence the identical FloodResult.
func TestKernelEquivalenceEdge(t *testing.T) {
	n := 256
	pHat := 8 * math.Log(float64(n)) / float64(n)
	cfg := edgemeg.Config{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}
	for seed := uint64(1); seed <= 5; seed++ {
		ref := FloodResult{}
		first := true
		for name, opt := range kernelVariants() {
			m := edgemeg.MustNew(cfg)
			m.Reset(rng.New(seed))
			res := FloodOpt(m, int(seed)%n, DefaultRoundCap(n), opt)
			if !res.Completed {
				t.Fatalf("seed %d kernel %s: flood did not complete", seed, name)
			}
			if first {
				ref = res
				first = false
				continue
			}
			sameResult(t, name, res, ref)
		}
	}
}

// TestKernelEquivalenceGeom is the geometric-MEG counterpart, covering
// the model whose snapshots come from mobile node positions.
func TestKernelEquivalenceGeom(t *testing.T) {
	n := 400
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
	for seed := uint64(1); seed <= 3; seed++ {
		ref := FloodResult{}
		first := true
		for name, opt := range kernelVariants() {
			m := geommeg.MustNew(cfg)
			m.Reset(rng.New(seed))
			res := FloodOpt(m, 0, DefaultRoundCap(n), opt)
			if first {
				ref = res
				first = false
				continue
			}
			sameResult(t, name, res, ref)
		}
	}
}

// TestKernelEquivalenceStaticDense forces the pull kernel onto a dense
// static snapshot, exercising the one-time DenseRows export path
// (n ≤ 8192, average degree ≥ 64) against the push kernel.
func TestKernelEquivalenceStaticDense(t *testing.T) {
	n := 512
	g := edgemeg.SampleGNP(n, 0.3, rng.New(7))
	if g.AvgDegree() < 64 {
		t.Fatalf("test graph too sparse for the dense-rows gate: avg degree %.1f", g.AvgDegree())
	}
	push := FloodOpt(NewStatic(g), 3, DefaultRoundCap(n), FloodOptions{Kernel: KernelPush})
	pull := FloodOpt(NewStatic(g), 3, DefaultRoundCap(n), FloodOptions{Kernel: KernelPull})
	sameResult(t, "static-dense", pull, push)
	if !pull.Completed {
		t.Fatal("dense static flood should complete")
	}
}

// TestKernelEquivalenceIncomplete checks both kernels agree on runs
// that hit the round cap (disconnected graph).
func TestKernelEquivalenceIncomplete(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	push := FloodOpt(NewStatic(g), 0, 4, FloodOptions{Kernel: KernelPush})
	pull := FloodOpt(NewStatic(g), 0, 4, FloodOptions{Kernel: KernelPull})
	sameResult(t, "incomplete", pull, push)
	if push.Completed || push.Rounds != 4 {
		t.Fatalf("expected capped incomplete run, got rounds=%d completed=%v", push.Rounds, push.Completed)
	}
}

// TestPullThresholdFor pins the auto switch point derivation.
func TestPullThresholdFor(t *testing.T) {
	if got := pullThresholdFor(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("pullThresholdFor(100) = %v, want 0.1", got)
	}
	if got := pullThresholdFor(0); got != 0.5 {
		t.Fatalf("pullThresholdFor(0) = %v, want 0.5 (degenerate)", got)
	}
	if got := pullThresholdFor(1e9); got != 0.02 {
		t.Fatalf("pullThresholdFor(1e9) = %v, want clamp 0.02", got)
	}
}

// TestParseKernel covers the flag round trip.
func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
	}{{"auto", KernelAuto}, {"push", KernelPush}, {"sparse", KernelPush}, {"pull", KernelPull}, {"dense", KernelPull}, {"", KernelAuto}} {
		got, err := ParseKernel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKernel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseKernel("bogus"); err == nil {
		t.Fatal("bogus kernel accepted")
	}
	if KernelAuto.String() != "auto" || KernelPush.String() != "push" || KernelPull.String() != "pull" {
		t.Fatal("kernel labels wrong")
	}
}

// TestDegreeHinterModels confirms both concrete models provide the
// kernel-switch hint and that it is in a sane range.
func TestDegreeHinterModels(t *testing.T) {
	var d Dynamics = edgemeg.MustNew(edgemeg.Config{N: 100, P: 0.02, Q: 0.5})
	h, ok := d.(DegreeHinter)
	if !ok {
		t.Fatal("edgemeg.Model does not implement DegreeHinter")
	}
	want := 99 * (0.02 / 0.52)
	if math.Abs(h.ExpectedDegree()-want) > 1e-9 {
		t.Fatalf("edge ExpectedDegree = %v, want %v", h.ExpectedDegree(), want)
	}
	d = geommeg.MustNew(geommeg.Config{N: 100, R: 3, MoveRadius: 1})
	h, ok = d.(DegreeHinter)
	if !ok {
		t.Fatal("geommeg.Model does not implement DegreeHinter")
	}
	if deg := h.ExpectedDegree(); deg <= 0 || deg > 99 {
		t.Fatalf("geom ExpectedDegree = %v out of range", deg)
	}
}
