package core

import (
	"meg/internal/bitset"
)

// FloodParsimonious runs the parsimonious (amnesiac) flooding variant
// studied by Baumann, Crescenzi and Fraigniaud on edge-Markovian graphs
// (the paper's reference [4]): a node transmits only for the first
// activeRounds rounds after becoming informed, then falls silent
// forever (it stays informed but stops forwarding). activeRounds = 1 is
// the classic "forward once" protocol; activeRounds ≥ cap recovers
// ordinary flooding.
//
// On a static connected graph parsimonious flooding always completes
// (the frontier carries the message), but on an evolving graph a silent
// informed set can strand the process: a node's neighbors at its active
// time may all be informed already, while future snapshots would have
// offered new ones. Comparing its completion time and success rate
// against ordinary flooding measures how much re-transmission the
// dynamics actually needs.
func FloodParsimonious(d Dynamics, source, activeRounds, maxRounds int) FloodResult {
	n := d.N()
	if source < 0 || source >= n {
		panic("core: flood source out of range")
	}
	if maxRounds <= 0 {
		panic("core: maxRounds must be positive")
	}
	if activeRounds <= 0 {
		panic("core: activeRounds must be positive")
	}
	informed := bitset.New(n)
	informed.Add(source)
	res := FloodResult{
		Source:     source,
		Trajectory: make([]int, 1, 64),
		Informed:   informed,
	}
	res.Trajectory[0] = 1
	if n == 1 {
		res.Completed = true
		return res
	}

	type activeNode struct {
		id        int32
		remaining int32
	}
	active := make([]activeNode, 1, n)
	active[0] = activeNode{int32(source), int32(activeRounds)}
	newly := make([]int32, 0, 64)
	count := 1

	for t := 0; t < maxRounds; t++ {
		if len(active) == 0 {
			// Every informed node has exhausted its budget: the process
			// is dead. Record the stall by keeping the trajectory flat.
			res.Rounds = t
			return res
		}
		g := d.Graph()
		newly = newly[:0]
		for _, a := range active {
			for _, v := range g.Neighbors(int(a.id)) {
				if !informed.Contains(int(v)) {
					informed.Add(int(v))
					newly = append(newly, v)
				}
			}
		}
		// Age the active set and retire exhausted transmitters.
		live := active[:0]
		for _, a := range active {
			a.remaining--
			if a.remaining > 0 {
				live = append(live, a)
			}
		}
		active = live
		for _, v := range newly {
			active = append(active, activeNode{v, int32(activeRounds)})
		}
		count += len(newly)
		res.Trajectory = append(res.Trajectory, count)
		d.Step()
		if count == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
	}
	res.Rounds = maxRounds
	return res
}
