package core

import (
	"testing"

	"meg/internal/graph"
)

func TestParsimoniousEqualsFloodingOnStatic(t *testing.T) {
	// On a static connected graph, even activeRounds = 1 completes in
	// the same number of rounds as ordinary flooding: the frontier
	// always carries the message.
	for _, g := range []*graph.Graph{graph.Path(12), graph.Cycle(15), graph.Star(9), graph.Complete(8)} {
		full := Flood(NewStatic(g), 0, DefaultRoundCap(g.N()))
		pars := FloodParsimonious(NewStatic(g), 0, 1, DefaultRoundCap(g.N()))
		if !pars.Completed {
			t.Fatalf("parsimonious flooding stalled on static graph (n=%d)", g.N())
		}
		if pars.Rounds != full.Rounds {
			t.Fatalf("static: parsimonious %d rounds vs flooding %d", pars.Rounds, full.Rounds)
		}
	}
}

func TestParsimoniousStallsOnEvolvingGraph(t *testing.T) {
	// Nodes 0-1 connected at t=0 only; edge 1-2 appears at t=2, after
	// node 1's one-round budget has expired. Ordinary flooding gets 2
	// informed at t=3 (sequence wraps); parsimonious (k=1) is dead by
	// then and must stall.
	g01 := graph.FromEdges(3, [][2]int{{0, 1}})
	gNone := graph.Empty(3)
	g12 := graph.FromEdges(3, [][2]int{{1, 2}})
	d := NewSequence(g01, gNone, g12, gNone, gNone, gNone)
	res := FloodParsimonious(d, 0, 1, 6)
	if res.Completed {
		t.Fatal("parsimonious flooding should stall")
	}
	if res.Informed.Count() != 2 {
		t.Fatalf("informed = %d, want 2 (node 2 unreachable)", res.Informed.Count())
	}
	// The stall is detected early: the process stops once the active
	// set is empty, well before the round cap.
	if res.Rounds >= 6 {
		t.Fatalf("stall not detected early: rounds = %d", res.Rounds)
	}

	// With budget 3 the same schedule succeeds: node 1 is still active
	// at t=2 when edge 1-2 appears.
	d2 := NewSequence(g01, gNone, g12, gNone, gNone, gNone)
	res2 := FloodParsimonious(d2, 0, 3, 6)
	if !res2.Completed {
		t.Fatal("budget-3 parsimonious flooding should complete")
	}
}

func TestParsimoniousLargeBudgetMatchesFlood(t *testing.T) {
	// With activeRounds ≥ cap, parsimonious flooding is ordinary
	// flooding on any dynamics.
	g0 := graph.FromEdges(4, [][2]int{{0, 1}})
	g1 := graph.FromEdges(4, [][2]int{{1, 2}})
	g2 := graph.FromEdges(4, [][2]int{{2, 3}})
	mk := func() *Sequence { return NewSequence(g0, g1, g2) }
	full := Flood(mk(), 0, 9)
	pars := FloodParsimonious(mk(), 0, 100, 9)
	if full.Rounds != pars.Rounds || full.Completed != pars.Completed {
		t.Fatalf("large budget: %d/%v vs flooding %d/%v",
			pars.Rounds, pars.Completed, full.Rounds, full.Completed)
	}
}

func TestParsimoniousTrajectoryMonotone(t *testing.T) {
	d := NewStatic(graph.Cycle(20))
	res := FloodParsimonious(d, 0, 2, 40)
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] < res.Trajectory[i-1] {
			t.Fatal("trajectory decreased")
		}
	}
}

func TestParsimoniousPanics(t *testing.T) {
	d := NewStatic(graph.Path(3))
	for _, fn := range []func(){
		func() { FloodParsimonious(d, -1, 1, 10) },
		func() { FloodParsimonious(d, 0, 0, 10) },
		func() { FloodParsimonious(d, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParsimoniousSingleNode(t *testing.T) {
	res := FloodParsimonious(NewStatic(graph.Empty(1)), 0, 1, 5)
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("single node: %+v", res)
	}
}
