package core

import (
	"math"
	"strings"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	good := Profile{Hs: []float64{1, 4, 16}, Ks: []float64{3, 1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		p    Profile
		frag string
	}{
		{Profile{Hs: []float64{1}, Ks: nil}, "at least one interval"},
		{Profile{Hs: []float64{1, 4}, Ks: []float64{1, 2}}, "expansion rates"},
		{Profile{Hs: []float64{2, 4}, Ks: []float64{1}}, "h_0 = 1"},
		{Profile{Hs: []float64{1, 8, 4}, Ks: []float64{2, 1}}, "must increase"},
		{Profile{Hs: []float64{1, 4, 16}, Ks: []float64{1, 2}}, "non-increasing"},
		{Profile{Hs: []float64{1, 4}, Ks: []float64{0}}, "positive"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("profile %+v: err = %v, want fragment %q", c.p, err, c.frag)
		}
	}
}

func TestProfileEqualFirstBoundaryAllowed(t *testing.T) {
	// h_0 = h_1 = 1 is allowed by Lemma 2.4 (h_0 ≤ h_1).
	p := Profile{Hs: []float64{1, 1, 8}, Ks: []float64{5, 2}}
	if err := p.Validate(); err != nil {
		t.Fatalf("h_0 = h_1 rejected: %v", err)
	}
}

func TestHalfSumHandComputed(t *testing.T) {
	// Single interval [1, 8] with k = 1: log 8 / log 2 = 3·log2/log2.
	p := Profile{Hs: []float64{1, 8}, Ks: []float64{1}}
	want := math.Log(8) / math.Log(2)
	if got := p.HalfSum(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HalfSum = %v, want %v", got, want)
	}
	// Two intervals.
	p2 := Profile{Hs: []float64{1, 4, 16}, Ks: []float64{3, 1}}
	want2 := math.Log(4)/math.Log(4) + math.Log(4)/math.Log(2)
	if got := p2.HalfSum(); math.Abs(got-want2) > 1e-12 {
		t.Fatalf("HalfSum = %v, want %v", got, want2)
	}
}

func TestFloodBound(t *testing.T) {
	p := Profile{Hs: []float64{1, 8}, Ks: []float64{1}}
	want := 2*p.HalfSum() + 2
	if got := p.FloodBound(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FloodBound = %v, want %v", got, want)
	}
}

func TestKAt(t *testing.T) {
	p := Profile{Hs: []float64{1, 4, 16}, Ks: []float64{3, 1}}
	cases := []struct{ m, want float64 }{
		{1, 3}, {4, 3}, {5, 1}, {16, 1}, {17, 0},
	}
	for _, c := range cases {
		if got := p.KAt(c.m); got != c.want {
			t.Errorf("KAt(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestCorollarySumFormula(t *testing.T) {
	ks := []float64{1, 1, 1}
	want := 1/(1*math.Log(2)) + 1/(2*math.Log(2)) + 1/(3*math.Log(2))
	if got := CorollarySum(ks); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CorollarySum = %v, want %v", got, want)
	}
}

func TestCorollarySumMonotoneInK(t *testing.T) {
	// Larger expansion rates must give a smaller bound.
	weak := CorollarySum([]float64{0.5, 0.5, 0.5, 0.5})
	strong := CorollarySum([]float64{4, 4, 4, 4})
	if strong >= weak {
		t.Fatalf("bound not monotone: strong=%v weak=%v", strong, weak)
	}
}

func TestCorollarySumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive rate")
		}
	}()
	CorollarySum([]float64{1, 0})
}

func TestUnitProfile(t *testing.T) {
	p := UnitProfile([]float64{5, 3, 1})
	if err := p.Validate(); err != nil {
		t.Fatalf("unit profile invalid: %v", err)
	}
	if len(p.Hs) != 4 || p.Hs[0] != 1 || p.Hs[3] != 3 {
		t.Fatalf("Hs = %v", p.Hs)
	}
}

// TestLemma24CycleTightness is the headline sanity check of the whole
// Section 2 machinery: for the static n-cycle, whose exact profile is
// k_i = 2/i, the Corollary 2.6 bound (×2 for both halves) must land
// within a small constant of the true flooding time n/2.
func TestLemma24CycleTightness(t *testing.T) {
	n := 200
	ks := make([]float64, n/2)
	for i := 1; i <= n/2; i++ {
		ks[i-1] = 2 / float64(i)
	}
	bound := 2 * CorollarySum(ks)
	actual := float64(n / 2)
	if bound < actual*0.8 {
		t.Fatalf("bound %v too small for actual %v", bound, actual)
	}
	if bound > actual*3 {
		t.Fatalf("bound %v too loose for actual %v", bound, actual)
	}
}
