package core

import "fmt"

// Phase identifies one timed span of an engine round. The engines
// bracket each span with BeginPhase/EndPhase on the run's PhaseHook
// (when one is set), so an observer can attribute a round's wall time
// to snapshot materialization, the kernel proper, the sharded merge,
// the chain advance, or the incremental delta apply.
type Phase uint8

const (
	// PhaseSnapshot is snapshotter.graph(): materializing the round's
	// G_t (full rebuild, or the lazily maintained incremental view).
	PhaseSnapshot Phase = iota
	// PhaseKernel is the round's frontier computation — the push/pull
	// flooding kernels, a multi-group batch sweep, or a gossip kernel.
	PhaseKernel
	// PhaseMerge is the sharded flooding engine's frontier-merge span, a
	// sub-span nested inside PhaseKernel (serial kernels never emit it).
	PhaseMerge
	// PhaseStep is the chain advance G_t → G_{t+1}: Dynamics.Step, or
	// DeltaDynamics.StepDelta on the delta path.
	PhaseStep
	// PhaseDeltaApply is graph.Mutable.ApplyDelta folding a step's churn
	// into the incrementally maintained snapshot (delta path only).
	PhaseDeltaApply
	// PhaseCount sizes per-phase arrays; it is not a phase.
	PhaseCount
)

// String returns the phase's metric-label spelling.
func (p Phase) String() string {
	switch p {
	case PhaseSnapshot:
		return "snapshot"
	case PhaseKernel:
		return "kernel"
	case PhaseMerge:
		return "merge"
	case PhaseStep:
		return "step"
	case PhaseDeltaApply:
		return "delta_apply"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// RoundStats is the run telemetry a PhaseHook receives after every
// evaluated round: the 1-based round number, the informed-set size
// after the round, and the number of nodes newly informed in it (the
// frontier growth the paper's per-round analysis tracks).
type RoundStats struct {
	Round    int
	Informed int
	Newly    int
}

// PhaseHook observes engine execution: BeginPhase/EndPhase bracket the
// timed spans of each round and RoundDone delivers the round's
// telemetry. Hooks are strictly observational — implementations must
// never feed back into RNG draws, iteration order, or any other
// result-bearing state, which is what keeps hooked runs byte-identical
// to hookless ones (enforced by flood's hook determinism test and the
// metricshooks analyzer's nil-guard discipline: every call site checks
// for nil first, so the zero-hook path costs one predictable branch).
//
// All methods run on the engine goroutine of one run; a hook instance
// is never shared across concurrently running trials.
type PhaseHook interface {
	BeginPhase(Phase)
	EndPhase(Phase)
	RoundDone(RoundStats)
}
