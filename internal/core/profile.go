package core

import (
	"fmt"
	"math"
)

// Profile is a parameterized expansion profile: an increasing sequence
// 1 = h_0 ≤ h_1 < … < h_s = n/2 together with a non-increasing sequence
// k_1 ≥ … ≥ k_s > 0 such that the evolving graph is (h_i, k_i)-expanding
// for every i. It is exactly the hypothesis of Lemma 2.4 / Theorem 2.5.
type Profile struct {
	// Hs holds h_0 … h_s (length s+1, Hs[0] == 1).
	Hs []float64
	// Ks holds k_1 … k_s (length s), aligned so Ks[i-1] pairs with the
	// interval (h_{i-1}, h_i].
	Ks []float64
}

// Validate checks the structural constraints of Lemma 2.4 and returns a
// descriptive error when violated: lengths compatible, Hs increasing
// from 1, Ks positive and non-increasing.
func (p Profile) Validate() error {
	if len(p.Hs) < 2 {
		return fmt.Errorf("core: profile needs at least one interval, got %d boundary values", len(p.Hs))
	}
	if len(p.Ks) != len(p.Hs)-1 {
		return fmt.Errorf("core: profile has %d intervals but %d expansion rates", len(p.Hs)-1, len(p.Ks))
	}
	if p.Hs[0] != 1 {
		return fmt.Errorf("core: profile must start at h_0 = 1, got %g", p.Hs[0])
	}
	for i := 1; i < len(p.Hs); i++ {
		if p.Hs[i] < p.Hs[i-1] || (i > 1 && p.Hs[i] == p.Hs[i-1]) {
			return fmt.Errorf("core: profile boundaries must increase: h_%d=%g, h_%d=%g", i-1, p.Hs[i-1], i, p.Hs[i])
		}
	}
	for i, k := range p.Ks {
		if k <= 0 {
			return fmt.Errorf("core: expansion rate k_%d = %g must be positive", i+1, k)
		}
		if i > 0 && k > p.Ks[i-1] {
			return fmt.Errorf("core: expansion rates must be non-increasing: k_%d=%g > k_%d=%g", i+1, k, i, p.Ks[i-1])
		}
	}
	return nil
}

// HalfSum evaluates the Lemma 2.4 sum
//
//	Σ_{i=1..s} log(h_i/h_{i-1}) / log(1 + k_i)
//
// which bounds (up to the lemma's hidden constant) the number of rounds
// needed to go from 1 to n/2 informed nodes. All logarithms are natural,
// as in the paper.
func (p Profile) HalfSum() float64 {
	var sum float64
	for i := 1; i < len(p.Hs); i++ {
		sum += math.Log(p.Hs[i]/p.Hs[i-1]) / math.Log1p(p.Ks[i-1])
	}
	return sum
}

// FloodBound returns the full Lemma 2.4 flooding-time bound: twice the
// half sum (the lemma's symmetric backward argument shows the second
// half, n/2 → n, costs the same sum again), plus the per-interval
// ceiling slack s (each interval contributes at most one extra rounded
// step). The result is an upper bound in rounds modulo the
// O(1)-per-interval constant the paper absorbs into O(·).
func (p Profile) FloodBound() float64 {
	s := float64(len(p.Ks))
	return 2*p.HalfSum() + 2*s
}

// KAt returns the expansion rate k_i applicable to informed-set size m
// (the rate of the first interval whose upper boundary is ≥ m), or 0 if
// m exceeds h_s.
func (p Profile) KAt(m float64) float64 {
	for i := 1; i < len(p.Hs); i++ {
		if m <= p.Hs[i] {
			return p.Ks[i-1]
		}
	}
	return 0
}

// UnitProfile builds the per-size profile of Corollary 2.6: boundaries
// h_i = i for i = 1..len(ks), pairing rate ks[i-1] with informed-set
// size i. Passing floor(n/2) rates reproduces the corollary's
// hypothesis exactly; evaluate the bound with CorollarySum.
func UnitProfile(ks []float64) Profile {
	hs := make([]float64, len(ks)+1)
	hs[0] = 1
	for i := 1; i <= len(ks); i++ {
		hs[i] = float64(i)
	}
	return Profile{Hs: hs, Ks: ks}
}

// CorollarySum evaluates the Corollary 2.6 bound
//
//	Σ_{i=1..n/2} 1 / (i · log(1 + k_i))
//
// given k_i for i = 1..len(ks) (interpreted as the expansion rate
// at informed-set size i). The flooding time of a stationary MEG whose
// stationary snapshots are (i, k_i)-expanders w.p. 1 − 1/n² is O of this
// sum w.h.p.
func CorollarySum(ks []float64) float64 {
	var sum float64
	for i, k := range ks {
		if k <= 0 {
			panic("core: CorollarySum needs positive rates")
		}
		sum += 1 / (float64(i+1) * math.Log1p(k))
	}
	return sum
}
