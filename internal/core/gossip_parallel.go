package core

import (
	"math/bits"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/par"
	"meg/internal/rng"
)

// gossipEngine is the shard-parallel gossip scratch: the flooding
// shardEngine's per-worker frontier bitmaps and newly lists, plus
// per-shard message counters. Every round runs as fork/join phases
// over contiguous shards with shard outputs combined in shard order,
// and — because every random decision is keyed by (node, round), never
// by scan order — the GossipResult is byte-identical to the serial
// kernels' for every worker count.
type gossipEngine struct {
	*shardEngine
	msgs []int64
}

func newGossipEngine(n, workers int) *gossipEngine {
	return &gossipEngine{
		shardEngine: newShardEngine(n, workers),
		msgs:        make([]int64, workers),
	}
}

// addMessages reduces the first `used` shards' message counters into
// the run total (a sum, so shard order is immaterial).
func (e *gossipEngine) addMessages(used int, messages *int64) {
	for shard := 0; shard < used; shard++ {
		*messages += e.msgs[shard]
	}
}

// pushGossipRound is the sharded push-gossip kernel: the senders list
// is split into contiguous shards, each worker drawing its senders'
// targets from their (node, round) streams and marking uninformed hits
// in its private frontier; the shared merge phase applies the union in
// node order.
func (e *gossipEngine) pushGossipRound(g *graph.Graph, senders []int32, informed *bitset.Set, arrival []int32, base uint64, t int, newly []int32, messages *int64) []int32 {
	words := informed.MutableWords()
	e.reset()
	used := e.workers
	if used > len(senders) {
		used = len(senders)
	}
	par.ForBlocks(e.workers, len(senders), func(shard, lo, hi int) {
		f := e.frontiers[shard]
		for i := range f {
			f[i] = 0
		}
		var m int64
		for _, u := range senders[lo:hi] {
			nbrs := g.Neighbors(int(u))
			if len(nbrs) == 0 {
				continue
			}
			m++
			lr := rng.At(base, uint64(u), uint64(t))
			v := nbrs[lr.Intn(len(nbrs))]
			if words[v>>6]&(1<<(uint(v)&63)) == 0 {
				f[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		e.msgs[shard] = m
	})
	e.addMessages(used, messages)
	return e.mergeFrontiers(e.frontiers[:used], words, arrival, t, newly)
}

// pushPullRound is the sharded push-pull kernel: the node space is
// split into contiguous ranges, every node draws its partner from its
// (node, round) stream, and both push hits (anywhere in the node
// space) and pull hits (the scanning node itself) go to the worker's
// private frontier. The informed words are read-only during the scan —
// all decisions see the round-start set — and the shared merge applies
// the union after the join.
func (e *gossipEngine) pushPullRound(g *graph.Graph, informed *bitset.Set, arrival []int32, base uint64, t int, newly []int32, messages *int64) []int32 {
	words := informed.MutableWords()
	n := informed.Len()
	e.reset()
	used := e.workers
	if used > n {
		used = n
	}
	par.ForBlocks(e.workers, n, func(shard, lo, hi int) {
		f := e.frontiers[shard]
		for i := range f {
			f[i] = 0
		}
		var m int64
		for u := lo; u < hi; u++ {
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 {
				continue
			}
			lr := rng.At(base, uint64(u), uint64(t))
			v := int(nbrs[lr.Intn(len(nbrs))])
			m++
			if words[u>>6]&(1<<(uint(u)&63)) != 0 {
				if words[v>>6]&(1<<(uint(v)&63)) == 0 {
					f[v>>6] |= 1 << (uint(v) & 63)
				}
			} else if words[v>>6]&(1<<(uint(v)&63)) != 0 {
				f[u>>6] |= 1 << (uint(u) & 63)
			}
		}
		e.msgs[shard] = m
	})
	e.addMessages(used, messages)
	return e.mergeFrontiers(e.frontiers[:used], words, arrival, t, newly)
}

// lossyRound is the sharded lossy-flood kernel: the uninformed side is
// split into contiguous shards — word ranges of the complement while
// the uninformed set is large, ranges of the shrinking active-set list
// in the straggler regime — each worker deciding its own nodes'
// deliveries from their (node, round) streams (the whole per-node scan
// lives inside one shard, so the stream is consumed in adjacency order
// exactly as in the serial kernel). Hits are applied after the join,
// in shard order.
func (e *gossipEngine) lossyRound(g *graph.Graph, informed *bitset.Set, arrival []int32, base uint64, t int, loss float64, newly []int32, uninformed int) []int32 {
	words := informed.MutableWords()
	n := informed.Len()
	e.reset()
	if e.uninf.enabled(words, n, uninformed) {
		list := e.uninf.nodes
		par.ForBlocks(e.workers, len(list), func(shard, lo, hi int) {
			out := e.newly[shard][:0]
			for _, v := range list[lo:hi] {
				if scanLossy(g, words, int(v), base, t, loss) {
					arrival[v] = int32(t + 1)
					out = append(out, v)
				}
			}
			e.newly[shard] = out
		})
		start := len(newly)
		newly = e.applyPull(words, newly)
		if len(newly) > start {
			// No deliveries → the list is unchanged; skip compaction.
			e.uninf.compact(words)
		}
		return newly
	}
	par.ForBlocks(e.workers, e.words, func(shard, lo, hi int) {
		out := e.newly[shard][:0]
		for wi := lo; wi < hi; wi++ {
			rem := ^words[wi]
			if rem == 0 {
				continue
			}
			wbase := wi * 64
			for rem != 0 {
				b := bits.TrailingZeros64(rem)
				rem &= rem - 1
				v := wbase + b
				if v >= n {
					break
				}
				if scanLossy(g, words, v, base, t, loss) {
					arrival[v] = int32(t + 1)
					out = append(out, int32(v))
				}
			}
		}
		e.newly[shard] = out
	})
	return e.applyPull(words, newly)
}
