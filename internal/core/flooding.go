package core

import (
	"meg/internal/bitset"
	"meg/internal/rng"
)

// FloodResult records one run of the flooding process.
type FloodResult struct {
	// Source is the initiator node s with I_0 = {s}.
	Source int
	// Rounds is the completion time T(s): the first time step at which
	// every node is informed. If the run hit the round cap before
	// completing, Rounds equals the cap and Completed is false.
	Rounds int
	// Completed reports whether all nodes were informed within the cap.
	Completed bool
	// Trajectory[t] = |I_t|, the number of informed nodes after t
	// rounds; Trajectory[0] == 1 and, when Completed, the final entry
	// equals n.
	Trajectory []int
	// Informed is the final informed set (owned by the caller after
	// Flood returns).
	Informed *bitset.Set
	// Arrival[v] is the round at which v became informed (0 for the
	// source), or -1 if v was never informed. In temporal-graph terms
	// this is the earliest-arrival (foremost journey) time from the
	// source, of which the flooding time is the maximum.
	Arrival []int32
}

// Eccentricity returns the largest finite arrival time — the temporal
// eccentricity of the source. For a completed run it equals Rounds.
func (r FloodResult) Eccentricity() int {
	worst := 0
	for _, a := range r.Arrival {
		if int(a) > worst {
			worst = int(a)
		}
	}
	return worst
}

// GrowthFactors returns the per-round multiplicative growth
// m_{t+1}/m_t of the informed-set size, the quantity Lemma 2.4 bounds
// below by 1+k_i while |I_t| ≤ h_i.
func (r FloodResult) GrowthFactors() []float64 {
	if len(r.Trajectory) < 2 {
		return nil
	}
	out := make([]float64, len(r.Trajectory)-1)
	for t := 0; t+1 < len(r.Trajectory); t++ {
		out[t] = float64(r.Trajectory[t+1]) / float64(r.Trajectory[t])
	}
	return out
}

// RoundsToHalf returns the first t with |I_t| ≥ n/2, or -1 if the run
// never got that far. The paper's analysis splits at n/2; measuring the
// split point lets experiments test both phases.
func (r FloodResult) RoundsToHalf(n int) int {
	for t, m := range r.Trajectory {
		if 2*m >= n {
			return t
		}
	}
	return -1
}

// Flood runs the flooding process of Section 2 on d starting from
// source: I_0 = {source}; thereafter I_{t+1} = I_t ∪ N(I_t) where the
// out-neighborhood is taken in the snapshot G_t, and the chain then
// advances. It stops as soon as all nodes are informed or after
// maxRounds rounds, whichever comes first.
//
// Flood does not Reset d: the caller controls the initial distribution
// (stationary or otherwise). On return the dynamics is positioned at
// the time step following the last evaluated snapshot.
//
// maxRounds must be positive; a cap of 4n is a safe default for
// connected-regime experiments (see DefaultRoundCap).
func Flood(d Dynamics, source, maxRounds int) FloodResult {
	n := d.N()
	if source < 0 || source >= n {
		panic("core: flood source out of range")
	}
	if maxRounds <= 0 {
		panic("core: maxRounds must be positive")
	}
	informed := bitset.New(n)
	informed.Add(source)
	arrival := make([]int32, n)
	for i := range arrival {
		arrival[i] = -1
	}
	arrival[source] = 0
	res := FloodResult{
		Source:     source,
		Trajectory: make([]int, 1, 64),
		Informed:   informed,
		Arrival:    arrival,
	}
	res.Trajectory[0] = 1
	if n == 1 {
		res.Completed = true
		return res
	}
	// senders holds exactly the nodes of I_t; nodes discovered during
	// round t are appended only after the round completes, enforcing
	// the paper's synchronous semantics (a node informed at step t does
	// not transmit until step t+1).
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	newly := make([]int32, 0, 256)
	for t := 0; t < maxRounds; t++ {
		g := d.Graph()
		newly = newly[:0]
		for _, u := range senders {
			for _, v := range g.Neighbors(int(u)) {
				if !informed.Contains(int(v)) {
					informed.Add(int(v))
					arrival[v] = int32(t + 1)
					newly = append(newly, v)
				}
			}
		}
		senders = append(senders, newly...)
		res.Trajectory = append(res.Trajectory, len(senders))
		d.Step()
		if len(senders) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
	}
	res.Rounds = maxRounds
	return res
}

// DefaultRoundCap returns a generous cap on flooding rounds for a graph
// on n nodes: 4n + 32. Any connected-regime process in this repository
// finishes orders of magnitude sooner; hitting the cap signals a
// disconnected or sub-threshold configuration.
func DefaultRoundCap(n int) int { return 4*n + 32 }

// FloodingTime estimates the flooding time of d — the maximum of T(s)
// over sources s — by running the process from each of the given
// sources, resetting d with a child of r before each run. It returns
// the worst (largest) result. For node-transitive stationary models a
// small sample of sources converges quickly to the true maximum; tests
// on small graphs pass all n sources for exactness.
func FloodingTime(d Dynamics, sources []int, maxRounds int, r *rng.RNG) FloodResult {
	if len(sources) == 0 {
		panic("core: FloodingTime needs at least one source")
	}
	var worst FloodResult
	for i, s := range sources {
		d.Reset(r.Split())
		res := Flood(d, s, maxRounds)
		if i == 0 || beats(res, worst) {
			worst = res
		}
	}
	return worst
}

// beats reports whether a is a worse (slower) outcome than b, treating
// any incomplete run as worse than any complete one.
func beats(a, b FloodResult) bool {
	if a.Completed != b.Completed {
		return !a.Completed
	}
	return a.Rounds > b.Rounds
}
