package core

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/rng"
)

// FloodResult records one run of the flooding process.
type FloodResult struct {
	// Source is the initiator node s with I_0 = {s}.
	Source int
	// Rounds is the completion time T(s): the first time step at which
	// every node is informed. If the run hit the round cap before
	// completing, Rounds equals the cap and Completed is false.
	Rounds int
	// Completed reports whether all nodes were informed within the cap.
	Completed bool
	// Trajectory[t] = |I_t|, the number of informed nodes after t
	// rounds; Trajectory[0] == 1 and, when Completed, the final entry
	// equals n.
	Trajectory []int
	// Informed is the final informed set (owned by the caller after
	// Flood returns).
	Informed *bitset.Set
	// Arrival[v] is the round at which v became informed (0 for the
	// source), or -1 if v was never informed. In temporal-graph terms
	// this is the earliest-arrival (foremost journey) time from the
	// source, of which the flooding time is the maximum.
	Arrival []int32
}

// Eccentricity returns the largest finite arrival time — the temporal
// eccentricity of the source. For a completed run it equals Rounds.
func (r FloodResult) Eccentricity() int {
	worst := 0
	for _, a := range r.Arrival {
		if int(a) > worst {
			worst = int(a)
		}
	}
	return worst
}

// GrowthFactors returns the per-round multiplicative growth
// m_{t+1}/m_t of the informed-set size, the quantity Lemma 2.4 bounds
// below by 1+k_i while |I_t| ≤ h_i.
func (r FloodResult) GrowthFactors() []float64 {
	if len(r.Trajectory) < 2 {
		return nil
	}
	out := make([]float64, len(r.Trajectory)-1)
	for t := 0; t+1 < len(r.Trajectory); t++ {
		out[t] = float64(r.Trajectory[t+1]) / float64(r.Trajectory[t])
	}
	return out
}

// RoundsToHalf returns the first t with |I_t| ≥ n/2, or -1 if the run
// never got that far. The paper's analysis splits at n/2; measuring the
// split point lets experiments test both phases.
func (r FloodResult) RoundsToHalf(n int) int {
	for t, m := range r.Trajectory {
		if 2*m >= n {
			return t
		}
	}
	return -1
}

// Kernel selects the per-round strategy for computing N(I_t).
type Kernel int

const (
	// KernelAuto is the direction-optimizing default: push while the
	// informed set is small, switch to pull once it passes the
	// configured threshold fraction of n. Both kernels compute exactly
	// I_{t+1} = I_t ∪ N(I_t), so the choice affects speed only.
	KernelAuto Kernel = iota
	// KernelPush always scans the adjacency lists of informed senders
	// (the sparse kernel): O(Σ_{u∈I_t} deg u) per round.
	KernelPush
	// KernelPull always scans uninformed receivers (the dense kernel):
	// each uninformed node checks its own adjacency row for an informed
	// neighbor, with early exit on the first hit. The uninformed side is
	// enumerated word-parallel from the informed bitset's complement.
	KernelPull
)

// String returns the kernel's flag spelling.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelPush:
		return "push"
	case KernelPull:
		return "pull"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel converts a flag value into a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return KernelAuto, nil
	case "push", "sparse":
		return KernelPush, nil
	case "pull", "dense":
		return KernelPull, nil
	default:
		return KernelAuto, fmt.Errorf("core: unknown kernel %q (want auto|push|pull)", s)
	}
}

// pullThresholdFor derives KernelAuto’s push→pull switch fraction
// from an average-degree estimate: the switch point that balances the
// two kernels’ expected costs is f* ≈ 1/√d̄ for average degree d̄
// (push costs ≈ f·n·d̄ probes, pull costs ≈ (1−f)·n·min(d̄, 1/f) with
// early exit), clamped to [0.02, 0.5].
func pullThresholdFor(avgDeg float64) float64 {
	if avgDeg <= 1 || math.IsNaN(avgDeg) {
		return 0.5
	}
	f := 1 / math.Sqrt(avgDeg)
	if f < 0.02 {
		return 0.02
	}
	if f > 0.5 {
		return 0.5
	}
	return f
}

// DegreeHinter is optionally implemented by Dynamics whose expected
// snapshot degree is known in closed form (e.g. (n−1)·p̂ for the
// stationary edge-MEG). The hint positions KernelAuto's push→pull
// switch without per-round measurement; it has no effect on results.
type DegreeHinter interface {
	ExpectedDegree() float64
}

// FloodOptions tunes the flooding engine. The zero value (KernelAuto,
// derived threshold) is the right choice almost always.
type FloodOptions struct {
	// Kernel selects the per-round strategy (default KernelAuto).
	Kernel Kernel
	// PullThreshold overrides the informed-set fraction at which
	// KernelAuto switches push→pull. ≤ 0 means derive it — 1/√d̄
	// clamped to [0.02, 0.5] — from the dynamics' DegreeHinter if
	// implemented, else from each snapshot's average degree. Values > 1
	// effectively pin KernelAuto to push.
	PullThreshold float64
	// Parallelism is the intra-trial worker count of the sharded
	// engine: node space and sender lists are split into contiguous
	// shards, each worker writes a private frontier word-range, and the
	// per-round merge applies shard outputs in shard order — so the
	// FloodResult is byte-identical for every value, including 1.
	// 0 or 1 runs the plain serial kernels; < 0 uses all CPUs. If the
	// dynamics implements Parallelizable it is handed the same worker
	// count for its snapshot builds.
	Parallelism int
	// Snapshot selects the per-round snapshot path: SnapshotFull (the
	// default) rebuilds via Dynamics.Graph every round, SnapshotDelta
	// maintains the snapshot incrementally from DeltaDynamics.StepDelta,
	// rebuilding only the rows each round's churn touches. Dynamics
	// without delta support fall back to the full path transparently;
	// results are byte-identical either way.
	Snapshot SnapshotMode
	// Stop, if non-nil, is polled once per round; when it returns true
	// the run aborts immediately with Completed == false and Rounds set
	// to the cap (indistinguishable from hitting the cap, which is the
	// right reading for a cancelled run). Polling is O(1) per round, so
	// cancellation latency is one flooding round.
	Stop func() bool
	// Progress, if non-nil, is called after every evaluated round with
	// the round number t+1 and |I_{t+1}|. It runs on the flooding
	// goroutine; keep it cheap.
	Progress func(round, informed int)
	// Hook, if non-nil, observes the run: phase timing spans and
	// per-round telemetry (see PhaseHook). Hooks are observational only
	// and every call site is nil-guarded, so results are byte-identical
	// with or without one and the zero-hook path costs a branch.
	Hook PhaseHook
}

// Flood runs the flooding process of Section 2 on d starting from
// source: I_0 = {source}; thereafter I_{t+1} = I_t ∪ N(I_t) where the
// out-neighborhood is taken in the snapshot G_t, and the chain then
// advances. It stops as soon as all nodes are informed or after
// maxRounds rounds, whichever comes first.
//
// Flood does not Reset d: the caller controls the initial distribution
// (stationary or otherwise). On return the dynamics is positioned at
// the time step following the last evaluated snapshot.
//
// maxRounds must be positive; a cap of 4n is a safe default for
// connected-regime experiments (see DefaultRoundCap).
//
// Flood uses the direction-optimizing engine with default options; use
// FloodOpt to pin a kernel or move the push/pull switch point.
func Flood(d Dynamics, source, maxRounds int) FloodResult {
	return FloodOpt(d, source, maxRounds, FloodOptions{})
}

// FloodOpt is Flood with explicit engine options. All kernels produce
// bit-identical FloodResults on the same dynamics state and RNG stream
// (the kernels never draw randomness; only the dynamics does).
func FloodOpt(d Dynamics, source, maxRounds int, opt FloodOptions) FloodResult {
	n := d.N()
	if source < 0 || source >= n {
		panic("core: flood source out of range")
	}
	if maxRounds <= 0 {
		panic("core: maxRounds must be positive")
	}
	informed := bitset.New(n)
	informed.Add(source)
	arrival := make([]int32, n)
	for i := range arrival {
		arrival[i] = -1
	}
	arrival[source] = 0
	res := FloodResult{
		Source:     source,
		Trajectory: make([]int, 1, 64),
		Informed:   informed,
		Arrival:    arrival,
	}
	res.Trajectory[0] = 1
	if n == 1 {
		res.Completed = true
		return res
	}
	thresh := opt.PullThreshold
	if thresh <= 0 {
		if h, ok := d.(DegreeHinter); ok {
			thresh = pullThresholdFor(h.ExpectedDegree())
		}
	}
	workers := engineWorkers(opt.Parallelism, d)
	snap := newSnapshotter(d, opt.Snapshot, workers, opt.Hook)
	defer snap.release()
	var eng *shardEngine
	if workers > 1 {
		eng = newShardEngine(n, workers)
		eng.hook = opt.Hook
	}
	// Once the engine pulls it can afford a dense-row export and test
	// "informed neighbor?" by word-parallel row intersection. For the
	// static baseline the snapshot never changes so the export is paid
	// once; on the delta path the Mutable keeps the attached matrix
	// coherent via O(churn) bit flips, so the export is likewise paid
	// once per run instead of once per snapshot.
	st, isStatic := d.(*Static)
	var rows *graph.DenseRows
	rowsProbed := false
	var uninf activeSet
	// senders holds exactly the nodes of I_t; nodes discovered during
	// round t are appended only after the round completes, enforcing
	// the paper's synchronous semantics (a node informed at step t does
	// not transmit until step t+1).
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	newly := make([]int32, 0, 256)
	h := opt.Hook
	for t := 0; t < maxRounds; t++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		g := snap.graph()
		if h != nil {
			h.BeginPhase(PhaseKernel)
		}
		pull := false
		switch opt.Kernel {
		case KernelPull:
			pull = true
		case KernelPush:
			// never pull
		default:
			th := thresh
			if th <= 0 {
				th = pullThresholdFor(g.AvgDegree())
			}
			pull = float64(len(senders)) >= th*float64(n)
		}
		newly = newly[:0]
		if pull {
			if !rowsProbed {
				rowsProbed = true
				// Arm the active set's skip layer where a row-change
				// oracle exists: static snapshots never change a row, the
				// delta path compares the Mutable's per-row epoch stamps
				// inline, and the full dynamic path leaves the layer off
				// (rows may change arbitrarily per round).
				act := &uninf
				if eng != nil {
					act = &eng.uninf
				}
				if isStatic {
					if denseRowsWorthwhile(st.G) {
						rows = graph.NewDenseRowsParallel(st.G, workers)
					}
					act.skipOn = true
				} else if mut := snap.mutable(); mut != nil {
					if denseRowsWorthwhile(g) {
						rows = graph.NewDenseRowsParallel(g, workers)
						mut.SetDenseRows(rows)
					}
					act.skipOn = true
					act.stamps = mut.RowStamps()
					act.epoch = mut.Epoch
				}
			}
			if eng != nil {
				newly = eng.pullRound(g, rows, informed, arrival, t, newly, n-len(senders))
			} else {
				newly = pullRound(g, rows, informed, arrival, t, newly, &uninf, n-len(senders))
			}
		} else if eng != nil {
			newly = eng.pushRound(g, senders, informed, arrival, t, newly)
		} else {
			for _, u := range senders {
				for _, v := range g.Neighbors(int(u)) {
					if !informed.Contains(int(v)) {
						informed.Add(int(v))
						arrival[v] = int32(t + 1)
						newly = append(newly, v)
					}
				}
			}
		}
		if h != nil {
			h.EndPhase(PhaseKernel)
		}
		senders = append(senders, newly...)
		res.Trajectory = append(res.Trajectory, len(senders))
		snap.step()
		if opt.Progress != nil {
			opt.Progress(t+1, len(senders))
		}
		if h != nil {
			h.RoundDone(RoundStats{Round: t + 1, Informed: len(senders), Newly: len(newly)})
		}
		if len(senders) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
	}
	res.Rounds = maxRounds
	return res
}

// pullRound computes one round of I_{t+1} = I_t ∪ N(I_t) from the
// receivers' side: every uninformed node scans its own adjacency for an
// informed neighbor, stopping at the first hit. Nodes discovered this
// round are recorded in newly and added to informed only after the
// sweep, so the informed words seen during the scan are exactly I_t —
// the same synchronous semantics the push kernel enforces via its
// senders list. The uninformed side is enumerated word-parallel from
// the complement of the informed bitset while it is large, and from the
// shrinking active-set list once the run crosses into the straggler
// regime; both visit the same nodes in the same ascending order, so the
// result is byte-identical either way. With rows non-nil the membership
// scan is a word-parallel row∧informed intersection instead of a CSR
// walk. Once the list is active and the snapshot's row-change oracle is
// available (see activeSet), steady rounds probe only the nodes the
// previous frontier or the churn actually touched — skipped nodes are
// provably still uninformed, so arrivals are unchanged.
func pullRound(g *graph.Graph, rows *graph.DenseRows, informed *bitset.Set, arrival []int32, t int, newly []int32, act *activeSet, uninformed int) []int32 {
	words := informed.Words()
	n := informed.Len()
	if act.enabled(words, n, uninformed) {
		if act.skipping() {
			// Slice headers hoisted out of the loops: the walk over the
			// list is the whole cost of a stalled straggler round, and
			// the element writes below keep the compiler from caching
			// fields of act across iterations on its own.
			marks := act.marks
			if act.stamps == nil {
				// Static snapshot: rows never change, so the only
				// candidates are neighbors of the previous frontier.
				for _, v := range act.nodes {
					if !marks[v] {
						continue
					}
					marks[v] = false
					if pullHit(g, rows, words, informed, int(v)) {
						arrival[v] = int32(t + 1)
						newly = append(newly, v)
					}
				}
			} else {
				stamps, epoch := act.stamps, act.epoch()
				for _, v := range act.nodes {
					if !marks[v] && stamps[v] != epoch {
						continue
					}
					marks[v] = false
					if pullHit(g, rows, words, informed, int(v)) {
						arrival[v] = int32(t + 1)
						newly = append(newly, v)
					}
				}
			}
		} else {
			for _, v := range act.nodes {
				if pullHit(g, rows, words, informed, int(v)) {
					arrival[v] = int32(t + 1)
					newly = append(newly, v)
				}
			}
		}
		for _, v := range newly {
			informed.Add(int(v))
		}
		act.markNeighbors(g, newly)
		if len(newly) > 0 {
			// A round with no discoveries leaves the list untouched —
			// skipping the compaction walk keeps stalled straggler
			// rounds at O(candidates) instead of O(|list|).
			act.compact(words)
		}
		return newly
	}
	for wi, w := range words {
		rem := ^w
		if rem == 0 {
			continue
		}
		base := wi * 64
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			rem &= rem - 1
			v := base + b
			if v >= n {
				break
			}
			if pullHit(g, rows, words, informed, v) {
				arrival[v] = int32(t + 1)
				newly = append(newly, int32(v))
			}
		}
	}
	for _, v := range newly {
		informed.Add(int(v))
	}
	return newly
}

// pullHit reports whether uninformed node v has an informed neighbor
// in the round-start set: a word-parallel row∧informed intersection
// when rows is attached, else a CSR walk with first-hit early exit.
func pullHit(g *graph.Graph, rows *graph.DenseRows, words []uint64, informed *bitset.Set, v int) bool {
	if rows != nil {
		return rows.Intersects(v, informed)
	}
	for _, u := range g.Neighbors(v) {
		if words[u>>6]&(1<<(uint(u)&63)) != 0 {
			return true
		}
	}
	return false
}

// denseRowsWorthwhile gates the one-time bit-matrix export for static
// snapshots: worthwhile when a dense row (n/64 words) undercuts the
// average CSR row and the matrix stays comfortably in cache-friendly
// territory (n ≤ 8192 ⇒ ≤ 8 MiB).
func denseRowsWorthwhile(g *graph.Graph) bool {
	return g.N() <= 8192 && g.AvgDegree() >= 64
}

// Round-cap constants: the default cap is
// max(minRoundCap, roundCapC · ⌈log₂ n⌉ · roundCapGrowthGuard, ⌈√n⌉).
// Connected-regime flooding completes in O(log n) rounds (edge-MEG,
// Corollary 4.5) or Θ(√n/R) = Θ(√(n/log n)) rounds (geometric-MEG,
// Theorem 3.4 — about 100 rounds at n = 512k with the default radius).
// The c·log₂(n)·guard term covers both with an order of magnitude of
// headroom through every n this repository simulates, and the ⌈√n⌉
// term keeps the cap above the geometric models' diameter-limited
// growth asymptotically (√n ≥ √(n/log n)·anything sensible), so no
// healthy default-parameter flood can hit the cap at any n. A stalled
// run still stops quickly: the previous linear cap of 4n+32 spun a
// stalled 512k-node flood for ~2M rounds; the guarded cap stops it
// after 1216.
const (
	minRoundCap         = 64
	roundCapC           = 4
	roundCapGrowthGuard = 16
)

// DefaultRoundCap returns the default cap on flooding rounds for a
// graph on n nodes: max(64, 64·⌈log₂ n⌉, ⌈√n⌉). Any connected-regime
// process in this repository finishes well below it; hitting the cap
// signals a disconnected or sub-threshold configuration. Processes that
// legitimately need more rounds — sub-threshold ablations, tiny
// transmission radii, long static paths — must pass an explicit
// MaxRounds (every API that consumes the default, from core.Flood
// through flood.Options to the run spec, accepts an override).
func DefaultRoundCap(n int) int {
	if n < 2 {
		return minRoundCap
	}
	c := roundCapC * roundCapGrowthGuard * bits.Len(uint(n-1)) // ⌈log₂ n⌉
	if s := int(math.Ceil(math.Sqrt(float64(n)))); s > c {
		c = s // diameter guard for the geometric models at huge n
	}
	if c < minRoundCap {
		c = minRoundCap
	}
	return c
}

// FloodingTime estimates the flooding time of d — the maximum of T(s)
// over sources s — by running the process from each of the given
// sources, resetting d with a child of r before each run. It returns
// the worst (largest) result. For node-transitive stationary models a
// small sample of sources converges quickly to the true maximum; tests
// on small graphs pass all n sources for exactness.
func FloodingTime(d Dynamics, sources []int, maxRounds int, r *rng.RNG) FloodResult {
	return FloodingTimeOpt(d, sources, maxRounds, r, FloodOptions{})
}

// FloodingTimeOpt is FloodingTime with explicit engine options.
func FloodingTimeOpt(d Dynamics, sources []int, maxRounds int, r *rng.RNG, opt FloodOptions) FloodResult {
	if len(sources) == 0 {
		panic("core: FloodingTime needs at least one source")
	}
	var worst FloodResult
	for i, s := range sources {
		d.Reset(r.Split())
		res := FloodOpt(d, s, maxRounds, opt)
		if i == 0 || beats(res, worst) {
			worst = res
		}
	}
	return worst
}

// WorstResult returns the worst (slowest) of the given results, with
// any incomplete run beating any complete one — the max that defines
// flooding time. It panics on an empty slice.
func WorstResult(results []FloodResult) FloodResult {
	if len(results) == 0 {
		panic("core: WorstResult needs at least one result")
	}
	worst := results[0]
	for _, res := range results[1:] {
		if beats(res, worst) {
			worst = res
		}
	}
	return worst
}

// beats reports whether a is a worse (slower) outcome than b, treating
// any incomplete run as worse than any complete one.
func beats(a, b FloodResult) bool {
	if a.Completed != b.Completed {
		return !a.Completed
	}
	return a.Rounds > b.Rounds
}
