package core

import (
	"testing"
	"testing/quick"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/rng"
)

// neighborhoodBruteForce recomputes |N(I)| from the definition.
func neighborhoodBruteForce(g *graph.Graph, members []int) int {
	in := map[int]bool{}
	for _, u := range members {
		in[u] = true
	}
	out := map[int]bool{}
	for _, u := range members {
		for _, v := range g.Neighbors(u) {
			if !in[int(v)] {
				out[int(v)] = true
			}
		}
	}
	return len(out)
}

func TestNeighborhoodSizeKnown(t *testing.T) {
	g := graph.Cycle(10)
	// A contiguous arc of a cycle has exactly 2 outside neighbors.
	if got := NeighborhoodSize(g, []int{0, 1, 2}, nil, nil); got != 2 {
		t.Fatalf("arc neighborhood = %d, want 2", got)
	}
	// Two separated arcs have 4.
	if got := NeighborhoodSize(g, []int{0, 1, 5, 6}, nil, nil); got != 4 {
		t.Fatalf("two-arc neighborhood = %d, want 4", got)
	}
	// The full cycle has none.
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if got := NeighborhoodSize(g, all, nil, nil); got != 0 {
		t.Fatalf("full-set neighborhood = %d, want 0", got)
	}
}

func TestNeighborhoodSizeAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(30)
		b := graph.NewBuilder(n)
		seen := map[[2]int]bool{}
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		g := b.Build()
		k := 1 + r.Intn(n/2+1)
		members := r.Sample(n, k)
		inSet := bitset.New(n)
		for _, u := range members {
			inSet.Add(u)
		}
		got := NeighborhoodSize(g, members, inSet, nil)
		return got == neighborhoodBruteForce(g, members)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodSizeScratchReuse(t *testing.T) {
	g := graph.Complete(6)
	mark := bitset.New(6)
	a := NeighborhoodSize(g, []int{0}, nil, mark)
	b := NeighborhoodSize(g, []int{1, 2}, nil, mark)
	if a != 5 || b != 4 {
		t.Fatalf("reuse gave %d, %d", a, b)
	}
}

func TestSetExpansion(t *testing.T) {
	g := graph.Complete(10)
	// |N(I)| = n - |I| on a complete graph.
	if got := SetExpansion(g, []int{0, 1}); got != 4 {
		t.Fatalf("K10 expansion of pair = %v, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetExpansion(empty) did not panic")
		}
	}()
	SetExpansion(g, nil)
}

func TestIsExpanderOn(t *testing.T) {
	g := graph.Cycle(12)
	candidates := [][]int{{0}, {0, 1}, {0, 1, 2}, {4, 5, 6, 7}}
	// Every arc of size ≤ h has |N| = 2 ≥ (2/h)·|I| for |I| ≤ h.
	if !IsExpanderOn(g, 4, 0.5, candidates) {
		t.Fatal("cycle should be a (4, 0.5)-expander on arcs")
	}
	// k = 3 fails already for the pair {0,1}: |N| = 2 < 3·2.
	if IsExpanderOn(g, 4, 3, candidates) {
		t.Fatal("cycle should not be a (4, 3)-expander")
	}
	// Oversized or empty candidates are ignored.
	big := make([]int, 6)
	for i := range big {
		big[i] = i
	}
	if !IsExpanderOn(g, 4, 0.5, [][]int{big, {}}) {
		t.Fatal("oversized and empty candidate sets must be skipped")
	}
}
