package core

import (
	"fmt"
	"math/bits"
	"strings"

	"meg/internal/bitset"
	"meg/internal/graph"
	"meg/internal/rng"
)

// GossipProtocol selects one of the bitset-frontier protocol kernels —
// the rumor-spreading / gossip family the paper frames flooding as the
// latency lower bound of (Section 1; Clementi et al., arXiv:1302.3828
// and arXiv:1111.0583 study exactly these processes on evolving
// graphs). Flooding itself runs on the dedicated engine (FloodOpt).
type GossipProtocol int

const (
	// GossipPush is push rumor spreading: every informed node sends to
	// one uniformly random current neighbor per round.
	GossipPush GossipProtocol = iota
	// GossipPushPull adds the pull direction: uninformed nodes query one
	// random neighbor and learn the message if that neighbor is informed.
	GossipPushPull
	// GossipProbFlood is Gnutella-style probabilistic flooding: a node
	// forwards to all neighbors for one round upon becoming informed,
	// and only with probability Beta (the source always forwards).
	GossipProbFlood
	// GossipLossyFlood is flooding with every transmission independently
	// lost with probability Loss.
	GossipLossyFlood
)

// String returns the protocol's canonical spec spelling.
func (p GossipProtocol) String() string {
	switch p {
	case GossipPush:
		return "push"
	case GossipPushPull:
		return "push-pull"
	case GossipProbFlood:
		return "probabilistic"
	case GossipLossyFlood:
		return "lossy"
	default:
		return fmt.Sprintf("GossipProtocol(%d)", int(p))
	}
}

// ParseGossip converts a protocol name (the spec spelling or its
// aliases) into a GossipProtocol. "flooding" is rejected: flooding runs
// on the flooding engine, not the gossip one.
func ParseGossip(name string) (GossipProtocol, error) {
	switch strings.ToLower(name) {
	case "push", "push-gossip":
		return GossipPush, nil
	case "push-pull", "pushpull":
		return GossipPushPull, nil
	case "probabilistic", "prob":
		return GossipProbFlood, nil
	case "lossy":
		return GossipLossyFlood, nil
	default:
		return 0, fmt.Errorf("core: unknown gossip protocol %q (want push|push-pull|probabilistic|lossy)", name)
	}
}

// GossipOptions tunes a Gossip run. The zero value runs push gossip
// semantics-compatible defaults serially.
type GossipOptions struct {
	// Beta is GossipProbFlood's forwarding probability in (0, 1].
	Beta float64
	// Loss is GossipLossyFlood's per-message loss probability in [0, 1).
	Loss float64
	// Parallelism is the intra-run worker count of the sharded engine
	// (0 or 1 = serial, < 0 = all CPUs). Because every random decision
	// is keyed by (node, round) — never by iteration order — the
	// GossipResult is byte-identical for every value, including 1, and
	// matches the reference implementations in internal/protocol on the
	// same seeds. A Parallelizable dynamics receives the same worker
	// count for its snapshot builds.
	Parallelism int
	// Snapshot selects the per-round snapshot path (full rebuild vs
	// incremental delta maintenance), with transparent fallback for
	// dynamics without delta support; see FloodOptions.Snapshot.
	Snapshot SnapshotMode
	// Stop, if non-nil, is polled once per round; when it returns true
	// the run aborts with Completed == false and Rounds set to the cap,
	// matching FloodOptions.Stop semantics.
	Stop func() bool
	// Progress, if non-nil, is called after every evaluated round with
	// the round number t+1 and the informed count. It runs on the
	// calling goroutine; keep it cheap.
	Progress func(round, informed int)
	// Hook, if non-nil, observes the run: phase timing spans and
	// per-round telemetry. Observational only; see FloodOptions.Hook.
	// The chain advances at the end of a round here, so PhaseStep time
	// is attributed to the round it prepares.
	Hook PhaseHook
}

// GossipResult records one protocol run on the gossip engine. It is a
// superset of the reference protocol.Result: Rounds, Completed,
// Trajectory and Messages carry the exact semantics of the reference
// implementations, plus the final informed set and per-node arrival
// times the bitset engine computes for free.
type GossipResult struct {
	// Source is the initiator node.
	Source int
	// Rounds is the completion time, the die-out round (probabilistic
	// flooding), or the cap if neither fired.
	Rounds int
	// Completed reports whether all nodes were informed within the cap.
	Completed bool
	// Trajectory[t] is the number of informed nodes after t rounds.
	Trajectory []int
	// Messages is the total number of point-to-point transmissions sent
	// (including redundant ones to already-informed nodes).
	Messages int64
	// Informed is the final informed set (owned by the caller).
	Informed *bitset.Set
	// Arrival[v] is the round at which v became informed (0 for the
	// source), or -1 if v was never informed.
	Arrival []int32
}

// RoundsToHalf returns the first t with Trajectory[t] ≥ n/2, or -1.
func (r GossipResult) RoundsToHalf(n int) int {
	for t, m := range r.Trajectory {
		if 2*m >= n {
			return t
		}
	}
	return -1
}

// Gossip runs the selected protocol from source on d for at most
// maxRounds rounds — the engine-grade counterpart of the reference
// implementations in internal/protocol, built on the same bitset
// frontiers and shard-parallel phases as the flooding engine.
//
// Randomness: one word is consumed from r to derive the run's stream
// base; the decision of node v in round t is then drawn from
// rng.At(base, v, t). Decisions are pure functions of (node, round), so
// the result is byte-identical for every Parallelism value and byte-
// identical to the internal/protocol reference on the same seeds (the
// reference consumes exactly one word of r too).
//
// Gossip does not Reset d: the caller controls the initial
// distribution. Like the reference, the chain advances only between
// evaluated rounds — completion is checked before Step, so the final
// snapshot is never resampled for nothing.
func Gossip(d Dynamics, proto GossipProtocol, source, maxRounds int, r *rng.RNG, opt GossipOptions) GossipResult {
	n := d.N()
	if source < 0 || source >= n {
		panic("core: gossip source out of range")
	}
	if maxRounds <= 0 {
		panic("core: maxRounds must be positive")
	}
	switch proto {
	case GossipProbFlood:
		if opt.Beta <= 0 || opt.Beta > 1 {
			panic("core: gossip Beta must be in (0, 1]")
		}
	case GossipLossyFlood:
		if opt.Loss < 0 || opt.Loss >= 1 {
			panic("core: gossip Loss must be in [0, 1)")
		}
	}
	base := r.Uint64()
	informed := bitset.New(n)
	informed.Add(source)
	arrival := make([]int32, n)
	for i := range arrival {
		arrival[i] = -1
	}
	arrival[source] = 0
	res := GossipResult{
		Source:     source,
		Trajectory: make([]int, 1, 64),
		Informed:   informed,
		Arrival:    arrival,
	}
	res.Trajectory[0] = 1
	if n == 1 {
		res.Completed = true
		return res
	}

	workers := engineWorkers(opt.Parallelism, d)
	snap := newSnapshotter(d, opt.Snapshot, workers, opt.Hook)
	defer snap.release()
	var eng *gossipEngine
	if workers > 1 {
		eng = newGossipEngine(n, workers)
		eng.hook = opt.Hook
	}
	// uninf is the serial lossy kernel's shrinking uninformed list (the
	// sharded engine carries its own inside shardEngine).
	var uninf activeSet
	// senders holds exactly the informed set in discovery order; for
	// probabilistic flooding, active holds the subset still forwarding
	// (its own buffer — it is rewritten every round while senders grows).
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	active := senders
	if proto == GossipProbFlood {
		active = append(make([]int32, 0, n), int32(source))
	}
	count := 1
	newly := make([]int32, 0, 256)
	// frontier is the serial kernels' private mark buffer for rounds
	// whose decisions read the round-start informed set (push-pull).
	var frontier []uint64
	if eng == nil {
		frontier = make([]uint64, (n+63)/64)
	}

	h := opt.Hook
	for t := 0; ; t++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		g := snap.graph()
		newly = newly[:0]
		if h != nil {
			h.BeginPhase(PhaseKernel)
		}
		switch proto {
		case GossipPush:
			if eng != nil {
				newly = eng.pushGossipRound(g, senders, informed, arrival, base, t, newly, &res.Messages)
			} else {
				newly = pushGossipRound(g, senders, informed, arrival, base, t, newly, &res.Messages)
			}
		case GossipPushPull:
			if eng != nil {
				newly = eng.pushPullRound(g, informed, arrival, base, t, newly, &res.Messages)
			} else {
				newly = pushPullRound(g, frontier, informed, arrival, base, t, newly, &res.Messages)
			}
		case GossipProbFlood:
			res.Messages += degreeSum(g, active)
			if eng != nil {
				newly = eng.pushRound(g, active, informed, arrival, t, newly)
			} else {
				newly = probFloodRound(g, active, informed, arrival, t, newly)
			}
		case GossipLossyFlood:
			res.Messages += degreeSum(g, senders)
			if eng != nil {
				newly = eng.lossyRound(g, informed, arrival, base, t, opt.Loss, newly, n-count)
			} else {
				newly = lossyRound(g, informed, arrival, base, t, opt.Loss, newly, &uninf, n-count)
			}
		}
		if proto == GossipProbFlood {
			// Freshly informed nodes decide once whether they forward,
			// keyed by (node, round informed) — the same draw the
			// reference makes.
			active = active[:0]
			for _, v := range newly {
				lr := rng.At(base, uint64(v), uint64(t))
				if lr.Bernoulli(opt.Beta) {
					active = append(active, v)
				}
			}
		}
		if h != nil {
			h.EndPhase(PhaseKernel)
		}
		senders = append(senders, newly...)
		count += len(newly)
		res.Trajectory = append(res.Trajectory, count)
		if opt.Progress != nil {
			opt.Progress(t+1, count)
		}
		if h != nil {
			h.RoundDone(RoundStats{Round: t + 1, Informed: count, Newly: len(newly)})
		}
		if count == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if proto == GossipProbFlood && len(active) == 0 {
			res.Rounds = t + 1
			return res // died out
		}
		if t+1 == maxRounds {
			break
		}
		snap.step()
	}
	res.Rounds = maxRounds
	return res
}

// degreeSum returns Σ deg(u) over the given nodes — the per-round
// message count of the flooding-style protocols (every listed node
// transmits to its whole current neighborhood).
func degreeSum(g *graph.Graph, nodes []int32) int64 {
	var sum int64
	for _, u := range nodes {
		sum += int64(len(g.Neighbors(int(u))))
	}
	return sum
}

// pushGossipRound is the serial push-gossip kernel: every sender draws
// one uniformly random neighbor from its (node, round) stream and
// transmits; uninformed targets join the informed set. Marking during
// the scan is safe — push decisions never read the informed set, and
// senders are extended only at the round boundary.
func pushGossipRound(g *graph.Graph, senders []int32, informed *bitset.Set, arrival []int32, base uint64, t int, newly []int32, messages *int64) []int32 {
	words := informed.MutableWords()
	for _, u := range senders {
		nbrs := g.Neighbors(int(u))
		if len(nbrs) == 0 {
			continue
		}
		*messages++
		lr := rng.At(base, uint64(u), uint64(t))
		v := nbrs[lr.Intn(len(nbrs))]
		if words[v>>6]&(1<<(uint(v)&63)) == 0 {
			words[v>>6] |= 1 << (uint(v) & 63)
			arrival[v] = int32(t + 1)
			newly = append(newly, v)
		}
	}
	return newly
}

// pushPullRound is the serial push-pull kernel. Both directions read
// the round-start informed set, so discoveries are buffered in the
// frontier bitmap and merged only after the scan — the same synchrony
// the reference enforces with its next bitset.
func pushPullRound(g *graph.Graph, frontier []uint64, informed *bitset.Set, arrival []int32, base uint64, t int, newly []int32, messages *int64) []int32 {
	words := informed.MutableWords()
	n := informed.Len()
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		lr := rng.At(base, uint64(u), uint64(t))
		v := int(nbrs[lr.Intn(len(nbrs))])
		*messages++
		if words[u>>6]&(1<<(uint(u)&63)) != 0 {
			if words[v>>6]&(1<<(uint(v)&63)) == 0 {
				frontier[v>>6] |= 1 << (uint(v) & 63)
			}
		} else if words[v>>6]&(1<<(uint(v)&63)) != 0 {
			frontier[u>>6] |= 1 << (uint(u) & 63)
		}
	}
	return mergeWords(frontier, words, arrival, t, newly)
}

// probFloodRound is the serial probabilistic-flood discovery pass: the
// active nodes transmit to their whole neighborhoods (message count is
// accounted by the caller via degreeSum). It is exactly the flooding
// push kernel over the active list.
func probFloodRound(g *graph.Graph, active []int32, informed *bitset.Set, arrival []int32, t int, newly []int32) []int32 {
	words := informed.MutableWords()
	for _, u := range active {
		for _, v := range g.Neighbors(int(u)) {
			if words[v>>6]&(1<<(uint(v)&63)) == 0 {
				words[v>>6] |= 1 << (uint(v) & 63)
				arrival[v] = int32(t + 1)
				newly = append(newly, v)
			}
		}
	}
	return newly
}

// lossyRound is the serial lossy-flood kernel, receiver-driven: every
// uninformed node scans its adjacency for informed neighbors, drawing
// the fate of each arriving copy from its own (node, round) stream and
// stopping at the first delivery. The informed set is only read during
// the scan; hits are applied after it, preserving synchrony. The
// uninformed side is enumerated word-parallel from the informed
// complement while large, and from the shrinking active-set list in
// the straggler regime — same nodes, same ascending order, and every
// delivery decision is keyed by (node, round), so the result is
// byte-identical either way.
func lossyRound(g *graph.Graph, informed *bitset.Set, arrival []int32, base uint64, t int, loss float64, newly []int32, act *activeSet, uninformed int) []int32 {
	words := informed.MutableWords()
	n := informed.Len()
	start := len(newly)
	if act.enabled(words, n, uninformed) {
		for _, v := range act.nodes {
			if scanLossy(g, words, int(v), base, t, loss) {
				arrival[v] = int32(t + 1)
				newly = append(newly, v)
			}
		}
		for _, v := range newly[start:] {
			words[v>>6] |= 1 << (uint(v) & 63)
		}
		if len(newly) > start {
			// No deliveries → the list is unchanged; skip compaction.
			act.compact(words)
		}
		return newly
	}
	for wi, w := range words {
		rem := ^w
		if rem == 0 {
			continue
		}
		wbase := wi * 64
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			rem &= rem - 1
			v := wbase + b
			if v >= n {
				break
			}
			if scanLossy(g, words, v, base, t, loss) {
				arrival[v] = int32(t + 1)
				newly = append(newly, int32(v))
			}
		}
	}
	for _, v := range newly[start:] {
		words[v>>6] |= 1 << (uint(v) & 63)
	}
	return newly
}

// scanLossy decides whether uninformed node v receives the message in
// round t: it walks v's adjacency, and each informed neighbor's copy
// survives with probability 1−loss, drawn from v's (node, round)
// stream in adjacency order.
func scanLossy(g *graph.Graph, words []uint64, v int, base uint64, t int, loss float64) bool {
	lr := rng.At(base, uint64(v), uint64(t))
	for _, u := range g.Neighbors(v) {
		if words[u>>6]&(1<<(uint(u)&63)) == 0 {
			continue
		}
		if loss > 0 && lr.Bernoulli(loss) {
			continue // this copy lost; try the next informed neighbor
		}
		return true
	}
	return false
}

// mergeWords applies a frontier bitmap to the informed words, records
// arrivals, appends the discoveries to newly in node order, and zeroes
// the frontier for the next round.
func mergeWords(frontier, words []uint64, arrival []int32, t int, newly []int32) []int32 {
	for wi, f := range frontier {
		if f == 0 {
			continue
		}
		frontier[wi] = 0
		m := f &^ words[wi]
		if m == 0 {
			continue
		}
		words[wi] |= m
		wbase := wi * 64
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			v := int32(wbase + b)
			arrival[v] = int32(t + 1)
			newly = append(newly, v)
		}
	}
	return newly
}
