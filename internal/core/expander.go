package core

import (
	"meg/internal/bitset"
	"meg/internal/graph"
)

// NeighborhoodSize returns |N(I)|: the number of nodes outside I with at
// least one neighbor in I (the out-neighborhood of Definition 2.2's
// setting). mark is scratch space of universe size g.N(); pass nil to
// allocate. It runs in O(Σ_{u∈I} deg(u)).
func NeighborhoodSize(g *graph.Graph, members []int, inSet, mark *bitset.Set) int {
	n := g.N()
	if inSet == nil {
		inSet = bitset.New(n)
		for _, u := range members {
			inSet.Add(u)
		}
	}
	if mark == nil {
		mark = bitset.New(n)
	} else {
		mark.Clear()
	}
	count := 0
	for _, u := range members {
		for _, v := range g.Neighbors(u) {
			w := int(v)
			if !inSet.Contains(w) && !mark.Contains(w) {
				mark.Add(w)
				count++
			}
		}
	}
	return count
}

// SetExpansion returns |N(I)| / |I| for the given member list.
// It panics on an empty set.
func SetExpansion(g *graph.Graph, members []int) float64 {
	if len(members) == 0 {
		panic("core: SetExpansion of empty set")
	}
	inSet := bitset.New(g.N())
	for _, u := range members {
		inSet.Add(u)
	}
	return float64(NeighborhoodSize(g, members, inSet, nil)) / float64(len(members))
}

// IsExpanderOn reports whether g satisfies the (h,k)-expander condition
// of Definition 2.2 restricted to the provided candidate sets: every
// candidate I with |I| ≤ h must have |N(I)| ≥ k·|I|. Verifying the
// definition over all subsets is intractable; the expansion package
// generates adversarial candidate families for each graph model.
func IsExpanderOn(g *graph.Graph, h int, k float64, candidates [][]int) bool {
	inSet := bitset.New(g.N())
	mark := bitset.New(g.N())
	for _, members := range candidates {
		if len(members) == 0 || len(members) > h {
			continue
		}
		inSet.Clear()
		for _, u := range members {
			inSet.Add(u)
		}
		nb := NeighborhoodSize(g, members, inSet, mark)
		if float64(nb) < k*float64(len(members)) {
			return false
		}
	}
	return true
}
