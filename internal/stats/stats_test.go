package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestAccumulatorKnown(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", a.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almostEqual(a.Variance(), 32.0/7, 1e-12) {
		t.Errorf("variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator should return NaN")
	}
	a.Add(1)
	if !math.IsNaN(a.Variance()) {
		t.Error("variance of single sample should be NaN")
	}
}

func TestAccumulatorMatchesDirect(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, v := range raw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		direct := ss / float64(len(raw)-1)
		return almostEqual(a.Mean(), mean, 1e-9) && almostEqual(a.Variance(), direct, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanInRangeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		for _, v := range raw {
			a.Add(float64(v))
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.P25, 2, 1e-12) || !almostEqual(s.P75, 4, 1e-12) {
		t.Errorf("quartiles %v %v", s.P25, s.P75)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3*v - 7
	}
	fit := LinearFit(x, y)
	if !almostEqual(fit.Slope, 3, 1e-9) || !almostEqual(fit.Intercept, -7, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1.1, 1.9, 3.05, 3.95}
	fit := LinearFit(x, y)
	if fit.Slope < 0.9 || fit.Slope > 1.1 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LinearFit([]float64{1}, []float64{1}) },
		func() { LinearFit([]float64{1, 2}, []float64{1}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 5 * math.Pow(v, -0.5)
	}
	fit := LogLogFit(x, y)
	if !almostEqual(fit.Slope, -0.5, 1e-9) {
		t.Errorf("exponent = %v", fit.Slope)
	}
	if !almostEqual(math.Exp(fit.Intercept), 5, 1e-9) {
		t.Errorf("coefficient = %v", math.Exp(fit.Intercept))
	}
}

func TestLogLogFitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogFit([]float64{1, 0}, []float64{1, 1})
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(x, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); !math.IsNaN(got) {
		t.Errorf("Pearson with constant y = %v, want NaN", got)
	}
}

func TestChiSquareUniform(t *testing.T) {
	stat, dof := ChiSquareUniform([]int{25, 25, 25, 25})
	if stat != 0 || dof != 3 {
		t.Fatalf("stat=%v dof=%d", stat, dof)
	}
	stat, _ = ChiSquareUniform([]int{50, 0})
	if !almostEqual(stat, 50, 1e-12) {
		t.Errorf("stat = %v, want 50", stat)
	}
}

func TestChiSquare(t *testing.T) {
	got := ChiSquare([]int{8, 12}, []float64{10, 10})
	if !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("ChiSquare = %v, want 0.8", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
}

func TestHistogramUniformDeviation(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for i := 0; i < 400; i++ {
		h.Add(float64(i % 4))
	}
	if dev := h.MaxAbsDeviationFromUniform(); !almostEqual(dev, 0, 1e-12) {
		t.Errorf("deviation = %v", dev)
	}
	h2 := NewHistogram(0, 2, 2)
	for i := 0; i < 100; i++ {
		h2.Add(0.5)
	}
	if dev := h2.MaxAbsDeviationFromUniform(); !almostEqual(dev, 0.5, 1e-12) {
		t.Errorf("deviation = %v, want 0.5", dev)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeometricMean = %v", got)
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("GeometricMean(nil) should be NaN")
	}
}

func TestRatioSpread(t *testing.T) {
	if got := RatioSpread([]float64{2, 4, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("RatioSpread = %v", got)
	}
	if got := RatioSpread([]float64{5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("RatioSpread single = %v", got)
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestStdErrAndCI(t *testing.T) {
	s := Summarize([]float64{1, 1, 1, 1})
	if s.StdErr != 0 || s.CI95Radius != 0 {
		t.Errorf("constant sample: stderr=%v ci=%v", s.StdErr, s.CI95Radius)
	}
	s2 := Summarize([]float64{0, 2})
	wantSE := math.Sqrt(2) / math.Sqrt(2)
	if !almostEqual(s2.StdErr, wantSE, 1e-9) {
		t.Errorf("stderr = %v, want %v", s2.StdErr, wantSE)
	}
}
