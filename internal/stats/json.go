package stats

import (
	"encoding/json"
	"math"
)

// Summary and Fit are the result types that cross the JSON boundary
// (megserve responses, megsim/megbench -json). encoding/json rejects
// NaN and ±Inf outright, and both occur legitimately here (StdDev of a
// single sample, say), so the custom marshalers below map non-finite
// values to null and null back to NaN, keeping every result
// round-trippable.

// NullableFloat converts a float64 to its JSON representation: the
// value itself when finite, nil (→ null) when NaN or ±Inf.
func NullableFloat(f float64) *float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return &f
}

// FloatFromNullable inverts NullableFloat: nil becomes NaN.
func FloatFromNullable(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// summaryJSON mirrors Summary with non-finite-safe fields.
type summaryJSON struct {
	N          int      `json:"n"`
	Mean       *float64 `json:"mean"`
	StdDev     *float64 `json:"stddev"`
	Min        *float64 `json:"min"`
	Max        *float64 `json:"max"`
	Median     *float64 `json:"median"`
	P10        *float64 `json:"p10"`
	P90        *float64 `json:"p90"`
	P25        *float64 `json:"p25"`
	P75        *float64 `json:"p75"`
	StdErr     *float64 `json:"stderr"`
	CI95Radius *float64 `json:"ci95Radius"`
}

// MarshalJSON implements json.Marshaler; NaN/±Inf become null.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		N:          s.N,
		Mean:       NullableFloat(s.Mean),
		StdDev:     NullableFloat(s.StdDev),
		Min:        NullableFloat(s.Min),
		Max:        NullableFloat(s.Max),
		Median:     NullableFloat(s.Median),
		P10:        NullableFloat(s.P10),
		P90:        NullableFloat(s.P90),
		P25:        NullableFloat(s.P25),
		P75:        NullableFloat(s.P75),
		StdErr:     NullableFloat(s.StdErr),
		CI95Radius: NullableFloat(s.CI95Radius),
	})
}

// UnmarshalJSON implements json.Unmarshaler; null becomes NaN.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Summary{
		N:          j.N,
		Mean:       FloatFromNullable(j.Mean),
		StdDev:     FloatFromNullable(j.StdDev),
		Min:        FloatFromNullable(j.Min),
		Max:        FloatFromNullable(j.Max),
		Median:     FloatFromNullable(j.Median),
		P10:        FloatFromNullable(j.P10),
		P90:        FloatFromNullable(j.P90),
		P25:        FloatFromNullable(j.P25),
		P75:        FloatFromNullable(j.P75),
		StdErr:     FloatFromNullable(j.StdErr),
		CI95Radius: FloatFromNullable(j.CI95Radius),
	}
	return nil
}

// fitJSON mirrors Fit with non-finite-safe fields.
type fitJSON struct {
	Intercept *float64 `json:"intercept"`
	Slope     *float64 `json:"slope"`
	R2        *float64 `json:"r2"`
	N         int      `json:"n"`
}

// MarshalJSON implements json.Marshaler; NaN/±Inf become null.
func (f Fit) MarshalJSON() ([]byte, error) {
	return json.Marshal(fitJSON{
		Intercept: NullableFloat(f.Intercept),
		Slope:     NullableFloat(f.Slope),
		R2:        NullableFloat(f.R2),
		N:         f.N,
	})
}

// UnmarshalJSON implements json.Unmarshaler; null becomes NaN.
func (f *Fit) UnmarshalJSON(data []byte) error {
	var j fitJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*f = Fit{
		Intercept: FloatFromNullable(j.Intercept),
		Slope:     FloatFromNullable(j.Slope),
		R2:        FloatFromNullable(j.R2),
		N:         j.N,
	}
	return nil
}
