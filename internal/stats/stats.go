// Package stats provides the statistical machinery the experiment
// harness uses to summarize and fit simulation measurements: streaming
// accumulators, summaries with quantiles and confidence intervals,
// least-squares fits (including log-log fits for growth exponents),
// histograms, and a chi-square uniformity statistic.
//
// Everything is deterministic and allocation-light; no external
// dependencies are used.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's
// algorithm, plus min and max. The zero value is an empty accumulator
// ready for use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples folded in.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or NaN if empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance, or NaN if n < 2.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation, or NaN if n < 2.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or NaN if empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample, or NaN if empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// StdErr returns the standard error of the mean, or NaN if n < 2.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary holds order statistics and moments of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Max           float64
	Median, P10, P90   float64
	P25, P75           float64
	StdErr, CI95Radius float64
}

// Summarize computes a Summary of xs. It returns the zero Summary if xs
// is empty. xs is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      acc.N(),
		Mean:   acc.Mean(),
		StdDev: acc.StdDev(),
		Min:    acc.Min(),
		Max:    acc.Max(),
		Median: Quantile(sorted, 0.5),
		P10:    Quantile(sorted, 0.10),
		P90:    Quantile(sorted, 0.90),
		P25:    Quantile(sorted, 0.25),
		P75:    Quantile(sorted, 0.75),
	}
	if acc.N() >= 2 {
		s.StdErr = acc.StdErr()
		s.CI95Radius = 1.96 * s.StdErr
	}
	return s
}

// String renders the summary compactly for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f sd=%.3f [%.3f, %.3f]",
		s.N, s.Mean, s.CI95Radius, s.StdDev, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation between closest ranks. It panics if sorted is
// empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean()
}

// Fit is the result of an ordinary least-squares line fit y = a + b·x.
type Fit struct {
	Intercept, Slope float64
	R2               float64 // coefficient of determination
	N                int
}

// LinearFit fits y = a + b·x by least squares. It panics if the inputs
// have different lengths or fewer than two points, or if x is constant.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		resid := syy - b*sxy
		r2 = 1 - resid/syy
	}
	return Fit{Intercept: a, Slope: b, R2: r2, N: len(x)}
}

// LogLogFit fits y = C·x^e by OLS on (log x, log y) and returns the
// exponent e as Slope and log C as Intercept. All inputs must be
// strictly positive.
func LogLogFit(x, y []float64) Fit {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogFit requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Pearson returns the Pearson correlation coefficient of (x, y).
// It panics on length mismatch or fewer than two points; it returns NaN
// if either sample is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) < 2 {
		panic("stats: Pearson needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against the uniform distribution over len(counts) categories, along
// with the number of degrees of freedom (len-1). Callers compare the
// statistic against a critical value for their tolerance.
func ChiSquareUniform(counts []int) (stat float64, dof int) {
	if len(counts) < 2 {
		panic("stats: ChiSquareUniform needs at least two categories")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, len(counts) - 1
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1
}

// ChiSquare returns the chi-square statistic of observed counts against
// the given expected counts. Expected entries must be positive.
func ChiSquare(observed []int, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: ChiSquare length mismatch")
	}
	var stat float64
	for i, c := range observed {
		if expected[i] <= 0 {
			panic("stats: ChiSquare expected counts must be positive")
		}
		d := float64(c) - expected[i]
		stat += d * d / expected[i]
	}
	return stat
}

// Histogram is a fixed-width bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // floating-point edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxAbsDeviationFromUniform returns max_i |share_i - 1/bins| over the
// in-range bins, a crude but robust uniformity check used by the
// stationarity experiments.
func (h *Histogram) MaxAbsDeviationFromUniform() float64 {
	inRange := 0
	for _, c := range h.Counts {
		inRange += c
	}
	if inRange == 0 {
		return 0
	}
	want := 1.0 / float64(len(h.Counts))
	worst := 0.0
	for _, c := range h.Counts {
		d := math.Abs(float64(c)/float64(inRange) - want)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// GeometricMean returns the geometric mean of strictly positive xs, or
// NaN if xs is empty.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeometricMean requires positive data")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// RatioSpread returns max(xs)/min(xs) for strictly positive xs — the
// bounded-ratio statistic used to check Θ(·) claims: if y_i/f_i is
// Θ(1) across a wide parameter range, the spread stays small.
func RatioSpread(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: RatioSpread of empty sample")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x <= 0 {
			panic("stats: RatioSpread requires positive data")
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi / lo
}
