package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	in := Summarize([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip changed the summary:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSummaryJSONSingleSampleNaN(t *testing.T) {
	// One sample: StdDev/StdErr are NaN, which plain encoding/json
	// refuses to emit. The custom marshaler must map them to null.
	in := Summarize([]float64{7})
	if !math.IsNaN(in.StdDev) {
		t.Fatalf("expected NaN StdDev for a single sample, got %v", in.StdDev)
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal with NaN fields: %v", err)
	}
	if !strings.Contains(string(b), `"stddev":null`) {
		t.Fatalf("NaN StdDev not encoded as null: %s", b)
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !math.IsNaN(out.StdDev) {
		t.Fatalf("null fields should decode back to NaN, got %+v", out)
	}
	if out.Mean != 7 || out.N != 1 {
		t.Fatalf("finite fields corrupted: %+v", out)
	}
}

func TestSummaryJSONInf(t *testing.T) {
	in := Summary{N: 2, Mean: math.Inf(1), Min: math.Inf(-1), Max: 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal with Inf fields: %v", err)
	}
	var out Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// Inf is not representable in JSON; it comes back as NaN (null).
	if !math.IsNaN(out.Mean) || !math.IsNaN(out.Min) || out.Max != 3 {
		t.Fatalf("Inf handling wrong: %+v", out)
	}
}

func TestFitJSONRoundTrip(t *testing.T) {
	in := LinearFit([]float64{1, 2, 3, 4}, []float64{2.5, 4.4, 6.1, 8.2})
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Fit
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip changed the fit:\n in=%+v\nout=%+v", in, out)
	}
}

func TestFitJSONNaN(t *testing.T) {
	in := Fit{Intercept: math.NaN(), Slope: 2, R2: math.NaN(), N: 5}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Fit
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !math.IsNaN(out.Intercept) || out.Slope != 2 || !math.IsNaN(out.R2) || out.N != 5 {
		t.Fatalf("NaN round trip wrong: %+v", out)
	}
}
