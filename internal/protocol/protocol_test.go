package protocol

import (
	"math"
	"testing"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

func static(g *graph.Graph) core.Dynamics { return core.NewStatic(g) }

func TestFloodingMatchesCore(t *testing.T) {
	// The protocol-package flooding must complete in exactly the same
	// rounds as core.Flood on any dynamics.
	for _, g := range []*graph.Graph{graph.Path(10), graph.Cycle(11), graph.Star(8), graph.Complete(6)} {
		want := core.Flood(static(g), 0, core.DefaultRoundCap(g.N()))
		got := Flooding{}.Run(static(g), 0, core.DefaultRoundCap(g.N()), rng.New(1))
		if got.Rounds != want.Rounds || got.Completed != want.Completed {
			t.Fatalf("n=%d: protocol flooding %d/%v, core %d/%v",
				g.N(), got.Rounds, got.Completed, want.Rounds, want.Completed)
		}
	}
}

func TestFloodingMessageCount(t *testing.T) {
	// On K_n flooding completes in 1 round; the source sends n-1
	// messages, then the final round's bookkeeping stops. Trajectory
	// [1, n].
	res := Flooding{}.Run(static(graph.Complete(10)), 0, 10, rng.New(1))
	if res.Messages != 9 {
		t.Fatalf("K10 flooding messages = %d, want 9", res.Messages)
	}
	// On a path flooding sends every round: Σ_t Σ_{u∈I_t} deg(u).
	res = Flooding{}.Run(static(graph.Path(3)), 0, 10, rng.New(1))
	// Round 1: I={0}: deg 1. Round 2: I={0,1}: deg 1+2=3. Total 4.
	if res.Messages != 4 {
		t.Fatalf("path flooding messages = %d, want 4", res.Messages)
	}
}

func TestProbabilisticBetaOneOnStatic(t *testing.T) {
	// β=1 forwards once upon receipt: on a static connected graph this
	// completes in the same time as full flooding (frontier argument).
	for _, g := range []*graph.Graph{graph.Path(9), graph.Cycle(12), graph.Complete(7)} {
		want := Flooding{}.Run(static(g), 0, core.DefaultRoundCap(g.N()), rng.New(2))
		got := Probabilistic{Beta: 1}.Run(static(g), 0, core.DefaultRoundCap(g.N()), rng.New(2))
		if !got.Completed || got.Rounds != want.Rounds {
			t.Fatalf("β=1 on n=%d: %d/%v, want %d", g.N(), got.Rounds, got.Completed, want.Rounds)
		}
		if got.Messages > want.Messages {
			t.Fatalf("β=1 sent more messages (%d) than flooding (%d)", got.Messages, want.Messages)
		}
	}
}

func TestProbabilisticCanDieOut(t *testing.T) {
	// With tiny β on a path, the process usually dies at the first
	// non-forwarding node; the run must stop early, not burn the cap.
	died := 0
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		res := Probabilistic{Beta: 0.05}.Run(static(graph.Path(50)), 0, 1000, r.Split())
		if !res.Completed {
			died++
			if res.Rounds >= 1000 {
				t.Fatal("die-out not detected early")
			}
		}
	}
	if died == 0 {
		t.Fatal("β=0.05 never died out on a path — implausible")
	}
}

func TestProbabilisticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for β out of range")
		}
	}()
	Probabilistic{Beta: 0}.Run(static(graph.Path(3)), 0, 5, rng.New(1))
}

func TestPushGossipCompleteGraph(t *testing.T) {
	// Pittel: push rumor spreading on K_n takes log2 n + ln n + O(1)
	// rounds.
	const n = 512
	r := rng.New(5)
	var sum float64
	const reps = 60
	for i := 0; i < reps; i++ {
		res := PushGossip{}.Run(static(graph.Complete(n)), 0, 10000, r.Split())
		if !res.Completed {
			t.Fatal("push gossip on K_n did not complete")
		}
		sum += float64(res.Rounds)
	}
	mean := sum / reps
	want := math.Log2(n) + math.Log(n)
	if math.Abs(mean-want) > 0.2*want {
		t.Fatalf("push gossip rounds mean %v, want ≈ %v", mean, want)
	}
}

func TestPushGossipMessagesPerRound(t *testing.T) {
	// Exactly one message per informed node per round (complete graph:
	// no isolated nodes).
	res := PushGossip{}.Run(static(graph.Complete(64)), 0, 10000, rng.New(7))
	var want int64
	for t0 := 0; t0+1 < len(res.Trajectory); t0++ {
		want += int64(res.Trajectory[t0])
	}
	if res.Messages != want {
		t.Fatalf("gossip messages = %d, want %d", res.Messages, want)
	}
}

func TestPushPullFasterThanPush(t *testing.T) {
	const n = 512
	r := rng.New(9)
	var push, pushpull float64
	const reps = 40
	for i := 0; i < reps; i++ {
		a := PushGossip{}.Run(static(graph.Complete(n)), 0, 10000, r.Split())
		b := PushPull{}.Run(static(graph.Complete(n)), 0, 10000, r.Split())
		if !a.Completed || !b.Completed {
			t.Fatal("gossip incomplete on K_n")
		}
		push += float64(a.Rounds)
		pushpull += float64(b.Rounds)
	}
	if pushpull >= push {
		t.Fatalf("push-pull (%v) not faster than push (%v) on K_n", pushpull/reps, push/reps)
	}
}

func TestAllProtocolsOnEvolvingGraph(t *testing.T) {
	// Integration: every protocol completes on a connected-regime
	// stationary edge-MEG, and flooding is the fastest (it dominates
	// this family round-for-round).
	n := 512
	pHat := 6 * math.Log(float64(n)) / float64(n)
	cfg := edgemeg.Config{N: n, P: 0.5 * pHat / (1 - pHat), Q: 0.5}
	r := rng.New(11)
	mk := func() core.Dynamics {
		m := edgemeg.MustNew(cfg)
		m.Reset(r.Split())
		return m
	}
	floodRounds := Flooding{}.Run(mk(), 0, core.DefaultRoundCap(n), r.Split())
	if !floodRounds.Completed {
		t.Fatal("flooding incomplete")
	}
	for _, p := range []Protocol{Probabilistic{Beta: 0.9}, PushGossip{}, PushPull{}} {
		res := p.Run(mk(), 0, core.DefaultRoundCap(n), r.Split())
		if !res.Completed {
			t.Fatalf("%s incomplete on edge-MEG", p.Name())
		}
		if res.Rounds < floodRounds.Rounds {
			t.Fatalf("%s (%d rounds) beat flooding (%d): flooding must lower-bound the family",
				p.Name(), res.Rounds, floodRounds.Rounds)
		}
	}
}

func TestProtocolNames(t *testing.T) {
	if (Flooding{}).Name() != "flooding" || (PushGossip{}).Name() != "push-gossip" ||
		(PushPull{}).Name() != "push-pull" {
		t.Error("names wrong")
	}
	if (Probabilistic{Beta: 0.5}).Name() != "prob-flood(β=0.50)" {
		t.Errorf("prob name = %q", Probabilistic{Beta: 0.5}.Name())
	}
}

func TestTrajectoriesMonotone(t *testing.T) {
	r := rng.New(13)
	g := graph.Cycle(30)
	for _, p := range []Protocol{Flooding{}, Probabilistic{Beta: 0.8}, PushGossip{}, PushPull{}} {
		res := p.Run(static(g), 0, 200, r.Split())
		for i := 1; i < len(res.Trajectory); i++ {
			if res.Trajectory[i] < res.Trajectory[i-1] {
				t.Fatalf("%s trajectory decreased", p.Name())
			}
		}
	}
}

func TestSingleNodeAllProtocols(t *testing.T) {
	g := graph.Empty(1)
	r := rng.New(15)
	for _, p := range []Protocol{Flooding{}, Probabilistic{Beta: 0.5}, PushGossip{}, PushPull{}} {
		res := p.Run(static(g), 0, 5, r)
		if !res.Completed || res.Rounds != 0 {
			t.Fatalf("%s single node: %+v", p.Name(), res)
		}
	}
}

func TestLossyFloodingZeroLossMatchesFlooding(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(10), graph.Complete(8)} {
		want := Flooding{}.Run(static(g), 0, 100, rng.New(1))
		got := LossyFlooding{Loss: 0}.Run(static(g), 0, 100, rng.New(1))
		if got.Rounds != want.Rounds || got.Messages != want.Messages {
			t.Fatalf("loss=0 diverged from flooding: %+v vs %+v", got, want)
		}
	}
}

func TestLossyFloodingSlowsOnPath(t *testing.T) {
	// On a path each hop must succeed individually: with loss f the
	// expected time per hop is 1/(1-f), so the mean completion time
	// grows by that factor.
	const n = 40
	const f = 0.5
	r := rng.New(3)
	var lossSum, cleanSum float64
	const reps = 60
	for i := 0; i < reps; i++ {
		lossRes := LossyFlooding{Loss: f}.Run(static(graph.Path(n)), 0, 10000, r.Split())
		if !lossRes.Completed {
			t.Fatal("lossy flooding on a path did not complete")
		}
		lossSum += float64(lossRes.Rounds)
		cleanSum += float64(n - 1)
	}
	factor := lossSum / cleanSum
	want := 1 / (1 - f)
	if math.Abs(factor-want) > 0.25*want {
		t.Fatalf("slowdown factor %v, want ≈ %v", factor, want)
	}
}

func TestLossyFloodingAlwaysCompletesOnStaticConnected(t *testing.T) {
	// Retransmission every round means loss < 1 never kills the
	// process on a static connected graph.
	res := LossyFlooding{Loss: 0.9}.Run(static(graph.Cycle(20)), 0, 100000, rng.New(5))
	if !res.Completed {
		t.Fatal("lossy flooding failed on connected static graph")
	}
}

func TestLossyFloodingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for loss ≥ 1")
		}
	}()
	LossyFlooding{Loss: 1}.Run(static(graph.Path(3)), 0, 5, rng.New(1))
}
