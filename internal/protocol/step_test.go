package protocol

import (
	"testing"

	"meg/internal/bitset"
	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

// countingDynamics wraps a Dynamics and counts Step calls — the probe
// for the wasted-final-resample regression: a completed R-round run
// needs snapshots G_0 … G_{R-1}, i.e. exactly R-1 steps.
type countingDynamics struct {
	core.Dynamics
	steps int
}

func (c *countingDynamics) Step() {
	c.steps++
	c.Dynamics.Step()
}

// TestNoFinalRoundResample asserts that no protocol advances the chain
// after its last evaluated round: a completed run of R rounds performs
// exactly R-1 steps (each step is a full snapshot resample — O(churn)
// on the edge-MEG, a full cell sweep on the geometric models — so the
// old step-then-check order wasted one resample per trial).
func TestNoFinalRoundResample(t *testing.T) {
	n := 256
	cfg := edgemeg.Config{N: n, P: 0.02, Q: 0.5}
	protos := []Protocol{Flooding{}, Probabilistic{Beta: 0.9}, PushGossip{}, PushPull{}, LossyFlooding{Loss: 0.2}}
	r := rng.New(21)
	for _, p := range protos {
		d := &countingDynamics{Dynamics: edgemeg.MustNew(cfg)}
		d.Reset(r.Split())
		res := p.Run(d, 0, core.DefaultRoundCap(n), r.Split())
		if !res.Completed {
			t.Fatalf("%s: incomplete — step accounting untestable", p.Name())
		}
		if d.steps != res.Rounds-1 {
			t.Fatalf("%s: %d rounds took %d steps, want %d (no resample after the final round)",
				p.Name(), res.Rounds, d.steps, res.Rounds-1)
		}
	}
}

// TestNoStepAtRoundCap pins the cap path: a run that exhausts maxRounds
// evaluates maxRounds snapshots and steps only between them.
func TestNoStepAtRoundCap(t *testing.T) {
	// Two disconnected cliques: flooding can never complete.
	b := graph.NewBuilder(8)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+4, v+4)
		}
	}
	g := b.Build()
	r := rng.New(3)
	for _, p := range []Protocol{Flooding{}, PushGossip{}, PushPull{}, LossyFlooding{Loss: 0.1}} {
		d := &countingDynamics{Dynamics: core.NewStatic(g)}
		res := p.Run(d, 0, 10, r.Split())
		if res.Completed {
			t.Fatalf("%s: completed across disconnected components", p.Name())
		}
		if res.Rounds != 10 || d.steps != 9 {
			t.Fatalf("%s: rounds=%d steps=%d, want 10 capped rounds and 9 steps", p.Name(), res.Rounds, d.steps)
		}
	}
}

// oldOrderFlooding replays the pre-fix loop structure — process, step,
// then check — over the same dynamics. Flooding draws no protocol
// randomness, so it must produce an identical Result to the fixed
// implementation; the only difference is the wasted trailing Step.
func oldOrderFlooding(d core.Dynamics, source, maxRounds int) Result {
	n := d.N()
	informed := bitset.New(n)
	informed.Add(source)
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	res := Result{Trajectory: []int{1}}
	var newly []int32
	for t := 0; t < maxRounds; t++ {
		g := d.Graph()
		newly = newly[:0]
		for _, u := range senders {
			nbrs := g.Neighbors(int(u))
			res.Messages += int64(len(nbrs))
			for _, v := range nbrs {
				if !informed.Contains(int(v)) {
					informed.Add(int(v))
					newly = append(newly, v)
				}
			}
		}
		senders = append(senders, newly...)
		res.Trajectory = append(res.Trajectory, len(senders))
		d.Step()
		if len(senders) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
	}
	res.Rounds = maxRounds
	return res
}

// TestStepOrderFixPreservesResults compares the fixed flooding loop
// against an in-test replica of the old step-then-check order on the
// same realizations: trajectories, round counts and message totals
// must be unchanged — the fix only removes the unobserved final
// resample.
func TestStepOrderFixPreservesResults(t *testing.T) {
	n := 256
	cfg := edgemeg.Config{N: n, P: 0.02, Q: 0.5}
	r := rng.New(9)
	for i := 0; i < 3; i++ {
		seed := r.Uint64()
		dOld := edgemeg.MustNew(cfg)
		dOld.Reset(rng.New(seed))
		want := oldOrderFlooding(dOld, 0, core.DefaultRoundCap(n))

		dNew := edgemeg.MustNew(cfg)
		dNew.Reset(rng.New(seed))
		got := Flooding{}.Run(dNew, 0, core.DefaultRoundCap(n), rng.New(1))

		if got.Rounds != want.Rounds || got.Completed != want.Completed || got.Messages != want.Messages {
			t.Fatalf("trial %d: fixed loop diverged: {%d %v %d} vs old {%d %v %d}",
				i, got.Rounds, got.Completed, got.Messages, want.Rounds, want.Completed, want.Messages)
		}
		if len(got.Trajectory) != len(want.Trajectory) {
			t.Fatalf("trial %d: trajectory lengths differ", i)
		}
		for j := range got.Trajectory {
			if got.Trajectory[j] != want.Trajectory[j] {
				t.Fatalf("trial %d: trajectory[%d] = %d vs %d", i, j, got.Trajectory[j], want.Trajectory[j])
			}
		}
	}
}
