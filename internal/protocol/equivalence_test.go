package protocol_test

import (
	"testing"

	"meg/internal/core"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/spec"
)

// gossipCases pairs every reference protocol with its kernel engine
// counterpart.
var gossipCases = []struct {
	name  string
	ref   protocol.Protocol
	proto core.GossipProtocol
	opt   core.GossipOptions
}{
	{"push", protocol.PushGossip{}, core.GossipPush, core.GossipOptions{}},
	{"push-pull", protocol.PushPull{}, core.GossipPushPull, core.GossipOptions{}},
	{"probabilistic", protocol.Probabilistic{Beta: 0.7}, core.GossipProbFlood, core.GossipOptions{Beta: 0.7}},
	{"lossy", protocol.LossyFlooding{Loss: 0.3}, core.GossipLossyFlood, core.GossipOptions{Loss: 0.3}},
}

// modelFactories builds one small dynamics factory per evolving-graph
// model via the spec factory — the complete set of substrates.
func modelFactories(t *testing.T) map[string]func() core.Dynamics {
	t.Helper()
	out := make(map[string]func() core.Dynamics)
	for _, name := range []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"} {
		s := spec.Spec{Model: spec.Model{Name: name, N: 400, RFrac: 0.5}}
		factory, _, err := s.NewFactory()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = factory
	}
	return out
}

func resultsEqual(t *testing.T, label string, ref protocol.Result, got core.GossipResult) {
	t.Helper()
	if ref.Rounds != got.Rounds || ref.Completed != got.Completed || ref.Messages != got.Messages {
		t.Fatalf("%s: header diverged: reference {rounds %d completed %v msgs %d} vs kernel {rounds %d completed %v msgs %d}",
			label, ref.Rounds, ref.Completed, ref.Messages, got.Rounds, got.Completed, got.Messages)
	}
	if len(ref.Trajectory) != len(got.Trajectory) {
		t.Fatalf("%s: trajectory lengths %d vs %d", label, len(ref.Trajectory), len(got.Trajectory))
	}
	for i := range ref.Trajectory {
		if ref.Trajectory[i] != got.Trajectory[i] {
			t.Fatalf("%s: trajectory[%d] = %d vs %d", label, i, ref.Trajectory[i], got.Trajectory[i])
		}
	}
}

// TestGossipKernelMatchesReference is the oracle gate of the gossip
// engine: on every one of the seven models and every protocol, the
// bitset kernel must reproduce the per-node reference implementation
// byte for byte — same rounds, completion, trajectory, and message
// count — at every parallelism level, because both draw every decision
// from the same (node, round)-keyed streams.
func TestGossipKernelMatchesReference(t *testing.T) {
	for model, factory := range modelFactories(t) {
		for _, tc := range gossipCases {
			for _, par := range []int{1, 8} {
				seed := rng.New(41)
				cap := core.DefaultRoundCap(400)

				dRef := factory()
				dRef.Reset(seed.Split())
				ref := tc.ref.Run(dRef, 3, cap, seed.Split())

				seed = rng.New(41)
				dKer := factory()
				dKer.Reset(seed.Split())
				opt := tc.opt
				opt.Parallelism = par
				got := core.Gossip(dKer, tc.proto, 3, cap, seed.Split(), opt)

				resultsEqual(t, model+"/"+tc.name, ref, got)
			}
		}
	}
}

// TestGossipArrivalConsistent pins the kernel's extra outputs: the
// arrival array and informed set must agree with the trajectory.
func TestGossipArrivalConsistent(t *testing.T) {
	factory := modelFactories(t)["edge"]
	for _, tc := range gossipCases {
		d := factory()
		r := rng.New(17)
		d.Reset(r.Split())
		res := core.Gossip(d, tc.proto, 0, core.DefaultRoundCap(400), r.Split(), tc.opt)
		informed := 0
		maxArrival := 0
		for v, a := range res.Arrival {
			if (a >= 0) != res.Informed.Contains(v) {
				t.Fatalf("%s: arrival/informed mismatch at %d", tc.name, v)
			}
			if a >= 0 {
				informed++
				if int(a) > maxArrival {
					maxArrival = int(a)
				}
			}
		}
		final := res.Trajectory[len(res.Trajectory)-1]
		if informed != final {
			t.Fatalf("%s: %d arrivals vs trajectory end %d", tc.name, informed, final)
		}
		if res.Completed && maxArrival != res.Rounds {
			t.Fatalf("%s: max arrival %d vs rounds %d", tc.name, maxArrival, res.Rounds)
		}
	}
}
