// Package protocol implements the family of broadcast protocols the
// paper positions flooding within: "flooding time in fact represents
// the 'natural' lower bound for broadcast protocols in dynamic
// networks. For this reason, flooding is often used in order to
// evaluate the relative efficiency of alternative protocols" (Section
// 1, citing [8, 16, 29]). The package provides that evaluation: the
// alternatives actually used in unstructured/dynamic networks, all
// running on any core.Dynamics with per-round message accounting, so
// their latency and message complexity can be compared against the
// flooding baseline.
//
// Protocols:
//
//   - Flooding — every informed node transmits to all current neighbors
//     every round: the paper's mechanism and the latency lower bound of
//     this family.
//   - Probabilistic flooding (Gnutella-style, the paper's [29]): a node
//     forwards to all neighbors for one round upon becoming informed,
//     and only with probability Beta.
//   - Push gossip (rumor spreading, the paper's [30]): every informed
//     node sends to ONE uniformly random current neighbor per round.
//   - Push–pull gossip: informed nodes push to one random neighbor;
//     uninformed nodes pull from one random neighbor.
//   - Lossy flooding: flooding with every transmission independently
//     lost with probability Loss.
//
// All protocols share the synchronous semantics of the paper's flooding
// definition: nodes informed in round t start acting in round t+1, and
// the graph advances one Markov step per round. The chain is advanced
// only between rounds that are actually evaluated — the run returns as
// soon as the completion (or die-out) check after a round fires, so no
// final snapshot is ever sampled just to be thrown away.
//
// # Randomness discipline
//
// Every per-node random decision is drawn from a counter-based stream
// keyed by (node, round): one word is consumed from the caller's RNG at
// Run start to derive the run's stream base, and the decision of node v
// in round t then comes from rng.At(base, v, t). Decisions are pure
// functions of identity and time, never of iteration order — which is
// what lets the bit-parallel sharded kernels in core (core.Gossip)
// reproduce these reference implementations byte for byte at every
// worker count.
package protocol

import (
	"fmt"

	"meg/internal/bitset"
	"meg/internal/core"
	"meg/internal/rng"
)

// Result records one protocol run.
type Result struct {
	// Rounds is the completion time (or the cap if Completed is false).
	Rounds int
	// Completed reports whether all nodes were informed within the cap.
	Completed bool
	// Trajectory[t] is the number of informed nodes after t rounds.
	Trajectory []int
	// Messages is the total number of point-to-point transmissions sent
	// (including redundant ones to already-informed nodes).
	Messages int64
}

// Protocol is a broadcast protocol runnable on any evolving graph.
type Protocol interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Run executes the protocol from source on d (already Reset by the
	// caller) for at most maxRounds rounds, drawing randomness from r.
	Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result
}

// ByName builds a protocol from its canonical spelling — the
// spec-driven constructor used by simulation specs and CLIs. beta and
// loss parameterize the probabilistic and lossy variants and are
// ignored by the others.
func ByName(name string, beta, loss float64) (Protocol, error) {
	switch name {
	case "flooding", "":
		return Flooding{}, nil
	case "probabilistic", "prob":
		if beta <= 0 || beta > 1 {
			return nil, fmt.Errorf("protocol: probabilistic flooding needs beta in (0, 1], got %g", beta)
		}
		return Probabilistic{Beta: beta}, nil
	case "push", "push-gossip":
		return PushGossip{}, nil
	case "push-pull", "pushpull":
		return PushPull{}, nil
	case "lossy":
		if loss < 0 || loss >= 1 {
			return nil, fmt.Errorf("protocol: lossy flooding needs loss in [0, 1), got %g", loss)
		}
		return LossyFlooding{Loss: loss}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown protocol %q (want flooding|probabilistic|push|push-pull|lossy)", name)
	}
}

// checkArgs validates the shared Run preconditions.
func checkArgs(n, source, maxRounds int) {
	if source < 0 || source >= n {
		panic("protocol: source out of range")
	}
	if maxRounds <= 0 {
		panic("protocol: maxRounds must be positive")
	}
}

// Flooding is the paper's flooding mechanism with message accounting.
type Flooding struct{}

// Name implements Protocol.
func (Flooding) Name() string { return "flooding" }

// Run implements Protocol.
func (Flooding) Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result {
	n := d.N()
	checkArgs(n, source, maxRounds)
	informed := bitset.New(n)
	informed.Add(source)
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	res := Result{Trajectory: []int{1}}
	if n == 1 {
		res.Completed = true
		return res
	}
	newly := make([]int32, 0, 64)
	for t := 0; ; t++ {
		g := d.Graph()
		newly = newly[:0]
		for _, u := range senders {
			nbrs := g.Neighbors(int(u))
			res.Messages += int64(len(nbrs))
			for _, v := range nbrs {
				if !informed.Contains(int(v)) {
					informed.Add(int(v))
					newly = append(newly, v)
				}
			}
		}
		senders = append(senders, newly...)
		res.Trajectory = append(res.Trajectory, len(senders))
		if len(senders) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if t+1 == maxRounds {
			break
		}
		d.Step()
	}
	res.Rounds = maxRounds
	return res
}

// Probabilistic is Gnutella-style probabilistic flooding: upon becoming
// informed a node forwards to all its neighbors in the next round with
// probability Beta (the source always forwards), then falls silent.
// Beta = 1 is one-shot flooding (parsimonious with budget 1).
type Probabilistic struct {
	// Beta is the forwarding probability in (0, 1].
	Beta float64
}

// Name implements Protocol.
func (p Probabilistic) Name() string { return fmt.Sprintf("prob-flood(β=%.2f)", p.Beta) }

// Run implements Protocol.
func (p Probabilistic) Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result {
	if p.Beta <= 0 || p.Beta > 1 {
		panic("protocol: Beta must be in (0, 1]")
	}
	n := d.N()
	checkArgs(n, source, maxRounds)
	base := r.Uint64()
	informed := bitset.New(n)
	informed.Add(source)
	active := make([]int32, 1, n)
	active[0] = int32(source)
	count := 1
	res := Result{Trajectory: []int{1}}
	if n == 1 {
		res.Completed = true
		return res
	}
	newly := make([]int32, 0, 64)
	for t := 0; ; t++ {
		g := d.Graph()
		newly = newly[:0]
		for _, u := range active {
			nbrs := g.Neighbors(int(u))
			res.Messages += int64(len(nbrs))
			for _, v := range nbrs {
				if !informed.Contains(int(v)) {
					informed.Add(int(v))
					newly = append(newly, v)
				}
			}
		}
		// Freshly informed nodes decide once whether they will forward;
		// the decision is keyed by (node, round informed).
		active = active[:0]
		for _, v := range newly {
			lr := rng.At(base, uint64(v), uint64(t))
			if lr.Bernoulli(p.Beta) {
				active = append(active, v)
			}
		}
		count += len(newly)
		res.Trajectory = append(res.Trajectory, count)
		if count == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if len(active) == 0 {
			res.Rounds = t + 1
			return res // died out
		}
		if t+1 == maxRounds {
			break
		}
		d.Step()
	}
	res.Rounds = maxRounds
	return res
}

// PushGossip is classic push rumor spreading: every informed node sends
// the message to one uniformly random current neighbor per round.
type PushGossip struct{}

// Name implements Protocol.
func (PushGossip) Name() string { return "push-gossip" }

// Run implements Protocol.
func (PushGossip) Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result {
	n := d.N()
	checkArgs(n, source, maxRounds)
	base := r.Uint64()
	informed := bitset.New(n)
	informed.Add(source)
	members := make([]int32, 1, n)
	members[0] = int32(source)
	res := Result{Trajectory: []int{1}}
	if n == 1 {
		res.Completed = true
		return res
	}
	newly := make([]int32, 0, 64)
	for t := 0; ; t++ {
		g := d.Graph()
		newly = newly[:0]
		for _, u := range members {
			nbrs := g.Neighbors(int(u))
			if len(nbrs) == 0 {
				continue
			}
			res.Messages++
			lr := rng.At(base, uint64(u), uint64(t))
			v := nbrs[lr.Intn(len(nbrs))]
			if !informed.Contains(int(v)) {
				informed.Add(int(v))
				newly = append(newly, v)
			}
		}
		members = append(members, newly...)
		res.Trajectory = append(res.Trajectory, len(members))
		if len(members) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if t+1 == maxRounds {
			break
		}
		d.Step()
	}
	res.Rounds = maxRounds
	return res
}

// PushPull combines push and pull: informed nodes push to one random
// neighbor, uninformed nodes pull from one random neighbor (learning
// the message if that neighbor is informed). Both directions count as
// one message each.
type PushPull struct{}

// Name implements Protocol.
func (PushPull) Name() string { return "push-pull" }

// Run implements Protocol.
func (PushPull) Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result {
	n := d.N()
	checkArgs(n, source, maxRounds)
	base := r.Uint64()
	// informed is the state at the start of the round (all decisions
	// read it, enforcing synchrony); next accumulates the round's
	// discoveries and becomes the new informed set at the boundary.
	informed := bitset.New(n)
	informed.Add(source)
	next := bitset.New(n)
	count := 1
	res := Result{Trajectory: []int{1}}
	if n == 1 {
		res.Completed = true
		return res
	}
	for t := 0; ; t++ {
		g := d.Graph()
		next.CopyFrom(informed)
		added := 0
		for u := 0; u < n; u++ {
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 {
				continue
			}
			lr := rng.At(base, uint64(u), uint64(t))
			v := int(nbrs[lr.Intn(len(nbrs))])
			res.Messages++
			if informed.Contains(u) {
				// push: u → v
				if !next.Contains(v) {
					next.Add(v)
					added++
				}
			} else if informed.Contains(v) {
				// pull: u learns from v (v informed at round start).
				if !next.Contains(u) {
					next.Add(u)
					added++
				}
			}
		}
		informed.CopyFrom(next)
		count += added
		res.Trajectory = append(res.Trajectory, count)
		if count == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if t+1 == maxRounds {
			break
		}
		d.Step()
	}
	res.Rounds = maxRounds
	return res
}

// LossyFlooding is flooding over unreliable links: every transmission
// is independently lost with probability Loss. It models the
// faulty-network motivation of the paper's introduction at the message
// level rather than the topology level: the question is how much loss
// flooding absorbs before its completion time degrades.
//
// The loss draws are receiver-keyed: node v's stream for round t
// decides the fate of the messages arriving at v, in v's adjacency
// order, stopping at the first delivery (further copies are redundant).
// Every informed node still transmits to all its neighbors, so the
// message count is Σ_{u∈I_t} deg(u) per round, exactly as for flooding.
type LossyFlooding struct {
	// Loss is the per-message loss probability in [0, 1).
	Loss float64
}

// Name implements Protocol.
func (l LossyFlooding) Name() string { return fmt.Sprintf("lossy-flood(f=%.2f)", l.Loss) }

// Run implements Protocol.
func (l LossyFlooding) Run(d core.Dynamics, source, maxRounds int, r *rng.RNG) Result {
	if l.Loss < 0 || l.Loss >= 1 {
		panic("protocol: Loss must be in [0, 1)")
	}
	n := d.N()
	checkArgs(n, source, maxRounds)
	base := r.Uint64()
	informed := bitset.New(n)
	informed.Add(source)
	senders := make([]int32, 1, n)
	senders[0] = int32(source)
	res := Result{Trajectory: []int{1}}
	if n == 1 {
		res.Completed = true
		return res
	}
	newly := make([]int32, 0, 64)
	for t := 0; ; t++ {
		g := d.Graph()
		// Every informed node transmits to its whole neighborhood.
		for _, u := range senders {
			res.Messages += int64(len(g.Neighbors(int(u))))
		}
		// Receiver side: an uninformed node survives the round uninformed
		// only if every incoming copy is lost.
		newly = newly[:0]
		for v := 0; v < n; v++ {
			if informed.Contains(v) {
				continue
			}
			lr := rng.At(base, uint64(v), uint64(t))
			for _, u := range g.Neighbors(v) {
				if !informed.Contains(int(u)) {
					continue
				}
				if l.Loss > 0 && lr.Bernoulli(l.Loss) {
					continue // this copy lost; try the next informed neighbor
				}
				newly = append(newly, int32(v))
				break
			}
		}
		for _, v := range newly {
			informed.Add(int(v))
		}
		senders = append(senders, newly...)
		res.Trajectory = append(res.Trajectory, len(senders))
		if len(senders) == n {
			res.Rounds = t + 1
			res.Completed = true
			return res
		}
		if t+1 == maxRounds {
			break
		}
		d.Step()
	}
	res.Rounds = maxRounds
	return res
}
