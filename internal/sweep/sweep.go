// Package sweep is the parallel experiment harness: it fans a list of
// jobs out over a bounded worker pool and collects results in input
// order, giving every job a deterministic private RNG stream so that a
// sweep's output is identical no matter how many workers run it.
package sweep

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"meg/internal/par"
	"meg/internal/rng"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// WorkerPanic is the value a parallel sweep re-panics with on the
// calling goroutine when a job panicked on a worker goroutine — the
// same capture par.Do applies one level down, so a panic anywhere in
// the parallel machinery reaches the caller with the worker's stack
// attached.
type WorkerPanic = par.WorkerPanic

// Map applies fn to every item on up to workers goroutines and returns
// the results in input order. fn receives the item index; it must not
// retain references to shared mutable state without its own locking.
func Map[I, O any](items []I, workers int, fn func(idx int, item I) O) []O {
	out, _ := MapCtx(context.Background(), items, workers, fn)
	return out
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no new
// jobs are dispatched, in-flight jobs finish (fn itself should poll ctx
// if single jobs are long), and MapCtx returns ctx.Err(). Entries for
// undispatched jobs are left as the zero value, so on a non-nil error
// the output is partial.
func MapCtx[I, O any](ctx context.Context, items []I, workers int, fn func(idx int, item I) O) ([]O, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	done := ctx.Done()
	if workers <= 1 {
		for i, it := range items {
			select {
			case <-done:
				return out, ctx.Err()
			default:
			}
			out[i] = fn(i, it)
		}
		return out, ctx.Err()
	}
	// A panic inside fn on a worker goroutine would crash the whole
	// process before any caller-side recover could run; capture the
	// first one (with the worker's stack — the re-raise below happens on
	// the calling goroutine, whose stack says nothing about the failure
	// site), stop dispatching, and re-raise it as a WorkerPanic — the
	// closest parallel analogue of the serial path's natural unwinding.
	var panicked atomic.Bool
	var panicVal WorkerPanic
	var wg sync.WaitGroup
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//meg:allow-go fork/join worker pool: out[i] is keyed by job index, never by completion order, and MapSeeded derives each job's RNG from its index
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if p := recover(); p != nil && panicked.CompareAndSwap(false, true) {
							panicVal = WorkerPanic{Value: p, Stack: debug.Stack()}
						}
					}()
					out[i] = fn(i, items[i])
				}()
			}
		}()
	}
dispatch:
	for i := range items {
		if panicked.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out, ctx.Err()
}

// MapSeeded is Map with a per-job RNG derived deterministically from
// seed and the job index, so results do not depend on scheduling.
func MapSeeded[I, O any](items []I, seed uint64, workers int, fn func(item I, r *rng.RNG) O) []O {
	return Map(items, workers, func(idx int, item I) O {
		return fn(item, rng.New(rng.SeedFor(seed, idx)))
	})
}

// Repeat runs fn reps times (each with its own derived RNG) and returns
// the reps results in order. It is the inner loop of every Monte Carlo
// estimate in the experiment suite.
func Repeat[O any](reps int, seed uint64, workers int, fn func(rep int, r *rng.RNG) O) []O {
	out, _ := RepeatCtx(context.Background(), reps, seed, workers, fn)
	return out
}

// RepeatCtx is Repeat with cooperative cancellation (see MapCtx): a
// non-nil error means the returned slice holds zero values for the
// repetitions that never ran.
func RepeatCtx[O any](ctx context.Context, reps int, seed uint64, workers int, fn func(rep int, r *rng.RNG) O) ([]O, error) {
	idxs := make([]int, reps)
	for i := range idxs {
		idxs[i] = i
	}
	return MapCtx(ctx, idxs, workers, func(idx int, rep int) O {
		return fn(rep, rng.New(rng.SeedFor(seed, idx)))
	})
}

// Floats collects a float64 metric from reps repetitions; a convenience
// wrapper over Repeat for the common "repeat and summarize" pattern.
func Floats(reps int, seed uint64, workers int, fn func(rep int, r *rng.RNG) float64) []float64 {
	return Repeat(reps, seed, workers, fn)
}
