package sweep

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"meg/internal/rng"
)

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	got := Map(items, 8, func(idx int, item int) int { return item + idx })
	for i, v := range got {
		if v != i*3+i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	fn := func(idx int, s string) int { return len(s) * (idx + 1) }
	serial := Map(items, 1, fn)
	parallel := Map(items, 4, fn)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel[%d] = %d, serial = %d", i, parallel[i], serial[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map([]int{}, 4, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatal("empty map returned results")
	}
}

func TestMapUsesAllItems(t *testing.T) {
	var calls int64
	Map(make([]int, 57), 3, func(int, int) int {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	if calls != 57 {
		t.Fatalf("fn called %d times", calls)
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// workers <= 0 must still process everything.
	got := Map([]int{1, 2, 3}, 0, func(_ int, v int) int { return v * v })
	if got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

// TestMapSeededDeterministicAcrossWorkers is the harness's core
// guarantee: results do not depend on parallelism.
func TestMapSeededDeterministicAcrossWorkers(t *testing.T) {
	items := make([]int, 64)
	fn := func(item int, r *rng.RNG) uint64 { return r.Uint64() }
	one := MapSeeded(items, 7, 1, fn)
	many := MapSeeded(items, 7, 16, fn)
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("worker-count dependence at %d", i)
		}
	}
	other := MapSeeded(items, 8, 1, fn)
	if one[0] == other[0] {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRepeat(t *testing.T) {
	res := Repeat(10, 3, 4, func(rep int, r *rng.RNG) int { return rep })
	if len(res) != 10 {
		t.Fatalf("Repeat returned %d", len(res))
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("rep order wrong: res[%d]=%d", i, v)
		}
	}
}

func TestFloats(t *testing.T) {
	xs := Floats(5, 1, 2, func(rep int, r *rng.RNG) float64 { return float64(rep) * 2 })
	want := []float64{0, 2, 4, 6, 8}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("Floats[%d] = %v", i, xs[i])
		}
	}
}

// TestRepeatDeterministicAcrossWorkerCounts is the contract the batched
// FloodMulti fan-out in the flood package relies on: a sweep's output
// is identical for workers = 1, 4, and DefaultWorkers() on the same
// seed, because every repetition owns a seed-derived RNG stream and
// results are collected in input order.
func TestRepeatDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []uint64 {
		return Repeat(50, 99, workers, func(rep int, r *rng.RNG) uint64 {
			// Consume a varying amount of the stream so scheduling skew
			// would surface if streams were shared.
			var last uint64
			for i := 0; i <= rep%7; i++ {
				last = r.Uint64()
			}
			return last
		})
	}
	one := run(1)
	for _, workers := range []int{4, DefaultWorkers()} {
		got := run(workers)
		for i := range one {
			if got[i] != one[i] {
				t.Fatalf("workers=%d diverged at rep %d", workers, i)
			}
		}
	}
}

func TestMapCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	items := make([]int, 1000)
	out, err := MapCtx(ctx, items, 4, func(idx int, _ int) int {
		if started.Add(1) == 4 {
			cancel() // cancel after a handful of jobs are in flight
		}
		time.Sleep(time.Millisecond)
		return idx + 1
	})
	if err == nil {
		t.Fatalf("cancelled MapCtx returned nil error")
	}
	if len(out) != 1000 {
		t.Fatalf("output length %d", len(out))
	}
	ran := int(started.Load())
	if ran >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: all %d jobs ran", ran)
	}
	// Results of jobs that ran are in place; undispatched stay zero.
	zero := 0
	for _, v := range out {
		if v == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Fatalf("expected undispatched zero entries after cancellation")
	}
}

func TestMapCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := MapCtx(ctx, make([]int, 100), 1, func(idx int, _ int) int {
		n++
		if n == 5 {
			cancel()
		}
		return n
	})
	if err == nil {
		t.Fatalf("cancelled serial MapCtx returned nil error")
	}
	if n != 5 {
		t.Fatalf("serial path ran %d jobs after cancellation, want exactly 5", n)
	}
}

func TestRepeatCtxMatchesRepeat(t *testing.T) {
	f := func(rep int, r *rng.RNG) uint64 { return r.Uint64() }
	want := Repeat(16, 42, 4, f)
	got, err := RepeatCtx(context.Background(), 16, 42, 4, f)
	if err != nil {
		t.Fatalf("RepeatCtx: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RepeatCtx diverged from Repeat at %d", i)
		}
	}
}

func TestMapPropagatesWorkerPanic(t *testing.T) {
	// A panic inside a parallel job must surface on the calling
	// goroutine (where callers can recover), not crash the process.
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				switch v := p.(type) {
				case string:
					// Serial path: the panic unwinds naturally.
					if workers != 1 || v != "boom" {
						t.Fatalf("workers=%d: recovered %q", workers, v)
					}
				case WorkerPanic:
					// Parallel path: value plus the worker's stack.
					if workers == 1 || v.Value != "boom" {
						t.Fatalf("workers=%d: recovered %+v", workers, v.Value)
					}
					if !strings.Contains(string(v.Stack), "sweep") {
						t.Fatalf("worker stack missing: %s", v.Stack)
					}
				default:
					t.Fatalf("workers=%d: recovered %T %v", workers, p, p)
				}
			}()
			Map(items, workers, func(idx int, item int) int {
				if item == 13 {
					panic("boom")
				}
				return item
			})
		}()
	}
}
