package rng

import (
	"math"
	"testing"
)

// These golden vectors pin the counter-stream contract explicitly.
// Every byte-identical promise in this repository — P1≡P8 worker-count
// equivalence, delta-vs-full snapshot equality, the bench checksum
// gates, the content-addressed result cache — bottoms out in Mix/At
// producing exactly these words for a given key. Until now that
// contract was enforced only transitively (a change here would surface
// as a bench checksum divergence three layers up); these tests fail at
// the source. An intentional algorithm change must update the vectors
// AND bump the spec algo revisions (see internal/spec), or every
// pre-existing cache entry goes stale silently.

func TestMixGoldenVectors(t *testing.T) {
	cases := []struct {
		words []uint64
		want  uint64
	}{
		{[]uint64{}, 0x6a09e667f3bcc909},
		{[]uint64{0x0}, 0x63cfc62a2b097592},
		{[]uint64{0x1}, 0x1ac046dda8e86e2a},
		{[]uint64{0x1, 0x2}, 0x8059eb3418e61d41},
		{[]uint64{0x1, 0x2, 0x3}, 0xac353cecc6b8f974},
		{[]uint64{0x2, 0x1, 0x3}, 0x8026ab7ee2748dfa},
		{[]uint64{0xdeadbeef, 0x2a, 0x7}, 0x4712091d980e13f},
		{[]uint64{0xffffffffffffffff, 0xffffffffffffffff}, 0x96c2a81c08c12894},
	}
	for _, c := range cases {
		if got := Mix(c.words...); got != c.want {
			t.Errorf("Mix(%#x) = %#x, want %#x", c.words, got, c.want)
		}
	}
	// Mix must be order-sensitive: (1,2,3) and (2,1,3) key different
	// streams (the vectors above differ), and word-count-sensitive.
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix is order-insensitive: Mix(1,2) == Mix(2,1)")
	}
	if Mix(1) == Mix(1, 0) {
		t.Error("Mix ignores trailing zero words: Mix(1) == Mix(1,0)")
	}
}

func TestAtGoldenVectors(t *testing.T) {
	cases := []struct {
		base, id, t uint64
		want        [3]uint64
	}{
		{1, 0, 0, [3]uint64{0xee57df1d7d5564bd, 0xca3db7fd0dcb10e6, 0x5e00df4c3db5d2c0}},
		{1, 0, 1, [3]uint64{0xcd9fdca73086c624, 0xa08cb8ef37723418, 0x2616d612f919cdf7}},
		{1, 1, 0, [3]uint64{0xb645bc45790b0ac2, 0xe9ae28c09ac9f2c3, 0x2ed9a648b9d92bb0}},
		{2, 0, 0, [3]uint64{0x7c85675aed66c046, 0x7073509a1ff14a73, 0x7d5eed68bfa7f929}},
		{11259375, 123456, 789, [3]uint64{0x13a44dd4cd511493, 0xaafdf064fadd162a, 0xfab27095306147b2}},
	}
	for _, c := range cases {
		r := At(c.base, c.id, c.t)
		for i, want := range c.want {
			if got := r.Uint64(); got != want {
				t.Errorf("At(%d,%d,%d) word %d = %#x, want %#x", c.base, c.id, c.t, i, got, want)
			}
		}
	}
	// At must agree with seeding from Mix — the documented definition.
	a := At(7, 8, 9)
	var m RNG
	m.Seed(Mix(7, 8, 9))
	for i := 0; i < 16; i++ {
		if a.Uint64() != m.Uint64() {
			t.Fatalf("At(7,8,9) diverges from Seed(Mix(7,8,9)) at word %d", i)
		}
	}
}

func TestNewGoldenVectors(t *testing.T) {
	cases := []struct {
		seed uint64
		want [4]uint64
	}{
		{0x0, [4]uint64{0x53175d61490b23df, 0x61da6f3dc380d507, 0x5c0fdf91ec9a7bfc, 0x2eebf8c3bbe5e1a}},
		{0x1, [4]uint64{0xcfc5d07f6f03c29b, 0xbf424132963fe08d, 0x19a37d5757aaf520, 0xbf08119f05cd56d6}},
		{0x2a, [4]uint64{0xd0764d4f4476689f, 0x519e4174576f3791, 0xfbe07cfb0c24ed8c, 0xb37d9f600cd835b8}},
		{0x9e3779b97f4a7c15, [4]uint64{0x58f24f57e97e3f07, 0x5f9a9d6f9a653406, 0x6534ee33d1fd29d7, 0x2e89656c364e9184}},
	}
	for _, c := range cases {
		r := New(c.seed)
		for i, want := range c.want {
			if got := r.Uint64(); got != want {
				t.Errorf("New(%#x) word %d = %#x, want %#x", c.seed, i, got, want)
			}
		}
	}
}

func TestSeedForGoldenVectors(t *testing.T) {
	cases := []struct {
		base uint64
		idx  int
		want uint64
	}{
		{0x1, 0, 0xbeeb8da1658eec67},
		{0x1, 1, 0xf893a2eefb32555e},
		{0x1, 2, 0x71c18690ee42c90b},
		{0x63, 0, 0x81ab918879d69a4},
		{0xfeedface, 1000000, 0x4b3391b9d99ff581},
	}
	for _, c := range cases {
		if got := SeedFor(c.base, c.idx); got != c.want {
			t.Errorf("SeedFor(%#x, %d) = %#x, want %#x", c.base, c.idx, got, c.want)
		}
	}
}

func TestDerivedSamplerGoldenVectors(t *testing.T) {
	// The samplers sit on Uint64, so pinning a short derived stream
	// guards their transformation arithmetic (53-bit float scaling,
	// Lemire rejection) as well.
	r := New(7)
	wantFloats := []float64{0.055360436478333108, 0.17211585444811772, 0.71757612835865936}
	for i, want := range wantFloats {
		if got := r.Float64(); math.Abs(got-want) > 0 {
			t.Errorf("New(7) Float64 #%d = %.17g, want %.17g", i, got, want)
		}
	}
	wantInts := []int{42, 96, 46, 72, 32}
	for i, want := range wantInts {
		if got := r.Intn(100); got != want {
			t.Errorf("New(7) Intn(100) #%d = %d, want %d", i, got, want)
		}
	}
}
