// Package rng provides a fast, deterministic pseudo-random number
// generator for simulations, based on xoshiro256++ seeded through
// SplitMix64.
//
// Every simulation entity (a sweep job, a repetition, a Markov chain)
// owns its own *RNG so that experiments are reproducible and safe to run
// in parallel: generators derived with Split from a common seed produce
// statistically independent streams without synchronization.
//
// The package also provides the distribution samplers the simulators
// need: uniform integers, permutations, Bernoulli trials, and the
// geometric "skip" sampler used to iterate over huge implicit index
// spaces (such as the Θ(n²) potential edges of an edge-Markovian graph)
// in expected time proportional to the number of successes.
package rng

import "math"

// RNG is a xoshiro256++ pseudo-random number generator.
//
// The zero value is not usable; construct instances with New or Split.
// An RNG must not be shared between goroutines without external locking;
// use Split to derive independent generators instead.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single word seed into the xoshiro state and to
// derive child seeds in Split.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
// Distinct seeds yield independent-looking streams; the same seed always
// yields the same stream.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Split derives a new generator whose stream is independent of the
// parent's future output. It consumes one value from the parent, so
// repeated calls yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitN derives n independent child generators (see Split).
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// divisionless algorithm with a rejection step, so the result is exactly
// uniform. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// 128-bit multiply high: (x * n) >> 64 maps x uniformly to [0, n)
	// with a small bias that the rejection loop removes.
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform values from [0, n) in unspecified
// order. It panics if k > n or k < 0. For k close to n it shuffles; for
// small k it uses rejection against a set.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*3 >= n {
		p := r.Perm(n)
		return p[:k]
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials; i.e. a sample of the geometric
// distribution on {0, 1, 2, ...} with success probability p.
//
// It is the building block of skip sampling: to enumerate the successes
// among N implicit trials, repeatedly jump ahead by Geometric(p)+1.
// It panics if p <= 0 or p > 1.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Guard against u == 0, for which log would be -Inf.
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(g)
}

// Binomial returns a sample of Binomial(n, p), the number of successes in
// n independent Bernoulli(p) trials. It runs in O(np+1) expected time via
// geometric skips, which is fast in the sparse regimes the simulators
// use. It panics if n < 0 or p outside [0,1].
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n < 0 || p < 0 || p > 1 {
		panic("rng: Binomial parameters out of range")
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	flip := false
	if p > 0.5 {
		// Count failures instead so the skip loop stays short.
		p = 1 - p
		flip = true
	}
	var count, i int64
	for {
		i += r.Geometric(p) + 1
		if i > n {
			break
		}
		count++
	}
	if flip {
		return n - count
	}
	return count
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal sample (Box–Muller transform).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// SeedFor derives a deterministic child seed from a base seed and a job
// index. Sweep harnesses use it to give every job its own independent
// stream regardless of scheduling order, keeping parallel experiments
// exactly reproducible.
func SeedFor(base uint64, idx int) uint64 {
	s := base + 0x9e3779b97f4a7c15*uint64(idx+1)
	return splitMix64(&s)
}

// Mix hashes a sequence of words into one well-scrambled seed
// (SplitMix64 absorption). It is the keying primitive of counter-based
// streams: seeding an RNG with Mix(base, id, t) gives every (entity,
// time) pair its own stream that is a pure function of identity — never
// of iteration order, shard layout, or worker count. The gossip engines
// key every per-node random decision this way.
func Mix(words ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909) // √2 fraction: an arbitrary non-zero start
	for _, w := range words {
		h ^= w
		h = splitMix64(&h)
	}
	return h
}

// At returns a generator for the stream keyed by (base, id, t) — see
// Mix. The RNG is returned by value so per-node streams in hot loops
// stay allocation-free.
func At(base, id, t uint64) RNG {
	var r RNG
	r.Seed(Mix(base, id, t))
	return r
}
