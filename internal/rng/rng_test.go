package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-Seed output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling children started identically")
	}
}

func TestSplitN(t *testing.T) {
	parent := New(5)
	kids := parent.SplitN(10)
	if len(kids) != 10 {
		t.Fatalf("SplitN returned %d children", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two children produced the same first output")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance = %v, want ≈ 1/12", variance)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	r := New(17)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(23)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63n(t *testing.T) {
	r := New(29)
	big := int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int63n(big)
		if v < 0 || v >= big {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(37)
	const n = 100000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(43)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle produced duplicate: %v", xs)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(47)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {100, 90}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestGeometricMean(t *testing.T) {
	r := New(53)
	const p = 0.2
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // failures before first success
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want ≈ %v", p, mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(59)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialMoments(t *testing.T) {
	r := New(61)
	const trials = 20000
	const n = 100
	const p = 0.3
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		b := float64(r.Binomial(n, p))
		sum += b
		sum2 += b * b
	}
	mean := sum / trials
	variance := sum2/trials - mean*mean
	if math.Abs(mean-n*p) > 0.5 {
		t.Errorf("Binomial mean = %v, want ≈ %v", mean, n*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 2 {
		t.Errorf("Binomial variance = %v, want ≈ %v", variance, n*p*(1-p))
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(67)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(50, 0); got != 0 {
		t.Errorf("Binomial(50, 0) = %d", got)
	}
	if got := r.Binomial(50, 1); got != 50 {
		t.Errorf("Binomial(50, 1) = %d", got)
	}
}

func TestBinomialHighP(t *testing.T) {
	r := New(71)
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(100, 0.9))
	}
	if mean := sum / trials; math.Abs(mean-90) > 0.5 {
		t.Errorf("Binomial(100, .9) mean = %v", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(73)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ≈ 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(79)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("NormFloat64 variance = %v", variance)
	}
}

func TestSeedForDeterministic(t *testing.T) {
	if SeedFor(1, 5) != SeedFor(1, 5) {
		t.Fatal("SeedFor is not deterministic")
	}
	if SeedFor(1, 5) == SeedFor(1, 6) {
		t.Fatal("SeedFor collision between adjacent indices")
	}
	if SeedFor(1, 5) == SeedFor(2, 5) {
		t.Fatal("SeedFor collision between bases")
	}
}

func TestUint64nUniformSmall(t *testing.T) {
	r := New(83)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(3)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/3.0) > 5*math.Sqrt(n/3.0) {
			t.Errorf("bucket %d count %d", b, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(12345)
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Geometric(0.01)
	}
	_ = sink
}
