package dynamicstest

import (
	"testing"

	"meg/internal/core"
	"meg/internal/spec"
)

// TestGraphContractAllModels runs the aliasing/delta conformance check
// for every model the spec factory knows, at a size small enough to
// exercise many steps, plus the lazy lattice variants whose low-churn
// rounds are the incremental path's home turf.
func TestGraphContractAllModels(t *testing.T) {
	cases := []struct {
		name string
		m    spec.Model
	}{
		{"geometric", spec.Model{Name: "geometric", N: 300, RFrac: 0.5}},
		{"geometric-lazy", spec.Model{Name: "geometric", N: 300, RFrac: 0.5, Jump: 0.1}},
		{"torus", spec.Model{Name: "torus", N: 300, RFrac: 0.5}},
		{"torus-lazy", spec.Model{Name: "torus", N: 300, RFrac: 0.3, Jump: 0.05}},
		{"edge", spec.Model{Name: "edge", N: 300}},
		{"edge-lowchurn", spec.Model{Name: "edge", N: 300, PhatMult: 2, Q: 0.02}},
		{"waypoint", spec.Model{Name: "waypoint", N: 250, RFrac: 0.5}},
		{"billiard", spec.Model{Name: "billiard", N: 250, RFrac: 0.5}},
		{"walkers", spec.Model{Name: "walkers", N: 250, RFrac: 0.5}},
		{"iiddisk", spec.Model{Name: "iiddisk", N: 250, RFrac: 0.5}},
	}
	for _, tc := range cases {
		s := spec.Spec{Model: tc.m}
		factory, _, err := s.NewFactory()
		if err != nil {
			t.Fatalf("%s: NewFactory: %v", tc.name, err)
		}
		CheckGraphContract(t, tc.name, factory, 97, 12)
	}
}

// TestAllFactoryModelsAreDeltaCapable pins the capability matrix: every
// model the spec factory builds must speak the incremental protocol, so
// the snapshot=delta execution hint is never a silent no-op.
func TestAllFactoryModelsAreDeltaCapable(t *testing.T) {
	for _, name := range []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"} {
		s := spec.Spec{Model: spec.Model{Name: name, N: 128, RFrac: 0.5}}
		factory, _, err := s.NewFactory()
		if err != nil {
			t.Fatalf("%s: NewFactory: %v", name, err)
		}
		if _, ok := factory().(core.DeltaDynamics); !ok {
			t.Errorf("%s: does not implement core.DeltaDynamics", name)
		}
	}
}
