// Package dynamicstest provides the shared conformance checks every
// evolving-graph model must pass: the Graph() aliasing contract (the
// returned snapshot is only valid until the next Step/Reset, so models
// may reuse buffers — and engines must copy what they keep), and, for
// delta-capable models, the equivalence of the incremental StepDelta
// path with the full rebuild. These contracts are what keep
// graph.Mutable's row reuse safe, so they are guarded here for all
// models rather than ad hoc per package.
package dynamicstest

import (
	"testing"

	"meg/internal/core"
	"meg/internal/graph"
	"meg/internal/rng"
)

// rows is a deep copy of a snapshot's adjacency: the data an engine is
// allowed to keep across Step only by copying, which is exactly what
// this helper does.
type rows struct {
	m   int
	adj [][]int32
}

func copyRows(g *graph.Graph) rows {
	r := rows{m: g.M(), adj: make([][]int32, g.N())}
	for u := 0; u < g.N(); u++ {
		r.adj[u] = append([]int32(nil), g.Neighbors(u)...)
	}
	return r
}

func rowsEqual(t *testing.T, label string, got *graph.Graph, want rows) {
	t.Helper()
	if got.N() != len(want.adj) || got.M() != want.m {
		t.Fatalf("%s: size (n=%d,m=%d) vs (n=%d,m=%d)", label, got.N(), got.M(), len(want.adj), want.m)
	}
	for u := range want.adj {
		g := got.Neighbors(u)
		if len(g) != len(want.adj[u]) {
			t.Fatalf("%s: row %d length %d vs %d", label, u, len(g), len(want.adj[u]))
		}
		for i := range g {
			if g[i] != want.adj[u][i] {
				t.Fatalf("%s: row %d entry %d: %d vs %d", label, u, i, g[i], want.adj[u][i])
			}
		}
	}
}

// CheckGraphContract verifies the snapshot contract of a dynamics over
// the given number of steps:
//
//  1. Graph() is idempotent between steps (two calls agree byte for
//     byte), and a copy taken before Step captures G_t faithfully;
//  2. buffer reuse is sound: a same-seeded walk that skips the
//     intermediate Graph() calls reaches an identical final snapshot,
//     so no stale state from an earlier materialization leaks forward;
//  3. if the dynamics implements core.DeltaDynamics, a graph.Mutable
//     fed by StepDelta reproduces every per-step snapshot byte for
//     byte — rows included — which is the invariant that lets the
//     engines' delta path reuse adjacency rows safely.
func CheckGraphContract(t *testing.T, name string, factory func() core.Dynamics, seed uint64, steps int) {
	t.Helper()

	// Walk A materializes (and copies) every snapshot.
	a := factory()
	a.Reset(rng.New(seed))
	copies := make([]rows, 0, steps+1)
	for s := 0; s <= steps; s++ {
		g := a.Graph()
		first := copyRows(g)
		rowsEqual(t, name+": Graph() not idempotent", a.Graph(), first)
		copies = append(copies, first)
		if s < steps {
			a.Step()
		}
	}

	// Walk B never materializes intermediate snapshots: the final one
	// must still match, or a Graph() call would be perturbing the chain
	// (or a reused buffer would be leaking stale rows).
	b := factory()
	b.Reset(rng.New(seed))
	for s := 0; s < steps; s++ {
		b.Step()
	}
	rowsEqual(t, name+": skip-materialization walk diverged", b.Graph(), copies[steps])

	// Walk C drives the incremental path, checking the maintained view
	// against walk A's per-step copies.
	c := factory()
	dd, ok := c.(core.DeltaDynamics)
	if !ok {
		return
	}
	c.Reset(rng.New(seed))
	mut := graph.NewMutable(c.Graph())
	rowsEqual(t, name+": delta initial snapshot", mut.Graph(), copies[0])
	for s := 1; s <= steps; s++ {
		delta := dd.StepDelta()
		mut.ApplyDelta(delta, 1+s%4)
		rowsEqual(t, name+": delta path diverged from full rebuild", mut.Graph(), copies[s])
	}
	// The model's own full rebuild must agree with its delta stream.
	rowsEqual(t, name+": model Graph() after StepDelta", c.Graph(), copies[steps])
}
