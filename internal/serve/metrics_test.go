package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"meg/internal/spec"
)

// burstRunner emits a fixed burst of round events once released, then
// returns a tiny result — the harness for subscriber-backpressure and
// history-eviction tests.
type burstRunner struct {
	start  chan struct{}
	events int
}

func (r *burstRunner) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	if r.start != nil {
		select {
		case <-r.start:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for i := 0; i < r.events; i++ {
		if sink != nil {
			sink(Event{Type: "round", Trial: 0, Round: i + 1, Informed: i + 1})
		}
	}
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := c.Hash()
	if err != nil {
		return nil, err
	}
	return &Result{Hash: hash, Spec: publicSpec(c)}, nil
}

// TestSSESlowSubscriberDoesNotBlockOrLeak pins the backpressure
// contract: a subscriber that never reads must not stall the running
// job, and at finish its channel is closed and the subscription table
// emptied — no goroutine has to consume anything for cleanup to
// happen.
func TestSSESlowSubscriberDoesNotBlockOrLeak(t *testing.T) {
	start := make(chan struct{})
	runner := &burstRunner{start: start, events: 600} // far beyond the 256-slot channel
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()
	m := NewMetrics()
	sched.Instrument(m)

	job, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, live, unsubscribe := job.Subscribe()
	if got := m.sseSubs.Value(); got != 1 {
		t.Errorf("sse subscribers = %v, want 1", got)
	}
	close(start)
	// The job must finish although nobody reads `live`. waitDone would
	// hang here if the event fan-out blocked on the full channel.
	waitDone(t, job)

	// finish() closed the channel after the terminal send attempt;
	// draining it must terminate (≤ 256 buffered events, then closed).
	drained := 0
	for range live {
		drained++
	}
	if drained > 256+1 {
		t.Errorf("drained %d events from a 256-slot channel", drained)
	}
	if m.sseDropped.Value() == 0 {
		t.Error("no dropped events recorded despite a stalled subscriber")
	}
	job.mu.Lock()
	leaked := len(job.subs)
	job.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d subscriptions leaked after finish", leaked)
	}
	if got := m.sseSubs.Value(); got != 0 {
		t.Errorf("sse subscriber gauge = %v after finish, want 0", got)
	}
	unsubscribe() // idempotent after finish: must not panic or double-count
	if got := m.sseSubs.Value(); got != 0 {
		t.Errorf("sse subscriber gauge = %v after late unsubscribe, want 0", got)
	}
}

// TestEventHistoryEviction pins the replay bound: a job emitting more
// than maxEventHistory events keeps only the newest, counts the
// evictions, and serves a bounded replay to late subscribers.
func TestEventHistoryEviction(t *testing.T) {
	over := 100
	runner := &burstRunner{events: maxEventHistory + over}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()

	job, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, job)

	replay, live, _ := job.Subscribe()
	for range live { // closed immediately on a finished job
	}
	// History is capped at maxEventHistory progress events; the terminal
	// event is appended on top at finish so it always survives replay.
	if len(replay) != maxEventHistory+1 {
		t.Errorf("replay length = %d, want %d", len(replay), maxEventHistory+1)
	}
	job.mu.Lock()
	dropped := job.dropped
	job.mu.Unlock()
	if dropped != over {
		t.Errorf("dropped = %d, want %d", dropped, over)
	}
	// The bounded replay still ends with the terminal event.
	if replay[len(replay)-1].Type != "done" {
		t.Errorf("replay ends with %q, want done", replay[len(replay)-1].Type)
	}
}

// TestMetricsEndpoint drives a submit → done → cached-resubmit cycle
// through the HTTP stack and asserts the scrape carries the scheduler,
// cache, executor, and HTTP-latency series with the expected counts.
func TestMetricsEndpoint(t *testing.T) {
	runner := &Executor{}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(2, 16, runner, cache)
	defer sched.Close()
	srv := NewServer(sched) // auto-instruments the scheduler
	runner.Metrics = sched.Metrics()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sr := postSpec(t, ts, smallSpec)
	waitJobDone(t, ts, sr.ID)
	if again := postSpec(t, ts, smallSpec); again.Outcome != OutcomeCached {
		t.Fatalf("resubmit outcome = %s, want cached", again.Outcome)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`meg_jobs_submitted_total{outcome="queued"} 1`,
		`meg_jobs_submitted_total{outcome="cached"} 1`,
		// 2: the executed job plus the cached resubmit's pre-finished job.
		`meg_jobs_completed_total{status="done"} 2`,
		`meg_cache_ops_total{op="miss"}`, // first submit missed
		`meg_cache_ops_total{op="hit"} 1`,
		"meg_cache_entries 1",
		`meg_http_requests_total{route="submit",code="202"} 1`,
		`meg_http_requests_total{route="submit",code="200"} 1`,
		`meg_http_request_seconds_count{route="submit"} 2`,
		`meg_executor_jobs_total{model="geometric",protocol="flooding",outcome="ok"} 1`,
		"meg_engine_rounds_total",
		`meg_phase_seconds_total{phase="kernel"}`,
		"meg_job_wait_seconds_count 1",
		"meg_job_run_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}
}

// TestHealthzDraining pins the graceful-shutdown contract: /healthz
// serves 200 with ok=true in steady state and flips to 503 with
// draining=true once BeginDrain is called.
func TestHealthzDraining(t *testing.T) {
	runner := &Executor{}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(1, 4, runner, cache)
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched).Handler())
	defer ts.Close()

	check := func(wantCode int, wantOK, wantDraining bool) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("healthz status = %d, want %d", resp.StatusCode, wantCode)
		}
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		if h.OK != wantOK || h.Draining != wantDraining {
			t.Errorf("healthz = {ok:%v draining:%v}, want {ok:%v draining:%v}", h.OK, h.Draining, wantOK, wantDraining)
		}
		if h.UptimeSeconds < 0 {
			t.Errorf("negative uptime %v", h.UptimeSeconds)
		}
	}
	check(http.StatusOK, true, false)
	sched.BeginDrain()
	check(http.StatusServiceUnavailable, false, true)
}

// TestPprofGated pins that profile endpoints are opt-in.
func TestPprofGated(t *testing.T) {
	runner := &Executor{}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(1, 4, runner, cache)
	defer sched.Close()
	srv := NewServer(sched)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof served without opt-in: %d", resp.StatusCode)
		}
	}
	srv.EnablePprof()
	if resp, err := http.Get(ts.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof index status = %d after EnablePprof", resp.StatusCode)
		}
	}
}

// TestExecutorTelemetryEvents pins the SSE multiplexing: with a sink
// attached, flooding runs emit telemetry events whose phase spans are
// populated, alongside (never instead of) the round events.
func TestExecutorTelemetryEvents(t *testing.T) {
	e := &Executor{}
	s := testSpec(64)
	var rounds, telemetry int
	var lastKernel int64
	res, err := e.Execute(context.Background(), s, func(ev Event) {
		switch ev.Type {
		case "round":
			rounds++
		case "telemetry":
			telemetry++
			if ev.Telemetry == nil {
				t.Error("telemetry event without payload")
				return
			}
			lastKernel += ev.Telemetry.KernelNS
		}
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res == nil || rounds == 0 {
		t.Fatalf("no rounds observed (res=%v)", res)
	}
	if telemetry == 0 {
		t.Fatal("no telemetry events emitted")
	}
	if telemetry != rounds {
		t.Errorf("telemetry events = %d, round events = %d; want equal", telemetry, rounds)
	}
	if lastKernel <= 0 {
		t.Errorf("kernel span never positive across %d telemetry events", telemetry)
	}
}
