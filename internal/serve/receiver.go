package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Notification is the JSON body POSTed to each receiver URL when a job
// reaches a terminal state — the megserve side of a webhook contract:
// external systems register URLs on the spec (the receivers execution
// hint) and get told when the work is done instead of polling.
type Notification struct {
	// Event is job.done, job.failed, or job.canceled.
	Event string `json:"event"`
	// ID and Hash identify the job and its spec content address — the
	// receiver fetches the result bytes from GET /v1/cache/{hash}.
	ID   string `json:"id"`
	Hash string `json:"hash"`
	// Status is the job's terminal status.
	Status JobStatus `json:"status"`
	// Error carries the failure message for job.failed.
	Error string `json:"error,omitempty"`
}

// Delivery policy: a handful of attempts with doubling backoff keeps a
// flapping receiver from being missed, while bounding how long one dead
// endpoint can hold a delivery goroutine (and Scheduler.Close, which
// drains them).
const (
	receiverMaxAttempts = 4
	receiverBaseBackoff = 100 * time.Millisecond
	receiverTimeout     = 5 * time.Second
	receiverConcurrency = 8
)

// notifier delivers terminal-state notifications to webhook receivers
// with bounded retry and exponential backoff. One notifier serves the
// whole scheduler; deliveries run on their own goroutines (bounded by
// a semaphore) so a slow receiver never blocks a worker between jobs.
type notifier struct {
	client  *http.Client
	sleep   func(time.Duration) // injectable so tests observe backoff without waiting it out
	metrics *Metrics            // set by Scheduler.Instrument; nil-safe
	sem     chan struct{}
	wg      sync.WaitGroup
}

func newNotifier() *notifier {
	return &notifier{
		client: &http.Client{Timeout: receiverTimeout},
		sleep:  time.Sleep,
		sem:    make(chan struct{}, receiverConcurrency),
	}
}

// dispatch fans the job's terminal notification out to its receivers.
// It returns immediately; wait() blocks until every in-flight delivery
// settles (delivered or dropped after the retry budget).
func (n *notifier) dispatch(j *Job) {
	urls := j.receiverList()
	if len(urls) == 0 {
		return
	}
	note := Notification{ID: j.ID, Hash: j.Hash, Status: j.Status(), Error: j.Err()}
	switch note.Status {
	case StatusDone:
		note.Event = "job.done"
	case StatusCanceled:
		note.Event = "job.canceled"
	default:
		note.Event = "job.failed"
	}
	body, err := json.Marshal(note)
	if err != nil {
		return
	}
	n.metrics.receiverAccepted(len(urls))
	n.wg.Add(len(urls))
	for _, u := range urls {
		go n.deliver(u, body)
	}
}

// deliver POSTs one notification, retrying failures with exponential
// backoff until the attempt budget runs out.
func (n *notifier) deliver(url string, body []byte) {
	defer n.wg.Done()
	n.sem <- struct{}{}
	defer func() { <-n.sem }()
	backoff := receiverBaseBackoff
	for attempt := 1; attempt <= receiverMaxAttempts; attempt++ {
		n.metrics.receiverAttempt()
		if n.post(url, body) {
			n.metrics.receiverSettled(true)
			return
		}
		if attempt < receiverMaxAttempts {
			n.sleep(backoff)
			backoff *= 2
		}
	}
	n.metrics.receiverSettled(false)
}

// post performs one delivery attempt; any 2xx counts as delivered.
func (n *notifier) post(url string, body []byte) bool {
	resp, err := n.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// wait blocks until every dispatched delivery has settled.
func (n *notifier) wait() { n.wg.Wait() }
