// Package serve is the simulation service layer: a spec executor, a
// content-addressed result cache, a job scheduler with a bounded worker
// pool and single-flight deduplication, and the HTTP/SSE API that
// cmd/megserve exposes. cmd/megsim runs through the same Executor, so
// the CLI and the service share one code path from spec to result.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"meg/internal/core"
	"meg/internal/experiments"
	"meg/internal/flood"
	"meg/internal/metrics"
	"meg/internal/spec"
	"meg/internal/stats"
)

// Event is one entry of a job's progress stream.
type Event struct {
	// Type is round|telemetry|trial|experiment|done|canceled|error.
	Type string `json:"type"`
	// Trial is the trial index for round/telemetry/trial events.
	Trial int `json:"trial,omitempty"`
	// Round and Informed carry the per-round informed count of round
	// events.
	Round    int `json:"round,omitempty"`
	Informed int `json:"informed,omitempty"`
	// Rounds and Completed summarize a finished trial.
	Rounds    int  `json:"rounds,omitempty"`
	Completed bool `json:"completed,omitempty"`
	// Message carries free-form detail (experiment/error events).
	Message string `json:"message,omitempty"`
	// Telemetry carries the round's phase timings on telemetry events —
	// the per-round stream multiplexed into SSE next to the round
	// events. Never part of Result: timings are wall-clock observations,
	// and Result stays byte-deterministic.
	Telemetry *metrics.RoundTelemetry `json:"telemetry,omitempty"`
}

// TrialResult is the JSON form of one trial's outcome.
type TrialResult struct {
	Source       int   `json:"source"`
	Rounds       int   `json:"rounds"`
	Completed    bool  `json:"completed"`
	RoundsToHalf int   `json:"roundsToHalf"`
	Messages     int64 `json:"messages,omitempty"`
}

// Result is the JSON result of one executed spec. It is fully
// deterministic for a given canonical spec (no timestamps, sorted map
// keys), so re-running a spec reproduces the cached bytes exactly.
type Result struct {
	// Hash is the spec's content address.
	Hash string `json:"hash"`
	// Spec is the canonical spec that produced the result.
	Spec spec.Spec `json:"spec"`
	// Model and Protocol describe the instantiated run (campaign jobs).
	Model    string `json:"model,omitempty"`
	Protocol string `json:"protocol,omitempty"`
	// Trials holds the per-trial outcomes (campaign jobs).
	Trials []TrialResult `json:"trials,omitempty"`
	// CompletedTrials/IncompleteTrials count trials that finished
	// flooding vs. hit the round cap.
	CompletedTrials  int `json:"completedTrials"`
	IncompleteTrials int `json:"incompleteTrials"`
	// Rounds summarizes the completed trials' spreading times.
	Rounds stats.Summary `json:"rounds"`
	// Trajectory is trial 0's per-round informed count.
	Trajectory []int `json:"trajectory,omitempty"`
	// Report is the experiment report (experiment jobs only).
	Report *experiments.Report `json:"report,omitempty"`
}

// Runner executes specs. Executor is the real implementation; the
// scheduler depends on the interface so tests can gate or count runs.
type Runner interface {
	// Execute runs the spec to completion, feeding progress events to
	// sink (which may be nil and must be safe for concurrent calls).
	// It returns ctx.Err() when cancelled.
	Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error)
}

// Executor runs simulation specs through the flood/protocol/experiment
// engines. The zero value is ready for use; one Executor is safe for
// concurrent Execute calls.
type Executor struct {
	invocations atomic.Int64

	// Metrics, when set before the first Execute, receives spec-level
	// run counters and aggregated engine-phase timings. Purely
	// observational: results are byte-identical with or without it.
	Metrics *Metrics
}

// Invocations returns how many Execute calls started — the observable
// the single-flight and cache tests (and the smoke test) assert on.
func (e *Executor) Invocations() int64 { return e.invocations.Load() }

// Execute implements Runner.
func (e *Executor) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	e.invocations.Add(1)
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := c.Hash()
	if err != nil {
		return nil, err
	}
	var res *Result
	switch {
	case c.Experiment != "":
		res, err = e.runExperiment(ctx, c, hash, sink)
		e.countJob("experiment", c.Experiment, err)
	case c.Protocol.Name == "flooding":
		res, err = e.runFlooding(ctx, c, hash, sink)
		e.countJob(c.Model.Name, "flooding", err)
	default:
		res, err = e.runProtocol(ctx, c, hash, sink)
		e.countJob(c.Model.Name, c.Protocol.Name, err)
	}
	return res, err
}

// countJob records the run on the executor-jobs counter.
func (e *Executor) countJob(model, protocol string, err error) {
	outcome := "ok"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	case err != nil:
		outcome = "error"
	}
	e.Metrics.execJob(model, protocol, outcome)
}

// phaseHooks builds the per-trial phase-hook factory shared by the
// flooding and protocol runners. Each trial gets its own PhaseRecorder
// (the campaign runner calls the factory once per trial, on the trial's
// worker goroutine); when sink != nil the recorder multiplexes
// per-round telemetry events into the progress stream, and finish folds
// every recorder's totals into the executor's Metrics. The factory is
// nil when nothing would consume the timings, so the engines take the
// zero-cost hookless path.
func (e *Executor) phaseHooks(sink func(Event)) (factory func(trial int) core.PhaseHook, finish func()) {
	if sink == nil && e.Metrics == nil {
		return nil, func() {}
	}
	var mu sync.Mutex
	var recs []*metrics.PhaseRecorder
	factory = func(trial int) core.PhaseHook {
		pr := metrics.NewPhaseRecorder(nil)
		if sink != nil {
			pr.OnRound = func(rt metrics.RoundTelemetry) {
				sink(Event{Type: "telemetry", Trial: trial, Round: rt.Round, Informed: rt.Informed, Telemetry: &rt})
			}
		}
		mu.Lock()
		recs = append(recs, pr)
		mu.Unlock()
		return pr
	}
	finish = func() {
		if e.Metrics == nil {
			return
		}
		var total metrics.PhaseTotals
		mu.Lock()
		for _, pr := range recs {
			total.Merge(pr.Totals())
		}
		mu.Unlock()
		e.Metrics.phaseTotals(total)
	}
	return factory, finish
}

// publicSpec strips execution-only hints from the spec embedded in a
// Result: Workers, Parallelism, ProtocolEngine, Snapshot and Receivers
// are excluded from the content hash, so they must not leak into the
// cached bytes either — otherwise the same hash would serve different
// bytes depending on which submitter simulated first.
func publicSpec(c spec.Spec) spec.Spec {
	c.Workers = 0
	c.Parallelism = 0
	c.ProtocolEngine = ""
	c.Snapshot = ""
	c.Receivers = nil
	return c
}

// runFlooding executes a flooding campaign on the optimized engine.
func (e *Executor) runFlooding(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	factory, desc, err := c.NewFactory()
	if err != nil {
		return nil, err
	}
	opt, err := flood.OptionsFromSpec(c)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		opt.OnRound = func(trial, round, informed int) {
			sink(Event{Type: "round", Trial: trial, Round: round, Informed: informed})
		}
		opt.OnTrialDone = func(trial int, t flood.Trial) {
			sink(Event{Type: "trial", Trial: trial, Rounds: t.Result.Rounds, Completed: t.Result.Completed})
		}
	}
	hooks, finishHooks := e.phaseHooks(sink)
	opt.Hook = hooks
	camp, err := flood.RunContext(ctx, factory, opt)
	finishHooks()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Hash:             hash,
		Spec:             publicSpec(c),
		Model:            desc,
		Protocol:         "flooding",
		CompletedTrials:  len(camp.Rounds),
		IncompleteTrials: camp.Incomplete,
		Rounds:           camp.Summary,
	}
	for _, t := range camp.Trials {
		res.Trials = append(res.Trials, TrialResult{
			Source:       t.Result.Source,
			Rounds:       t.Result.Rounds,
			Completed:    t.Result.Completed,
			RoundsToHalf: t.RoundsToHalf,
		})
	}
	if len(camp.Trials) > 0 {
		res.Trajectory = camp.Trials[0].Result.Trajectory
	}
	return res, nil
}

// runProtocol executes a campaign of a non-flooding protocol on the
// gossip engine selected by the spec's ProtocolEngine hint (the
// bit-parallel sharded kernel by default, the per-node reference on
// request — byte-identical either way), through the same campaign
// runner megsim and the bench suite use.
func (e *Executor) runProtocol(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	factory, desc, err := c.NewFactory()
	if err != nil {
		return nil, err
	}
	proto, err := c.NewProtocol()
	if err != nil {
		return nil, err
	}
	opt, err := flood.ProtocolOptionsFromSpec(c)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		opt.OnRound = func(trial, round, informed int) {
			sink(Event{Type: "round", Trial: trial, Round: round, Informed: informed})
		}
		opt.OnTrialDone = func(trial int, t flood.ProtocolTrial) {
			sink(Event{Type: "trial", Trial: trial, Rounds: t.Result.Rounds, Completed: t.Result.Completed})
		}
	}
	hooks, finishHooks := e.phaseHooks(sink)
	opt.Hook = hooks
	camp, err := flood.RunProtocolContext(ctx, factory, opt)
	finishHooks()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Hash:             hash,
		Spec:             publicSpec(c),
		Model:            desc,
		Protocol:         proto.Name(),
		CompletedTrials:  len(camp.Rounds),
		IncompleteTrials: camp.Incomplete,
		Rounds:           camp.Summary,
	}
	for _, t := range camp.Trials {
		res.Trials = append(res.Trials, TrialResult{
			Source:       t.Result.Source,
			Rounds:       t.Result.Rounds,
			Completed:    t.Result.Completed,
			RoundsToHalf: t.RoundsToHalf,
			Messages:     t.Result.Messages,
		})
	}
	if len(camp.Trials) > 0 {
		res.Trajectory = camp.Trials[0].Result.Trajectory
	}
	return res, nil
}

// runExperiment executes a paper-reproduction experiment as a job. The
// experiment harness is not round-cancellable; cancellation is honored
// before it starts and observed after it returns.
func (e *Executor) runExperiment(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	exp, ok := experiments.ByID(c.Experiment)
	if !ok {
		return nil, fmt.Errorf("serve: unknown experiment %q", c.Experiment)
	}
	params, err := experiments.ParamsFromSpec(c)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sink != nil {
		sink(Event{Type: "experiment", Message: fmt.Sprintf("%s: %s (scale=%s)", exp.ID, exp.Title, params.Scale)})
	}
	rep := exp.Run(params)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Hash: hash, Spec: publicSpec(c), Report: rep}, nil
}
