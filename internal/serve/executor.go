// Package serve is the simulation service layer: a spec executor, a
// content-addressed result cache, a job scheduler with a bounded worker
// pool and single-flight deduplication, and the HTTP/SSE API that
// cmd/megserve exposes. cmd/megsim runs through the same Executor, so
// the CLI and the service share one code path from spec to result.
package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"meg/internal/experiments"
	"meg/internal/flood"
	"meg/internal/rng"
	"meg/internal/spec"
	"meg/internal/stats"
	"meg/internal/sweep"
)

// Event is one entry of a job's progress stream.
type Event struct {
	// Type is round|trial|experiment|done|canceled|error.
	Type string `json:"type"`
	// Trial is the trial index for round/trial events.
	Trial int `json:"trial,omitempty"`
	// Round and Informed carry the per-round informed count of round
	// events.
	Round    int `json:"round,omitempty"`
	Informed int `json:"informed,omitempty"`
	// Rounds and Completed summarize a finished trial.
	Rounds    int  `json:"rounds,omitempty"`
	Completed bool `json:"completed,omitempty"`
	// Message carries free-form detail (experiment/error events).
	Message string `json:"message,omitempty"`
}

// TrialResult is the JSON form of one trial's outcome.
type TrialResult struct {
	Source       int   `json:"source"`
	Rounds       int   `json:"rounds"`
	Completed    bool  `json:"completed"`
	RoundsToHalf int   `json:"roundsToHalf"`
	Messages     int64 `json:"messages,omitempty"`
}

// Result is the JSON result of one executed spec. It is fully
// deterministic for a given canonical spec (no timestamps, sorted map
// keys), so re-running a spec reproduces the cached bytes exactly.
type Result struct {
	// Hash is the spec's content address.
	Hash string `json:"hash"`
	// Spec is the canonical spec that produced the result.
	Spec spec.Spec `json:"spec"`
	// Model and Protocol describe the instantiated run (campaign jobs).
	Model    string `json:"model,omitempty"`
	Protocol string `json:"protocol,omitempty"`
	// Trials holds the per-trial outcomes (campaign jobs).
	Trials []TrialResult `json:"trials,omitempty"`
	// CompletedTrials/IncompleteTrials count trials that finished
	// flooding vs. hit the round cap.
	CompletedTrials  int `json:"completedTrials"`
	IncompleteTrials int `json:"incompleteTrials"`
	// Rounds summarizes the completed trials' spreading times.
	Rounds stats.Summary `json:"rounds"`
	// Trajectory is trial 0's per-round informed count.
	Trajectory []int `json:"trajectory,omitempty"`
	// Report is the experiment report (experiment jobs only).
	Report *experiments.Report `json:"report,omitempty"`
}

// Runner executes specs. Executor is the real implementation; the
// scheduler depends on the interface so tests can gate or count runs.
type Runner interface {
	// Execute runs the spec to completion, feeding progress events to
	// sink (which may be nil and must be safe for concurrent calls).
	// It returns ctx.Err() when cancelled.
	Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error)
}

// Executor runs simulation specs through the flood/protocol/experiment
// engines. The zero value is ready for use; one Executor is safe for
// concurrent Execute calls.
type Executor struct {
	invocations atomic.Int64
}

// Invocations returns how many Execute calls started — the observable
// the single-flight and cache tests (and the smoke test) assert on.
func (e *Executor) Invocations() int64 { return e.invocations.Load() }

// Execute implements Runner.
func (e *Executor) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	e.invocations.Add(1)
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	hash, err := c.Hash()
	if err != nil {
		return nil, err
	}
	if c.Experiment != "" {
		return e.runExperiment(ctx, c, hash, sink)
	}
	if c.Protocol.Name == "flooding" {
		return e.runFlooding(ctx, c, hash, sink)
	}
	return e.runProtocol(ctx, c, hash, sink)
}

// publicSpec strips execution-only hints from the spec embedded in a
// Result: Workers and Parallelism are excluded from the content hash,
// so they must not leak into the cached bytes either — otherwise the
// same hash would serve different bytes depending on which submitter
// simulated first.
func publicSpec(c spec.Spec) spec.Spec {
	c.Workers = 0
	c.Parallelism = 0
	return c
}

// runFlooding executes a flooding campaign on the optimized engine.
func (e *Executor) runFlooding(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	factory, desc, err := c.NewFactory()
	if err != nil {
		return nil, err
	}
	opt, err := flood.OptionsFromSpec(c)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		opt.OnRound = func(trial, round, informed int) {
			sink(Event{Type: "round", Trial: trial, Round: round, Informed: informed})
		}
		opt.OnTrialDone = func(trial int, t flood.Trial) {
			sink(Event{Type: "trial", Trial: trial, Rounds: t.Result.Rounds, Completed: t.Result.Completed})
		}
	}
	camp, err := flood.RunContext(ctx, factory, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Hash:             hash,
		Spec:             publicSpec(c),
		Model:            desc,
		Protocol:         "flooding",
		CompletedTrials:  len(camp.Rounds),
		IncompleteTrials: camp.Incomplete,
		Rounds:           camp.Summary,
	}
	for _, t := range camp.Trials {
		res.Trials = append(res.Trials, TrialResult{
			Source:       t.Result.Source,
			Rounds:       t.Result.Rounds,
			Completed:    t.Result.Completed,
			RoundsToHalf: t.RoundsToHalf,
		})
	}
	if len(camp.Trials) > 0 {
		res.Trajectory = camp.Trials[0].Result.Trajectory
	}
	return res, nil
}

// runProtocol executes a campaign of a non-flooding protocol: the same
// trial/source estimator as flood.Run (worst over sources, fresh
// dynamics per trial), with cancellation checked between trials.
func (e *Executor) runProtocol(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	factory, desc, err := c.NewFactory()
	if err != nil {
		return nil, err
	}
	proto, err := c.NewProtocol()
	if err != nil {
		return nil, err
	}
	seed, err := c.EffectiveSeed()
	if err != nil {
		return nil, err
	}
	n := c.Model.N

	type trial struct {
		src       int
		rounds    int
		completed bool
		messages  int64
		traj      []int
	}
	trials, err := sweep.RepeatCtx(ctx, c.Trials, seed, c.Workers, func(rep int, r *rng.RNG) trial {
		d := factory()
		worst := trial{}
		for i := 0; i < c.Sources; i++ {
			src := 0
			if i > 0 {
				src = r.Intn(n)
			}
			d.Reset(r.Split())
			res := proto.Run(d, src, c.MaxRounds, r)
			t := trial{src: src, rounds: res.Rounds, completed: res.Completed, messages: res.Messages, traj: res.Trajectory}
			if i == 0 || worseTrial(t.rounds, t.completed, worst.rounds, worst.completed) {
				worst = t
			}
		}
		if sink != nil && ctx.Err() == nil {
			sink(Event{Type: "trial", Trial: rep, Rounds: worst.rounds, Completed: worst.completed})
		}
		return worst
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Hash: hash, Spec: publicSpec(c), Model: desc, Protocol: proto.Name()}
	var rounds []float64
	for _, t := range trials {
		res.Trials = append(res.Trials, TrialResult{
			Source:       t.src,
			Rounds:       t.rounds,
			Completed:    t.completed,
			RoundsToHalf: roundsToHalf(t.traj, n),
			Messages:     t.messages,
		})
		if t.completed {
			rounds = append(rounds, float64(t.rounds))
			res.CompletedTrials++
		} else {
			res.IncompleteTrials++
		}
	}
	if len(rounds) > 0 {
		res.Rounds = stats.Summarize(rounds)
	}
	if len(trials) > 0 {
		res.Trajectory = trials[0].traj
	}
	return res, nil
}

// worseTrial mirrors core's flooding-time ordering: incomplete beats
// complete, then more rounds beats fewer.
func worseTrial(aRounds int, aCompleted bool, bRounds int, bCompleted bool) bool {
	if aCompleted != bCompleted {
		return !aCompleted
	}
	return aRounds > bRounds
}

// roundsToHalf returns the first index t with traj[t] ≥ n/2, or -1.
func roundsToHalf(traj []int, n int) int {
	for t, m := range traj {
		if 2*m >= n {
			return t
		}
	}
	return -1
}

// runExperiment executes a paper-reproduction experiment as a job. The
// experiment harness is not round-cancellable; cancellation is honored
// before it starts and observed after it returns.
func (e *Executor) runExperiment(ctx context.Context, c spec.Spec, hash string, sink func(Event)) (*Result, error) {
	exp, ok := experiments.ByID(c.Experiment)
	if !ok {
		return nil, fmt.Errorf("serve: unknown experiment %q", c.Experiment)
	}
	params, err := experiments.ParamsFromSpec(c)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sink != nil {
		sink(Event{Type: "experiment", Message: fmt.Sprintf("%s: %s (scale=%s)", exp.ID, exp.Title, params.Scale)})
	}
	rep := exp.Run(params)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Hash: hash, Spec: publicSpec(c), Report: rep}, nil
}
