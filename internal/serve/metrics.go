package serve

import (
	"strconv"
	"time"

	"meg/internal/metrics"
)

// Metrics bundles every instrument the serving layer records, all
// registered on one metrics.Registry that GET /metrics exposes. One
// Metrics is shared per process: NewServer creates it (or adopts the
// one already attached via Scheduler.Instrument), the scheduler and
// cache record into it, and the executor reports spec-level counters
// through its exported Metrics field.
//
// Every recording method is nil-receiver-safe, so instrumentation-free
// construction paths (tests building a bare Scheduler, the Executor
// used directly by megsim without -telemetry plumbing) cost a nil
// check and nothing else.
type Metrics struct {
	reg   *metrics.Registry
	start time.Time

	submissions  *metrics.CounterVec // outcome: queued|coalesced|cached
	jobsDone     *metrics.CounterVec // status: done|failed|canceled
	queueDepth   *metrics.Gauge
	shardDepth   *metrics.GaugeVec // shard: 0..N-1
	jobsRunning  *metrics.Gauge
	jobWait      *metrics.Histogram
	jobRun       *metrics.Histogram
	cacheOps     *metrics.CounterVec // op: hit|miss|evict|disk_write
	cacheEntries *metrics.Gauge
	sseSubs      *metrics.Gauge
	sseDropped   *metrics.Counter
	httpRequests *metrics.CounterVec   // route, code
	httpLatency  *metrics.HistogramVec // route
	execJobs     *metrics.CounterVec   // model, protocol, outcome
	phaseSeconds *metrics.CounterVec   // phase
	engineRounds *metrics.Counter

	receiverDeliveries *metrics.CounterVec // outcome: delivered|dropped
	receiverAttempts   *metrics.Counter
	receiverPending    *metrics.Gauge
}

// Durations in seconds; layouts fixed so dashboards stay comparable
// across deploys.
var (
	jobSecondsBuckets  = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}
	httpSecondsBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
)

// NewMetrics builds the serving layer's metric families on a fresh
// registry.
func NewMetrics() *Metrics {
	reg := metrics.NewRegistry()
	m := &Metrics{reg: reg, start: time.Now()}
	m.submissions = reg.CounterVec("meg_jobs_submitted_total",
		"Spec submissions by scheduler outcome (queued|coalesced|cached).", "outcome")
	m.jobsDone = reg.CounterVec("meg_jobs_completed_total",
		"Jobs reaching a terminal state, by status (done|failed|canceled).", "status")
	m.queueDepth = reg.Gauge("meg_queue_depth",
		"Jobs accepted but not yet picked up by a worker.")
	m.shardDepth = reg.GaugeVec("meg_shard_queue_depth",
		"Jobs accepted but not yet picked up, by worker-pool shard.", "shard")
	m.jobsRunning = reg.Gauge("meg_jobs_running",
		"Jobs currently executing on a worker.")
	m.jobWait = reg.Histogram("meg_job_wait_seconds",
		"Queue wait time from submission to worker pickup.", jobSecondsBuckets)
	m.jobRun = reg.Histogram("meg_job_run_seconds",
		"Execution time on a worker, pickup to terminal state.", jobSecondsBuckets)
	m.cacheOps = reg.CounterVec("meg_cache_ops_total",
		"Result-cache operations by kind (hit|miss|evict|disk_write).", "op")
	m.cacheEntries = reg.Gauge("meg_cache_entries",
		"Result-cache in-memory entries.")
	m.sseSubs = reg.Gauge("meg_sse_subscribers",
		"Live SSE subscriber channels across all jobs.")
	m.sseDropped = reg.Counter("meg_sse_dropped_events_total",
		"Events dropped on slow subscriber channels (backpressure).")
	m.httpRequests = reg.CounterVec("meg_http_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	m.httpLatency = reg.HistogramVec("meg_http_request_seconds",
		"HTTP request latency by route.", httpSecondsBuckets, "route")
	m.execJobs = reg.CounterVec("meg_executor_jobs_total",
		"Executor runs by spec model, protocol, and outcome (ok|error|canceled).", "model", "protocol", "outcome")
	m.phaseSeconds = reg.CounterVec("meg_phase_seconds_total",
		"Engine time by phase (snapshot|kernel|merge|step|delta_apply), summed over instrumented runs; merge is nested inside kernel.", "phase")
	m.engineRounds = reg.Counter("meg_engine_rounds_total",
		"Engine rounds evaluated by instrumented runs.")
	m.receiverDeliveries = reg.CounterVec("meg_receiver_deliveries_total",
		"Webhook completion notifications by final outcome (delivered|dropped after the retry budget).", "outcome")
	m.receiverAttempts = reg.Counter("meg_receiver_attempts_total",
		"Webhook delivery attempts, including retries.")
	m.receiverPending = reg.Gauge("meg_receiver_pending",
		"Webhook notifications accepted but not yet settled.")
	return m
}

// Registry returns the registry backing the bundle — the body of
// GET /metrics.
func (m *Metrics) Registry() *metrics.Registry { return m.reg }

// Uptime returns the time since the bundle was created (process boot
// for the server's shared instance).
func (m *Metrics) Uptime() time.Duration {
	if m == nil {
		return 0
	}
	return time.Since(m.start)
}

func (m *Metrics) submission(o Outcome) {
	if m == nil {
		return
	}
	m.submissions.With(string(o)).Inc()
}

func (m *Metrics) jobQueued(shard int) {
	if m == nil {
		return
	}
	m.queueDepth.Inc()
	m.shardDepth.With(strconv.Itoa(shard)).Inc()
}

func (m *Metrics) jobDequeued(shard int) {
	if m == nil {
		return
	}
	m.queueDepth.Dec()
	m.shardDepth.With(strconv.Itoa(shard)).Dec()
}

func (m *Metrics) receiverAccepted(n int) {
	if m == nil || n == 0 {
		return
	}
	m.receiverPending.Add(float64(n))
}

func (m *Metrics) receiverAttempt() {
	if m == nil {
		return
	}
	m.receiverAttempts.Inc()
}

func (m *Metrics) receiverSettled(delivered bool) {
	if m == nil {
		return
	}
	outcome := "delivered"
	if !delivered {
		outcome = "dropped"
	}
	// Pending drops before the outcome counter ticks, so observing the
	// outcome implies the pending gauge no longer counts this delivery.
	m.receiverPending.Dec()
	m.receiverDeliveries.With(outcome).Inc()
}

func (m *Metrics) jobStarted(wait time.Duration) {
	if m == nil {
		return
	}
	m.jobsRunning.Inc()
	m.jobWait.Observe(wait.Seconds())
}

func (m *Metrics) jobRanFor(d time.Duration) {
	if m == nil {
		return
	}
	m.jobsRunning.Dec()
	m.jobRun.Observe(d.Seconds())
}

func (m *Metrics) jobFinished(status JobStatus) {
	if m == nil {
		return
	}
	m.jobsDone.With(string(status)).Inc()
}

func (m *Metrics) cacheOp(op string) {
	if m == nil {
		return
	}
	m.cacheOps.With(op).Inc()
}

func (m *Metrics) cacheSize(n int) {
	if m == nil {
		return
	}
	m.cacheEntries.Set(float64(n))
}

func (m *Metrics) sseSubscribed() {
	if m == nil {
		return
	}
	m.sseSubs.Inc()
}

func (m *Metrics) sseUnsubscribed(n int) {
	if m == nil || n == 0 {
		return
	}
	m.sseSubs.Add(float64(-n))
}

func (m *Metrics) sseDroppedEvent() {
	if m == nil {
		return
	}
	m.sseDropped.Inc()
}

func (m *Metrics) httpRequest(route string, code int, d time.Duration) {
	if m == nil {
		return
	}
	m.httpRequests.With(route, strconv.Itoa(code)).Inc()
	m.httpLatency.With(route).Observe(d.Seconds())
}

func (m *Metrics) execJob(model, protocol, outcome string) {
	if m == nil {
		return
	}
	m.execJobs.With(model, protocol, outcome).Inc()
}

// phaseTotals folds one run's aggregated phase breakdown into the
// engine counters.
func (m *Metrics) phaseTotals(t metrics.PhaseTotals) {
	if m == nil {
		return
	}
	m.phaseSeconds.With("snapshot").Add(float64(t.SnapshotNS) / 1e9)
	m.phaseSeconds.With("kernel").Add(float64(t.KernelNS) / 1e9)
	m.phaseSeconds.With("merge").Add(float64(t.MergeNS) / 1e9)
	m.phaseSeconds.With("step").Add(float64(t.StepNS) / 1e9)
	m.phaseSeconds.With("delta_apply").Add(float64(t.DeltaApplyNS) / 1e9)
	m.engineRounds.Add(float64(t.Rounds))
}

// healthJobs is the /healthz jobs block, read back from the registry's
// own instruments so the health payload and the scrape never disagree.
type healthJobs struct {
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	InFlight int64 `json:"inFlight"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
}

// healthCache is the /healthz cache block.
type healthCache struct {
	Entries    int64 `json:"entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	DiskWrites int64 `json:"diskWrites"`
}

func (m *Metrics) healthJobs() healthJobs {
	if m == nil {
		return healthJobs{}
	}
	h := healthJobs{
		Queued:   int64(m.queueDepth.Value()),
		Running:  int64(m.jobsRunning.Value()),
		Done:     int64(m.jobsDone.With(string(StatusDone)).Value()),
		Failed:   int64(m.jobsDone.With(string(StatusFailed)).Value()),
		Canceled: int64(m.jobsDone.With(string(StatusCanceled)).Value()),
	}
	h.InFlight = h.Queued + h.Running
	return h
}

func (m *Metrics) healthCache() healthCache {
	if m == nil {
		return healthCache{}
	}
	return healthCache{
		Entries:    int64(m.cacheEntries.Value()),
		Hits:       int64(m.cacheOps.With("hit").Value()),
		Misses:     int64(m.cacheOps.With("miss").Value()),
		Evictions:  int64(m.cacheOps.With("evict").Value()),
		DiskWrites: int64(m.cacheOps.With("disk_write").Value()),
	}
}
