package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"meg/internal/spec"
)

// maxSpecBytes bounds the request body of a job submission.
const maxSpecBytes = 1 << 20

// Server is the HTTP face of the scheduler: the megserve API.
//
//	POST   /v1/jobs            submit a spec, get {id, hash, status, outcome}
//	GET    /v1/jobs/{id}       job status, progress, and (when done) result
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/jobs/{id}/events  SSE stream of progress events
//	GET    /v1/cache/{hash}    cached result bytes by content address
//	GET    /healthz            liveness + registry-backed counters (503 while draining)
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/pprof/*      runtime profiles (EnablePprof / megserve -pprof)
type Server struct {
	sched *Scheduler
	m     *Metrics
	mux   *http.ServeMux
}

// NewServer wires the API routes around a scheduler. Every route runs
// through the latency/status middleware; if the scheduler has no
// metrics bundle attached yet, NewServer attaches a fresh one, so
// /metrics and /healthz always have a registry behind them.
func NewServer(sched *Scheduler) *Server {
	if sched.metrics == nil {
		sched.Instrument(NewMetrics())
	}
	s := &Server{sched: sched, m: sched.metrics, mux: http.NewServeMux()}
	s.handle("POST /v1/jobs", "submit", s.handleSubmit)
	s.handle("GET /v1/jobs/{id}", "job", s.handleJob)
	s.handle("DELETE /v1/jobs/{id}", "cancel", s.handleCancel)
	s.handle("GET /v1/jobs/{id}/events", "events", s.handleEvents)
	s.handle("GET /v1/cache/{hash}", "cache", s.handleCache)
	s.handle("GET /healthz", "healthz", s.handleHealth)
	s.handle("GET /metrics", "metrics", s.m.Registry().Handler().ServeHTTP)
	return s
}

// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ —
// profile endpoints are opt-in (megserve -pprof), never on by default.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers a route through the observation middleware: per-
// route request counts (by status code) and latency histograms under
// a stable route label — {id}/{hash} wildcards never explode the
// label space.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.m.httpRequest(route, sw.code, time.Since(start))
	})
}

// statusWriter captures the response status code for the middleware.
// It implements http.Flusher unconditionally (no-op when the wrapped
// writer can't flush) so the SSE handler streams through it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError writes a {error: ...} payload.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitResponse is the POST /v1/jobs payload.
type submitResponse struct {
	ID      string    `json:"id"`
	Hash    string    `json:"hash"`
	Status  JobStatus `json:"status"`
	Outcome Outcome   `json:"outcome"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, outcome, err := s.sched.Submit(sp)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	code := http.StatusAccepted
	if outcome == OutcomeCached {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{ID: job.ID, Hash: job.Hash, Status: job.Status(), Outcome: outcome})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.View(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sched.Cancel(id) {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job, _ := s.sched.Get(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": job.Status()})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, unsubscribe := job.Subscribe()
	defer unsubscribe()
	for _, e := range replay {
		writeSSE(w, e)
	}
	flusher.Flush()
	// The replay of a finished job already ends with the terminal
	// event; a live job's channel closes after delivering it. A slow
	// subscriber can lose events to channel backpressure, though, so if
	// the channel closes before we saw a terminal event, synthesize it
	// from the job's final status — the stream contract is that it
	// always ends with done/canceled/error on job completion.
	if len(replay) > 0 && isTerminalEvent(replay[len(replay)-1]) {
		return
	}
	for {
		select {
		case e, ok := <-live:
			if !ok {
				writeSSE(w, terminalEventFor(job))
				flusher.Flush()
				return
			}
			writeSSE(w, e)
			flusher.Flush()
			if isTerminalEvent(e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// terminalEventFor reconstructs the terminal event from a finished
// job's state (used when the live channel dropped it under
// backpressure).
func terminalEventFor(j *Job) Event {
	switch j.Status() {
	case StatusFailed:
		return Event{Type: "error", Message: j.Err()}
	case StatusCanceled:
		return Event{Type: "canceled"}
	default:
		return Event{Type: "done"}
	}
}

// isTerminalEvent reports whether the event ends the stream.
func isTerminalEvent(e Event) bool {
	switch e.Type {
	case "done", "canceled", "error":
		return true
	}
	return false
}

// writeSSE writes one event in text/event-stream framing.
func writeSSE(w io.Writer, e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	data, ok := s.sched.cache.Get(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// healthResponse is the GET /healthz payload: liveness plus the
// registry's own counters, so the health view and the /metrics scrape
// can never disagree. During graceful-shutdown drain ok flips to false
// and the endpoint returns 503, telling load balancers to stop routing
// here while in-flight work settles.
type healthResponse struct {
	OK            bool        `json:"ok"`
	Draining      bool        `json:"draining"`
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Jobs          healthJobs  `json:"jobs"`
	Cache         healthCache `json:"cache"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	draining := s.sched.Draining()
	resp := healthResponse{
		OK:            !draining,
		Draining:      draining,
		UptimeSeconds: s.m.Uptime().Seconds(),
		Jobs:          s.m.healthJobs(),
		Cache:         s.m.healthCache(),
	}
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}
