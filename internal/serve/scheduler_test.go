package serve

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"meg/internal/rng"
	"meg/internal/spec"
	"meg/internal/sweep"
)

// testSpec returns a small, fast campaign spec.
func testSpec(n int) spec.Spec {
	return spec.Spec{
		Model:  spec.Model{Name: "geometric", N: n},
		Trials: 2,
	}
}

// gatedRunner wraps an Executor but blocks every Execute until
// released, so tests can hold jobs in flight deterministically.
type gatedRunner struct {
	inner   Executor
	release chan struct{}
}

func (g *gatedRunner) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Execute(ctx, s, sink)
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	runner := &gatedRunner{release: make(chan struct{})}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, runner, cache)
	defer sched.Close()

	first, outcome, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if outcome != OutcomeQueued {
		t.Fatalf("first submit outcome = %s, want queued", outcome)
	}

	// Concurrent identical submissions must attach to the same job.
	var wg sync.WaitGroup
	jobs := make([]*Job, 8)
	outcomes := make([]Outcome, 8)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, o, err := sched.Submit(testSpec(64))
			if err != nil {
				t.Errorf("concurrent Submit: %v", err)
				return
			}
			jobs[i], outcomes[i] = j, o
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if j.ID != first.ID {
			t.Errorf("submission %d got job %s, want %s (coalesced)", i, j.ID, first.ID)
		}
		if outcomes[i] != OutcomeCoalesced {
			t.Errorf("submission %d outcome = %s, want coalesced", i, outcomes[i])
		}
	}

	close(runner.release)
	waitDone(t, first)
	if got := runner.inner.Invocations(); got != 1 {
		t.Fatalf("executor ran %d times for 9 identical submissions, want 1", got)
	}
	if first.Status() != StatusDone {
		t.Fatalf("status = %s, err = %q", first.Status(), first.Err())
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	runner := &Executor{}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()

	j1, outcome, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if outcome != OutcomeQueued {
		t.Fatalf("outcome = %s, want queued", outcome)
	}
	waitDone(t, j1)
	if j1.Status() != StatusDone {
		t.Fatalf("status = %s, err = %q", j1.Status(), j1.Err())
	}

	j2, outcome, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if outcome != OutcomeCached {
		t.Fatalf("outcome = %s, want cached", outcome)
	}
	if j2.Status() != StatusDone {
		t.Fatalf("cached job not done: %s", j2.Status())
	}
	if j1.Hash != j2.Hash {
		t.Fatalf("hash mismatch: %s vs %s", j1.Hash, j2.Hash)
	}
	if !bytes.Equal(j1.Result(), j2.Result()) {
		t.Fatalf("cache hit is not byte-identical")
	}
	if got := runner.Invocations(); got != 1 {
		t.Fatalf("executor ran %d times, want 1 (second submit served from cache)", got)
	}

	// Different spec → different hash, new simulation.
	j3, outcome, err := sched.Submit(testSpec(128))
	if err != nil {
		t.Fatalf("Submit different: %v", err)
	}
	if outcome != OutcomeQueued || j3.Hash == j1.Hash {
		t.Fatalf("different spec should queue a fresh job (outcome=%s)", outcome)
	}
	waitDone(t, j3)
	if got := runner.Invocations(); got != 2 {
		t.Fatalf("executor ran %d times, want 2", got)
	}
}

func TestRerunReproducesCachedBytes(t *testing.T) {
	// Two *independent* schedulers (no shared cache) must produce the
	// same result bytes for the same spec: determinism end to end.
	run := func() []byte {
		cache, _ := NewCache(0, "")
		sched := NewScheduler(2, 16, &Executor{}, cache)
		defer sched.Close()
		j, _, err := sched.Submit(testSpec(64))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("status = %s, err = %q", j.Status(), j.Err())
		}
		return j.Result()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("independent runs of the same spec produced different bytes")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	runner := &gatedRunner{release: make(chan struct{})}
	defer close(runner.release)
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()

	// Occupy the single worker, then queue a second job and cancel it.
	blocker, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	queued, _, err := sched.Submit(testSpec(128))
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if !sched.Cancel(queued.ID) {
		t.Fatalf("Cancel returned false")
	}
	waitDone(t, queued)
	if queued.Status() != StatusCanceled {
		t.Fatalf("status = %s, want canceled", queued.Status())
	}
	// The cancelled job's hash must be free for resubmission.
	again, outcome, err := sched.Submit(testSpec(128))
	if err != nil {
		t.Fatalf("resubmit after cancel: %v", err)
	}
	if again.ID == queued.ID || outcome == OutcomeCached {
		t.Fatalf("cancelled job still active: outcome=%s id=%s", outcome, again.ID)
	}
	_ = blocker
}

func TestCancelRunningJobPrompt(t *testing.T) {
	runner := &Executor{}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()

	// A heavy spec: many trials on a mid-size model. Cancellation must
	// land long before the full campaign would finish.
	heavy := spec.Spec{
		Model:  spec.Model{Name: "geometric", N: 2048},
		Trials: 512,
	}
	j, _, err := sched.Submit(heavy)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait until it is actually running.
	deadline := time.Now().Add(10 * time.Second)
	for j.Status() != StatusRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if !sched.Cancel(j.ID) {
		t.Fatalf("Cancel returned false")
	}
	waitDone(t, j)
	if j.Status() != StatusCanceled {
		t.Fatalf("status = %s, want canceled", j.Status())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestSubmitInvalidSpec(t *testing.T) {
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 4, &Executor{}, cache)
	defer sched.Close()
	if _, _, err := sched.Submit(spec.Spec{Model: spec.Model{Name: "nosuch", N: 64}}); err == nil {
		t.Fatalf("invalid spec accepted")
	}
}

func TestJobProgressAndEvents(t *testing.T) {
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 4, &Executor{}, cache)
	defer sched.Close()
	j, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	v := j.View(true)
	if v.Progress.TrialsDone != 2 || v.Progress.Trials != 2 {
		t.Fatalf("progress = %+v, want 2/2 trials", v.Progress)
	}
	if v.Progress.Events == 0 {
		t.Fatalf("no events recorded")
	}
	if len(v.Result) == 0 {
		t.Fatalf("view missing result")
	}
	replay, live, unsub := j.Subscribe()
	defer unsub()
	if len(replay) == 0 || !isTerminalEvent(replay[len(replay)-1]) {
		t.Fatalf("replay of a finished job must end with the terminal event; got %d events", len(replay))
	}
	rounds := 0
	for _, e := range replay {
		if e.Type == "round" {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatalf("no round events in replay")
	}
	if _, ok := <-live; ok {
		t.Fatalf("live channel of a finished job should be closed")
	}
}

// panicRunner fails by panicking — the shape of a spec whose run trips
// a model invariant or protocol precondition deep inside the engines.
type panicRunner struct{ inner Executor }

func (p *panicRunner) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	if s.Model.N == 64 {
		panic("model invariant violated")
	}
	return p.inner.Execute(ctx, s, sink)
}

func TestWorkerSurvivesPanickingJob(t *testing.T) {
	// Regression: before the worker recover, one panicking spec killed
	// the whole server. The job must fail with the panic message in its
	// event history, and the same worker must keep serving jobs.
	runner := &panicRunner{}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()

	bad, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, bad)
	if bad.Status() != StatusFailed {
		t.Fatalf("status = %s, want failed", bad.Status())
	}
	if msg := bad.Err(); !strings.Contains(msg, "model invariant violated") {
		t.Fatalf("failure message %q does not carry the panic", msg)
	}
	replay, _, unsub := bad.Subscribe()
	defer unsub()
	found := false
	for _, e := range replay {
		if e.Type == "error" && strings.Contains(e.Message, "model invariant violated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("event history lacks the panic message: %+v", replay)
	}

	// The single worker survived: a healthy job still completes.
	good, _, err := sched.Submit(testSpec(128))
	if err != nil {
		t.Fatalf("Submit good: %v", err)
	}
	waitDone(t, good)
	if good.Status() != StatusDone {
		t.Fatalf("post-panic job status = %s, err = %q", good.Status(), good.Err())
	}
	// The failed hash is free for resubmission (not wedged in the
	// single-flight index).
	again, outcome, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if outcome == OutcomeCached || again.ID == bad.ID {
		t.Fatalf("panicked job wedged its hash: outcome=%s id=%s", outcome, again.ID)
	}
	waitDone(t, again)
}

func TestWorkerSurvivesSweepWorkerPanic(t *testing.T) {
	// End to end through the real Executor: a panic raised inside the
	// parallel trial sweep (on a sweep worker goroutine) must surface as
	// a failed job, not a process crash.
	runner := &sweepPanicRunner{}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 4, runner, cache)
	defer sched.Close()
	j, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	if j.Status() != StatusFailed || !strings.Contains(j.Err(), "trial 1 poisoned") {
		t.Fatalf("status = %s err = %q, want failed with sweep panic", j.Status(), j.Err())
	}
}

// sweepPanicRunner routes execution through sweep.RepeatCtx with
// several workers and panics inside one job, exercising the harness's
// panic propagation under the scheduler's recover.
type sweepPanicRunner struct{}

func (sweepPanicRunner) Execute(ctx context.Context, s spec.Spec, sink func(Event)) (*Result, error) {
	_, err := sweep.RepeatCtx(ctx, 8, 1, 4, func(rep int, r *rng.RNG) int {
		if rep == 1 {
			panic("trial 1 poisoned")
		}
		return rep
	})
	return &Result{}, err
}
