package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fakeHash(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(3, "")
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	for i := 1; i <= 3; i++ {
		c.Put(fakeHash(i), []byte{byte(i)})
	}
	// Touch 1 so 2 becomes the LRU entry, then overflow.
	if _, ok := c.Get(fakeHash(1)); !ok {
		t.Fatalf("entry 1 missing")
	}
	c.Put(fakeHash(4), []byte{4})
	if _, ok := c.Get(fakeHash(2)); ok {
		t.Fatalf("LRU entry 2 not evicted")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := c.Get(fakeHash(i)); !ok {
			t.Fatalf("entry %d evicted wrongly", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestCacheRejectsBadHashes(t *testing.T) {
	c, _ := NewCache(0, t.TempDir())
	for _, h := range []string{
		"short",
		strings.Repeat("g", 64),         // non-hex
		"../../etc/passwd",              // traversal attempt
		strings.Repeat("A", 64),         // uppercase hex not canonical
		strings.Repeat("ab", 32) + "/x", // length off
	} {
		c.Put(h, []byte("x"))
		if _, ok := c.Get(h); ok {
			t.Errorf("bad hash %q accepted", h)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("bad hashes stored: len = %d", c.Len())
	}
}

func TestCacheDiskMirrorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	h := fakeHash(7)
	data := []byte(`{"hello":"world"}`)

	c1, err := NewCache(0, dir)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	c1.Put(h, data)
	if _, err := os.Stat(filepath.Join(generationDir(dir), h+".json")); err != nil {
		t.Fatalf("disk mirror file missing: %v", err)
	}

	// Entries from another engine generation must never be served: the
	// namespace is what guarantees "same hash → same bytes" holds per
	// generation when an engine change alters realizations.
	stale := fakeHash(9)
	if err := os.WriteFile(filepath.Join(dir, stale+".json"), []byte(`{"old":true}`), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, ok := c1.Get(stale); ok {
		t.Fatal("cache served an un-namespaced (stale-generation) entry")
	}

	// A fresh cache over the same dir (a "restart") serves the result
	// from disk and promotes it into memory.
	c2, err := NewCache(0, dir)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	got, ok := c2.Get(h)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("disk hit wrong: ok=%v data=%q", ok, got)
	}
	if c2.Len() != 1 {
		t.Fatalf("disk hit not promoted to memory")
	}
}

func TestCacheStats(t *testing.T) {
	c, _ := NewCache(0, "")
	c.Put(fakeHash(1), []byte("a"))
	c.Get(fakeHash(1))
	c.Get(fakeHash(2))
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}
