package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meg/internal/spec"
)

// receiverSpec is testSpec plus a receiver URL.
func receiverSpec(n int, urls ...string) spec.Spec {
	s := testSpec(n)
	s.Receivers = urls
	return s
}

// notificationSink collects webhook deliveries.
type notificationSink struct {
	mu    sync.Mutex
	notes []Notification
	ch    chan Notification
}

func newNotificationSink() (*notificationSink, *httptest.Server) {
	sink := &notificationSink{ch: make(chan Notification, 64)}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var n Notification
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &n); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		sink.mu.Lock()
		sink.notes = append(sink.notes, n)
		sink.mu.Unlock()
		sink.ch <- n
		w.WriteHeader(http.StatusOK)
	}))
	return sink, srv
}

func (s *notificationSink) waitOne(t *testing.T) Notification {
	t.Helper()
	select {
	case n := <-s.ch:
		return n
	case <-time.After(10 * time.Second):
		t.Fatalf("no notification arrived")
		return Notification{}
	}
}

func TestReceiverNotifiedOnCompletion(t *testing.T) {
	sink, srv := newNotificationSink()
	defer srv.Close()
	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, &Executor{}, cache)
	defer sched.Close()

	j, outcome, err := sched.Submit(receiverSpec(64, srv.URL))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if outcome != OutcomeQueued {
		t.Fatalf("outcome = %s, want queued", outcome)
	}
	waitDone(t, j)
	n := sink.waitOne(t)
	if n.Event != "job.done" || n.ID != j.ID || n.Hash != j.Hash || n.Status != StatusDone {
		t.Fatalf("notification = %+v, want job.done for %s/%s", n, j.ID, j.Hash)
	}

	// The receiver hint must not leak into the cached result bytes —
	// otherwise identical specs submitted with different receivers would
	// serve different bytes under one content hash.
	if bytes.Contains(j.Result(), []byte(srv.URL)) {
		t.Fatalf("receiver URL leaked into the result bytes")
	}
	// And it must not perturb the content address at all.
	plain, err := testSpec(64).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if j.Hash != plain {
		t.Fatalf("receivers changed the content hash: %s vs %s", j.Hash, plain)
	}
}

func TestReceiverRetryWithBackoff(t *testing.T) {
	// A flaky receiver that fails twice and succeeds on the third
	// attempt must be retried with exponential backoff. The notifier's
	// sleep is injected (the test's clock), so the backoff sequence is
	// observed exactly rather than waited out.
	var calls atomic.Int32
	got := make(chan Notification, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var n Notification
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &n)
		got <- n
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, &Executor{}, cache)
	defer sched.Close()
	m := NewMetrics()
	sched.Instrument(m)

	var mu sync.Mutex
	var sleeps []time.Duration
	sched.notifier.sleep = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
	}

	j, _, err := sched.Submit(receiverSpec(64, srv.URL))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	select {
	case n := <-got:
		if n.Event != "job.done" || n.ID != j.ID {
			t.Fatalf("notification = %+v", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("flaky receiver never got the successful delivery")
	}
	if calls.Load() != 3 {
		t.Fatalf("receiver saw %d attempts, want 3 (fail, fail, succeed)", calls.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{receiverBaseBackoff, 2 * receiverBaseBackoff}
	if len(sleeps) != len(want) {
		t.Fatalf("observed %d backoff sleeps %v, want %v", len(sleeps), sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (exponential doubling)", i, sleeps[i], want[i])
		}
	}
	// The server handler fires before the delivery goroutine's final
	// bookkeeping; wait for the settle instead of racing it.
	settleDeadline := time.Now().Add(5 * time.Second)
	for m.receiverDeliveries.With("delivered").Value() != 1 {
		if time.Now().After(settleDeadline) {
			t.Fatalf("delivered counter = %g, want 1", m.receiverDeliveries.With("delivered").Value())
		}
		time.Sleep(time.Millisecond)
	}
	if v := m.receiverAttempts.Value(); v != 3 {
		t.Errorf("meg_receiver_attempts_total = %g, want 3", v)
	}
	if v := m.receiverPending.Value(); v != 0 {
		t.Errorf("pending gauge = %g after settle, want 0", v)
	}
}

func TestReceiverDroppedAfterRetryBudget(t *testing.T) {
	// A receiver that never recovers is dropped after the attempt
	// budget, with the outcome counted — delivery must not retry
	// forever or wedge Close.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, &Executor{}, cache)
	m := NewMetrics()
	sched.Instrument(m)
	sched.notifier.sleep = func(time.Duration) {}

	j, _, err := sched.Submit(receiverSpec(64, srv.URL))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	sched.Close() // drains the notifier
	if got := calls.Load(); got != receiverMaxAttempts {
		t.Fatalf("dead receiver saw %d attempts, want the full budget of %d", got, receiverMaxAttempts)
	}
	if v := m.receiverDeliveries.With("dropped").Value(); v != 1 {
		t.Errorf("dropped counter = %g, want 1", v)
	}
	if v := m.receiverPending.Value(); v != 0 {
		t.Errorf("pending gauge = %g, want 0", v)
	}
}

func TestCoalescedSubmissionsAccumulateReceivers(t *testing.T) {
	// Two submissions of one spec with different receivers coalesce into
	// one job — and BOTH receivers must be notified when it finishes.
	sinkA, srvA := newNotificationSink()
	defer srvA.Close()
	sinkB, srvB := newNotificationSink()
	defer srvB.Close()

	runner := &gatedRunner{release: make(chan struct{})}
	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, runner, cache)
	defer sched.Close()

	first, _, err := sched.Submit(receiverSpec(64, srvA.URL))
	if err != nil {
		t.Fatalf("Submit first: %v", err)
	}
	second, outcome, err := sched.Submit(receiverSpec(64, srvB.URL))
	if err != nil {
		t.Fatalf("Submit second: %v", err)
	}
	if outcome != OutcomeCoalesced || second.ID != first.ID {
		t.Fatalf("second submission did not coalesce (outcome=%s)", outcome)
	}
	close(runner.release)
	waitDone(t, first)
	na, nb := sinkA.waitOne(t), sinkB.waitOne(t)
	if na.ID != first.ID || nb.ID != first.ID {
		t.Fatalf("notifications %+v / %+v, want both for job %s", na, nb, first.ID)
	}
}

func TestReceiverNotifiedOnCacheHit(t *testing.T) {
	// A submission served straight from the cache still announces its
	// completion: the receiver contract is "tell me when my submission
	// is done", however the result was produced.
	cache, _ := NewCache(0, "")
	sched := NewScheduler(2, 16, &Executor{}, cache)
	defer sched.Close()

	warm, _, err := sched.Submit(testSpec(64))
	if err != nil {
		t.Fatalf("Submit warm: %v", err)
	}
	waitDone(t, warm)

	sink, srv := newNotificationSink()
	defer srv.Close()
	j, outcome, err := sched.Submit(receiverSpec(64, srv.URL))
	if err != nil {
		t.Fatalf("Submit cached: %v", err)
	}
	if outcome != OutcomeCached {
		t.Fatalf("outcome = %s, want cached", outcome)
	}
	n := sink.waitOne(t)
	if n.Event != "job.done" || n.ID != j.ID || n.Hash != warm.Hash {
		t.Fatalf("cache-hit notification = %+v", n)
	}
}

func TestReceiverNotifiedOnFailure(t *testing.T) {
	sink, srv := newNotificationSink()
	defer srv.Close()
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, &panicRunner{}, cache)
	defer sched.Close()
	j, _, err := sched.Submit(receiverSpec(64, srv.URL))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, j)
	n := sink.waitOne(t)
	if n.Event != "job.failed" || n.Status != StatusFailed || n.Error == "" {
		t.Fatalf("failure notification = %+v, want job.failed with message", n)
	}
}
