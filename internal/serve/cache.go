package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// resultsGeneration versions the on-disk cache namespace
// (<dir>/g<generation>/<hash>.json). Bump it whenever an engine change
// alters the simulation realization behind an unchanged spec hash —
// generation 2 is the edge-MEG's sharded per-shard RNG streams — so a
// cache directory populated by an older binary is never served as
// current: the "same hash → same bytes" invariant holds per generation,
// and stale generations are simply never read.
const resultsGeneration = 2

// Cache is the content-addressed result store: marshaled Result bytes
// keyed by spec hash, held in an in-memory LRU and optionally mirrored
// to a directory of g<generation>/<hash>.json files so results survive
// restarts (within one engine generation; see resultsGeneration).
// Stored bytes are returned verbatim — a cache hit is byte-identical to
// the response that populated it.
type Cache struct {
	metrics *Metrics // nil unless instrumented (set via Scheduler.Instrument)

	mu         sync.Mutex
	entries    map[string]*list.Element
	order      *list.List // front = most recently used
	maxEntries int
	dir        string

	hits, misses int64
}

type cacheEntry struct {
	hash string
	data []byte
}

// NewCache returns a cache holding up to maxEntries results in memory
// (≤ 0 selects 256). dir, when non-empty, enables the on-disk mirror
// (created if missing); disk entries are not evicted.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if dir != "" {
		if err := os.MkdirAll(generationDir(dir), 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Cache{
		entries:    make(map[string]*list.Element),
		order:      list.New(),
		maxEntries: maxEntries,
		dir:        dir,
	}, nil
}

// validHash gates hashes before they touch the filesystem: exactly the
// lowercase hex sha256 alphabet, so a crafted "hash" cannot traverse
// paths.
func validHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result bytes for hash, consulting memory
// first and then the disk mirror (promoting disk hits into memory).
func (c *Cache) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.hits++
		c.mu.Unlock()
		c.metrics.cacheOp("hit")
		return data, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(hash)); err == nil {
			c.put(hash, data, false)
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			c.metrics.cacheOp("hit")
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	c.metrics.cacheOp("miss")
	return nil, false
}

// Put stores the result bytes under hash (in memory, and on disk when
// the mirror is enabled). The caller must not mutate data afterwards.
func (c *Cache) Put(hash string, data []byte) {
	if !validHash(hash) {
		return
	}
	c.put(hash, data, true)
}

func (c *Cache) put(hash string, data []byte, writeDisk bool) {
	evicted := 0
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
	} else {
		c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, data: data})
		for c.order.Len() > c.maxEntries {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).hash)
			evicted++
		}
	}
	size := c.order.Len()
	c.mu.Unlock()
	for i := 0; i < evicted; i++ {
		c.metrics.cacheOp("evict")
	}
	c.metrics.cacheSize(size)
	if writeDisk && c.dir != "" {
		// Atomic write: a crashed writer must not leave a torn file
		// that later reads as a (corrupt) cached result.
		tmp, err := os.CreateTemp(c.dir, "put-*")
		if err != nil {
			return
		}
		if _, err := tmp.Write(data); err == nil {
			tmp.Close()
			if os.Rename(tmp.Name(), c.path(hash)) == nil {
				c.metrics.cacheOp("disk_write")
			}
		} else {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}
}

func (c *Cache) path(hash string) string {
	return filepath.Join(generationDir(c.dir), hash+".json")
}

// generationDir is the engine-generation subdirectory of the mirror.
func generationDir(dir string) string {
	return filepath.Join(dir, fmt.Sprintf("g%d", resultsGeneration))
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
