package serve

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"meg/internal/spec"
)

func TestExecutorProtocolPath(t *testing.T) {
	s := spec.Spec{
		Model:    spec.Model{Name: "edge", N: 128},
		Protocol: spec.Protocol{Name: "push-pull"},
		Trials:   3,
		Sources:  2,
	}
	var mu sync.Mutex
	trials := 0
	exec := &Executor{}
	res, err := exec.Execute(context.Background(), s, func(e Event) {
		if e.Type == "trial" {
			mu.Lock()
			trials++
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if trials != 3 {
		t.Fatalf("trial events = %d, want 3", trials)
	}
	if res.Protocol != "push-pull" || len(res.Trials) != 3 {
		t.Fatalf("result wrong: protocol=%q trials=%d", res.Protocol, len(res.Trials))
	}
	for i, tr := range res.Trials {
		if tr.Messages == 0 && tr.Completed {
			t.Errorf("trial %d completed with zero messages", i)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("protocol result does not marshal: %v", err)
	}
}

func TestExecutorExperimentPath(t *testing.T) {
	s := spec.Spec{Experiment: "E2", Scale: "quick"}
	exec := &Executor{}
	var events []Event
	var mu sync.Mutex
	res, err := exec.Execute(context.Background(), s, func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Report == nil || res.Report.ID != "E2" {
		t.Fatalf("missing experiment report: %+v", res.Report)
	}
	if len(res.Report.Tables) == 0 || len(res.Report.Checks) == 0 {
		t.Fatalf("report lacks tables/checks")
	}
	if len(events) == 0 || events[0].Type != "experiment" {
		t.Fatalf("no experiment event emitted")
	}
	// The whole result — report, tables, metrics — must marshal and
	// round-trip through JSON (NaN metrics become null).
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("experiment result does not marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("experiment result does not unmarshal: %v", err)
	}
	if back.Report.ID != "E2" || len(back.Report.Tables) != len(res.Report.Tables) {
		t.Fatalf("report round trip lost data")
	}
	if back.Report.Tables[0].NumRows() != res.Report.Tables[0].NumRows() {
		t.Fatalf("table rows lost in round trip")
	}
}

func TestExecutorUnknownExperiment(t *testing.T) {
	exec := &Executor{}
	if _, err := exec.Execute(context.Background(), spec.Spec{Experiment: "E999"}, nil); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestExecutorSeedPolicyContentDeterministic(t *testing.T) {
	s := spec.Spec{
		Model:      spec.Model{Name: "edge", N: 128},
		Trials:     2,
		SeedPolicy: spec.SeedContent,
	}
	exec := &Executor{}
	r1, err := exec.Execute(context.Background(), s, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	r2, err := exec.Execute(context.Background(), s, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("content-seeded runs are not reproducible")
	}
}

func TestResultBytesIgnoreWorkers(t *testing.T) {
	// Workers is excluded from the content hash, so two submitters
	// differing only in workers must produce byte-identical results —
	// otherwise the cache would serve different bytes for one hash
	// depending on who simulated first.
	base := spec.Spec{Model: spec.Model{Name: "edge", N: 128}, Trials: 2}
	w4 := base
	w4.Workers = 4
	exec := &Executor{}
	r1, err := exec.Execute(context.Background(), base, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	r2, err := exec.Execute(context.Background(), w4, nil)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("worker count leaked into result bytes:\n%s\n%s", b1, b2)
	}
}

func TestResultBytesIgnoreProtocolEngine(t *testing.T) {
	// ProtocolEngine is excluded from the content hash, so the kernel
	// and reference engines must produce byte-identical results for one
	// spec — the invariant that makes the hint safe to exclude.
	base := spec.Spec{
		Model:    spec.Model{Name: "geometric", N: 256},
		Protocol: spec.Protocol{Name: "push-pull"},
		Trials:   2,
		Sources:  2,
	}
	ref := base
	ref.ProtocolEngine = "reference"
	ker := base
	ker.ProtocolEngine = "kernel"
	ker.Parallelism = 4
	exec := &Executor{}
	r1, err := exec.Execute(context.Background(), ref, nil)
	if err != nil {
		t.Fatalf("Execute reference: %v", err)
	}
	r2, err := exec.Execute(context.Background(), ker, nil)
	if err != nil {
		t.Fatalf("Execute kernel: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("engine choice leaked into result bytes:\n%s\n%s", b1, b2)
	}
	h1, _ := ref.Hash()
	h2, _ := ker.Hash()
	if h1 != h2 {
		t.Fatalf("engine choice changed the content hash: %s vs %s", h1, h2)
	}
}

func TestResultBytesIgnoreSnapshotPath(t *testing.T) {
	// Snapshot is excluded from the content hash, so the full-rebuild
	// and incremental-delta paths must produce byte-identical cached
	// results for one spec — the invariant that makes the hint safe to
	// exclude.
	base := spec.Spec{
		Model:   spec.Model{Name: "edge", N: 256, PhatMult: 2, Q: 0.05},
		Trials:  2,
		Sources: 2,
	}
	full := base
	full.Snapshot = "full"
	delta := base
	delta.Snapshot = "delta"
	delta.Parallelism = 4
	exec := &Executor{}
	r1, err := exec.Execute(context.Background(), full, nil)
	if err != nil {
		t.Fatalf("Execute full: %v", err)
	}
	r2, err := exec.Execute(context.Background(), delta, nil)
	if err != nil {
		t.Fatalf("Execute delta: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("snapshot path leaked into result bytes:\n%s\n%s", b1, b2)
	}
	h1, _ := full.Hash()
	h2, _ := delta.Hash()
	if h1 != h2 {
		t.Fatalf("snapshot path changed the content hash: %s vs %s", h1, h2)
	}
}

func TestExecutorProtocolRoundEvents(t *testing.T) {
	// The kernel engine streams per-round progress for non-flooding
	// protocols — previously only trial events existed on this path.
	s := spec.Spec{
		Model:    spec.Model{Name: "edge", N: 128},
		Protocol: spec.Protocol{Name: "push"},
		Trials:   1,
	}
	var mu sync.Mutex
	rounds := 0
	exec := &Executor{}
	if _, err := exec.Execute(context.Background(), s, func(e Event) {
		if e.Type == "round" {
			mu.Lock()
			rounds++
			mu.Unlock()
		}
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rounds == 0 {
		t.Fatal("no round events from the protocol path")
	}
}
