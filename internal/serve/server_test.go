package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer boots a full scheduler+server stack on httptest.
func newTestServer(t *testing.T) (*httptest.Server, *Executor, func()) {
	t.Helper()
	runner := &Executor{}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	sched := NewScheduler(2, 16, runner, cache)
	ts := httptest.NewServer(NewServer(sched).Handler())
	return ts, runner, func() {
		ts.Close()
		sched.Close()
	}
}

func postSpec(t *testing.T, ts *httptest.Server, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs status %d", resp.StatusCode)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return sr
}

func getJob(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func waitJobDone(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if JobStatus(v.Status).terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

const smallSpec = `{"model":{"name":"geometric","n":64},"trials":2,"seed":3}`

func TestEndToEndSubmitStatusResult(t *testing.T) {
	ts, runner, shutdown := newTestServer(t)
	defer shutdown()

	sr := postSpec(t, ts, smallSpec)
	if sr.ID == "" || len(sr.Hash) != 64 {
		t.Fatalf("bad submit response: %+v", sr)
	}
	v := waitJobDone(t, ts, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("status = %s, error = %q", v.Status, v.Error)
	}
	var res Result
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("result does not decode: %v", err)
	}
	if res.Hash != sr.Hash {
		t.Fatalf("result hash %s != submit hash %s", res.Hash, sr.Hash)
	}
	if res.CompletedTrials+res.IncompleteTrials != 2 || len(res.Trials) != 2 {
		t.Fatalf("trial accounting wrong: %+v", res)
	}
	if len(res.Trajectory) == 0 {
		t.Fatalf("missing trajectory")
	}

	// Second submission of the same spec: one simulation total, same
	// hash, byte-identical result.
	sr2 := postSpec(t, ts, smallSpec)
	if sr2.Hash != sr.Hash {
		t.Fatalf("resubmit hash changed: %s vs %s", sr2.Hash, sr.Hash)
	}
	if sr2.Outcome != OutcomeCached && sr2.Outcome != OutcomeCoalesced {
		t.Fatalf("resubmit outcome = %s", sr2.Outcome)
	}
	v2 := waitJobDone(t, ts, sr2.ID)
	if !bytes.Equal(v.Result, v2.Result) {
		t.Fatalf("resubmitted result not byte-identical")
	}
	if got := runner.Invocations(); got != 1 {
		t.Fatalf("executor ran %d times for two identical submissions, want 1", got)
	}

	// The result is addressable by content hash, byte-identical again.
	resp, err := http.Get(ts.URL + "/v1/cache/" + sr.Hash)
	if err != nil {
		t.Fatalf("GET /v1/cache: %v", err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache GET status %d", resp.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(cached), bytes.TrimSpace(v.Result)) {
		t.Fatalf("cache endpoint bytes differ from job result")
	}
}

func TestSSEStreamDeliversProgressAndTerminates(t *testing.T) {
	ts, _, shutdown := newTestServer(t)
	defer shutdown()

	sr := postSpec(t, ts, `{"model":{"name":"geometric","n":128},"trials":3,"seed":5}`)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+sr.ID+"/events", nil)
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Read the stream to EOF: it must terminate on its own (no client
	// cancel), deliver ≥1 progress event, and end with a terminal one.
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, e)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatalf("empty SSE stream")
	}
	last := events[len(events)-1]
	if !isTerminalEvent(last) {
		t.Fatalf("stream did not end with a terminal event: %+v", last)
	}
	progress := 0
	for _, e := range events[:len(events)-1] {
		if e.Type == "round" || e.Type == "trial" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no progress events before completion (got %d events)", len(events))
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _, shutdown := newTestServer(t)
	defer shutdown()

	// Unknown job.
	resp, _ := http.Get(ts.URL + "/v1/jobs/j999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown cache hash.
	resp, _ = http.Get(ts.URL + "/v1/cache/" + strings.Repeat("ab", 32))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed spec.
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"model":{`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown field (strict decoding).
	resp, _ = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":{"name":"geometric","n":64},"bogus":1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHealthz(t *testing.T) {
	ts, _, shutdown := newTestServer(t)
	defer shutdown()
	sr := postSpec(t, ts, smallSpec)
	waitJobDone(t, ts, sr.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		OK    bool               `json:"ok"`
		Jobs  map[string]int     `json:"jobs"`
		Cache map[string]float64 `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if !h.OK || h.Jobs[string(StatusDone)] != 1 || h.Cache["entries"] != 1 {
		t.Fatalf("healthz payload wrong: %+v", h)
	}
}

func TestCancelEndpoint(t *testing.T) {
	runner := &gatedRunner{release: make(chan struct{})}
	defer close(runner.release)
	cache, _ := NewCache(0, "")
	sched := NewScheduler(1, 16, runner, cache)
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched).Handler())
	defer ts.Close()

	// Occupy the worker, then cancel a queued job over HTTP.
	postSpec(t, ts, smallSpec)
	sr := postSpec(t, ts, `{"model":{"name":"geometric","n":256},"trials":2}`)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	v := waitJobDone(t, ts, sr.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", v.Status)
	}
}
