package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"meg/internal/spec"
)

// JobStatus is the lifecycle state of a job.
type JobStatus string

const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Outcome classifies what Submit did with a spec.
type Outcome string

const (
	// OutcomeQueued means a new simulation was scheduled.
	OutcomeQueued Outcome = "queued"
	// OutcomeCoalesced means an identical spec was already queued or
	// running and the caller was attached to that job (single-flight).
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeCached means the result was served from the cache without
	// any simulation.
	OutcomeCached Outcome = "cached"
)

// Progress is a job's live counters.
type Progress struct {
	// Trials is the total number of trials the spec requests.
	Trials int `json:"trials"`
	// TrialsDone counts finished trials.
	TrialsDone int `json:"trialsDone"`
	// Round/Informed are the latest per-round report from any trial.
	Round    int `json:"round,omitempty"`
	Informed int `json:"informed,omitempty"`
	// Events counts progress events recorded so far.
	Events int `json:"events"`
}

// maxEventHistory bounds each job's replayable event history; beyond
// it the oldest events are dropped (live subscribers still see
// everything they keep up with).
const maxEventHistory = 4096

// Job is one scheduled spec execution.
type Job struct {
	// ID is the scheduler-assigned job identifier.
	ID string
	// Hash is the spec's content address.
	Hash string
	// Spec is the canonical spec.
	Spec spec.Spec

	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}

	metrics    *Metrics  // nil unless the scheduler is instrumented
	shard      int       // worker-pool shard the spec hash routes to
	enqueuedAt time.Time // set at submission
	startedAt  time.Time // set at worker pickup

	mu        sync.Mutex
	status    JobStatus
	progress  Progress
	result    []byte
	errMsg    string
	events    []Event
	dropped   int // events evicted from history
	subs      map[chan Event]struct{}
	closed    bool
	receivers []string // webhook URLs notified on completion (deduped)
}

// Status returns the job's current status.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Shard returns the worker-pool shard the job's spec hash routed to.
func (j *Job) Shard() int { return j.shard }

// addReceivers appends webhook URLs to the job's notification list,
// dropping exact duplicates — coalesced submissions each contribute
// their receivers, and every distinct one is notified once.
func (j *Job) addReceivers(urls []string) {
	if len(urls) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, u := range urls {
		dup := false
		for _, have := range j.receivers {
			if have == u {
				dup = true
				break
			}
		}
		if !dup {
			j.receivers = append(j.receivers, u)
		}
	}
}

// receiverList snapshots the job's receiver URLs.
func (j *Job) receiverList() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.receivers...)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the marshaled result bytes (nil until done).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the failure message ("" unless status is failed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// View is the API snapshot of a job.
type View struct {
	ID       string          `json:"id"`
	Hash     string          `json:"hash"`
	Status   JobStatus       `json:"status"`
	Progress Progress        `json:"progress"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job; the result bytes are included only when
// withResult is set (job listings stay small, job GETs carry data).
func (j *Job) View(withResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{ID: j.ID, Hash: j.Hash, Status: j.status, Progress: j.progress, Error: j.errMsg}
	if withResult && j.result != nil {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// record folds a progress event into the job's counters, history, and
// live subscriber channels. Slow subscribers lose events rather than
// stalling the simulation.
func (j *Job) record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	switch e.Type {
	case "round":
		j.progress.Round, j.progress.Informed = e.Round, e.Informed
	case "trial":
		j.progress.TrialsDone++
	}
	j.progress.Events++
	j.events = append(j.events, e)
	if len(j.events) > maxEventHistory {
		over := len(j.events) - maxEventHistory
		j.events = append(j.events[:0:0], j.events[over:]...)
		j.dropped += over
	}
	for ch := range j.subs {
		select {
		case ch <- e:
		default: // subscriber too slow; drop
			j.metrics.sseDroppedEvent()
		}
	}
}

// Subscribe returns the replayable event history plus a channel of
// subsequent live events. The channel is closed when the job reaches a
// terminal state; call unsubscribe to detach early.
func (j *Job) Subscribe() (replay []Event, live <-chan Event, unsubscribe func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch := make(chan Event, 256)
	if j.closed {
		close(ch)
		return replay, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.metrics.sseSubscribed()
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
			j.metrics.sseUnsubscribed(1)
		}
	}
}

// finish moves the job to a terminal state, publishes the terminal
// event, and closes every subscriber channel and the done channel.
func (j *Job) finish(status JobStatus, result []byte, errMsg string) {
	terminalEvent := Event{Type: string(status)}
	if status == StatusDone {
		terminalEvent.Type = "done"
	}
	if errMsg != "" {
		terminalEvent.Type = "error"
		terminalEvent.Message = errMsg
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.events = append(j.events, terminalEvent)
	j.closed = true
	subs := j.subs
	j.subs = map[chan Event]struct{}{}
	j.mu.Unlock()
	for ch := range subs {
		select {
		case ch <- terminalEvent:
		default:
			j.metrics.sseDroppedEvent()
		}
		close(ch)
	}
	j.metrics.sseUnsubscribed(len(subs))
	j.metrics.jobFinished(status)
	close(j.done)
}

// Scheduler owns the worker pools, the job table, and the single-flight
// index: at most one simulation per spec hash is in flight, identical
// submissions attach to it, and completed results are served from the
// content-addressed cache without simulating at all.
//
// The worker pool is horizontally sharded by spec hash: each shard has
// its own queue and its own workers, and a spec always routes to the
// same shard (shardFor is a pure function of the content hash), so the
// global single-flight index never has to coordinate across shards —
// two identical submissions land on one shard and coalesce there, and
// one hot spec can never head-of-line-block every pool at once.
type Scheduler struct {
	runner Runner
	cache  *Cache

	baseCtx  context.Context
	stop     context.CancelFunc
	queues   []chan *Job // one hash-partitioned queue per shard
	wg       sync.WaitGroup
	notifier *notifier

	metrics *Metrics // nil until Instrument; read-only afterwards

	mu       sync.Mutex
	jobs     map[string]*Job
	active   map[string]*Job // queued/running jobs by spec hash
	finished []string        // terminal job IDs, oldest first (bounded)
	nextID   int
	closed   bool
	draining bool
}

// maxFinishedJobs bounds how many terminal jobs stay addressable by ID;
// beyond it the oldest are dropped from the job table (their results
// remain reachable by content hash through the cache), keeping a
// long-running server's memory bounded under sustained traffic.
const maxFinishedJobs = 1024

// NewScheduler starts a single-shard scheduler with the given worker
// count (≤ 0 selects 2) and queue capacity (≤ 0 selects 64). Close
// releases it.
func NewScheduler(workers, queueCap int, runner Runner, cache *Cache) *Scheduler {
	return NewShardedScheduler(1, workers, queueCap, runner, cache)
}

// NewShardedScheduler starts a scheduler whose worker pool is split
// into shards independent pools (≤ 0 selects 1), each with its own
// queue of capacity queueCap (≤ 0 selects 64). workers is the total
// worker count (≤ 0 selects 2), distributed as evenly as possible with
// at least one worker per shard — so shards > workers raises the
// effective worker count to one per shard. Jobs route to shards by
// spec content hash: identical specs always share a shard, which keeps
// single-flight coalescing a per-shard property.
func NewShardedScheduler(shards, workers, queueCap int, runner Runner, cache *Cache) *Scheduler {
	if shards <= 0 {
		shards = 1
	}
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		runner:   runner,
		cache:    cache,
		baseCtx:  ctx,
		stop:     cancel,
		queues:   make([]chan *Job, shards),
		notifier: newNotifier(),
		jobs:     make(map[string]*Job),
		active:   make(map[string]*Job),
	}
	per, rem := workers/shards, workers%shards
	for i := range s.queues {
		s.queues[i] = make(chan *Job, queueCap)
		n := per
		if i < rem {
			n++
		}
		if n == 0 {
			n = 1
		}
		s.wg.Add(n)
		for w := 0; w < n; w++ {
			go s.worker(s.queues[i])
		}
	}
	return s
}

// Shards returns the number of worker-pool shards.
func (s *Scheduler) Shards() int { return len(s.queues) }

// shardFor routes a spec content hash to a shard: FNV-1a over the hash
// string, reduced mod the shard count. Pure and stable — the same hash
// maps to the same shard for the life of the process, which is what
// keeps coalescing correct without cross-shard coordination.
func shardFor(hash string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(hash))
	return int(h.Sum32() % uint32(shards))
}

// Instrument attaches a metrics bundle to the scheduler and its cache.
// Call it once, before the scheduler receives traffic; nil detaches
// nothing (recording methods are nil-safe either way).
func (s *Scheduler) Instrument(m *Metrics) {
	s.metrics = m
	if s.cache != nil {
		s.cache.metrics = m
	}
	s.notifier.metrics = m
}

// Metrics returns the attached bundle (nil when uninstrumented) so the
// process can hand it to collaborators, e.g. Executor.Metrics.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// BeginDrain marks the scheduler as draining: submissions keep working
// (in-flight HTTP requests settle normally during graceful shutdown)
// but /healthz flips to 503 so load balancers stop routing new traffic
// here. Close implies draining.
func (s *Scheduler) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether the scheduler is draining or closed.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Submit schedules a spec. The returned outcome distinguishes a fresh
// simulation (queued) from single-flight attachment (coalesced) and a
// pure cache hit (cached, job already done).
func (s *Scheduler) Submit(sp spec.Spec) (*Job, Outcome, error) {
	c, err := sp.Canonical()
	if err != nil {
		return nil, "", err
	}
	hash, err := c.Hash()
	if err != nil {
		return nil, "", err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", fmt.Errorf("serve: scheduler is shut down")
	}
	// Single-flight: an identical spec already in flight absorbs the
	// submission — its receivers ride along on the absorbing job.
	if j, ok := s.active[hash]; ok {
		j.addReceivers(c.Receivers)
		s.metrics.submission(OutcomeCoalesced)
		return j, OutcomeCoalesced, nil
	}
	if data, ok := s.cache.Get(hash); ok {
		j := s.newJobLocked(hash, c)
		j.cancel() // never runs; release the context immediately
		j.finish(StatusDone, data, "")
		s.retireLocked(j)
		s.metrics.submission(OutcomeCached)
		s.notifier.dispatch(j)
		return j, OutcomeCached, nil
	}
	j := s.newJobLocked(hash, c)
	select {
	case s.queues[j.shard] <- j:
	default:
		j.cancel()
		delete(s.jobs, j.ID)
		return nil, "", fmt.Errorf("serve: job queue full on shard %d (%d pending)", j.shard, cap(s.queues[j.shard]))
	}
	s.active[hash] = j
	s.metrics.submission(OutcomeQueued)
	s.metrics.jobQueued(j.shard)
	return j, OutcomeQueued, nil
}

// retire records a terminal job and evicts the oldest terminal jobs
// beyond maxFinishedJobs from the table.
func (s *Scheduler) retire(j *Job) {
	s.mu.Lock()
	s.retireLocked(j)
	s.mu.Unlock()
}

func (s *Scheduler) retireLocked(j *Job) {
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > maxFinishedJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// newJobLocked allocates and registers a job; the caller holds s.mu.
func (s *Scheduler) newJobLocked(hash string, c spec.Spec) *Job {
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		ID:         fmt.Sprintf("j%06d", s.nextID),
		Hash:       hash,
		Spec:       c,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		metrics:    s.metrics,
		shard:      shardFor(hash, len(s.queues)),
		enqueuedAt: time.Now(),
		status:     StatusQueued,
		subs:       map[chan Event]struct{}{},
		receivers:  append([]string(nil), c.Receivers...),
	}
	j.progress.Trials = c.Trials
	s.jobs[j.ID] = j
	return j
}

// Get returns a job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. It returns false if the job
// does not exist; cancelling a finished job is a no-op that returns
// true.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	// A queued job never reaches a worker promptly; finish it here so
	// waiters and subscribers are released immediately. Running jobs
	// are finished by their worker when the context error surfaces.
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCanceled, nil, "")
		s.detach(j)
		s.retire(j)
		s.notifier.dispatch(j)
	}
	return true
}

// detach removes a job from the single-flight index if it is still the
// active entry for its hash.
func (s *Scheduler) detach(j *Job) {
	s.mu.Lock()
	if s.active[j.Hash] == j {
		delete(s.active, j.Hash)
	}
	s.mu.Unlock()
}

// Counts returns the number of jobs per status — the health endpoint's
// payload.
func (s *Scheduler) Counts() map[JobStatus]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make(map[JobStatus]int)
	for _, j := range s.jobs {
		counts[j.Status()]++
	}
	return counts
}

// Close stops accepting submissions, cancels every in-flight job,
// waits for the workers to drain, and then for pending receiver
// notifications to settle (delivery is bounded by the retry budget, so
// the wait is too).
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q)
	}
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	s.notifier.wait()
}

// worker drains one shard's queue, running one job at a time.
func (s *Scheduler) worker(queue chan *Job) {
	defer s.wg.Done()
	for j := range queue {
		s.runJob(j)
	}
}

// execute runs the job's spec through the runner, converting a panic —
// a spec whose run trips a model invariant or a protocol precondition —
// into an ordinary error so one poisoned job can never take down the
// worker (and with it the whole server). The panic message lands in
// the job's event history via the failed status.
func (s *Scheduler) execute(j *Job) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("panic while executing spec: %v", p)
		}
	}()
	return s.runner.Execute(j.ctx, j.Spec, j.record)
}

// runJob executes one job end to end: run the spec, marshal the
// result, populate the cache, finish the job, release the
// single-flight slot.
func (s *Scheduler) runJob(j *Job) {
	s.metrics.jobDequeued(j.shard)
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued; already finished by Cancel.
		j.mu.Unlock()
		s.detach(j)
		return
	}
	j.status = StatusRunning
	j.mu.Unlock()
	j.startedAt = time.Now()
	s.metrics.jobStarted(j.startedAt.Sub(j.enqueuedAt))

	res, err := s.execute(j)
	s.metrics.jobRanFor(time.Since(j.startedAt))
	var status JobStatus
	var data []byte
	var errMsg string
	switch {
	case j.ctx.Err() != nil:
		status = StatusCanceled
	case err != nil:
		status, errMsg = StatusFailed, err.Error()
	default:
		data, err = json.Marshal(res)
		if err != nil {
			status, errMsg = StatusFailed, fmt.Sprintf("marshal result: %v", err)
		} else {
			status = StatusDone
			s.cache.Put(j.Hash, data)
		}
	}
	j.finish(status, data, errMsg)
	j.cancel() // release the context's resources
	s.detach(j)
	s.retire(j)
	s.notifier.dispatch(j)
}
