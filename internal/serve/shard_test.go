package serve

import (
	"bytes"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestShardRoutingStable(t *testing.T) {
	// The shard a hash routes to is a pure function of the hash: stable
	// across calls (a spec resubmitted later must find its in-flight
	// twin's shard) and across scheduler instances.
	hashes := make([]string, 64)
	for i := range hashes {
		h, err := testSpec(64 + i).Hash()
		if err != nil {
			t.Fatalf("Hash: %v", err)
		}
		hashes[i] = h
	}
	seen := make(map[int]int)
	for _, h := range hashes {
		first := shardFor(h, 4)
		for k := 0; k < 10; k++ {
			if got := shardFor(h, 4); got != first {
				t.Fatalf("shardFor(%s, 4) unstable: %d then %d", h, first, got)
			}
		}
		if first < 0 || first >= 4 {
			t.Fatalf("shardFor(%s, 4) = %d out of range", h, first)
		}
		seen[first]++
	}
	// 64 distinct hashes over 4 shards: every shard should see traffic.
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d received none of %d hashes — routing is not spreading", s, len(hashes))
		}
	}
	if shardFor(hashes[0], 1) != 0 {
		t.Errorf("single-shard routing must be 0")
	}
}

func TestShardedCoalescingNeverSpansShards(t *testing.T) {
	// Identical specs must land on one shard and coalesce there; the
	// executor must run each unique spec exactly once no matter how many
	// duplicates arrive concurrently.
	runner := &gatedRunner{release: make(chan struct{})}
	cache, _ := NewCache(0, "")
	sched := NewShardedScheduler(4, 8, 64, runner, cache)
	defer sched.Close()
	if sched.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sched.Shards())
	}

	const uniques = 12
	const dupsPer = 6
	firsts := make([]*Job, uniques)
	for i := 0; i < uniques; i++ {
		j, outcome, err := sched.Submit(testSpec(64 + i))
		if err != nil {
			t.Fatalf("Submit unique %d: %v", i, err)
		}
		if outcome != OutcomeQueued {
			t.Fatalf("unique %d outcome = %s, want queued", i, outcome)
		}
		firsts[i] = j
	}
	var wg sync.WaitGroup
	for i := 0; i < uniques; i++ {
		for d := 0; d < dupsPer; d++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				j, outcome, err := sched.Submit(testSpec(64 + i))
				if err != nil {
					t.Errorf("duplicate Submit: %v", err)
					return
				}
				if outcome != OutcomeCoalesced {
					t.Errorf("duplicate outcome = %s, want coalesced", outcome)
				}
				if j.ID != firsts[i].ID {
					t.Errorf("duplicate of spec %d attached to job %s, want %s", i, j.ID, firsts[i].ID)
				}
				if j.Shard() != firsts[i].Shard() {
					t.Errorf("coalesced job shard %d != original shard %d", j.Shard(), firsts[i].Shard())
				}
			}(i)
		}
	}
	wg.Wait()
	close(runner.release)
	for _, j := range firsts {
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("job %s status = %s, err = %q", j.ID, j.Status(), j.Err())
		}
	}
	if got := runner.inner.Invocations(); got != uniques {
		t.Fatalf("executor ran %d times for %d unique specs (+%d dups each), want %d",
			got, uniques, dupsPer, uniques)
	}
}

func TestShardedPerShardCancellation(t *testing.T) {
	// Cancelling a queued job on one shard must not disturb the others:
	// jobs running on other shards complete normally.
	runner := &gatedRunner{release: make(chan struct{})}
	cache, _ := NewCache(0, "")
	// 4 shards × 1 worker each.
	sched := NewShardedScheduler(4, 4, 64, runner, cache)
	defer sched.Close()

	// Occupy every shard's single worker, then pile a second job onto
	// some shard and cancel it while queued.
	var blockers []*Job
	occupied := map[int]bool{}
	for i := 0; len(occupied) < 4 && i < 256; i++ {
		j, outcome, err := sched.Submit(testSpec(64 + i))
		if err != nil {
			t.Fatalf("Submit blocker: %v", err)
		}
		if outcome != OutcomeQueued {
			t.Fatalf("blocker outcome = %s", outcome)
		}
		blockers = append(blockers, j)
		occupied[j.Shard()] = true
	}
	// Find a job that queues behind a blocker (its shard's worker is
	// busy or will be); cancel it before it runs.
	var victim *Job
	for i := 1000; victim == nil && i < 1256; i++ {
		j, _, err := sched.Submit(testSpec(64 + i))
		if err != nil {
			t.Fatalf("Submit victim candidate: %v", err)
		}
		victim = j
	}
	if !sched.Cancel(victim.ID) {
		t.Fatalf("Cancel returned false")
	}
	waitDone(t, victim)
	if victim.Status() != StatusCanceled {
		t.Fatalf("victim status = %s, want canceled", victim.Status())
	}

	// Release the pools: every blocker (on every shard) must finish.
	close(runner.release)
	for _, j := range blockers {
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("blocker %s on shard %d status = %s, err = %q", j.ID, j.Shard(), j.Status(), j.Err())
		}
	}
	// The cancelled hash is free again.
	again, outcome, err := sched.Submit(victim.Spec)
	if err != nil {
		t.Fatalf("resubmit cancelled spec: %v", err)
	}
	if again.ID == victim.ID || outcome == OutcomeCached {
		t.Fatalf("cancelled job wedged its hash: outcome=%s id=%s", outcome, again.ID)
	}
	waitDone(t, again)
}

func TestShardedSchedulerCoreSuite(t *testing.T) {
	// The single-shard scheduler test suite's core properties, re-run at
	// shards=4: cache hits stay byte-identical, independent runs
	// reproduce bytes, and a worker panic is contained.
	t.Run("cacheHitByteIdentical", func(t *testing.T) {
		runner := &Executor{}
		cache, _ := NewCache(0, "")
		sched := NewShardedScheduler(4, 4, 16, runner, cache)
		defer sched.Close()
		j1, _, err := sched.Submit(testSpec(64))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitDone(t, j1)
		j2, outcome, err := sched.Submit(testSpec(64))
		if err != nil {
			t.Fatalf("resubmit: %v", err)
		}
		if outcome != OutcomeCached {
			t.Fatalf("outcome = %s, want cached", outcome)
		}
		if !bytes.Equal(j1.Result(), j2.Result()) {
			t.Fatalf("cache hit not byte-identical under sharding")
		}
		if got := runner.Invocations(); got != 1 {
			t.Fatalf("executor ran %d times, want 1", got)
		}
	})
	t.Run("rerunReproducesBytes", func(t *testing.T) {
		run := func() []byte {
			cache, _ := NewCache(0, "")
			sched := NewShardedScheduler(4, 4, 16, &Executor{}, cache)
			defer sched.Close()
			j, _, err := sched.Submit(testSpec(96))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			waitDone(t, j)
			if j.Status() != StatusDone {
				t.Fatalf("status = %s, err = %q", j.Status(), j.Err())
			}
			return j.Result()
		}
		if !bytes.Equal(run(), run()) {
			t.Fatalf("sharded runs of the same spec produced different bytes")
		}
	})
	t.Run("panicContained", func(t *testing.T) {
		runner := &panicRunner{}
		cache, _ := NewCache(0, "")
		sched := NewShardedScheduler(4, 4, 16, runner, cache)
		defer sched.Close()
		bad, _, err := sched.Submit(testSpec(64))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitDone(t, bad)
		if bad.Status() != StatusFailed {
			t.Fatalf("status = %s, want failed", bad.Status())
		}
		good, _, err := sched.Submit(testSpec(128))
		if err != nil {
			t.Fatalf("Submit good: %v", err)
		}
		waitDone(t, good)
		if good.Status() != StatusDone {
			t.Fatalf("post-panic status = %s, err = %q", good.Status(), good.Err())
		}
	})
}

func TestShardQueueDepthGauges(t *testing.T) {
	// Queued jobs must show up on their shard's depth gauge and drain
	// to zero when the pool runs them.
	runner := &gatedRunner{release: make(chan struct{})}
	cache, _ := NewCache(0, "")
	sched := NewShardedScheduler(4, 4, 64, runner, cache)
	defer sched.Close()
	m := NewMetrics()
	sched.Instrument(m)

	var jobs []*Job
	perShard := make(map[int]int)
	for i := 0; i < 24; i++ {
		j, _, err := sched.Submit(testSpec(64 + i))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		jobs = append(jobs, j)
		perShard[j.Shard()]++
	}
	// Workers may already have picked up one job per shard; the gauge
	// must never exceed the enqueued count and the total (queued +
	// running) must match.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0.0
		for s := 0; s < 4; s++ {
			total += m.shardDepth.With(strconv.Itoa(s)).Value()
		}
		running := m.jobsRunning.Value()
		if total+running == float64(len(jobs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard depth %g + running %g never matched %d enqueued", total, running, len(jobs))
		}
		time.Sleep(time.Millisecond)
	}
	close(runner.release)
	for _, j := range jobs {
		waitDone(t, j)
	}
	for s := 0; s < 4; s++ {
		if v := m.shardDepth.With(strconv.Itoa(s)).Value(); v != 0 {
			t.Errorf("shard %d depth gauge = %g after drain, want 0", s, v)
		}
	}
}
