package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/geom"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E6Stationarity validates the perfect-simulation property that defines
// the paper's stationary setting: when P_0 is drawn from π, the law of
// the snapshot process is time-invariant, so (a) the position
// distribution stays (almost) uniform at every t, and (b) the flooding
// time measured after a burn-in of τ steps does not depend on τ. A
// far-from-stationary start (all nodes clustered in a corner) shows the
// contrast: its flooding time drifts with burn-in until the chain
// relaxes toward stationarity.
func E6Stationarity(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 8, 16, 24)
	burnins := pick(p.Scale, []int{0, 8, 64}, []int{0, 8, 64, 256}, []int{0, 8, 64, 256, 1024})

	radius := 2 * math.Sqrt(math.Log(float64(n)))
	moveR := radius / 2

	run := func(init geommeg.InitMode, burn int, salt int) (meanRounds float64, dev float64) {
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: moveR, Init: init}
		type out struct {
			rounds float64
			dev    float64
		}
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, salt), p.Workers, func(rep int, r *rng.RNG) out {
			m := geommeg.MustNew(cfg)
			m.Reset(r)
			for t := 0; t < burn; t++ {
				m.Step()
			}
			// Occupancy deviation from uniform over a coarse grid.
			grid := geom.NewCellGrid(m.Side(), m.Side()/8)
			counts := m.CellOccupancy(grid)
			hist := stats.NewHistogram(0, float64(len(counts)), len(counts))
			for i, c := range counts {
				for j := 0; j < c; j++ {
					hist.Add(float64(i))
				}
			}
			fr := core.FloodOpt(m, r.Intn(n), core.DefaultRoundCap(n), p.FloodOptions())
			rounds := math.NaN()
			if fr.Completed {
				rounds = float64(fr.Rounds)
			}
			return out{rounds, hist.MaxAbsDeviationFromUniform()}
		})
		var acc stats.Accumulator
		var devAcc stats.Accumulator
		for _, o := range res {
			if !math.IsNaN(o.rounds) {
				acc.Add(o.rounds)
			}
			devAcc.Add(o.dev)
		}
		return acc.Mean(), devAcc.Mean()
	}

	tbl := table.New("E6 — flooding time and occupancy deviation vs burn-in τ (n="+itoa64(n)+")",
		"init", "τ", "rounds mean", "occupancy dev (max |share−1/64|)")
	rep := &Report{
		ID:    "E6",
		Title: "Perfect simulation: stationary start is burn-in invariant",
		Notes: []string{
			"Occupancy deviation is over an 8×8 grid (uniform share 1/64 ≈ 0.0156).",
			"Stationary rows: flat in τ. Clustered rows: start far from uniform, relax toward",
			"the stationary values as τ grows — demonstrating why perfect simulation matters.",
		},
	}

	var statRounds, statDevs []float64
	var clusterRounds0, clusterRoundsLast float64
	var clusterDev0 float64
	var statDev0 float64
	for i, mode := range []geommeg.InitMode{geommeg.InitStationary, geommeg.InitClustered} {
		for j, burn := range burnins {
			mean, dev := run(mode, burn, 600+i*100+j)
			tbl.AddRow(mode.String(), burn, mean, dev)
			if mode == geommeg.InitStationary {
				statRounds = append(statRounds, mean)
				statDevs = append(statDevs, dev)
				if j == 0 {
					statDev0 = dev
				}
			} else {
				if j == 0 {
					clusterRounds0 = mean
					clusterDev0 = dev
				}
				if j == len(burnins)-1 {
					clusterRoundsLast = mean
				}
			}
		}
	}

	rep.Tables = append(rep.Tables, tbl)
	statSpread := stats.RatioSpread(statRounds)
	statMean := stats.Mean(statRounds)
	rep.Checks = append(rep.Checks,
		boolCheck("stationary flooding time burn-in invariant (spread ≤ 1.35)", statSpread <= 1.35,
			"mean-rounds spread %.3f across τ=%v", statSpread, burnins),
		boolCheck("stationary occupancy stays near uniform", maxOf(statDevs) <= 3*statDev0+0.02,
			"max deviation %.4f vs τ=0 deviation %.4f", maxOf(statDevs), statDev0),
		boolCheck("clustered start is far from stationary at τ=0", clusterDev0 > 2*statDev0+0.01,
			"clustered deviation %.4f vs stationary %.4f", clusterDev0, statDev0),
		boolCheck("clustered flooding relaxes toward the stationary value",
			math.Abs(clusterRoundsLast-statMean) < math.Abs(clusterRounds0-statMean)+2,
			"clustered mean: τ=0 %.1f → τ=%d %.1f (stationary %.1f)",
			clusterRounds0, burnins[len(burnins)-1], clusterRoundsLast, statMean),
	)
	rep.Metrics = map[string]float64{
		"stationary_spread": statSpread,
		"clustered_dev_t0":  clusterDev0,
	}
	return rep
}
