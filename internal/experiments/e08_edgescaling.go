package experiments

import (
	"math"

	"meg/internal/bounds"
	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/flood"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// edgeConfigFor derives (p, q) with the desired stationary marginal p̂
// and a death rate q that keeps per-edge chains mixing quickly (q = ½
// unless overridden): p = q·p̂/(1−p̂).
func edgeConfigFor(n int, pHat, q float64) edgemeg.Config {
	return edgemeg.Config{N: n, P: q * pHat / (1 - pHat), Q: q}
}

// E8EdgeScaling reproduces Theorem 4.3 and Corollary 4.5: flooding time
// of a stationary edge-MEG with c log n/n ≤ p̂ ≤ n^(1/loglog n)/n is
// Θ(log n / log(np̂)). Sweeps over n at three density laws for p̂
// (c·log n/n, log²n/n, 1/√n·n^... ≈ n^{-1/2}) plus a sweep over p̂ at
// fixed n; the ratio rounds/(log n/log(np̂)) must stay in a narrow band
// everywhere.
func E8EdgeScaling(p Params) *Report {
	ns := pick(p.Scale, []int{1024, 4096}, []int{1024, 2048, 4096, 8192, 16384}, []int{1024, 2048, 4096, 8192, 16384, 32768, 65536})
	trials := pick(p.Scale, 8, 16, 24)
	sourcesPerTrial := pick(p.Scale, 1, 2, 2)

	rep := &Report{
		ID:    "E8",
		Title: "Theorem 4.3 + Corollary 4.5: flooding time Θ(log n/log(np̂))",
		Notes: []string{
			"q = 1/2 throughout; p = q·p̂/(1−p̂) gives the target stationary marginal p̂.",
			"'shape' = log n/log(np̂) + loglog(np̂) (Theorem 4.3); 'ratio' = mean rounds /",
			"(log n/log(np̂)). A bounded ratio across all rows is the Θ claim.",
		},
	}

	type law struct {
		name string
		pHat func(n int) float64
	}
	laws := []law{
		{"p̂=4·log n/n", func(n int) float64 { return 4 * math.Log(float64(n)) / float64(n) }},
		{"p̂=log²n/n", func(n int) float64 { l := math.Log(float64(n)); return l * l / float64(n) }},
		{"p̂=n^(−1/2)", func(n int) float64 { return 1 / math.Sqrt(float64(n)) }},
	}

	tbl := table.New("E8a — sweep over n per density law",
		"law", "n", "np̂", "rounds mean", "rounds max", "log n/log np̂", "shape", "ratio")
	var ratios []float64
	worstShape := 0.0
	for _, lw := range laws {
		for _, n := range ns {
			pHat := lw.pHat(n)
			if pHat*float64(n)*float64(n)/2 > 8e6 {
				// Keep the densest configurations within a laptop-scale
				// memory budget; the Θ-band is already pinned by the
				// remaining rows.
				continue
			}
			cfg := edgeConfigFor(n, pHat, 0.5)
			camp := flood.Run(func() core.Dynamics { return edgemeg.MustNew(cfg) }, flood.Options{
				Trials:          trials,
				SourcesPerTrial: sourcesPerTrial,
				Seed:            rng.SeedFor(p.Seed, n*17+len(lw.name)),
				Workers:         p.Workers,
				Parallelism:     p.Parallelism, Snapshot: p.Snapshot,
				Kernel:       p.Kernel,
				BatchSources: true,
			})
			lower := math.Log(float64(n)) / math.Log(float64(n)*pHat)
			shape := bounds.EdgeUpperShape(n, pHat)
			ratio := camp.MeanRounds() / lower
			ratios = append(ratios, ratio)
			if q := camp.MaxRounds() / shape; q > worstShape {
				worstShape = q
			}
			tbl.AddRow(lw.name, n, float64(n)*pHat, camp.MeanRounds(), camp.MaxRounds(), lower, shape, ratio)
		}
	}
	rep.Tables = append(rep.Tables, tbl)

	// Sweep p̂ at the largest n.
	nBig := ns[len(ns)-1]
	pTbl := table.New("E8b — sweep over p̂ at n = "+itoa64(nBig),
		"np̂", "rounds mean", "rounds max", "log n/log np̂", "ratio")
	for _, mult := range []float64{2, 4, 16, 64, 256} {
		pHat := mult * math.Log(float64(nBig)) / float64(nBig)
		if pHat >= 0.5 || pHat*float64(nBig)*float64(nBig)/2 > 8e6 {
			continue
		}
		cfg := edgeConfigFor(nBig, pHat, 0.5)
		camp := flood.Run(func() core.Dynamics { return edgemeg.MustNew(cfg) }, flood.Options{
			Trials:          trials,
			SourcesPerTrial: sourcesPerTrial,
			Seed:            rng.SeedFor(p.Seed, 9000+int(mult)),
			Workers:         p.Workers,
			Parallelism:     p.Parallelism, Snapshot: p.Snapshot,
			Kernel:       p.Kernel,
			BatchSources: true,
		})
		lower := math.Log(float64(nBig)) / math.Log(float64(nBig)*pHat)
		ratio := camp.MeanRounds() / lower
		ratios = append(ratios, ratio)
		pTbl.AddRow(float64(nBig)*pHat, camp.MeanRounds(), camp.MaxRounds(), lower, ratio)
	}
	rep.Tables = append(rep.Tables, pTbl)

	spread := stats.RatioSpread(ratios)
	rep.Checks = append(rep.Checks,
		boolCheck("Θ-band: ratio spread ≤ 3.5 across all laws, n and p̂", spread <= 3.5,
			"rounds/(log n/log np̂) spread %.2f over %d configurations", spread, len(ratios)),
		boolCheck("measured ≤ 4×Theorem-4.3 shape everywhere", worstShape <= 4,
			"worst max/shape %.2f", worstShape),
		boolCheck("flooding is O(log log n)-close to optimal in the dense row",
			ratios[len(ratios)-1] <= 4,
			"densest p̂ ratio %.2f (upper and lower bounds pinch, Corollary 4.5)", ratios[len(ratios)-1]),
	)
	rep.Metrics = map[string]float64{"ratio_spread": spread, "worst_shape_ratio": worstShape}
	return rep
}
