package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/rng"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E9EdgeGrowth reproduces Theorem 4.4's mechanism: since the stationary
// snapshot is G(n, p̂), the maximum degree is below 2np̂ w.h.p., so the
// informed set can grow by at most a factor 1 + 2np̂ per round and
// flooding needs at least log(n/2)/log(2np̂) rounds. We record full
// informed-set trajectories, measure per-round growth factors and the
// realized maximum degree, and verify both the degree bound and the
// lower bound on rounds — including that the growth bound is nearly
// attained in the early rounds (which is what makes Theorem 4.4 tight).
func E9EdgeGrowth(p Params) *Report {
	ns := pick(p.Scale, []int{1024, 4096}, []int{1024, 4096, 16384}, []int{4096, 16384, 65536})
	trials := pick(p.Scale, 8, 16, 24)

	tbl := table.New("E9 — per-round growth of the informed set vs the 2np̂ ceiling",
		"n", "np̂", "max degree seen", "2np̂", "max growth m(t+1)/m(t)", "early growth/np̂", "rounds min", "lower bound")
	rep := &Report{
		ID:    "E9",
		Title: "Theorem 4.4: informed-set growth ≤ 1+2np̂ per round; flooding ≥ log(n/2)/log(2np̂)",
		Notes: []string{
			"p̂ = 4 log n/n, q = 1/2. 'early growth/np̂' is the first-round growth factor divided",
			"by np̂ — near 1 it shows the geometric-growth ceiling is almost met, which is why",
			"the Theorem 4.4 lower bound is tight up to the log log term.",
		},
	}

	allDegreeOK := true
	allLowerOK := true
	earlyTight := true
	for _, n := range ns {
		pHat := 4 * math.Log(float64(n)) / float64(n)
		cfg := edgeConfigFor(n, pHat, 0.5)
		np := float64(n) * pHat
		type out struct {
			maxDeg    int
			maxGrowth float64
			early     float64
			rounds    int
			completed bool
		}
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, 1100+n), p.Workers, func(rep int, r *rng.RNG) out {
			m := edgemeg.MustNew(cfg)
			m.Reset(r)
			maxDeg := m.Graph().MaxDegree()
			fr := core.FloodOpt(m, r.Intn(n), core.DefaultRoundCap(n), p.FloodOptions())
			growth := fr.GrowthFactors()
			o := out{maxDeg: maxDeg, rounds: fr.Rounds, completed: fr.Completed}
			for _, g := range growth {
				if g > o.maxGrowth {
					o.maxGrowth = g
				}
			}
			if len(growth) > 0 {
				o.early = growth[0] - 1 // first-round multiplier ≈ degree of source
			}
			return o
		})
		maxDeg, maxGrowth, early := 0, 0.0, 0.0
		minRounds := math.MaxInt32
		for _, o := range res {
			if o.maxDeg > maxDeg {
				maxDeg = o.maxDeg
			}
			if o.maxGrowth > maxGrowth {
				maxGrowth = o.maxGrowth
			}
			early += o.early
			if o.completed && o.rounds < minRounds {
				minRounds = o.rounds
			}
		}
		early /= float64(len(res))
		lower := math.Log(float64(n)/2) / math.Log(2*np)
		if float64(maxDeg) > 2*np {
			allDegreeOK = false
		}
		if float64(minRounds) < lower {
			allLowerOK = false
		}
		if early/np < 0.5 || early/np > 1.6 {
			earlyTight = false
		}
		tbl.AddRow(n, np, maxDeg, 2*np, maxGrowth, early/np, minRounds, lower)
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("max degree ≤ 2np̂ in every stationary snapshot", allDegreeOK, "degree ceiling holds"),
		boolCheck("no trial beats the Theorem 4.4 lower bound", allLowerOK, "rounds ≥ log(n/2)/log(2np̂) always"),
		boolCheck("first-round growth ≈ np̂ (ceiling nearly met)", earlyTight,
			"mean first-round growth within [0.5, 1.6]×np̂ at every n"),
	)
	rep.Metrics = map[string]float64{
		"degree_ok": b2f(allDegreeOK), "lower_ok": b2f(allLowerOK), "early_tight": b2f(earlyTight),
	}
	return rep
}
