package experiments

import (
	"math"

	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E17Connectivity validates the connectivity-regime hypotheses of the
// main theorems: Theorem 3.4 requires R ≥ c√log n "for a sufficiently
// large constant c", and Theorem 4.3 requires p̂ ≥ c·log n/n. We sweep
// both parameters through their thresholds and measure the fraction of
// connected stationary snapshots plus the largest-component fraction:
// below the threshold the snapshot shatters, above it connectivity
// probability races to 1 — locating the constants the theorems assume
// and confirming the experiments elsewhere in this suite run safely
// above them.
func E17Connectivity(p Params) *Report {
	n := pick(p.Scale, 1024, 4096, 16384)
	trials := pick(p.Scale, 10, 16, 24)

	rep := &Report{
		ID:    "E17",
		Title: "Connectivity-regime validation: thresholds behind Theorems 3.4 / 4.3",
		Notes: []string{
			"Known thresholds: geometric connectivity at πR² ≈ log n (R ≈ 0.56√log n);",
			"G(n,p̂) connectivity at p̂ = log n/n. Suite experiments use multipliers ≥ 2.",
		},
	}

	type row struct {
		connected int
		giant     float64
	}
	measureGeom := func(mult float64, salt int) row {
		radius := mult * math.Sqrt(math.Log(float64(n)))
		// The lattice resolution must stay below R; halve it for the
		// sub-threshold radii.
		eps := 1.0
		if radius <= eps {
			eps = radius / 2
		}
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2, Eps: eps}
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, salt), p.Workers, func(rep int, r *rng.RNG) row {
			m := geommeg.MustNew(cfg)
			m.Reset(r)
			g := m.Graph()
			rw := row{giant: float64(g.LargestComponentSize()) / float64(n)}
			if g.Connected() {
				rw.connected = 1
			}
			return rw
		})
		var out row
		for _, o := range res {
			out.connected += o.connected
			out.giant += o.giant
		}
		out.giant /= float64(trials)
		return out
	}
	measureEdge := func(mult float64, salt int) row {
		pHat := mult * math.Log(float64(n)) / float64(n)
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, salt), p.Workers, func(rep int, r *rng.RNG) row {
			g := edgemeg.SampleGNP(n, pHat, r)
			rw := row{giant: float64(g.LargestComponentSize()) / float64(n)}
			if g.Connected() {
				rw.connected = 1
			}
			return rw
		})
		var out row
		for _, o := range res {
			out.connected += o.connected
			out.giant += o.giant
		}
		out.giant /= float64(trials)
		return out
	}

	gTbl := table.New("E17a — geometric snapshots: connectivity vs R = mult·√log n (n="+itoa64(n)+")",
		"mult", "connected frac", "giant component frac")
	var geomLow, geomHigh float64
	for i, mult := range []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3} {
		rw := measureGeom(mult, 1700+i)
		frac := float64(rw.connected) / float64(trials)
		if mult == 0.25 {
			geomLow = frac
		}
		if mult == 2 {
			geomHigh = frac
		}
		gTbl.AddRow(mult, frac, rw.giant)
	}
	rep.Tables = append(rep.Tables, gTbl)

	eTbl := table.New("E17b — G(n,p̂) snapshots: connectivity vs p̂ = mult·log n/n",
		"mult", "connected frac", "giant component frac")
	var edgeLow, edgeHigh float64
	for i, mult := range []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4} {
		rw := measureEdge(mult, 1750+i)
		frac := float64(rw.connected) / float64(trials)
		if mult == 0.5 {
			edgeLow = frac
		}
		if mult == 4 {
			edgeHigh = frac
		}
		eTbl.AddRow(mult, frac, rw.giant)
	}
	rep.Tables = append(rep.Tables, eTbl)

	rep.Checks = append(rep.Checks,
		boolCheck("geometric: disconnected well below threshold (mult 0.25)", geomLow <= 0.2,
			"connected fraction %.2f at R = 0.25√log n", geomLow),
		boolCheck("geometric: connected at suite scale (mult 2)", geomHigh >= 0.9,
			"connected fraction %.2f at R = 2√log n", geomHigh),
		boolCheck("edge: disconnected below threshold (mult 0.5)", edgeLow <= 0.2,
			"connected fraction %.2f at p̂ = 0.5·log n/n", edgeLow),
		boolCheck("edge: connected at suite scale (mult 4)", edgeHigh >= 0.9,
			"connected fraction %.2f at p̂ = 4·log n/n", edgeHigh),
	)
	rep.Metrics = map[string]float64{
		"geom_connected_at_2": geomHigh, "edge_connected_at_4": edgeHigh,
	}
	return rep
}
