package experiments

import (
	"fmt"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/graph"
	"meg/internal/rng"
	"meg/internal/table"
)

// cycleMatching is a synthetic Markovian evolving graph used to
// validate Lemma 2.4 / Theorem 2.5 against a model whose expansion
// profile is known exactly: a fixed Hamiltonian cycle, optionally
// overlaid with a fresh uniform (near-)perfect matching every step.
//
// Every snapshot contains the cycle, and any non-empty I with
// |I| ≤ n/2 has |N(I)| ≥ 2 in a cycle, so every snapshot is a
// (h, 2/h)-expander for all h ≤ n/2 — an expansion profile that holds
// deterministically, hence with probability 1 ≥ 1 − 1/n².
type cycleMatching struct {
	n            int
	withMatching bool
	r            *rng.RNG
	builder      *graph.Builder
	g            *graph.Graph
	dirty        bool
	perm         []int
}

func newCycleMatching(n int, withMatching bool) *cycleMatching {
	if n < 4 {
		panic("experiments: cycleMatching needs n >= 4")
	}
	return &cycleMatching{
		n: n, withMatching: withMatching,
		builder: graph.NewBuilder(n),
		perm:    make([]int, n),
	}
}

func (c *cycleMatching) N() int { return c.n }

func (c *cycleMatching) Reset(r *rng.RNG) {
	c.r = r
	c.dirty = true
}

func (c *cycleMatching) Step() { c.dirty = true }

func (c *cycleMatching) Graph() *graph.Graph {
	if !c.dirty {
		return c.g
	}
	c.builder.Reset(c.n)
	for i := 0; i < c.n; i++ {
		c.builder.AddEdge(i, (i+1)%c.n)
	}
	if c.withMatching {
		for i := range c.perm {
			c.perm[i] = i
		}
		c.r.Shuffle(c.n, func(i, j int) { c.perm[i], c.perm[j] = c.perm[j], c.perm[i] })
		for i := 0; i+1 < c.n; i += 2 {
			u, v := c.perm[i], c.perm[i+1]
			// Skip pairs that duplicate a cycle edge.
			d := u - v
			if d < 0 {
				d = -d
			}
			if d == 1 || d == c.n-1 {
				continue
			}
			c.builder.AddEdge(u, v)
		}
	}
	c.g = c.builder.Build()
	c.dirty = false
	return c.g
}

// E1GeneralBound validates the general machinery of Section 2: for
// evolving graphs with a known deterministic expansion profile, the
// measured flooding time never exceeds the Lemma 2.4 / Corollary 2.6
// bound, and for the cycle (whose profile is tight) the bound is also
// within a small constant factor of the measurement.
func E1GeneralBound(p Params) *Report {
	ns := pick(p.Scale, []int{64, 128}, []int{128, 256, 512}, []int{128, 256, 512, 1024, 2048})
	trials := pick(p.Scale, 8, 16, 32)

	tbl := table.New("E1 — flooding vs Lemma 2.4 bound (bound uses only the guaranteed cycle profile)",
		"model", "n", "flood mean", "flood max", "bound", "max/bound")
	rep := &Report{
		ID:    "E1",
		Title: "Lemma 2.4 / Theorem 2.5: expansion implies a flooding-time bound",
		Notes: []string{
			"Synthetic MEGs with deterministic expansion: every snapshot contains a Hamiltonian",
			"cycle, so it is a (h, 2/h)-expander for all h ≤ n/2. The bound is 2×CorollarySum for",
			"that profile. 'cycle' should sit near the bound (the profile is tight for it);",
			"'cycle+matching' floods much faster, demonstrating that the bound is one-sided.",
		},
	}

	type cfg struct {
		name     string
		matching bool
	}
	worstRatio := 0.0
	tightRatio := 0.0
	for _, c := range []cfg{{"cycle", false}, {"cycle+matching", true}} {
		for _, n := range ns {
			ks := make([]float64, n/2)
			for i := 1; i <= n/2; i++ {
				ks[i-1] = 2 / float64(i)
			}
			bound := 2 * core.CorollarySum(ks)

			camp := flood.Run(func() core.Dynamics { return newCycleMatching(n, c.matching) }, flood.Options{
				Trials:      trials,
				Seed:        rng.SeedFor(p.Seed, n*7+boolInt(c.matching)),
				Workers:     p.Workers,
				Parallelism: p.Parallelism, Snapshot: p.Snapshot,
				Kernel: p.Kernel,
			})
			ratio := camp.MaxRounds() / bound
			if ratio > worstRatio {
				worstRatio = ratio
			}
			if !c.matching && ratio > tightRatio {
				tightRatio = ratio
			}
			tbl.AddRow(c.name, n, camp.MeanRounds(), camp.MaxRounds(), bound, ratio)
			if camp.Incomplete > 0 {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s n=%d: %d/%d incomplete runs", c.name, n, camp.Incomplete, trials))
			}
		}
	}

	// The Lemma 2.4 proof's hidden constant is small; 1.5× plus a tiny
	// additive covers the ceilings in every configuration we run.
	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("measured ≤ 1.5×bound+4 in every configuration", worstRatio <= 1.5+eps,
			"worst max/bound ratio %.3f", worstRatio),
		boolCheck("cycle profile is tight (max ≥ bound/4)", tightRatio >= 0.25,
			"cycle worst-case ratio %.3f (bound within 4× of measurement)", tightRatio),
	)
	rep.Metrics = map[string]float64{"worst_over_bound": worstRatio, "cycle_over_bound": tightRatio}
	return rep
}

const eps = 1e-9

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
