package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/flood"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// E10Gap reproduces the stationary/worst-case separation stated in the
// paper's introduction: for birth rate p = O(1/n^(1+ε)) and death rate
// q = O(np/log n), flooding from the stationary distribution takes
// Θ(log n/log(np̂)) = O(log n) rounds, while flooding from the
// worst-case initial graph (the empty graph, per the worst-case
// analysis of reference [9]) must first wait ≈ 1/(np) = Θ(n^ε) rounds
// for the source to acquire any edge at all. The measured gap therefore
// grows polynomially in n — an exponential separation in the sense that
// n^ε is exponential in log n while the stationary time is polynomial
// in log n.
func E10Gap(p Params) *Report {
	ns := pick(p.Scale, []int{512, 1024}, []int{512, 1024, 2048, 4096}, []int{512, 1024, 2048, 4096, 8192})
	trials := pick(p.Scale, 6, 12, 16)
	const epsExp = 0.5 // the ε in p = 1/n^{1+ε}

	tbl := table.New("E10 — stationary vs worst-case (empty start) flooding, p = n^(−3/2), q = np/(3·log n)",
		"n", "np̂", "stationary mean", "empty-start mean", "gap", "n^ε prediction")
	rep := &Report{
		ID:    "E10",
		Title: "Exponential gap between stationary and worst-case flooding (Section 1)",
		Notes: []string{
			"q is scaled so p̂ ≈ 3·log n/n stays in the connected regime (Theorem 4.3 applies to",
			"the stationary runs). The empty start must wait for the source's first edge birth",
			"(expected ≈ 1/(np) = n^ε·... rounds), so the gap grows like a power of n while the",
			"stationary time stays nearly flat.",
		},
	}

	var gaps, nsF []float64
	stationaryFlat := true
	var stationaryMeans []float64
	for _, n := range ns {
		nf := float64(n)
		pBirth := math.Pow(nf, -(1 + epsExp))
		qDeath := nf * pBirth / (3 * math.Log(nf))
		cfgStat := edgemeg.Config{N: n, P: pBirth, Q: qDeath, Init: edgemeg.InitStationary}
		cfgEmpty := edgemeg.Config{N: n, P: pBirth, Q: qDeath, Init: edgemeg.InitEmpty}
		pHat := cfgStat.PHat()

		campStat := flood.Run(func() core.Dynamics { return edgemeg.MustNew(cfgStat) }, flood.Options{
			Trials: trials, Seed: rng.SeedFor(p.Seed, 2000+n), Workers: p.Workers, Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			MaxRounds: core.DefaultRoundCap(n) * 4, Kernel: p.Kernel,
		})
		campEmpty := flood.Run(func() core.Dynamics { return edgemeg.MustNew(cfgEmpty) }, flood.Options{
			Trials: trials, Seed: rng.SeedFor(p.Seed, 3000+n), Workers: p.Workers, Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			MaxRounds: core.DefaultRoundCap(n) * 4, Kernel: p.Kernel,
		})
		gap := campEmpty.MeanRounds() / campStat.MeanRounds()
		gaps = append(gaps, gap)
		nsF = append(nsF, nf)
		stationaryMeans = append(stationaryMeans, campStat.MeanRounds())
		tbl.AddRow(n, nf*pHat, campStat.MeanRounds(), campEmpty.MeanRounds(), gap, math.Pow(nf, epsExp))
	}
	if stats.RatioSpread(stationaryMeans) > 2.5 {
		stationaryFlat = false
	}

	rep.Tables = append(rep.Tables, tbl)
	gapFit := stats.LogLogFit(nsF, gaps)
	rep.Checks = append(rep.Checks,
		boolCheck("gap grows polynomially in n (log-log slope ≥ 0.25)", gapFit.Slope >= 0.25,
			"gap ∝ n^%.2f (prediction exponent ≈ %.2f)", gapFit.Slope, epsExp),
		boolCheck("gap exceeds 4× at the largest n", gaps[len(gaps)-1] >= 4,
			"gap %.1f× at n=%d", gaps[len(gaps)-1], ns[len(ns)-1]),
		boolCheck("stationary flooding stays nearly flat in n", stationaryFlat,
			"stationary means spread %.2f", stats.RatioSpread(stationaryMeans)),
	)
	rep.Metrics = map[string]float64{"gap_exponent": gapFit.Slope, "gap_at_max_n": gaps[len(gaps)-1]}
	return rep
}
