package experiments

import (
	"math"
	"strconv"

	"meg/internal/expansion"
	"meg/internal/geom"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E3GeometricExpansion reproduces Theorem 3.2: stationary geometric-MEG
// snapshots are (h, αR²/h)-expanders for h ≤ αR² and (h, βR/√h)-
// expanders for αR² ≤ h ≤ n/2. We measure the empirical expansion
// k(h) = min |N(I)|/|I| over adversarial candidate families (spatial
// balls — the boundary-minimizing sets for geometric graphs — plus BFS
// balls and random sets) and verify the two predicted regimes:
// k ∝ R²/h for small h (log-log slope ≈ −1) and k ∝ R/√h for large h
// (slope ≈ −1/2).
func E3GeometricExpansion(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 2, 3, 5)
	ladder := pick(p.Scale, 12, 13, 15)
	setsPerSize := pick(p.Scale, 4, 6, 8)

	radius := 4 * math.Sqrt(math.Log(float64(n)))
	r2 := radius * radius
	cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
	hs := expansion.GeometricSizes(n, ladder)

	// Measure min k(h) per size across trials and candidate families.
	perTrial := sweep.Repeat(trials, rng.SeedFor(p.Seed, 3), p.Workers, func(rep int, r *rng.RNG) []expansion.Point {
		m := geommeg.MustNew(cfg)
		m.Reset(r)
		g := m.Graph()
		side := m.Side()
		spatial := func(h, count int, rr *rng.RNG) [][]int {
			sets := make([][]int, count)
			for i := range sets {
				center := geom.Point{X: rr.Float64() * side, Y: rr.Float64() * side}
				sets[i] = m.NearestNodes(center, h)
			}
			return sets
		}
		gen := expansion.Combine(spatial, expansion.BFSBalls(g), expansion.RandomSets(n))
		return expansion.Profile(g, hs, gen, setsPerSize, r)
	})

	ks := make([]float64, len(hs))
	for i := range ks {
		ks[i] = math.Inf(1)
	}
	for _, points := range perTrial {
		for i, pt := range points {
			if pt.K >= 0 && pt.K < ks[i] {
				ks[i] = pt.K
			}
		}
	}

	tbl := table.New("E3 — empirical expansion k(h) of stationary geometric snapshots vs Theorem 3.2",
		"h", "k(h)", "k·h/R² (α̂ regime 1)", "k·√h/R (β̂ regime 2)", "regime")
	var h1, k1, h2, k2 []float64
	allPositive := true
	for i, h := range hs {
		k := ks[i]
		if k <= 0 || math.IsInf(k, 1) {
			allPositive = false
		}
		regime := "transition"
		fh := float64(h)
		if fh <= r2/2 {
			regime = "1 (k∝R²/h)"
			if k > 0 && !math.IsInf(k, 1) {
				h1 = append(h1, fh)
				k1 = append(k1, k)
			}
		} else if fh >= 1.5*r2 && fh <= float64(n)/3 {
			regime = "2 (k∝R/√h)"
			if k > 0 && !math.IsInf(k, 1) {
				h2 = append(h2, fh)
				k2 = append(k2, k)
			}
		}
		tbl.AddRow(h, k, k*fh/r2, k*math.Sqrt(fh)/radius, regime)
	}

	rep := &Report{
		ID:    "E3",
		Title: "Theorem 3.2: two-regime node expansion of the stationary geometric-MEG",
		Notes: []string{
			"n=" + strconv.Itoa(n) + ", R=4√log n. Candidates: spatial balls (worst case), BFS balls, random sets.",
			"Regime 1: h ≤ R²/2; regime 2: 1.5R² ≤ h ≤ n/3 (near n/2 boundary clipping steepens k).",
		},
		Tables: []*table.Table{tbl},
	}

	slope1, slope2 := math.NaN(), math.NaN()
	rep.Checks = append(rep.Checks, boolCheck("expansion positive at every h ≤ n/2", allPositive,
		"k(h) > 0 for all ladder sizes"))
	if len(h1) >= 3 {
		fit := stats.LogLogFit(h1, k1)
		slope1 = fit.Slope
		rep.Checks = append(rep.Checks, boolCheck("regime-1 exponent ≈ −1 (k ∝ R²/h)",
			fit.Slope > -1.35 && fit.Slope < -0.6,
			"log-log slope %.3f (R²=%.1f, %d points)", fit.Slope, r2, len(h1)))
	} else {
		rep.Checks = append(rep.Checks, boolCheck("regime-1 exponent ≈ −1 (k ∝ R²/h)", false,
			"not enough regime-1 ladder points (%d)", len(h1)))
	}
	if len(h2) >= 2 {
		fit := stats.LogLogFit(h2, k2)
		slope2 = fit.Slope
		rep.Checks = append(rep.Checks, boolCheck("regime-2 exponent ≈ −1/2 (k ∝ R/√h)",
			fit.Slope > -0.95 && fit.Slope < -0.2,
			"log-log slope %.3f (%d points)", fit.Slope, len(h2)))
	} else {
		rep.Checks = append(rep.Checks, boolCheck("regime-2 exponent ≈ −1/2 (k ∝ R/√h)", false,
			"not enough regime-2 ladder points (%d)", len(h2)))
	}
	rep.Metrics = map[string]float64{"slope_regime1": slope1, "slope_regime2": slope2}
	return rep
}
