package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/geom"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// pt builds a geom.Point.
func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

// E14FloodVsDiameter tests the paper's concluding claim (Section 5):
// in the connected regime with r = O(R), "node mobility has an almost
// negligible impact on flooding time: the latter turns out to be
// equivalent to the diameter of the static stationary graph". For each
// trial we sample a stationary snapshot G_0, estimate its hop diameter
// (max BFS eccentricity over corner-most and random nodes — corner
// nodes realize the diameter of a random geometric graph up to o(1)),
// freeze it as a static graph, and compare three quantities: the static
// diameter, static flooding from a corner node, and dynamic flooding on
// the moving system started from the same snapshot.
func E14FloodVsDiameter(p Params) *Report {
	ns := pick(p.Scale, []int{1024, 4096}, []int{1024, 4096, 16384}, []int{4096, 16384, 65536})
	trials := pick(p.Scale, 6, 10, 16)
	eccSources := pick(p.Scale, 4, 6, 8)

	tbl := table.New("E14 — dynamic flooding vs static diameter (R=2√log n, r=R/2)",
		"n", "diameter est", "static flood", "dynamic flood", "dynamic/diam")
	rep := &Report{
		ID:    "E14",
		Title: "Section 5: flooding time ≈ diameter of the static stationary graph",
		Notes: []string{
			"Diameter is estimated as the max BFS eccentricity over the 4 corner-most nodes",
			"plus random nodes (exact diameters are O(n·m); corner nodes realize the RGG",
			"diameter asymptotically). Dynamic flooding starts from the same snapshot.",
		},
	}

	var ratios []float64
	for _, n := range ns {
		radius := 2 * math.Sqrt(math.Log(float64(n)))
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
		type out struct{ diam, static, dynamic float64 }
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, 1400+n), p.Workers, func(rep int, r *rng.RNG) out {
			m := geommeg.MustNew(cfg)
			m.Reset(r.Split())
			g := m.Graph()
			side := m.Side()

			// Eccentricity sources: nodes nearest the four corners plus
			// random ones.
			sources := make([]int, 0, eccSources+4)
			for _, c := range [][2]float64{{0, 0}, {0, side}, {side, 0}, {side, side}} {
				nn := m.NearestNodes(pt(c[0], c[1]), 1)
				sources = append(sources, nn[0])
			}
			for len(sources) < eccSources+4 {
				sources = append(sources, r.Intn(n))
			}
			diam := 0
			dist := make([]int32, n)
			for _, s := range sources {
				dist = g.BFS(s, dist)
				for _, d := range dist {
					if int(d) > diam {
						diam = int(d)
					}
				}
			}

			// Static flooding from the first corner node (worst-ish
			// source) on the frozen snapshot.
			staticRes := core.FloodOpt(core.NewStatic(g), sources[0], core.DefaultRoundCap(n), p.FloodOptions())
			// Dynamic flooding from the same source and same G_0: reuse
			// the model, which still holds the sampled positions.
			dynRes := core.FloodOpt(m, sources[0], core.DefaultRoundCap(n), p.FloodOptions())
			st, dy := math.NaN(), math.NaN()
			if staticRes.Completed {
				st = float64(staticRes.Rounds)
			}
			if dynRes.Completed {
				dy = float64(dynRes.Rounds)
			}
			return out{float64(diam), st, dy}
		})
		var dAcc, sAcc, yAcc stats.Accumulator
		for _, o := range res {
			dAcc.Add(o.diam)
			if !math.IsNaN(o.static) {
				sAcc.Add(o.static)
			}
			if !math.IsNaN(o.dynamic) {
				yAcc.Add(o.dynamic)
			}
		}
		ratio := yAcc.Mean() / dAcc.Mean()
		ratios = append(ratios, ratio)
		tbl.AddRow(n, dAcc.Mean(), sAcc.Mean(), yAcc.Mean(), ratio)
	}

	rep.Tables = append(rep.Tables, tbl)
	worst := 0.0
	best := math.Inf(1)
	for _, r := range ratios {
		if r > worst {
			worst = r
		}
		if r < best {
			best = r
		}
	}
	rep.Checks = append(rep.Checks,
		boolCheck("dynamic flooding within [0.4, 1.6]× the static diameter", best >= 0.4 && worst <= 1.6,
			"dynamic/diameter ratios in [%.2f, %.2f]", best, worst),
		boolCheck("ratio stable across n (no drift)", ratios[len(ratios)-1] <= ratios[0]*1.5+0.1,
			"first %.2f vs last %.2f", ratios[0], ratios[len(ratios)-1]),
	)
	rep.Metrics = map[string]float64{"ratio_first": ratios[0], "ratio_last": ratios[len(ratios)-1]}
	return rep
}
