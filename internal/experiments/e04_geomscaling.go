package experiments

import (
	"math"

	"meg/internal/bounds"
	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// E4GeometricScaling reproduces Theorem 3.4 and Corollary 3.6: in the
// stationary geometric-MEG with r = O(R) and c√log n ≤ R ≤ √n/loglog n,
// the flooding time is Θ(√n/R). Two sweeps:
//
//   - over n with R = 2√log n (the connectivity scale): the ratio
//     rounds/(√n/R) must stay within a narrow band while √n/R grows;
//   - over R at the largest n: the same ratio must stay in the band as
//     R alone varies, and a log-log fit of rounds against √n/R must
//     have slope ≈ 1.
func E4GeometricScaling(p Params) *Report {
	ns := pick(p.Scale, []int{1024, 4096}, []int{1024, 2048, 4096, 8192, 16384}, []int{1024, 2048, 4096, 8192, 16384, 32768, 65536})
	radiusMults := pick(p.Scale, []float64{2, 4}, []float64{2, 3, 4, 6}, []float64{2, 3, 4, 6, 8})
	trials := pick(p.Scale, 6, 12, 20)
	sourcesPerTrial := pick(p.Scale, 1, 2, 2)

	rep := &Report{
		ID:    "E4",
		Title: "Theorem 3.4 + Corollary 3.6: flooding time Θ(√n/R)",
		Notes: []string{
			"r = R/2 throughout (r = O(R), Corollary 3.6's regime). 'shape' = √n/R + loglog R",
			"(Theorem 3.4 upper-bound shape); 'ratio' = mean rounds / (√n/R). Θ(√n/R) predicts",
			"a bounded ratio band across the whole sweep.",
		},
	}

	type row struct {
		n      int
		radius float64
		mean   float64
		max    float64
		shape  float64
		ratio  float64
	}
	var rows []row
	run := func(n int, radius float64) row {
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
		camp := flood.Run(func() core.Dynamics { return geommeg.MustNew(cfg) }, flood.Options{
			Trials:          trials,
			SourcesPerTrial: sourcesPerTrial,
			Seed:            rng.SeedFor(p.Seed, n*131+int(radius*7)),
			Workers:         p.Workers,
			Parallelism:     p.Parallelism, Snapshot: p.Snapshot,
			MaxRounds:    core.DefaultRoundCap(n),
			Kernel:       p.Kernel,
			BatchSources: true,
		})
		sqrtNoverR := math.Sqrt(float64(n)) / radius
		return row{
			n: n, radius: radius,
			mean:  camp.MeanRounds(),
			max:   camp.MaxRounds(),
			shape: bounds.GeometricUpperShape(n, radius),
			ratio: camp.MeanRounds() / sqrtNoverR,
		}
	}

	nTbl := table.New("E4a — sweep over n (R = 2√log n, r = R/2)",
		"n", "R", "√n/R", "rounds mean", "rounds max", "shape √n/R+loglogR", "ratio")
	var nRatios []float64
	for _, n := range ns {
		radius := 2 * math.Sqrt(math.Log(float64(n)))
		rw := run(n, radius)
		rows = append(rows, rw)
		nRatios = append(nRatios, rw.ratio)
		nTbl.AddRow(n, radius, math.Sqrt(float64(n))/radius, rw.mean, rw.max, rw.shape, rw.ratio)
	}

	nBig := ns[len(ns)-1]
	rTbl := table.New("E4b — sweep over R at n = "+itoa64(nBig)+" (R = mult·√log n)",
		"mult", "R", "√n/R", "rounds mean", "rounds max", "shape", "ratio")
	var rRatios, xs, ys []float64
	for _, mult := range radiusMults {
		radius := mult * math.Sqrt(math.Log(float64(nBig)))
		rw := run(nBig, radius)
		rows = append(rows, rw)
		rRatios = append(rRatios, rw.ratio)
		x := math.Sqrt(float64(nBig)) / radius
		xs = append(xs, x)
		ys = append(ys, rw.mean)
		rTbl.AddRow(mult, radius, x, rw.mean, rw.max, rw.shape, rw.ratio)
	}

	rep.Tables = append(rep.Tables, nTbl, rTbl)

	nSpread := stats.RatioSpread(nRatios)
	rSpread := stats.RatioSpread(rRatios)
	rep.Checks = append(rep.Checks,
		boolCheck("Θ-band over n: ratio spread ≤ 2.5", nSpread <= 2.5,
			"rounds/(√n/R) spread %.2f over a %d× range of n", nSpread, ns[len(ns)-1]/ns[0]),
		boolCheck("Θ-band over R: ratio spread ≤ 2.5", rSpread <= 2.5,
			"rounds/(√n/R) spread %.2f over R multipliers %v", rSpread, radiusMults),
	)
	if len(xs) >= 3 {
		fit := stats.LogLogFit(xs, ys)
		rep.Checks = append(rep.Checks, boolCheck("rounds ∝ (√n/R)^e with e ≈ 1",
			fit.Slope > 0.7 && fit.Slope < 1.3,
			"log-log slope %.3f (R² of fit %.3f)", fit.Slope, fit.R2))
	}
	// Upper-bound sanity: measured flooding below a small multiple of
	// the Theorem 3.4 shape everywhere.
	worst := 0.0
	for _, rw := range rows {
		if q := rw.max / rw.shape; q > worst {
			worst = q
		}
	}
	rep.Checks = append(rep.Checks, boolCheck("measured ≤ 3×(√n/R + loglog R) everywhere", worst <= 3,
		"worst max/shape %.2f", worst))
	rep.Metrics = map[string]float64{"spread_over_n": nSpread, "spread_over_R": rSpread, "worst_shape_ratio": worst}
	return rep
}

func itoa64(n int) string {
	return table.Cell(n)
}
