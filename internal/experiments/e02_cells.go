package experiments

import (
	"math"

	"meg/internal/geom"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E2CellOccupancy reproduces Claim 1: partition the √n×√n square into
// cells of side ≈ R/√5 (the exact grid of the proof); in the stationary
// geometric-MEG, with high probability every cell contains between
// R²/λ and λR² nodes for a constant λ, uniformly over cells and over
// time steps. Claim 1 requires R ≥ c√log n for a sufficiently large c;
// we use c = 6, for which the per-cell expectation R²/5 ≈ 7.2·log n is
// large enough that the minimum over all cells and steps concentrates.
func E2CellOccupancy(p Params) *Report {
	ns := pick(p.Scale, []int{1024, 4096}, []int{1024, 4096, 16384}, []int{1024, 4096, 16384, 65536})
	steps := pick(p.Scale, 8, 16, 32)
	trials := pick(p.Scale, 4, 8, 8)

	tbl := table.New("E2 — cell occupancy over cells and time (cells of side ≈ R/√5, R = 6√log n)",
		"n", "R", "cells", "E[N]≈R²/5", "min N", "max N", "λ̂", "max/min")
	rep := &Report{
		ID:    "E2",
		Title: "Claim 1: R²/λ ≤ N_cell ≤ λR² w.h.p. in the stationary model",
		Notes: []string{
			"λ̂ = max(R²/minN, maxN/R²) is the smallest constant for which the claim holds in",
			"the run. Claim 1 predicts λ̂ = O(1): it must not grow as n grows (concentration",
			"improves with n because E[N_cell] ∝ log n).",
		},
	}

	var lambdas []float64
	minOcc := math.MaxInt32
	for _, n := range ns {
		radius := 6 * math.Sqrt(math.Log(float64(n)))
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
		type occ struct{ min, max int }
		results := sweep.Repeat(trials, rng.SeedFor(p.Seed, n), p.Workers, func(rep int, r *rng.RNG) occ {
			m := geommeg.MustNew(cfg)
			m.Reset(r)
			grid := geom.ClaimOneGrid(m.Side(), radius)
			lo, hi := math.MaxInt32, 0
			for s := 0; s < steps; s++ {
				for _, c := range m.CellOccupancy(grid) {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				m.Step()
			}
			return occ{lo, hi}
		})
		lo, hi := math.MaxInt32, 0
		for _, o := range results {
			if o.min < lo {
				lo = o.min
			}
			if o.max > hi {
				hi = o.max
			}
		}
		if lo < minOcc {
			minOcc = lo
		}
		r2 := radius * radius
		lambda := math.Inf(1)
		ratio := math.Inf(1)
		if lo > 0 {
			lambda = math.Max(r2/float64(lo), float64(hi)/r2)
			ratio = float64(hi) / float64(lo)
		}
		lambdas = append(lambdas, lambda)
		grid := geom.ClaimOneGrid(math.Sqrt(float64(n)), radius)
		tbl.AddRow(n, radius, grid.NumCells(), r2/5, lo, hi, lambda, ratio)
	}

	first, last := lambdas[0], lambdas[len(lambdas)-1]
	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("every cell non-empty at every step", minOcc >= 1,
			"minimum occupancy %d", minOcc),
		boolCheck("λ̂ bounded (≤ 24) at every n", maxOf(lambdas) <= 24,
			"worst λ̂ = %.2f", maxOf(lambdas)),
		boolCheck("λ̂ does not grow with n", last <= first*1.5+0.5,
			"λ̂ %.2f at n=%d vs %.2f at n=%d", first, ns[0], last, ns[len(ns)-1]),
	)
	rep.Metrics = map[string]float64{"lambda_worst": maxOf(lambdas), "min_occupancy": float64(minOcc)}
	return rep
}

func maxOf(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
