package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geommeg"
	"meg/internal/mobility"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// E11MobilityModels reproduces the paper's "further mobility models"
// claim (Section 1): the expansion argument only uses the (almost)
// uniformity of the stationary position distribution, so every mobility
// model with that property — random waypoint on a torus, random
// direction with reflection (billiard), the walkers model on a toroidal
// grid, the restricted i.i.d. disk model of [24] — has the same
// Θ(√n/R) flooding-time shape as the lattice random walk, with only
// the constant factor differing.
func E11MobilityModels(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 6, 12, 20)

	side := math.Sqrt(float64(n))
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	moveR := radius / 2

	type entry struct {
		name    string
		factory flood.Factory
	}
	entries := []entry{
		{"lattice random walk (paper §3)", func() core.Dynamics {
			return geommeg.MustNew(geommeg.Config{N: n, R: radius, MoveRadius: moveR})
		}},
		{"walkers on toroidal grid", func() core.Dynamics {
			return geommeg.MustNew(geommeg.Config{N: n, R: radius, MoveRadius: moveR, Torus: true})
		}},
		{"random waypoint (torus)", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWaypointTorus(n, side, moveR/2, moveR), radius)
		}},
		{"random direction + reflection (billiard)", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewBilliard(n, side, moveR, 0.1), radius)
		}},
		{"walkers (continuous torus)", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWalkersTorus(n, side, moveR), radius)
		}},
		{"restricted i.i.d. disk ([24])", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewRestrictedDisk(n, side, 2*radius), radius)
		}},
		{"Lévy walkers (torus)", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewLevyTorus(n, side, 2, moveR/4, moveR), radius)
		}},
		{"Gauss-Markov (reflect)", func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewGaussMarkov(n, side, 0.8, moveR/2), radius)
		}},
	}

	tbl := table.New("E11 — flooding across mobility models (n="+itoa64(n)+", R=2√log n, speeds ≈ R/2)",
		"model", "rounds mean", "rounds max", "√n/R", "ratio", "incomplete")
	rep := &Report{
		ID:    "E11",
		Title: "Further mobility models share the Θ(√n/R) flooding shape",
		Notes: []string{
			"All models start from their stationary position distribution (perfect simulation).",
			"'ratio' = mean rounds/(√n/R): the theory predicts all models land in one constant band.",
		},
	}

	sqrtNoverR := side / radius
	var ratios []float64
	incompleteTotal := 0
	for i, e := range entries {
		camp := flood.Run(e.factory, flood.Options{
			Trials:      trials,
			Seed:        rng.SeedFor(p.Seed, 4000+i),
			Workers:     p.Workers,
			Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			Kernel: p.Kernel,
		})
		ratio := camp.MeanRounds() / sqrtNoverR
		ratios = append(ratios, ratio)
		incompleteTotal += camp.Incomplete
		tbl.AddRow(e.name, camp.MeanRounds(), camp.MaxRounds(), sqrtNoverR, ratio, camp.Incomplete)
	}

	rep.Tables = append(rep.Tables, tbl)
	spread := stats.RatioSpread(ratios)
	rep.Checks = append(rep.Checks,
		boolCheck("every model completes every trial", incompleteTotal == 0,
			"%d incomplete runs", incompleteTotal),
		boolCheck("all models inside one constant band (spread ≤ 3)", spread <= 3,
			"rounds/(√n/R) spread %.2f across %d models", spread, len(entries)),
	)
	rep.Metrics = map[string]float64{"model_spread": spread, "incomplete": float64(incompleteTotal)}
	return rep
}
