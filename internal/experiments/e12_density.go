package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// E12Density reproduces Observation 3.3: the unit-density convention is
// only cosmetic — at density δ(n) (square of side √(n/δ)) the whole
// theory holds with the threshold rescaled to R ≥ c√(log n/δ). We fix
// n, sweep δ across a 16× range with R = 2√(log n/δ), and verify that
// the flooding time collapses onto the single curve side/R
// (equivalently √n/(√δ·R)), as the rescaled Theorem 3.4 predicts.
func E12Density(p Params) *Report {
	n := pick(p.Scale, 2048, 8192, 16384)
	trials := pick(p.Scale, 6, 12, 20)
	densities := []float64{0.25, 0.5, 1, 2, 4}

	tbl := table.New("E12 — density sweep at n="+itoa64(n)+" (side=√(n/δ), R=2√(log n/δ))",
		"δ", "side", "R", "side/R", "rounds mean", "rounds max", "ratio")
	rep := &Report{
		ID:    "E12",
		Title: "Observation 3.3: rescaled threshold R ≥ c√(log n/δ) at general density",
		Notes: []string{
			"side/R = √(δn)/... is held constant by the rescaling (it depends only on n), so",
			"Observation 3.3 predicts a δ-independent flooding time; 'ratio' = rounds/(side/R).",
		},
	}

	var ratios []float64
	for i, delta := range densities {
		radius := 2 * math.Sqrt(math.Log(float64(n))/delta)
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2, Density: delta}
		side := cfg.Side()
		camp := flood.Run(func() core.Dynamics { return geommeg.MustNew(cfg) }, flood.Options{
			Trials:      trials,
			Seed:        rng.SeedFor(p.Seed, 4400+i),
			Workers:     p.Workers,
			Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			Kernel: p.Kernel,
		})
		ratio := camp.MeanRounds() / (side / radius)
		ratios = append(ratios, ratio)
		tbl.AddRow(delta, side, radius, side/radius, camp.MeanRounds(), camp.MaxRounds(), ratio)
	}

	rep.Tables = append(rep.Tables, tbl)
	spread := stats.RatioSpread(ratios)
	rep.Checks = append(rep.Checks,
		boolCheck("flooding collapses onto side/R across densities (spread ≤ 1.6)", spread <= 1.6,
			"rounds/(side/R) spread %.3f over δ ∈ %v", spread, densities),
	)
	rep.Metrics = map[string]float64{"density_spread": spread}
	return rep
}
