package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
	"meg/internal/theory"
)

// E18MeanField compares full simulated flooding trajectories against
// the deterministic mean-field predictors of internal/theory: the
// branching recurrence m_{t+1} = m_t + (n−m_t)(1−(1−p̂)^{m_t}) for the
// edge-MEG, and the advancing-front disk model for the geometric-MEG.
// This goes beyond the paper's worst-case bounds: the *entire shape* of
// the informed-set curve (slow start → explosion → saturation for
// G(n,p̂); quadratic front growth for geometric) is reproduced, which is
// the mechanism behind Lemma 2.4's phase decomposition.
func E18MeanField(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 8, 16, 24)

	rep := &Report{
		ID:    "E18",
		Title: "Mean-field trajectory predictors vs simulated flooding",
		Notes: []string{
			"Trajectories aligned at m_0 = 1; measured columns are means over trials from",
			"central sources (the frontier model assumes a central source).",
		},
	}

	// --- Edge-MEG ---
	pHat := 4 * math.Log(float64(n)) / float64(n)
	cfg := edgeConfigFor(n, pHat, 0.5)
	pred := theory.EdgeTrajectory(n, pHat, 64)
	trajs := sweep.Repeat(trials, rng.SeedFor(p.Seed, 1800), p.Workers, func(rep int, r *rng.RNG) []int {
		m := edgemeg.MustNew(cfg)
		m.Reset(r)
		return core.FloodOpt(m, r.Intn(n), core.DefaultRoundCap(n), p.FloodOptions()).Trajectory
	})
	maxLen := len(pred)
	for _, tr := range trajs {
		if len(tr) > maxLen {
			maxLen = len(tr)
		}
	}
	eTbl := table.New("E18a — edge-MEG trajectory (n="+itoa64(n)+", np̂="+table.Cell(float64(n)*pHat)+")",
		"t", "measured mean m_t", "mean-field m_t", "ratio")
	var edgeRatios []float64
	for t := 0; t < maxLen; t++ {
		var acc stats.Accumulator
		for _, tr := range trajs {
			v := float64(n)
			if t < len(tr) {
				v = float64(tr[t])
			}
			acc.Add(v)
		}
		pv := float64(n)
		if t < len(pred) {
			pv = pred[t]
		}
		ratio := acc.Mean() / pv
		if t > 0 && acc.Mean() < float64(n)-0.5 {
			edgeRatios = append(edgeRatios, ratio)
		}
		eTbl.AddRow(t, acc.Mean(), pv, ratio)
	}
	rep.Tables = append(rep.Tables, eTbl)

	predRounds := theory.EdgeRounds(n, pHat, 64)
	var measRounds stats.Accumulator
	for _, tr := range trajs {
		measRounds.Add(float64(len(tr) - 1))
	}

	// --- Geometric-MEG ---
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	gcfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
	side := gcfg.Side()
	gpred := theory.GeometricTrajectory(n, side, radius, radius/2, 4*int(side/radius)+16)
	gtrajs := sweep.Repeat(trials, rng.SeedFor(p.Seed, 1810), p.Workers, func(rep int, r *rng.RNG) []int {
		m := geommeg.MustNew(gcfg)
		m.Reset(r)
		// Central source to match the frontier model.
		src := m.NearestNodes(pt(side/2, side/2), 1)[0]
		return core.FloodOpt(m, src, core.DefaultRoundCap(n), p.FloodOptions()).Trajectory
	})
	gLen := len(gpred)
	for _, tr := range gtrajs {
		if len(tr) > gLen {
			gLen = len(tr)
		}
	}
	gTbl := table.New("E18b — geometric-MEG trajectory (n="+itoa64(n)+", R=2√log n, central source)",
		"t", "measured mean m_t", "front model m_t", "ratio")
	var geomMidRatios []float64
	for t := 0; t < gLen; t++ {
		var acc stats.Accumulator
		for _, tr := range gtrajs {
			v := float64(n)
			if t < len(tr) {
				v = float64(tr[t])
			}
			acc.Add(v)
		}
		pv := float64(n)
		if t < len(gpred) {
			pv = gpred[t]
		}
		ratio := acc.Mean() / pv
		if acc.Mean() > float64(n)/100 && acc.Mean() < float64(n)-0.5 {
			geomMidRatios = append(geomMidRatios, ratio)
		}
		gTbl.AddRow(t, acc.Mean(), pv, ratio)
	}
	rep.Tables = append(rep.Tables, gTbl)

	gPredRounds := theory.GeometricRounds(side, radius, radius/2)
	var gMeasRounds stats.Accumulator
	for _, tr := range gtrajs {
		gMeasRounds.Add(float64(len(tr) - 1))
	}

	edgeSpread := stats.RatioSpread(edgeRatios)
	rep.Checks = append(rep.Checks,
		boolCheck("edge-MEG: mean-field completion within ±2 rounds",
			math.Abs(measRounds.Mean()-float64(predRounds)) <= 2,
			"measured %.2f vs predicted %d", measRounds.Mean(), predRounds),
		boolCheck("edge-MEG: pointwise trajectory within a 4× band", edgeSpread <= 8 && minOf(edgeRatios) > 0.25,
			"m_t ratios in [%.2f, %.2f]", minOf(edgeRatios), maxOf(edgeRatios)),
		boolCheck("geometric: frontier completion within 1.6×",
			gMeasRounds.Mean() <= 1.6*gPredRounds && gMeasRounds.Mean() >= gPredRounds/1.6,
			"measured %.1f vs front model %.1f", gMeasRounds.Mean(), gPredRounds),
		boolCheck("geometric: bulk of the curve within 3× of the front model",
			len(geomMidRatios) > 0 && minOf(geomMidRatios) > 1/3.0 && maxOf(geomMidRatios) < 3,
			"mid-curve ratios in [%.2f, %.2f]", minOf(geomMidRatios), maxOf(geomMidRatios)),
	)
	rep.Metrics = map[string]float64{
		"edge_rounds_meas": measRounds.Mean(), "edge_rounds_pred": float64(predRounds),
		"geom_rounds_meas": gMeasRounds.Mean(), "geom_rounds_pred": gPredRounds,
	}
	return rep
}

func minOf(xs []float64) float64 {
	best := math.Inf(1)
	for _, x := range xs {
		if x < best {
			best = x
		}
	}
	return best
}
