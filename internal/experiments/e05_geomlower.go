package experiments

import (
	"math"

	"meg/internal/bounds"
	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/table"
)

// E5GeometricLower reproduces Theorem 3.5: the flooding time of a
// stationary geometric-MEG is at least √n/(2(R+2r)) w.h.p. (the
// explicit constant from the proof). It sweeps the move radius r at
// fixed n and R, verifying the bound trial by trial, and additionally
// confirms the Corollary 3.6 picture: for r = O(R) mobility has almost
// no effect on flooding time (the dynamic network behaves like the
// static stationary graph), while very large r starts to help.
func E5GeometricLower(p Params) *Report {
	n := pick(p.Scale, 2048, 8192, 16384)
	trials := pick(p.Scale, 6, 12, 20)

	radius := 2 * math.Sqrt(math.Log(float64(n)))
	moveFactors := []float64{0, 0.25, 0.5, 1, 2, 4, 8}

	tbl := table.New("E5 — move-radius sweep at n="+itoa64(n)+", R=2√log n",
		"r/R", "r", "rounds mean", "rounds min", "lower √n/(2(R+2r))", "min/lower", "vs r=0")
	rep := &Report{
		ID:    "E5",
		Title: "Theorem 3.5: flooding ≥ √n/(2(R+2r)); mobility negligible for r = O(R)",
		Notes: []string{
			"'min/lower' must stay ≥ 1 (per-trial lower bound, explicit constant).",
			"'vs r=0' = mean rounds / mean rounds at r=0. Corollary 3.6 (r = O(R)) predicts the",
			"same Θ(√n/R): a bounded factor band for r ≤ R, improving substantially only for r ≫ R.",
		},
	}

	side := math.Sqrt(float64(n))
	violations := 0
	var base float64
	var smallRMeans []float64
	var bigRGain float64
	for i, f := range moveFactors {
		moveR := f * radius
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: moveR}
		camp := flood.Run(func() core.Dynamics { return geommeg.MustNew(cfg) }, flood.Options{
			Trials:      trials,
			Seed:        rng.SeedFor(p.Seed, 500+i),
			Workers:     p.Workers,
			Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			Kernel: p.Kernel,
		})
		lower := bounds.GeometricLower(side, radius, moveR)
		minRounds := camp.Summary.Min
		for _, t := range camp.Trials {
			if t.Result.Completed && float64(t.Result.Rounds) < lower {
				violations++
			}
		}
		if i == 0 {
			base = camp.MeanRounds()
		}
		rel := camp.MeanRounds() / base
		if f <= 1 {
			smallRMeans = append(smallRMeans, camp.MeanRounds())
		}
		if f == moveFactors[len(moveFactors)-1] {
			bigRGain = rel
		}
		tbl.AddRow(f, moveR, camp.MeanRounds(), minRounds, lower, minRounds/lower, rel)
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("no trial beats the Theorem 3.5 lower bound", violations == 0,
			"%d violations across all r", violations),
		boolCheck("same Θ(√n/R) band for all r ≤ R (spread ≤ 2)", stats.RatioSpread(smallRMeans) <= 2,
			"mean-rounds spread %.3f for 0 ≤ r ≤ R", stats.RatioSpread(smallRMeans)),
		boolCheck("large r (8R) does not slow flooding", bigRGain <= 1.25,
			"mean ratio at r=8R vs r=0: %.3f", bigRGain),
	)
	rep.Metrics = map[string]float64{
		"violations":     float64(violations),
		"spread_small_r": stats.RatioSpread(smallRMeans),
		"gain_8R":        bigRGain,
	}
	return rep
}
