package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E16Protocols realizes the paper's framing of flooding as "the natural
// lower bound for broadcast protocols in dynamic networks … often used
// in order to evaluate the relative efficiency of alternative
// protocols" (Section 1): it runs the standard alternatives —
// probabilistic flooding [29], push rumor spreading [30], push–pull —
// against flooding on both stationary substrates and reports latency
// and message complexity. Flooding must be the round-for-round fastest;
// gossip variants must trade a logarithmic latency factor for order-of-
// magnitude message savings.
//
// The gossip rows run on the engine selected by Params.ProtocolEngine —
// the bit-parallel sharded kernel by default, the per-node reference on
// request; both produce identical numbers.
func E16Protocols(p Params) *Report {
	n := pick(p.Scale, 1024, 4096, 16384)
	trials := pick(p.Scale, 8, 12, 20)

	radius := 2 * math.Sqrt(math.Log(float64(n)))
	pHat := 4 * math.Log(float64(n)) / float64(n)
	geomCfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
	edgeCfg := edgeConfigFor(n, pHat, 0.5)

	// Flooding runs the reference (it is the message-accounting
	// baseline); the gossip family dispatches through runProto below.
	protos := []struct {
		name       string
		beta, loss float64
	}{
		{name: "flooding"},
		{name: "probabilistic", beta: 0.8},
		{name: "push"},
		{name: "push-pull"},
	}

	rep := &Report{
		ID:    "E16",
		Title: "Flooding as the baseline for broadcast protocols (Section 1 framing)",
		Notes: []string{
			"Latency in rounds, messages in point-to-point transmissions (mean over trials).",
			"Flooding is the latency floor of the family; gossip trades rounds for messages.",
			// The engine name must NOT appear here: protocolEngine is
			// excluded from the spec content hash, so the report bytes
			// must be identical whichever engine ran.
			"Gossip rows run on the configured protocol engine (kernel or reference — result-identical).",
		},
	}

	type row struct {
		rounds, messages float64
		success          int
	}
	run := func(factory func() core.Dynamics, name string, beta, loss float64, salt int) row {
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, salt), p.Workers, func(rep int, r *rng.RNG) protocol.Result {
			d := factory()
			d.Reset(r.Split())
			return runProto(p, d, name, beta, loss, r.Intn(n), core.DefaultRoundCap(n), r)
		})
		var out row
		var rAcc, mAcc stats.Accumulator
		for _, o := range res {
			if o.Completed {
				out.success++
				rAcc.Add(float64(o.Rounds))
			}
			mAcc.Add(float64(o.Messages))
		}
		out.rounds = rAcc.Mean()
		out.messages = mAcc.Mean()
		return out
	}

	substrates := []struct {
		name    string
		factory func() core.Dynamics
	}{
		{"geometric-MEG", func() core.Dynamics { return geommeg.MustNew(geomCfg) }},
		{"edge-MEG", func() core.Dynamics { return edgemeg.MustNew(edgeCfg) }},
	}

	floodFastest := true
	gossipSaves := true
	allComplete := true
	for si, sub := range substrates {
		tbl := table.New("E16 — broadcast protocols on the stationary "+sub.name+" (n="+itoa64(n)+")",
			"protocol", "success", "rounds mean", "messages mean", "msg vs flooding")
		var floodRow row
		for pi, proto := range protos {
			rw := run(sub.factory, proto.name, proto.beta, proto.loss, 1600+100*si+pi)
			if pi == 0 {
				floodRow = rw
			}
			if rw.success < trials && pi != 1 {
				// probabilistic flooding may legitimately die out; all
				// others must always complete in the connected regime.
				allComplete = false
			}
			// Distributionally no protocol in the family beats flooding;
			// the means come from independent trials with random
			// sources, so allow one round of sampling noise.
			if rw.success > 0 && rw.rounds < floodRow.rounds-1 {
				floodFastest = false
			}
			if proto.name == "push" && rw.messages >= floodRow.messages {
				gossipSaves = false
			}
			tbl.AddRow(displayName(proto.name, proto.beta, proto.loss), rw.success, rw.rounds, rw.messages, rw.messages/floodRow.messages)
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	rep.Checks = append(rep.Checks,
		boolCheck("flooding is the latency floor of the family", floodFastest,
			"no protocol completed in fewer rounds than flooding on either substrate"),
		boolCheck("deterministic protocols always complete", allComplete,
			"flooding, push, push-pull completed every trial"),
		boolCheck("push gossip saves messages vs flooding", gossipSaves,
			"gossip message mean below flooding's on both substrates"),
	)
	rep.Metrics = map[string]float64{
		"flood_fastest": b2f(floodFastest), "gossip_saves": b2f(gossipSaves),
	}
	return rep
}

// runProto runs one protocol trial through the configured engine.
// Flooding always uses the reference implementation (the gossip engine
// has no flooding kernel — the flooding engine does that job, but
// without message accounting); the gossip family uses core.Gossip
// unless Params.ProtocolEngine asks for the reference oracle.
func runProto(p Params, d core.Dynamics, name string, beta, loss float64, src, maxRounds int, r *rng.RNG) protocol.Result {
	if name == "flooding" || p.ProtocolEngine == "reference" {
		proto, err := protocol.ByName(name, beta, loss)
		if err != nil {
			panic(err)
		}
		return proto.Run(d, src, maxRounds, r)
	}
	gp, err := core.ParseGossip(name)
	if err != nil {
		panic(err)
	}
	res := core.Gossip(d, gp, src, maxRounds, r, core.GossipOptions{
		Beta: beta, Loss: loss, Parallelism: p.Parallelism, Snapshot: p.Snapshot,
	})
	return protocol.Result{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.Trajectory,
		Messages:   res.Messages,
	}
}

// displayName returns the protocol's human-readable table label.
func displayName(name string, beta, loss float64) string {
	proto, err := protocol.ByName(name, beta, loss)
	if err != nil {
		return name
	}
	return proto.Name()
}
