package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geommeg"
	"meg/internal/rng"
	"meg/internal/table"
)

// E13SubThreshold is the ablation the paper's conclusions point to
// (Section 5, developed in the authors' follow-up [11]): below the
// connectivity threshold (R ≪ √log n) the static snapshot is
// disconnected and static flooding (r = 0) stalls forever, but node
// mobility ferries the message between components, so flooding
// completes once r > 0 and accelerates as r grows — the opposite of the
// connected regime of E5, where mobility was negligible. This is the
// "high mobility can make up for low transmission power" phenomenon.
func E13SubThreshold(p Params) *Report {
	n := pick(p.Scale, 1024, 4096, 8192)
	trials := pick(p.Scale, 6, 10, 16)

	// R well below the connectivity scale: the average degree πR² ≈ 3.1
	// leaves the snapshot shattered into many components.
	radius := 1.0
	moveFactors := []float64{0, 1, 2, 4, 8, 16}
	cap := pick(p.Scale, 20, 30, 40) * int(math.Sqrt(float64(n)))

	tbl := table.New("E13 — sub-threshold regime (n="+itoa64(n)+", R=1 ≪ √log n): mobility rescues flooding",
		"r/R", "completed", "rounds mean (completed)", "rounds max", "speedup vs r=R")
	rep := &Report{
		ID:    "E13",
		Title: "Sub-threshold ablation: mobility speeds up flooding when R is below the connectivity threshold",
		Notes: []string{
			"r = 0 is the static disconnected baseline: flooding cannot complete (capped runs).",
			"For r > 0 completion is restored and grows faster with r, in contrast with E5.",
		},
	}

	var meanAtR1 float64
	staticCompleted := 0
	mobileIncomplete := 0
	monotone := true
	prevMean := math.Inf(1)
	for i, f := range moveFactors {
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: f * radius, Eps: 0.5}
		camp := flood.Run(func() core.Dynamics { return geommeg.MustNew(cfg) }, flood.Options{
			Trials:      trials,
			Seed:        rng.SeedFor(p.Seed, 4700+i),
			Workers:     p.Workers,
			Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			MaxRounds: cap,
			Kernel:    p.Kernel,
		})
		completed := trials - camp.Incomplete
		if f == 0 {
			staticCompleted = completed
		} else if f >= 1 {
			mobileIncomplete += camp.Incomplete
		}
		if f == 1 {
			meanAtR1 = camp.MeanRounds()
		}
		speedup := math.NaN()
		if f >= 1 && meanAtR1 > 0 && !math.IsNaN(camp.MeanRounds()) {
			speedup = meanAtR1 / camp.MeanRounds()
			if camp.MeanRounds() > prevMean*1.35 {
				monotone = false
			}
			prevMean = camp.MeanRounds()
		}
		tbl.AddRow(f, completed, camp.MeanRounds(), camp.MaxRounds(), speedup)
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("static sub-threshold flooding never completes", staticCompleted == 0,
			"%d/%d static runs completed (snapshot disconnected)", staticCompleted, trials),
		boolCheck("mobility (r ≥ R) restores completion in every run", mobileIncomplete == 0,
			"%d incomplete mobile runs", mobileIncomplete),
		boolCheck("flooding speeds up with r (≈monotone, 35%% slack)", monotone,
			"mean rounds non-increasing in r for r ≥ R"),
	)
	rep.Metrics = map[string]float64{
		"static_completed":  float64(staticCompleted),
		"mobile_incomplete": float64(mobileIncomplete),
	}
	return rep
}
