// Package experiments implements the paper-reproduction suite: one
// experiment per theorem/claim of the paper (E1–E13, indexed in
// DESIGN.md). Every experiment simulates the exact stochastic process
// the theorem is about, measures the bounded quantity, evaluates the
// theorem's formula, and reports both a human-readable table and
// machine-checkable shape assertions.
//
// Experiments are deterministic given (Scale, Seed) and run their
// Monte Carlo repetitions in parallel through internal/sweep.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"meg/internal/core"
	"meg/internal/spec"
	"meg/internal/stats"
	"meg/internal/table"
)

// Scale selects the experiment size/accuracy trade-off.
type Scale int

const (
	// Quick is sized for CI: seconds per experiment, loose checks.
	Quick Scale = iota
	// Standard is the default for interactive runs: tens of seconds.
	Standard
	// Full is the EXPERIMENTS.md configuration: minutes, widest ranges.
	Full
)

// String returns the scale's flag spelling.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick", "q":
		return Quick, nil
	case "standard", "std", "s":
		return Standard, nil
	case "full", "f":
		return Full, nil
	default:
		return Quick, fmt.Errorf("experiments: unknown scale %q (want quick|standard|full)", s)
	}
}

// Params carries the run parameters every experiment receives.
type Params struct {
	Scale   Scale
	Seed    uint64
	Workers int
	// Kernel pins the flooding engine's per-round strategy for every
	// flooding call an experiment makes (default core.KernelAuto).
	// Kernels are result-equivalent, so this only changes speed — it
	// exists so megbench can time and cross-check them.
	Kernel core.Kernel
	// Parallelism is the intra-trial worker count of the sharded
	// flooding engine and model snapshot builds (0/1 = serial). Like
	// Kernel it is result-equivalent: it only changes speed.
	Parallelism int
	// ProtocolEngine selects the implementation protocol experiments
	// (E16) run the gossip family on: "kernel" (the bit-parallel
	// sharded engine, also the default for "") or "reference" (the
	// per-node oracle in internal/protocol). The engines are
	// byte-identical, so like Kernel this only changes speed.
	ProtocolEngine string
	// Snapshot selects the engines' per-round snapshot path (full
	// rebuild vs incremental delta maintenance) for every flooding and
	// gossip call an experiment makes. Like Kernel it is
	// result-equivalent: it only changes speed.
	Snapshot core.SnapshotMode
}

// FloodOptions returns the flooding engine options experiments thread
// into their core.FloodOpt and flood.Run calls.
func (p Params) FloodOptions() core.FloodOptions {
	return core.FloodOptions{Kernel: p.Kernel, Parallelism: p.Parallelism, Snapshot: p.Snapshot}
}

// ParamsFromSpec is the spec-driven constructor: it maps an experiment
// spec (experiment ID + scale + seed policy) onto run parameters. The
// experiment ID itself is resolved by the caller via ByID.
func ParamsFromSpec(s spec.Spec) (Params, error) {
	c, err := s.Canonical()
	if err != nil {
		return Params{}, err
	}
	if c.Experiment == "" {
		return Params{}, fmt.Errorf("experiments: spec names no experiment")
	}
	scale, err := ParseScale(c.Scale)
	if err != nil {
		return Params{}, err
	}
	seed, err := c.EffectiveSeed()
	if err != nil {
		return Params{}, err
	}
	snapshot, err := core.ParseSnapshotMode(c.Snapshot)
	if err != nil {
		return Params{}, err
	}
	return Params{Scale: scale, Seed: seed, Workers: c.Workers, Parallelism: c.Parallelism, ProtocolEngine: c.ProtocolEngine, Snapshot: snapshot}, nil
}

// Check is one machine-verifiable shape assertion derived from a
// theorem (e.g. "measured ≤ bound in every trial", "ratio spread ≤ 2").
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (e.g. "E4").
	ID string
	// Title names the paper result being reproduced.
	Title string
	// Tables holds the result tables (at least one).
	Tables []*table.Table
	// Checks holds the shape assertions.
	Checks []Check
	// Notes holds free-form commentary (parameter conventions,
	// substitutions, caveats).
	Notes []string
	// Metrics holds the experiment's headline numeric results, used by
	// the bench harness's ReportMetric output.
	Metrics map[string]float64
}

// reportJSON is the wire form of a Report; Metrics values pass through
// stats.NullableFloat so NaN/Inf (legitimate for, say, an unfit slope)
// encode as null instead of failing the encoder.
type reportJSON struct {
	ID      string              `json:"id"`
	Title   string              `json:"title"`
	Tables  []*table.Table      `json:"tables"`
	Checks  []Check             `json:"checks"`
	Notes   []string            `json:"notes,omitempty"`
	Metrics map[string]*float64 `json:"metrics,omitempty"`
	Passed  bool                `json:"passed"`
}

// MarshalJSON implements json.Marshaler.
func (r *Report) MarshalJSON() ([]byte, error) {
	j := reportJSON{
		ID: r.ID, Title: r.Title, Tables: r.Tables,
		Checks: r.Checks, Notes: r.Notes, Passed: r.Passed(),
	}
	if r.Metrics != nil {
		j.Metrics = make(map[string]*float64, len(r.Metrics))
		for k, v := range r.Metrics {
			j.Metrics[k] = stats.NullableFloat(v)
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler (null metrics become NaN).
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Report{ID: j.ID, Title: j.Title, Tables: j.Tables, Checks: j.Checks, Notes: j.Notes}
	if j.Metrics != nil {
		r.Metrics = make(map[string]float64, len(j.Metrics))
		for k, v := range j.Metrics {
			r.Metrics[k] = stats.FloatFromNullable(v)
		}
	}
	return nil
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// WriteText renders the report for terminals and EXPERIMENTS.md.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		_ = t.WriteText(w)
	}
	fmt.Fprintln(w)
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "   [%s] %s — %s\n", status, c.Name, c.Detail)
	}
}

// Experiment is one runnable entry of the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) *Report
}

// All returns the full suite in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Lemma 2.4 / Theorem 2.5: expansion ⇒ flooding bound (synthetic MEGs)", E1GeneralBound},
		{"E2", "Claim 1: cell occupancy concentration in stationary geometric-MEG", E2CellOccupancy},
		{"E3", "Theorem 3.2: node expansion of stationary geometric-MEG", E3GeometricExpansion},
		{"E4", "Theorem 3.4 + Corollary 3.6: flooding time Θ(√n/R) in geometric-MEG", E4GeometricScaling},
		{"E5", "Theorem 3.5: flooding lower bound √n/(2(R+2r)) and move-radius effect", E5GeometricLower},
		{"E6", "Perfect simulation: stationarity of geometric-MEG snapshots", E6Stationarity},
		{"E7", "Theorem 4.1: node expansion of stationary edge-MEG (G(n,p̂))", E7EdgeExpansion},
		{"E8", "Theorem 4.3 + Corollary 4.5: flooding time Θ(log n/log(np̂)) in edge-MEG", E8EdgeScaling},
		{"E9", "Theorem 4.4: per-round growth ≤ 2np̂ in edge-MEG", E9EdgeGrowth},
		{"E10", "Stationary vs worst-case gap in edge-MEG (Section 1)", E10Gap},
		{"E11", "Further mobility models: same Θ(√n/R) flooding shape", E11MobilityModels},
		{"E12", "Observation 3.3: density scaling R ≥ c√(log n/δ)", E12Density},
		{"E13", "Sub-threshold ablation: mobility speeds up flooding (Section 5 / [11])", E13SubThreshold},
		{"E14", "Section 5: flooding time ≈ diameter of the static stationary graph", E14FloodVsDiameter},
		{"E15", "Extension [4]: parsimonious flooding with k-round budgets", E15Parsimonious},
		{"E16", "Flooding as the baseline for broadcast protocols (Section 1 framing)", E16Protocols},
		{"E17", "Connectivity-regime validation behind Theorems 3.4/4.3", E17Connectivity},
		{"E18", "Mean-field trajectory predictors vs simulated flooding", E18MeanField},
		{"E19", "Uniformity of the stationary distribution: where the assumption binds", E19Uniformity},
		{"E20", "Flooding under message loss: graceful degradation", E20Faults},
	}
}

// ByID returns the experiment with the given (case-insensitive) ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// pick returns the value matching the scale.
func pick[T any](s Scale, quick, standard, full T) T {
	switch s {
	case Standard:
		return standard
	case Full:
		return full
	default:
		return quick
	}
}

// b2f encodes a boolean as a 0/1 metric value.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// boolCheck builds a Check from a condition and a formatted detail.
func boolCheck(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}
