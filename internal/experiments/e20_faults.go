package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/protocol"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E20Faults measures flooding under unreliable transmission — the
// faulty-network motivation of the paper's introduction pushed from the
// topology level (edge-MEG) to the message level: every transmission is
// lost independently with probability f. Because flooding retransmits
// every round, loss cannot stall it on a connected-regime stationary
// MEG; the prediction is graceful degradation — completion in every
// trial with the mean time growing by roughly the per-hop retry factor
// 1/(1−f) — which the sweep verifies up to f = 0.9.
func E20Faults(p Params) *Report {
	n := pick(p.Scale, 1024, 4096, 16384)
	trials := pick(p.Scale, 8, 12, 20)
	losses := []float64{0, 0.25, 0.5, 0.75, 0.9}

	radius := 2 * math.Sqrt(math.Log(float64(n)))
	geomCfg := geommeg.Config{N: n, R: radius, MoveRadius: radius / 2}
	pHat := 4 * math.Log(float64(n)) / float64(n)
	edgeCfg := edgeConfigFor(n, pHat, 0.5)

	rep := &Report{
		ID:    "E20",
		Title: "Flooding under message loss: graceful degradation on both substrates",
		Notes: []string{
			"Per-message loss probability f; flooding retransmits every round, so the",
			"expected slowdown is bounded by the per-hop retry factor 1/(1−f).",
		},
	}

	substrates := []struct {
		name    string
		factory func() core.Dynamics
	}{
		{"geometric-MEG", func() core.Dynamics { return geommeg.MustNew(geomCfg) }},
		{"edge-MEG", func() core.Dynamics { return edgemeg.MustNew(edgeCfg) }},
	}

	allComplete := true
	degradeOK := true
	for si, sub := range substrates {
		tbl := table.New("E20 — flooding vs loss rate on the stationary "+sub.name+" (n="+itoa64(n)+")",
			"loss f", "success", "rounds mean", "slowdown", "retry bound 1/(1−f)")
		var base float64
		for li, f := range losses {
			loss := f
			res := sweep.Repeat(trials, rng.SeedFor(p.Seed, 2000+100*si+li), p.Workers, func(rep int, r *rng.RNG) protocol.Result {
				d := sub.factory()
				d.Reset(r.Split())
				return protocol.LossyFlooding{Loss: loss}.Run(d, r.Intn(n), core.DefaultRoundCap(n), r)
			})
			success := 0
			var acc stats.Accumulator
			for _, o := range res {
				if o.Completed {
					success++
					acc.Add(float64(o.Rounds))
				}
			}
			if success < trials {
				allComplete = false
			}
			if li == 0 {
				base = acc.Mean()
			}
			slowdown := acc.Mean() / base
			retry := 1 / (1 - f)
			// Allow generous slack: geometry gives flooding many
			// parallel paths, so the observed slowdown is usually far
			// below the serial retry bound.
			if slowdown > retry*1.5+0.3 {
				degradeOK = false
			}
			tbl.AddRow(f, success, acc.Mean(), slowdown, retry)
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	rep.Checks = append(rep.Checks,
		boolCheck("flooding completes at every loss rate up to 0.9", allComplete,
			"retransmission defeats message loss in the connected regime"),
		boolCheck("slowdown bounded by ≈ the retry factor 1/(1−f)", degradeOK,
			"graceful degradation on both substrates"),
	)
	rep.Metrics = map[string]float64{"all_complete": b2f(allComplete)}
	return rep
}
