package experiments

import (
	"math"
	"strconv"

	"meg/internal/edgemeg"
	"meg/internal/expansion"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E7EdgeExpansion reproduces Theorem 4.1 / Lemma 4.2: the stationary
// snapshot of an edge-MEG is G(n, p̂), and with probability ≥ 1 − 1/n²
// it is a (h, np̂/c)-expander for h ≤ 1/p̂ and a (h, n/(ch))-expander
// for 1/p̂ ≤ h ≤ n/2. We measure k(h) over BFS balls (the adversarial
// family for G(n,p)) and random sets and verify the two regimes:
// k(h) ≈ const ≈ np̂/c below h = 1/p̂, and k(h) ∝ n/h above it
// (log-log slope ≈ −1), equivalently |N(I)| = Θ(n) there.
func E7EdgeExpansion(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 2, 3, 5)
	ladder := pick(p.Scale, 10, 12, 14)
	setsPerSize := pick(p.Scale, 4, 6, 8)

	pHat := 4 * math.Log(float64(n)) / float64(n)
	hs := expansion.GeometricSizes(n, ladder)

	perTrial := sweep.Repeat(trials, rng.SeedFor(p.Seed, 7), p.Workers, func(rep int, r *rng.RNG) []expansion.Point {
		g := edgemeg.SampleGNP(n, pHat, r)
		gen := expansion.Combine(expansion.BFSBalls(g), expansion.RandomSets(n))
		return expansion.Profile(g, hs, gen, setsPerSize, r)
	})

	ks := make([]float64, len(hs))
	for i := range ks {
		ks[i] = math.Inf(1)
	}
	for _, points := range perTrial {
		for i, pt := range points {
			if pt.K >= 0 && pt.K < ks[i] {
				ks[i] = pt.K
			}
		}
	}

	thresh := 1 / pHat
	np := float64(n) * pHat
	tbl := table.New("E7 — empirical expansion k(h) of G(n,p̂) vs Theorem 4.1 (n="+strconv.Itoa(n)+", np̂="+table.Cell(np)+")",
		"h", "k(h)", "k/np̂ (ĉ⁻¹ regime 1)", "k·h/n (ĉ⁻¹ regime 2)", "regime")
	var h1, k1, h2, k2 []float64
	allPositive := true
	for i, h := range hs {
		k := ks[i]
		if k <= 0 || math.IsInf(k, 1) {
			allPositive = false
		}
		fh := float64(h)
		regime := "transition"
		if fh <= thresh/2 {
			regime = "1 (k≈np̂/c)"
			if k > 0 && !math.IsInf(k, 1) {
				h1 = append(h1, fh)
				k1 = append(k1, k)
			}
		} else if fh >= 2*thresh && fh <= float64(n)/3 {
			regime = "2 (k∝n/h)"
			if k > 0 && !math.IsInf(k, 1) {
				h2 = append(h2, fh)
				k2 = append(k2, k)
			}
		}
		tbl.AddRow(h, k, k/np, k*fh/float64(n), regime)
	}

	rep := &Report{
		ID:    "E7",
		Title: "Theorem 4.1: two-regime node expansion of stationary edge-MEG snapshots",
		Notes: []string{
			"p̂ = 4 log n / n. Regime split shown at h = 1/(2p̂) and h = 2/p̂ (theorem boundary 1/p̂).",
			"Candidates: BFS balls (adversarial for G(n,p)) and random sets.",
		},
		Tables: []*table.Table{tbl},
	}

	slope1, slope2 := math.NaN(), math.NaN()
	rep.Checks = append(rep.Checks, boolCheck("expansion positive at every h ≤ n/2", allPositive,
		"k(h) > 0 for all ladder sizes"))
	if len(h1) >= 3 {
		fit := stats.LogLogFit(h1, k1)
		slope1 = fit.Slope
		spread := stats.RatioSpread(k1)
		rep.Checks = append(rep.Checks, boolCheck("regime-1: k(h) ≈ const ≈ np̂/c (slope ≈ 0)",
			fit.Slope > -0.6 && fit.Slope < 0.35 && spread <= 6,
			"log-log slope %.3f, k spread %.2f over %d points", fit.Slope, spread, len(h1)))
	} else {
		rep.Checks = append(rep.Checks, boolCheck("regime-1: k(h) ≈ const", false,
			"not enough regime-1 points (%d)", len(h1)))
	}
	if len(h2) >= 2 {
		fit := stats.LogLogFit(h2, k2)
		slope2 = fit.Slope
		rep.Checks = append(rep.Checks, boolCheck("regime-2: k ∝ n/h (slope ≈ −1)",
			fit.Slope > -1.4 && fit.Slope < -0.6,
			"log-log slope %.3f over %d points", fit.Slope, len(h2)))
	} else {
		rep.Checks = append(rep.Checks, boolCheck("regime-2: k ∝ n/h", false,
			"not enough regime-2 points (%d)", len(h2)))
	}
	rep.Metrics = map[string]float64{"slope_regime1": slope1, "slope_regime2": slope2}
	return rep
}
