package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"meg/internal/rng"
)

func rngFor(seed uint64) *rng.RNG { return rng.New(seed) }

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{
		"quick": Quick, "q": Quick,
		"standard": Standard, "std": Standard, "s": Standard,
		"full": Full, "f": Full, "FULL": Full,
	}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Standard.String() != "standard" || Full.String() != "full" {
		t.Error("scale labels wrong")
	}
	if Scale(42).String() == "" {
		t.Error("unknown scale should render")
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("suite has %d experiments, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if e, ok := ByID("e4"); !ok || e.ID != "E4" {
		t.Error("ByID case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestReportPassedAndText(t *testing.T) {
	rep := &Report{
		ID:     "EX",
		Title:  "demo",
		Checks: []Check{{Name: "a", Pass: true, Detail: "ok"}},
		Notes:  []string{"note"},
	}
	if !rep.Passed() {
		t.Fatal("Passed with all-pass checks")
	}
	rep.Checks = append(rep.Checks, Check{Name: "b", Pass: false, Detail: "bad"})
	if rep.Passed() {
		t.Fatal("Passed with a failing check")
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, frag := range []string{"== EX: demo ==", "[PASS] a", "[FAIL] b", "note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report text missing %q:\n%s", frag, out)
		}
	}
}

func TestPick(t *testing.T) {
	if pick(Quick, 1, 2, 3) != 1 || pick(Standard, 1, 2, 3) != 2 || pick(Full, 1, 2, 3) != 3 {
		t.Fatal("pick wrong")
	}
}

func TestBoolCheck(t *testing.T) {
	c := boolCheck("n", true, "x=%d", 5)
	if !c.Pass || c.Detail != "x=5" || c.Name != "n" {
		t.Fatalf("boolCheck = %+v", c)
	}
}

// TestQuickSuitePasses runs the complete experiment suite at Quick
// scale — the end-to-end integration test of the reproduction: every
// theorem's shape check must pass. Skipped in -short mode.
func TestQuickSuitePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(Params{Scale: Quick, Seed: 1})
			for _, c := range rep.Checks {
				if !c.Pass {
					t.Errorf("%s check %q failed: %s", e.ID, c.Name, c.Detail)
				}
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s produced no tables", e.ID)
			}
		})
	}
}

// TestExperimentsDeterministic re-runs one stochastic experiment with
// the same parameters and requires identical rendered tables.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check skipped in -short mode")
	}
	p := Params{Scale: Quick, Seed: 123, Workers: 2}
	a := E1GeneralBound(p)
	b := E1GeneralBound(p)
	if a.Tables[0].Text() != b.Tables[0].Text() {
		t.Fatal("E1 not deterministic under fixed seed")
	}
}

func TestCycleMatchingDynamics(t *testing.T) {
	m := newCycleMatching(10, true)
	m.Reset(rngFor(1))
	g := m.Graph()
	if g.N() != 10 {
		t.Fatal("wrong node count")
	}
	// The cycle is always present.
	for i := 0; i < 10; i++ {
		if !g.HasEdge(i, (i+1)%10) {
			t.Fatalf("cycle edge (%d,%d) missing", i, (i+1)%10)
		}
	}
	// With the matching, the edge count exceeds the bare cycle's often;
	// with withMatching=false it is exactly n.
	plain := newCycleMatching(10, false)
	plain.Reset(rngFor(2))
	if plain.Graph().M() != 10 {
		t.Fatalf("bare cycle has %d edges", plain.Graph().M())
	}
	// Graph is cached until Step.
	if m.Graph() != m.Graph() {
		t.Fatal("graph not cached")
	}
	m.Step()
	_ = m.Graph()
}

func TestCycleMatchingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 4")
		}
	}()
	newCycleMatching(3, false)
}

func TestE16EngineEquivalent(t *testing.T) {
	// The kernel and reference gossip engines must produce the same E16
	// report — byte-identical draws make the engine a pure speed knob.
	kernel := E16Protocols(Params{Scale: Quick, Seed: 5, ProtocolEngine: "kernel", Parallelism: 4})
	reference := E16Protocols(Params{Scale: Quick, Seed: 5, ProtocolEngine: "reference"})
	a, err := json.Marshal(kernel)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := json.Marshal(reference)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Byte-identical, notes included: protocolEngine is excluded from
	// the spec content hash, so the cached report bytes must not record
	// which engine ran.
	if string(a) != string(b) {
		t.Fatalf("E16 reports diverge across engines:\n%s\n%s", a, b)
	}
}
