package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/geom"
	"meg/internal/mobility"
	"meg/internal/rng"
	"meg/internal/stats"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E19Uniformity probes the assumption behind the paper's "further
// mobility models" claim: the expansion argument needs a uniform (or
// almost uniform) stationary position distribution. We compare three
// models at identical n, R and speed —
//
//   - random waypoint on the TORUS (uniform stationary: theorems apply),
//   - Gauss–Markov with reflection (≈ uniform: theorems apply),
//   - random waypoint on the SQUARE (center-biased stationary — the
//     textbook example violating the assumption; the paper's Section 5
//     lists such non-homogeneous models as open questions) —
//
// measuring both the stationary occupancy deviation and the flooding
// time. The uniform models must sit in one Θ(√n/R) band; the square RWP
// shows markedly higher non-uniformity — yet its flooding time stays in
// the same band: the center surplus compensates the corner deficit at
// connected-regime radii. The experiment thereby documents that the
// paper's uniformity hypothesis is what the PROOF needs, while the
// Θ(√n/R) behavior itself is robust to moderate non-uniformity (the
// paper's Section 5 lists strongly non-homogeneous models as open).
func E19Uniformity(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 8, 12, 20)

	side := math.Sqrt(float64(n))
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	speed := radius / 2

	rep := &Report{
		ID:    "E19",
		Title: "Uniformity of the stationary distribution: where the theorems' assumption binds",
		Notes: []string{
			"occupancy dev = max |cell share − 1/64| over an 8×8 grid at the stationary start.",
			"RWP-square is the standard counterexample to uniformity (center-biased).",
		},
	}

	type entry struct {
		name    string
		uniform bool
		factory func() core.Dynamics
	}
	entries := []entry{
		{"waypoint (torus, uniform)", true, func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWaypointTorus(n, side, speed/2, speed), radius)
		}},
		{"Gauss-Markov (reflect, ≈uniform)", true, func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewGaussMarkov(n, side, 0.8, speed/2), radius)
		}},
		{"Lévy walkers (torus, uniform)", true, func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewLevyTorus(n, side, 2, speed/4, speed), radius)
		}},
		{"waypoint (square, center-biased)", false, func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWaypointSquare(n, side, speed/2, speed), radius)
		}},
	}

	tbl := table.New("E19 — occupancy deviation and flooding by stationary-distribution shape (n="+itoa64(n)+")",
		"model", "occupancy dev", "rounds mean", "rounds max", "ratio to √n/R")
	x := side / radius
	var uniformRatios []float64
	var uniformDevs []float64
	var biasedDev, biasedRatio float64
	for i, e := range entries {
		// Occupancy deviation at the stationary start.
		devs := sweep.Repeat(trials, rng.SeedFor(p.Seed, 1900+i), p.Workers, func(rep int, r *rng.RNG) float64 {
			d := e.factory().(*mobility.Dynamics)
			d.Reset(r)
			grid := geom.NewCellGrid(side, side/8)
			counts := make([]int, grid.NumCells())
			mob := d.Mobility()
			for u := 0; u < n; u++ {
				counts[grid.CellIndexOf(mob.Position(u))]++
			}
			worst := 0.0
			for _, c := range counts {
				if dev := math.Abs(float64(c)/float64(n) - 1.0/float64(grid.NumCells())); dev > worst {
					worst = dev
				}
			}
			return worst
		})
		dev := stats.Mean(devs)

		camp := flood.Run(e.factory, flood.Options{
			Trials: trials, Seed: rng.SeedFor(p.Seed, 1950+i), Workers: p.Workers, Parallelism: p.Parallelism, Snapshot: p.Snapshot,
			Kernel: p.Kernel,
		})
		ratio := camp.MeanRounds() / x
		if e.uniform {
			uniformRatios = append(uniformRatios, ratio)
			uniformDevs = append(uniformDevs, dev)
		} else {
			biasedDev = dev
			biasedRatio = ratio
		}
		tbl.AddRow(e.name, dev, camp.MeanRounds(), camp.MaxRounds(), ratio)
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("uniform models share one Θ(√n/R) band (spread ≤ 2)",
			stats.RatioSpread(uniformRatios) <= 2,
			"ratio spread %.2f across uniform models", stats.RatioSpread(uniformRatios)),
		boolCheck("RWP-square is markedly less uniform (dev ≥ 2× uniform models)",
			biasedDev >= 2*maxOf(uniformDevs),
			"biased dev %.4f vs uniform max %.4f", biasedDev, maxOf(uniformDevs)),
		boolCheck("Θ(√n/R) behavior robust to the center bias (ratio within the band ±50%)",
			biasedRatio >= 0.5*minOf(uniformRatios) && biasedRatio <= 1.5*maxOf(uniformRatios),
			"biased ratio %.2f vs uniform band [%.2f, %.2f]",
			biasedRatio, minOf(uniformRatios), maxOf(uniformRatios)),
	)
	rep.Metrics = map[string]float64{
		"biased_dev": biasedDev, "biased_ratio": biasedRatio,
		"uniform_ratio_max": maxOf(uniformRatios),
	}
	return rep
}
