package experiments

import (
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/rng"
	"meg/internal/sweep"
	"meg/internal/table"
)

// E15Parsimonious explores the parsimonious-flooding extension (the
// paper's reference [4], Baumann–Crescenzi–Fraigniaud): informed nodes
// transmit only for k rounds after being informed. On a stationary
// edge-MEG in the connected regime, even tiny budgets complete reliably
// and almost as fast as full flooding — the message-complexity savings
// are nearly free — while the number of transmissions drops from
// (rounds × n) to about (k × n). We sweep the budget k and measure
// success rate, completion time, and total transmissions.
func E15Parsimonious(p Params) *Report {
	n := pick(p.Scale, 2048, 4096, 16384)
	trials := pick(p.Scale, 10, 16, 24)

	pHat := 4 * math.Log(float64(n)) / float64(n)
	cfg := edgeConfigFor(n, pHat, 0.5)

	tbl := table.New("E15 — parsimonious flooding on a stationary edge-MEG (n="+itoa64(n)+")",
		"budget k", "success", "rounds mean", "rounds vs full", "transmissions mean", "tx vs full")
	rep := &Report{
		ID:    "E15",
		Title: "Extension [4]: parsimonious flooding — k-round transmission budgets",
		Notes: []string{
			"p̂ = 4 log n/n, q = 1/2. 'transmissions' counts node-rounds spent transmitting;",
			"full flooding spends ≈ rounds×n of them, budget-k at most k×n.",
		},
	}

	type out struct {
		completed bool
		rounds    int
		tx        float64
	}
	run := func(budget int, salt int) (success int, meanRounds, meanTx float64) {
		res := sweep.Repeat(trials, rng.SeedFor(p.Seed, salt), p.Workers, func(rep int, r *rng.RNG) out {
			m := edgemeg.MustNew(cfg)
			m.Reset(r)
			var fr core.FloodResult
			if budget <= 0 {
				fr = core.FloodOpt(m, r.Intn(n), core.DefaultRoundCap(n), p.FloodOptions())
			} else {
				fr = core.FloodParsimonious(m, r.Intn(n), budget, core.DefaultRoundCap(n))
			}
			// Transmissions: each informed node transmits for
			// min(budget, rounds since informed) rounds; integrate over
			// the trajectory. For full flooding the budget is the whole
			// remaining run.
			tx := 0.0
			for t := 0; t+1 < len(fr.Trajectory); t++ {
				active := 0
				if budget <= 0 {
					active = fr.Trajectory[t]
				} else {
					// Nodes informed within the last `budget` rounds.
					tPrev := t - budget
					prev := 0
					if tPrev >= 0 {
						prev = fr.Trajectory[tPrev]
					}
					active = fr.Trajectory[t] - prev
				}
				tx += float64(active)
			}
			return out{fr.Completed, fr.Rounds, tx}
		})
		var rSum, tSum float64
		for _, o := range res {
			if o.completed {
				success++
				rSum += float64(o.rounds)
			}
			tSum += o.tx
		}
		if success > 0 {
			meanRounds = rSum / float64(success)
		} else {
			meanRounds = math.NaN()
		}
		meanTx = tSum / float64(trials)
		return success, meanRounds, meanTx
	}

	fullSuccess, fullRounds, fullTx := run(0, 1500)
	tbl.AddRow("∞ (full)", fullSuccess, fullRounds, 1.0, fullTx, 1.0)

	budgets := []int{1, 2, 4, 8}
	minSuccess := fullSuccess
	worstSlowdown := 1.0
	bestTxSaving := 1.0
	for i, k := range budgets {
		succ, rounds, tx := run(k, 1510+i)
		if succ < minSuccess {
			minSuccess = succ
		}
		slow := rounds / fullRounds
		if slow > worstSlowdown {
			worstSlowdown = slow
		}
		txr := tx / fullTx
		if txr < bestTxSaving {
			bestTxSaving = txr
		}
		tbl.AddRow(k, succ, rounds, slow, tx, txr)
	}

	rep.Tables = append(rep.Tables, tbl)
	rep.Checks = append(rep.Checks,
		boolCheck("every budget completes every trial", minSuccess == trials,
			"min success %d/%d", minSuccess, trials),
		boolCheck("worst slowdown ≤ 2× full flooding", worstSlowdown <= 2,
			"worst rounds ratio %.2f", worstSlowdown),
		boolCheck("budget 1 saves transmissions", bestTxSaving < 1,
			"best tx ratio %.3f", bestTxSaving),
	)
	rep.Metrics = map[string]float64{"worst_slowdown": worstSlowdown, "best_tx_ratio": bestTxSaving}
	return rep
}
