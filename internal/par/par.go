// Package par provides the tiny deterministic fork/join primitives the
// shard-parallel kernels are built from: run a fixed set of shard tasks
// over a bounded pool of goroutines, and split index ranges into
// contiguous blocks.
//
// Determinism contract: callers assign every shard a fixed identity and
// write only to shard-private (or shard-disjoint) state inside the
// parallel region, then combine shard outputs in shard order after Do
// returns. Under that discipline the result is byte-identical for every
// worker count, including 1 — which is how the flooding engine, the
// snapshot builders, and the evolving-graph models keep "parallelism is
// an execution hint, never a semantic" true.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 mean "all CPUs",
// anything else is used as given.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// WorkerPanic is the value Do re-panics with on the calling goroutine
// when a shard panicked on a pool goroutine: the original panic value
// plus the worker's stack, which the hand-off would otherwise lose
// (the re-raise unwinds the caller's stack, not the worker's). Without
// the capture a panic on a bare pool goroutine would kill the whole
// process before any caller-side recover — e.g. megserve's job-worker
// recover — could run.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking worker goroutine's stack trace.
	Stack []byte
}

// String formats the panic for %v consumers (error messages, logs):
// the original value first, the worker stack after.
func (w WorkerPanic) String() string {
	return fmt.Sprintf("%v\nworker stack:\n%s", w.Value, w.Stack)
}

// Do runs fn(shard) for every shard in [0, shards) on at most workers
// goroutines. Shards are claimed dynamically (an atomic cursor), so the
// assignment of shards to goroutines is scheduling-dependent — fn must
// key all its effects on the shard index, never on the executing
// goroutine. With workers <= 1 (or a single shard) Do degrades to a
// plain serial loop with zero goroutine overhead.
//
// A panic inside fn on a pool goroutine is captured (first one wins,
// with the worker's stack), remaining shards are abandoned, and the
// panic is re-raised on the calling goroutine as a WorkerPanic — the
// parallel analogue of the serial loop's natural unwinding.
func Do(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var panicked atomic.Bool
	var panicVal WorkerPanic
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil && panicked.CompareAndSwap(false, true) {
					panicVal = WorkerPanic{Value: p, Stack: debug.Stack()}
				}
			}()
			for !panicked.Load() {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Block returns the half-open range [lo, hi) of the given block when
// [0, n) is split into blocks contiguous, near-equal pieces. Blocks
// cover [0, n) exactly, in order, and differ in size by at most one.
func Block(n, blocks, block int) (lo, hi int) {
	q, r := n/blocks, n%blocks
	lo = block*q + min(block, r)
	hi = lo + q
	if block < r {
		hi++
	}
	return lo, hi
}

// ForBlocks splits [0, n) into one contiguous block per worker and runs
// fn(block, lo, hi) for each on the pool. Writes to disjoint index
// ranges need no synchronization, and combining per-block outputs in
// block order reproduces the serial left-to-right result.
func ForBlocks(workers, n int, fn func(block, lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	Do(workers, workers, func(b int) {
		lo, hi := Block(n, workers, b)
		fn(b, lo, hi)
	})
}
