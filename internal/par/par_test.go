package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, shards := range []int{0, 1, 2, 7, 64} {
			hits := make([]atomic.Int32, shards)
			Do(workers, shards, func(s int) { hits[s].Add(1) })
			for s := range hits {
				if got := hits[s].Load(); got != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, s, got)
				}
			}
		}
	}
}

func TestBlockPartitionsExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1 << 16} {
		for _, blocks := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for b := 0; b < blocks; b++ {
				lo, hi := Block(n, blocks, b)
				if lo != prev {
					t.Fatalf("n=%d blocks=%d: block %d starts at %d, want %d", n, blocks, b, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d blocks=%d: block %d inverted [%d,%d)", n, blocks, b, lo, hi)
				}
				if size := hi - lo; size > n/blocks+1 {
					t.Fatalf("n=%d blocks=%d: block %d oversized (%d)", n, blocks, b, size)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d blocks=%d: blocks cover [0,%d), want [0,%d)", n, blocks, prev, n)
			}
		}
	}
}

func TestForBlocksIsDeterministicAcrossWorkerCounts(t *testing.T) {
	// Each block writes only its own range; concatenation in block order
	// must match the serial left-to-right result for every worker count.
	const n = 1000
	want := make([]int, n)
	ForBlocks(1, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{2, 3, 8} {
		got := make([]int, n)
		ForBlocks(workers, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestDoPropagatesWorkerPanic(t *testing.T) {
	// A panic inside a shard must surface on the calling goroutine as a
	// WorkerPanic carrying the worker's stack — never crash the process.
	defer func() {
		p := recover()
		wp, ok := p.(WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want WorkerPanic", p, p)
		}
		if wp.Value != "shard 3 poisoned" {
			t.Fatalf("panic value %v", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("worker stack missing")
		}
	}()
	Do(4, 64, func(shard int) {
		if shard == 3 {
			panic("shard 3 poisoned")
		}
	})
	t.Fatal("panic swallowed")
}
