package lint

import (
	"go/ast"

	"meg/internal/lint/scope"
)

// RawGo flags bare `go` statements outside internal/par and
// internal/serve.
//
// The determinism discipline channels all simulation parallelism
// through internal/par's fork/join primitives: workers own disjoint
// index blocks, results land in slots keyed by index (never by
// completion order), and per-shard outputs merge in canonical order —
// which is why P1 ≡ P8 holds for every engine. A goroutine launched
// anywhere else bypasses that structure, and history says it ends in
// completion-order-dependent merges. The serving layer is exempt (its
// goroutines never touch simulation state), and a site that genuinely
// needs a raw goroutine — a signal watcher in a main, a worker pool
// that provably keys its outputs by index — can carry a
// `//meg:allow-go <justification>` directive.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid go statements outside internal/par and internal/serve (use the fork/join sharding primitives)",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) error {
	if !scope.InModule(pass.Path) || scope.RawGoAllowed(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.Allowed(gs, "allow-go") {
				return true
			}
			pass.Reportf(gs.Pos(),
				"raw go statement in %s: simulation parallelism must go through internal/par's fork/join (results keyed by index, canonical merges); if this site is provably outside that rule, annotate //meg:allow-go with a justification",
				pass.Path)
			return true
		})
	}
	return nil
}
