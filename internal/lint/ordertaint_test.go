package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

// TestOrderTaintCrossPackage traces the seeded leak across three
// package boundaries: the source (map iteration in ingest) and the
// sink (the determinism-critical edgemeg fixture) are two pass-through
// calls apart, and the finding must land on the outermost call
// argument in driver. The same fixture set carries the negatives:
// sort-cleansed, content-keyed, directive-suppressed, and
// message-index-keyed fan-in variants stay silent.
func TestOrderTaintCrossPackage(t *testing.T) {
	linttest.RunModule(t, lint.OrderTaint,
		"meg/internal/ingest",
		"meg/internal/relay",
		"meg/internal/driver",
		"meg/internal/edgemeg",
	)
}
