package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestWallClock(t *testing.T) {
	// Clock reads inside a simulation package: Now, Since, Sleep all
	// flagged; value types and same-name local functions not.
	linttest.Run(t, lint.WallClock, "meg/internal/graph")
}

func TestWallClockAllowedInServe(t *testing.T) {
	linttest.Run(t, lint.WallClock, "meg/internal/serve")
}

func TestWallClockAllowedInCommands(t *testing.T) {
	linttest.Run(t, lint.WallClock, "meg/cmd/demo")
}
