package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestRawGo(t *testing.T) {
	// Bare goroutines flagged; a justified //meg:allow-go allowed; a
	// reasonless or typoed directive is itself a finding and does not
	// suppress.
	linttest.Run(t, lint.RawGo, "meg/internal/mobility")
}

func TestRawGoAllowedInPar(t *testing.T) {
	// internal/par owns the fork/join implementation: its goroutines
	// are the primitive, not a bypass of it.
	linttest.Run(t, lint.RawGo, "meg/internal/par")
}
