package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

// TestStaleDirective audits the fixture's directive inventory: the
// order-insensitive justification still covering a live map range
// survives, while the one orphaned by a map→slice refactor and the
// allow-go whose goroutine was deleted are both reported. The audit is
// self-contained — staledirective re-runs the suppressible analyzers
// itself — so running it alone exercises the full usage tracking.
func TestStaleDirective(t *testing.T) {
	linttest.Run(t, lint.StaleDirective, "meg/internal/celldelta")
}
