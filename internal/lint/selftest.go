package lint

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// selfTestCase pins one analyzer's exact finding count over its
// fixture corpus. The counts are load-bearing: a framework regression
// that silently drops findings (or a fixture edit that adds one)
// changes a count and fails the self-test, independently of the
// want-comment harness that go test runs. CI executes `meglint
// -selftest` with the same binary that gates the tree, so "the gate
// still sees what it is supposed to see" is itself gated.
type selfTestCase struct {
	analyzer string
	pkgs     []string
	want     int
}

// selfTests is the corpus: every analyzer appears at least once with a
// firing fixture and (where one exists) a silent one.
var selfTests = []selfTestCase{
	{"mapiter", []string{"meg/internal/core"}, 3},
	{"mapiter", []string{"meg/internal/stats"}, 0},
	{"rngdiscipline", []string{"meg/internal/protocol"}, 6},
	{"rngdiscipline", []string{"meg/internal/stats"}, 0},
	{"wallclock", []string{"meg/internal/graph"}, 3},
	{"wallclock", []string{"meg/internal/serve"}, 0},
	{"wallclock", []string{"meg/cmd/demo"}, 0},
	{"rawgo", []string{"meg/internal/mobility"}, 5},
	{"rawgo", []string{"meg/internal/par"}, 0},
	{"hashhints", []string{"hashspec_clean"}, 0},
	{"hashhints", []string{"hashspec_drift"}, 3},
	{"metricshooks", []string{"meg/internal/expansion"}, 5},
	{"metricshooks", []string{"meg/internal/serve"}, 0},
	{"ordertaint", []string{"meg/internal/ingest", "meg/internal/relay", "meg/internal/driver", "meg/internal/edgemeg"}, 3},
	{"shardwrite", []string{"meg/internal/walk"}, 3},
	{"staledirective", []string{"meg/internal/celldelta"}, 2},
}

// SelfTest runs the fixture corpus under internal/lint/testdata/src of
// the module rooted at moduleRoot and verifies every analyzer's exact
// finding count, writing one line per case to w. It returns an error
// describing the first few mismatches, or nil when the corpus checks
// out.
func SelfTest(w io.Writer, moduleRoot string) error {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}

	loader, err := NewLoader(moduleRoot)
	if err != nil {
		return err
	}
	loader.TestSrc = filepath.Join(moduleRoot, "internal", "lint", "testdata", "src")

	var bad []string
	for _, c := range selfTests {
		a, ok := byName[c.analyzer]
		if !ok {
			return fmt.Errorf("selftest: unknown analyzer %q", c.analyzer)
		}
		var pkgs []*Package
		for _, path := range c.pkgs {
			dir := filepath.Join(loader.TestSrc, filepath.FromSlash(path))
			pkg, err := loader.Load(path, dir)
			if err != nil {
				return fmt.Errorf("selftest: load %s: %w", path, err)
			}
			for _, terr := range pkg.TypeErrors {
				bad = append(bad, fmt.Sprintf("%s: fixture does not type-check: %v", path, terr))
			}
			pkgs = append(pkgs, pkg)
		}
		diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
		if err != nil {
			return fmt.Errorf("selftest: %s: %w", c.analyzer, err)
		}
		status := "ok"
		if len(diags) != c.want {
			status = "MISMATCH"
			bad = append(bad, fmt.Sprintf("%s over %v: %d finding(s), want %d", c.analyzer, c.pkgs, len(diags), c.want))
		}
		fmt.Fprintf(w, "%-14s %-60s %d finding(s), want %d: %s\n", c.analyzer, strings.Join(c.pkgs, ","), len(diags), c.want, status)
	}
	if len(bad) > 0 {
		return fmt.Errorf("selftest: %d case(s) failed:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
