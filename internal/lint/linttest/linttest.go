// Package linttest is the fixture harness for the meglint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library: fixture packages live under testdata/src/<path>,
// expected findings are written as comments in the fixture source, and
// Run checks the analyzer's actual diagnostics against them exactly —
// a missing finding and a surplus finding both fail.
//
// Expectations:
//
//	code() // want "regexp"
//	code() // want "first" "second"     (two findings on this line)
//	//meg:directive // want:-1 "regexp" (finding on the previous line)
//
// Each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on the comment's line
// (shifted by the optional :±N offset — needed when the diagnostic
// lands on a line that is itself a directive comment).
//
// Fixture import paths resolve against testdata/src first and the real
// module second, so a fixture can pose as a determinism-critical
// package (testdata/src/meg/internal/core) while importing the real
// meg/internal/rng.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"meg/internal/lint"
)

// wantRE matches one expectation comment: the keyword, an optional
// line offset, and one or more quoted regexps (double- or
// backtick-quoted, the latter sparing regexp escapes).
var wantRE = regexp.MustCompile("want(:[+-]?\\d+)?((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

// quotedRE extracts the individual quoted regexps.
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one unmet want.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture package at testdata/src/<path> (testdata
// relative to the calling test's package directory), applies the
// analyzer, and reports every mismatch between actual diagnostics and
// want comments as test errors.
func Run(t *testing.T, a *lint.Analyzer, path string) {
	t.Helper()
	RunModule(t, a, path)
}

// RunModule is Run for a multi-package fixture module: every listed
// package is loaded (imports resolve against testdata/src first, so
// the packages can import each other and shadow real module packages),
// the analyzer runs over the whole set — which is what a module-level
// analyzer like ordertaint needs to trace a taint path spanning
// packages — and want comments are honored across all listed
// packages' files.
func RunModule(t *testing.T, a *lint.Analyzer, paths ...string) {
	t.Helper()
	loader := NewTestLoader(t)

	var pkgs []*lint.Package
	var wants []*expectation
	for _, path := range paths {
		dir := filepath.Join(loader.TestSrc, filepath.FromSlash(path))
		pkg, err := loader.Load(path, dir)
		if err != nil {
			t.Fatalf("linttest: load %s: %v", path, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("linttest: %s: fixture does not type-check: %v", path, terr)
		}
		pkgs = append(pkgs, pkg)
		wants = append(wants, collectWants(t, pkg)...)
	}

	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range diags {
		if matchWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// NewTestLoader returns a loader rooted at the enclosing module with
// TestSrc pointed at the calling test's testdata/src directory — the
// setup shared by the want-comment harness and the loader's own
// pathological-input tests.
func NewTestLoader(t *testing.T) *lint.Loader {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleRoot := cwd
	for {
		if _, err := os.Stat(filepath.Join(moduleRoot, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(moduleRoot)
		if parent == moduleRoot {
			t.Fatalf("linttest: no go.mod above %s", cwd)
		}
		moduleRoot = parent
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader.TestSrc = filepath.Join(cwd, "testdata", "src")
	return loader
}

// collectWants scans every comment of the fixture for expectations.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					offset := 0
					if m[1] != "" {
						n, err := strconv.Atoi(strings.TrimPrefix(m[1], ":"))
						if err != nil {
							t.Fatalf("linttest: bad want offset %q", m[1])
						}
						offset = n
					}
					for _, q := range quotedRE.FindAllStringSubmatch(m[2], -1) {
						pat := q[1]
						if q[2] != "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename,
							line: pos.Line + offset,
							re:   re,
						})
					}
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unmet expectation matching the
// diagnostic, reporting whether one existed.
func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: it dumps the diagnostics a fixture
// produces, want-comment-formatted, for bootstrapping new fixtures.
func Fprint(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Message)
	}
	return b.String()
}
