package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects the type checker's complaints. Analysis over
	// a broken package is untrustworthy, so meglint reports these and
	// fails instead of running analyzers in the dark; the analyzers
	// themselves still run (their syntactic checks survive most type
	// errors).
	TypeErrors []error
}

// A Loader parses and type-checks packages of this module from source.
//
// Imports resolve in three tiers: a test-source root (analysistest
// fixtures), the module tree (by import path under the module prefix),
// and the standard library via go/importer's source-based importer —
// which type-checks GOROOT source directly, so no pre-compiled export
// data and no network are ever needed. Loaded packages are cached per
// Loader; one Loader must not be shared between goroutines.
type Loader struct {
	// ModulePath and ModuleRoot identify the module ("meg", its root
	// directory).
	ModulePath string
	ModuleRoot string
	// TestSrc, when non-empty, is a GOPATH-style src root consulted
	// before the module tree: TestSrc/<import-path> holds the package
	// source. The analysistest harness points it at a testdata/src
	// directory so fixture packages can shadow real ones (a stub
	// meg/internal/rng, a determinism-critical fake package).
	TestSrc string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	// depth tracks Load re-entrancy (imports load recursively through
	// ImportFrom); cycleErr latches an import cycle detected anywhere in
	// the recursion so the outermost Load can fail hard instead of
	// letting the type checker downgrade the importer error into a
	// TypeErrors entry.
	depth    int
	cycleErr error
}

// NewLoader returns a loader for the module rooted at dir (located by
// its go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModulePath: modPath,
		ModuleRoot: root,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
	}, nil
}

// inProgress marks an import cycle in the package cache.
var inProgress = &Package{}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module (and test-source)
// packages load from source through the Loader, everything else
// delegates to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == inProgress {
			err := fmt.Errorf("lint: import cycle through %s", path)
			if l.cycleErr == nil {
				l.cycleErr = err
			}
			return nil, err
		}
		return p.Types, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.Load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// dirFor resolves an import path to a source directory: the test
// source root first, then the module tree.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.TestSrc != "" {
		dir := filepath.Join(l.TestSrc, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), true
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package at dir under the given
// import path. Test files are excluded — the determinism discipline
// binds shipped code, and golden tests pin fixed seeds by design.
func (l *Loader) Load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == inProgress {
			err := fmt.Errorf("lint: import cycle through %s", path)
			if l.cycleErr == nil {
				l.cycleErr = err
			}
			return nil, err
		}
		return p, nil
	}
	l.depth++
	defer func() { l.depth-- }()
	l.pkgs[path] = inProgress
	defer func() {
		if l.pkgs[path] == inProgress {
			delete(l.pkgs, path)
		}
	}()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors;
	// the errors ride along in TypeErrors for the caller to judge.
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	// A cycle anywhere under this load poisons the whole graph: the
	// type checker swallowed the importer error, so re-raise it at the
	// outermost Load rather than hand back a half-checked package.
	if l.depth == 1 && l.cycleErr != nil {
		err := l.cycleErr
		l.cycleErr = nil
		return nil, err
	}
	return pkg, nil
}

// LoadAll walks the module tree and loads every package — the meglint
// equivalent of ./... . Directories named testdata, hidden
// directories, and fileless directories are skipped, matching the go
// tool's pattern rules.
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(path, p)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	return pkgs, err
}
