package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"meg/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{{
		Analyzer: "ordertaint",
		Pos:      token.Position{Filename: "/mod/internal/serve/scheduler.go", Line: 42, Column: 7},
		Message:  "value ordered by map iteration order reaches determinism sink",
	}}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
	if got[0].File != "internal/serve/scheduler.go" {
		t.Errorf("file = %q, want module-relative path", got[0].File)
	}
	if got[0].Analyzer != "ordertaint" || got[0].Line != 42 || got[0].Column != 7 {
		t.Errorf("unexpected entry %+v", got[0])
	}

	// No findings must still be a valid (empty) array, not null.
	buf.Reset()
	if err := lint.WriteJSON(&buf, nil, "/mod"); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty run = %q, want []", s)
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "meglint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// The rule catalog documents every analyzer that ran, firing or not.
	if len(run.Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("rules = %d, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(lint.All()))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "ordertaint" || res.Level != "error" {
		t.Errorf("result = %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/serve/scheduler.go" {
		t.Errorf("uri = %q, want slash-separated module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("startLine = %d, want 42", loc.Region.StartLine)
	}
}
