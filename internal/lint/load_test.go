package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"meg/internal/lint/linttest"
)

// TestLoadImportCycle feeds the loader a deliberate two-package import
// cycle: it must surface a diagnosable error instead of recursing.
func TestLoadImportCycle(t *testing.T) {
	loader := linttest.NewTestLoader(t)
	dir := filepath.Join(loader.TestSrc, "cycle", "a")
	_, err := loader.Load("cycle/a", dir)
	if err == nil {
		t.Fatal("loading a cyclic package succeeded; want an import-cycle error")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("cycle error = %q; want it to name the import cycle", err)
	}
}

// TestLoadStdlibShadow pins the resolution order: testdata/src is
// consulted before the stdlib source importer for every import path,
// so a fixture posing as hash/maphash shadows the real package. The
// consumer only type-checks against the shadow (it calls a symbol the
// real package does not have).
func TestLoadStdlibShadow(t *testing.T) {
	loader := linttest.NewTestLoader(t)
	dir := filepath.Join(loader.TestSrc, "shadowuser")
	pkg, err := loader.Load("shadowuser", dir)
	if err != nil {
		t.Fatalf("load shadowuser: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("shadowuser should type-check against the fixture shadow: %v", terr)
	}
}
