package lint

import "sort"

// StaleDirective audits the escape hatches. Every justification
// directive (//meg:order-insensitive, //meg:allow-go, //meg:shard-safe)
// exists to suppress one specific finding; when a refactor moves or
// deletes the flagged code, the orphaned directive keeps advertising an
// exemption that no longer corresponds to anything — and the next
// person to paste code under it inherits an unexamined suppression.
//
// The analyzer re-runs every suppressible analyzer over the whole
// module with usage tracking: a directive that is consulted and
// matched by at least one of them (i.e. it still suppresses a live
// finding, or still marks a live map/channel iteration for the taint
// engine) is earning its keep; one that no analyzer touches is
// reported. The audit is self-contained — running meglint with
// -only staledirective performs the full re-check internally — so the
// directive inventory cannot rot even in partial runs.
var StaleDirective = &Analyzer{
	Name:      "staledirective",
	Doc:       "report justification directives that no longer suppress any finding",
	RunModule: runStaleDirective,
}

// suppressibleAnalyzers returns the analyzers that consult directives,
// paired with nothing else: staledirective re-runs exactly these.
// (rngdiscipline, wallclock, hashhints, and metricshooks have no
// escape hatch by design.)
func suppressibleAnalyzers() []*Analyzer {
	return []*Analyzer{MapIter, RawGo, ShardWrite, OrderTaint}
}

func runStaleDirective(mp *ModulePass) error {
	used := map[*directive]bool{}
	mark := func(d *directive) { used[d] = true }
	discard := func(Diagnostic) {}

	for _, a := range suppressibleAnalyzers() {
		if a.Run != nil {
			for _, pkg := range mp.Packages {
				pass := &Pass{
					Analyzer:   a,
					Fset:       pkg.Fset,
					Files:      pkg.Files,
					Path:       pkg.Path,
					Pkg:        pkg.Types,
					TypesInfo:  pkg.Info,
					directives: mp.directives,
					report:     discard,
					onUse:      mark,
				}
				if err := a.Run(pass); err != nil {
					return err
				}
			}
		}
		if a.RunModule != nil {
			sub := &ModulePass{
				Analyzer:   a,
				Fset:       mp.Fset,
				Packages:   mp.Packages,
				directives: mp.directives,
				report:     discard,
				onUse:      mark,
			}
			if err := a.RunModule(sub); err != nil {
				return err
			}
		}
	}

	// Report the survivors in deterministic position order. Bare and
	// unknown directives are already findings of the directive parser;
	// the audit covers only well-formed ones.
	var stale []*directive
	for _, byLine := range mp.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				if knownDirectives[d.name] && d.reason != "" && !used[d] {
					stale = append(stale, d)
				}
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].pos < stale[j].pos })
	for _, d := range stale {
		mp.Reportf(d.pos,
			"stale directive %s%s: no analyzer finding remains at this site — the code it justified moved or was fixed; delete the directive (reason was: %q)",
			directivePrefix, d.name, d.reason)
	}
	return nil
}
