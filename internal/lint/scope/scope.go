// Package scope is the single shared classification table behind the
// meglint analyzers: which packages of this module carry the
// determinism discipline, which are measurement/serving harnesses, and
// which binaries sit outside the simulation core entirely. Every
// analyzer consults this table instead of hard-coding package lists,
// so adding a new model package to the discipline is a one-line change
// here — not five scattered edits.
//
// The discipline (PRs 3–5) is: simulation results must be
// byte-identical for every worker count and snapshot mode, because all
// randomness is drawn from counter-based streams keyed (node, round)
// and all edge/frontier traversal is canonically ordered. The
// classification encodes which packages that promise binds.
package scope

import "strings"

// ModulePath is the import-path prefix of this module.
const ModulePath = "meg"

// deterministic lists the determinism-critical packages: the
// simulation core whose outputs feed checksummed, cached,
// byte-identical results. Map iteration order, non-counter-based
// randomness, wall-clock reads, and raw goroutines are all forbidden
// here (see the mapiter, rngdiscipline, wallclock, and rawgo
// analyzers).
var deterministic = map[string]bool{
	ModulePath + "/internal/core":      true,
	ModulePath + "/internal/graph":     true,
	ModulePath + "/internal/edgemeg":   true,
	ModulePath + "/internal/geommeg":   true,
	ModulePath + "/internal/mobility":  true,
	ModulePath + "/internal/protocol":  true,
	ModulePath + "/internal/celldelta": true,
	ModulePath + "/internal/walk":      true,
	ModulePath + "/internal/expansion": true,
}

// wallClockAllowed lists the packages that may legitimately read the
// wall clock: the serving layer (timeouts, SSE heartbeats) and the
// bench harness (that is what it measures). Command binaries
// (cmd/*, examples/*) are additionally allowed by WallClockAllowed
// itself.
var wallClockAllowed = map[string]bool{
	ModulePath + "/internal/serve": true,
	ModulePath + "/internal/bench": true,
	// The metrics registry is the blessed wall-clock boundary of the
	// observability layer: deterministic packages never read the clock
	// themselves — they call nil-guarded PhaseHook methods, and the
	// injected metrics.Clock does the timing out here.
	ModulePath + "/internal/metrics": true,
	// The load generator measures wall-clock latency percentiles and
	// throughput against a live megserve — wall time is its output, the
	// same way it is the bench harness's.
	ModulePath + "/internal/loadgen": true,
}

// rawGoAllowed lists the packages that may launch goroutines with a
// bare `go` statement: internal/par owns the deterministic fork/join
// sharding primitive every engine is required to use, and
// internal/serve is the concurrent serving layer (scheduler workers,
// SSE fan-out) whose goroutines never touch simulation state.
// Elsewhere a goroutine needs a `//meg:allow-go` justification.
// The load generator is deliberately NOT here even though its product
// is concurrency: each of its goroutine launches carries its own
// //meg:allow-go justification instead. A package-level blessing would
// leave those directives permanently unconsulted (the staledirective
// analyzer would flag every one), and per-site justifications are the
// better contract for a package where each goroutine's relationship to
// simulation state deserves its own sentence.
var rawGoAllowed = map[string]bool{
	ModulePath + "/internal/par":   true,
	ModulePath + "/internal/serve": true,
}

// Deterministic reports whether the package at path carries the full
// determinism discipline (mapiter and rngdiscipline apply).
func Deterministic(path string) bool { return deterministic[path] }

// WallClockAllowed reports whether the package at path may call
// time.Now/time.Since: the serving and bench harnesses, plus any
// command binary (cmd/*, examples/*) — binaries report durations to
// humans, they do not produce checksummed results.
func WallClockAllowed(path string) bool {
	return wallClockAllowed[path] || Binary(path)
}

// RawGoAllowed reports whether the package at path may contain bare
// `go` statements without a justification directive.
func RawGoAllowed(path string) bool { return rawGoAllowed[path] }

// Class names the coarse role a module package plays in the
// determinism discipline, for tooling and reports:
//
//	"deterministic" — simulation core, full discipline applies;
//	"binary"        — command or example entry point;
//	"harness"       — measurement/serving layer with at least one
//	                  blanket exemption (wall clock or raw goroutines);
//	"library"       — everything else in the module: no blanket
//	                  exemptions, but not checksum-bearing either
//	                  (analyzers still apply their per-site rules);
//	"external"      — not part of this module.
func Class(path string) string {
	switch {
	case !InModule(path):
		return "external"
	case deterministic[path]:
		return "deterministic"
	case Binary(path):
		return "binary"
	case wallClockAllowed[path] || rawGoAllowed[path]:
		return "harness"
	default:
		return "library"
	}
}

// Binary reports whether path is a command or example binary package.
func Binary(path string) bool {
	return strings.HasPrefix(path, ModulePath+"/cmd/") ||
		strings.HasPrefix(path, ModulePath+"/examples/")
}

// InModule reports whether path belongs to this module. Analyzers are
// silent outside it (the loader never feeds them stdlib packages, but
// the guard keeps the contract explicit).
func InModule(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// RNGPath is the one blessed randomness package. rngdiscipline forbids
// every other source of randomness in deterministic packages.
const RNGPath = ModulePath + "/internal/rng"

// ForbiddenRandImports are the randomness packages that must never be
// imported by a deterministic package: their generators are either
// seeded from global state or non-reproducible by construction, and
// either way they are not keyed (node, round).
var ForbiddenRandImports = map[string]string{
	"math/rand":    "global-state PRNG, not counter-keyed",
	"math/rand/v2": "global-state PRNG, not counter-keyed",
	"crypto/rand":  "non-reproducible entropy source",
}
