package scope

import "testing"

func TestClassification(t *testing.T) {
	cases := []struct {
		path                            string
		deterministic, wallClock, rawGo bool
	}{
		{"meg/internal/core", true, false, false},
		{"meg/internal/celldelta", true, false, false},
		{"meg/internal/expansion", true, false, false},
		{"meg/internal/serve", false, true, true},
		{"meg/internal/bench", false, true, false},
		{"meg/internal/metrics", false, true, false},
		{"meg/internal/par", false, false, true},
		{"meg/internal/sweep", false, false, false},
		{"meg/internal/rng", false, false, false},
		{"meg/cmd/megbench", false, true, false},
		{"meg/examples/quickstart", false, true, false},
		{"meg", false, false, false},
	}
	for _, c := range cases {
		if got := Deterministic(c.path); got != c.deterministic {
			t.Errorf("Deterministic(%s) = %v, want %v", c.path, got, c.deterministic)
		}
		if got := WallClockAllowed(c.path); got != c.wallClock {
			t.Errorf("WallClockAllowed(%s) = %v, want %v", c.path, got, c.wallClock)
		}
		if got := RawGoAllowed(c.path); got != c.rawGo {
			t.Errorf("RawGoAllowed(%s) = %v, want %v", c.path, got, c.rawGo)
		}
	}
}

func TestInModule(t *testing.T) {
	for path, want := range map[string]bool{
		"meg":                 true,
		"meg/internal/core":   true,
		"megother":            false,
		"fmt":                 false,
		"golang.org/x/tools":  false,
		"meg/internal/lint":   true,
		"meg/cmd/meglint":     true,
		"meg/examples/broken": true,
	} {
		if got := InModule(path); got != want {
			t.Errorf("InModule(%s) = %v, want %v", path, got, want)
		}
	}
}
