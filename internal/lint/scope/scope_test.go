package scope

import "testing"

func TestClassification(t *testing.T) {
	cases := []struct {
		path                            string
		deterministic, wallClock, rawGo bool
		class                           string
	}{
		{"meg/internal/core", true, false, false, "deterministic"},
		{"meg/internal/celldelta", true, false, false, "deterministic"},
		{"meg/internal/expansion", true, false, false, "deterministic"},
		{"meg/internal/serve", false, true, true, "harness"},
		{"meg/internal/bench", false, true, false, "harness"},
		// The metrics registry is the blessed wall-clock boundary of the
		// observability layer: wall clock yes, raw goroutines no.
		{"meg/internal/metrics", false, true, false, "harness"},
		// The load generator measures wall time by design, but its
		// goroutines each carry a per-site //meg:allow-go — no blanket
		// rawgo blessing, or those directives would all be stale.
		{"meg/internal/loadgen", false, true, false, "harness"},
		{"meg/internal/par", false, false, true, "harness"},
		{"meg/internal/sweep", false, false, false, "library"},
		{"meg/internal/rng", false, false, false, "library"},
		{"meg/internal/lint", false, false, false, "library"},
		{"meg/cmd/megbench", false, true, false, "binary"},
		{"meg/cmd/megload", false, true, false, "binary"},
		{"meg/examples/quickstart", false, true, false, "binary"},
		{"meg", false, false, false, "library"},
		{"fmt", false, false, false, "external"},
	}
	for _, c := range cases {
		if got := Deterministic(c.path); got != c.deterministic {
			t.Errorf("Deterministic(%s) = %v, want %v", c.path, got, c.deterministic)
		}
		if got := WallClockAllowed(c.path); got != c.wallClock {
			t.Errorf("WallClockAllowed(%s) = %v, want %v", c.path, got, c.wallClock)
		}
		if got := RawGoAllowed(c.path); got != c.rawGo {
			t.Errorf("RawGoAllowed(%s) = %v, want %v", c.path, got, c.rawGo)
		}
		if got := Class(c.path); got != c.class {
			t.Errorf("Class(%s) = %q, want %q", c.path, got, c.class)
		}
	}
}

func TestInModule(t *testing.T) {
	for path, want := range map[string]bool{
		"meg":                 true,
		"meg/internal/core":   true,
		"megother":            false,
		"fmt":                 false,
		"golang.org/x/tools":  false,
		"meg/internal/lint":   true,
		"meg/cmd/meglint":     true,
		"meg/examples/broken": true,
	} {
		if got := InModule(path); got != want {
			t.Errorf("InModule(%s) = %v, want %v", path, got, want)
		}
	}
}
