package lint

import (
	"go/token"

	"meg/internal/lint/callgraph"
	"meg/internal/lint/scope"
	"meg/internal/lint/taint"
)

// OrderTaint is the interprocedural order-taint analyzer: it builds
// the module-local call graph, runs the forward taint lattice of
// internal/lint/taint over it, and reports every place a value whose
// ORDER is runtime-dependent (map iteration, sync.Map.Range, channel
// fan-in) reaches a determinism sink — a call into one of the nine
// determinism-critical packages, RNG seeding, spec content hashing, or
// a bench checksum.
//
// The per-package mapiter analyzer forbids the source pattern inside
// the critical packages themselves; ordertaint closes the remaining
// hole, where the source lives in a harness package (serve, loadgen,
// experiments, ...) and the tainted value only becomes a determinism
// bug after crossing one or more call boundaries. Taint is cleansed by
// sort.*/slices.Sort* and by content-keyed placement (out[k] = v
// inside the iteration); a site that is genuinely order-insensitive
// can carry //meg:order-insensitive on the source range or the sink
// argument line.
var OrderTaint = &Analyzer{
	Name:      "ordertaint",
	Doc:       "trace runtime-ordered values (map/sync.Map/channel-fan-in order) across calls into determinism sinks",
	RunModule: runOrderTaint,
}

// taintSinkPkgs names the sink packages beyond the deterministic set:
// handing a runtime-ordered sequence to any of these commits its order
// to a reproducibility-bearing artifact.
var taintSinkPkgs = map[string]string{
	scope.RNGPath:                        "RNG seeding",
	scope.ModulePath + "/internal/spec":  "spec content hashing",
	scope.ModulePath + "/internal/bench": "bench result checksums",
}

func runOrderTaint(mp *ModulePass) error {
	findings := taint.Run(buildCallGraph(mp.Packages), taint.Config{
		DeterministicPkg: scope.Deterministic,
		SinkPkgs:         taintSinkPkgs,
		Suppressed: func(pos token.Pos) bool {
			return mp.AllowedAt(pos, "order-insensitive")
		},
	})
	for _, f := range findings {
		mp.Reportf(f.Pos,
			"value ordered by %s (source at %s) reaches determinism sink %s: the realization would differ run to run; sort it first, key placement by content, or annotate //meg:order-insensitive with a justification",
			f.Source.Kind, mp.Fset.Position(f.Source.Pos), f.Sink)
	}
	return nil
}

// buildCallGraph adapts the loaded packages for the callgraph builder.
func buildCallGraph(pkgs []*Package) *callgraph.Graph {
	in := make([]callgraph.Package, 0, len(pkgs))
	for _, p := range pkgs {
		in = append(in, callgraph.Package{Path: p.Path, Files: p.Files, Info: p.Info})
	}
	return callgraph.Build(in)
}
