package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

// TestShardWrite checks the seeded races (captured scalar accumulation
// and shard-independent indexed placement under par.Do) are flagged
// while the blessed shapes — block-indexed writes, transitive shard
// derivation, per-shard slots with post-join merge, closure-local
// aliases, and //meg:shard-safe sites — stay silent. The fixture par
// package mirrors the real par signatures, so the call sites
// type-check exactly like production code.
func TestShardWrite(t *testing.T) {
	linttest.Run(t, lint.ShardWrite, "meg/internal/walk")
}
