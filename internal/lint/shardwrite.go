package lint

import (
	"go/ast"
	"go/types"

	"meg/internal/lint/scope"
)

// ShardWrite statically sketches what `go test -race` finds
// dynamically: inside a closure passed to par.Do or par.ForBlocks,
// every write to a variable captured from the enclosing function must
// be keyed by the closure's shard parameters. Shards run concurrently;
// a captured write whose target slot does not depend on the shard
// identity is either a cross-shard data race (two shards hitting the
// same memory) or a completion-order dependence (last writer wins) —
// both break the P1 ≡ P8 byte-identity promise, and both have
// historically been found only when a race run got lucky.
//
// The blessed shapes, which the analyzer accepts:
//
//   - indexed placement through a shard-derived index: out[shard] = v,
//     buf[i] = v where i walks [lo, hi), words[wi] |= m with wi derived
//     from the block bounds — the write target is a pure function of
//     the shard identity;
//   - writes to closure-local variables (declared inside the closure),
//     including locals aliasing shard-indexed state (f := frontiers[shard]);
//   - everything outside the closure: the serial merge phase after the
//     join owns all captured state again.
//
// A captured write that is provably safe for another reason (a
// sync/atomic value, a write the caller serializes) can carry
// //meg:shard-safe <justification> on its line or the line above.
// Method calls are outside the sketch: mutation through a method
// (atomic.Bool.Store, append via a helper) is not flagged — the
// analyzer under-approximates rather than drowning real findings.
var ShardWrite = &Analyzer{
	Name: "shardwrite",
	Doc:  "flag writes to captured variables in par.Do/par.ForBlocks closures that are not keyed by the shard parameters",
	Run:  runShardWrite,
}

func runShardWrite(pass *Pass) error {
	if !scope.InModule(pass.Path) || pass.Path == scope.ModulePath+"/internal/par" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit, ok := parClosureOf(pass, call)
			if !ok {
				return true
			}
			checkShardClosure(pass, lit)
			return true
		})
	}
	return nil
}

// parClosureOf returns the function literal passed as the worker of a
// par.Do / par.ForBlocks call, when call is one.
func parClosureOf(pass *Pass, call *ast.CallExpr) (*ast.FuncLit, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != scope.ModulePath+"/internal/par" {
		return nil, false
	}
	switch obj.Name() {
	case "Do", "ForBlocks":
	default:
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return lit, ok
}

// checkShardClosure analyzes one worker closure.
func checkShardClosure(pass *Pass, lit *ast.FuncLit) {
	// The shard-derived set starts as the closure's parameters (shard
	// for Do; block, lo, hi for ForBlocks) and grows transitively
	// through local assignments: i := lo, base := wi*64, v := base+b.
	derived := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				derived[obj] = true
			}
		}
	}
	// Fixpoint over the closure body: an assignment whose RHS mentions
	// a derived value makes its LHS locals derived; likewise range
	// statements over derived sequences and IncDec on derived vars
	// keep them derived (no-op). Two passes close chains written
	// before their dependency textually (rare in practice).
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, l := range s.Lhs {
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					obj := objOf(pass, id)
					if obj == nil || !declaredWithin(obj, lit) {
						continue
					}
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs != nil && mentionsDerived(pass, rhs, derived) {
						derived[obj] = true
					}
				}
			case *ast.RangeStmt:
				// for i := range sliceAliasOfShardState, and
				// for i, v := range s[lo:hi]: both keys and values are
				// shard-derived when the ranged expression is.
				if mentionsDerived(pass, s.X, derived) {
					for _, kv := range []ast.Expr{s.Key, s.Value} {
						if kv == nil {
							continue
						}
						if id, ok := ast.Unparen(kv).(*ast.Ident); ok {
							if obj := objOf(pass, id); obj != nil {
								derived[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested closures are not the shard worker
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				checkWrite(pass, lit, l, derived)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, s.X, derived)
		}
		return true
	})
}

// checkWrite flags one assignment target when it writes captured state
// without shard keying.
func checkWrite(pass *Pass, lit *ast.FuncLit, target ast.Expr, derived map[types.Object]bool) {
	target = ast.Unparen(target)
	root, indexed := writeRoot(pass, target)
	if root == nil || declaredWithin(root, lit) {
		return // closure-local (or unresolvable): not a captured write
	}
	if _, isVar := root.(*types.Var); !isVar {
		return
	}
	if indexed != nil && mentionsDerived(pass, indexed, derived) {
		return // slot is a function of the shard identity
	}
	if pass.Allowed(target, "shard-safe") {
		return
	}
	what := "write to captured variable"
	if indexed != nil {
		what = "write to captured variable at a shard-independent index"
	}
	pass.Reportf(target.Pos(),
		"%s %q inside a par closure: shards run concurrently, so the target slot must be keyed by the shard parameters (out[shard], buf[i] for i in [lo,hi)) or the write moved to the post-join merge; if provably safe, annotate //meg:shard-safe with a justification",
		what, root.Name())
}

// writeRoot resolves the base variable of a write target and, for
// indexed targets, the index expression that selects the slot. For
// x[i] it returns (x's object, i); for x.f[i] it returns the root of
// x with index i; for plain x or x.f it returns (root, nil).
func writeRoot(pass *Pass, target ast.Expr) (types.Object, ast.Expr) {
	var index ast.Expr
	for {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return nil, nil
			}
			return objOf(pass, t), index
		case *ast.IndexExpr:
			if index == nil {
				index = t.Index
			}
			target = t.X
		case *ast.SelectorExpr:
			if _, ok := pass.TypesInfo.Selections[t]; !ok {
				// Package-qualified variable.
				return pass.TypesInfo.Uses[t.Sel], index
			}
			target = t.X
		case *ast.StarExpr:
			target = t.X
		case *ast.SliceExpr:
			if index == nil && t.Low != nil {
				index = t.Low
			}
			target = t.X
		default:
			return nil, nil
		}
	}
}

// objOf resolves an identifier's object, definition or use.
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside the
// closure's syntax — closure-local state is shard-private by
// construction.
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// mentionsDerived reports whether expr mentions any shard-derived
// object.
func mentionsDerived(pass *Pass, expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil && derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
