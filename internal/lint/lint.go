// Package lint implements meglint, the static-analysis suite that
// enforces this repository's determinism discipline at compile time.
//
// Every result the simulators produce is promised to be byte-identical
// for any worker count and any snapshot mode (PRs 3–5). That promise
// is enforced dynamically by the P1≡P8 equivalence tests and the bench
// checksum gates — but those fire only after a violation has corrupted
// a run. The analyzers here catch the known bug classes statically,
// before a single trial executes:
//
//   - mapiter: `range` over a map in a determinism-critical package
//     (iteration order is randomized by the runtime);
//   - rngdiscipline: randomness from anywhere but internal/rng, and
//     rng streams seeded by compile-time constants instead of the
//     trial seed;
//   - wallclock: time.Now/time.Since inside simulation packages;
//   - rawgo: bare `go` statements outside the par fork/join and the
//     serving layer;
//   - hashhints: drift between the spec schema and its content-hash
//     view (execution hints leaking into the hash, hashed fields that
//     would not survive canonical re-parse);
//   - metricshooks: core.PhaseHook method calls in determinism-critical
//     packages that are not nil-guarded (hooks are observation-only and
//     nil by default; an unguarded call is a latent panic and a tax on
//     the hookless path);
//   - ordertaint: interprocedural order-taint dataflow — values whose
//     order derives from map iteration, sync.Map.Range, or goroutine
//     completion order, tracked through assignments, returns, and call
//     arguments across package boundaries until they reach a
//     determinism sink (see internal/lint/taint);
//   - shardwrite: writes to captured variables inside par.Do /
//     par.ForBlocks closures that are not keyed by the shard parameters
//     — the static sketch of what -race finds dynamically;
//   - staledirective: the escape-hatch audit — every justification
//     directive must still suppress a live finding; refactors that
//     orphan one fail the build until the directive is removed.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer holds a Run function over a Pass — but is implemented on
// the standard library alone (go/ast, go/parser, go/types), keeping
// this module dependency-free: meglint builds offline from a plain
// `go build`, with no pinned external analysis framework to vendor or
// update.
//
// # Directives
//
// A finding that is genuinely safe can be suppressed with a
// justification directive placed on the flagged statement's line or
// the line directly above it:
//
//	//meg:order-insensitive <why the map's iteration order cannot leak>
//	//meg:allow-go <why this goroutine is outside the fork/join rule>
//	//meg:shard-safe <why this captured write cannot race across shards>
//
// The justification text is mandatory: a bare directive is itself a
// finding. Directives are deliberately narrow — there is no escape
// hatch for wallclock, rngdiscipline, or hashhints findings, which
// have no known-safe form inside the simulation core. And directives
// do not accumulate: the staledirective analyzer re-checks every
// escape site and fails the build when a directive no longer
// suppresses anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name, Doc, Run) so the
// suite can migrate onto the upstream framework without rewriting any
// analyzer, should the module ever take on the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the meglint
	// command line.
	Name string
	// Doc is the analyzer's one-paragraph documentation.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf. A non-nil error aborts the whole meglint run; mere
	// findings are diagnostics, not errors.
	Run func(pass *Pass) error
	// RunModule, when set instead of Run, applies the analyzer once to
	// the whole loaded package set — the shape the interprocedural
	// analyzers (ordertaint, staledirective) need, since their facts
	// cross package boundaries.
	RunModule func(pass *ModulePass) error
}

// A Pass holds one analyzed package plus the reporting sink, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded: the
	// discipline binds shipped simulation code, and golden tests pin
	// fixed seeds by design).
	Files []*ast.File
	// Path is the package's import path; scope classification keys off
	// it.
	Path string
	// Pkg and TypesInfo carry full type information. TypesInfo always
	// has Types, Uses, and Defs populated.
	Pkg       *types.Package
	TypesInfo *types.Info

	directives directiveIndex
	report     func(Diagnostic)
	onUse      func(*directive)
}

// A ModulePass hands a module-level analyzer the whole loaded package
// set plus the reporting sink. Packages come in loader order; the
// shared FileSet makes positions comparable across them.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package

	directives directiveIndex
	report     func(Diagnostic)
	onUse      func(*directive)
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.report(Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      mp.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllowedAt reports whether the position is covered by the named
// justification directive, written on the position's line or the line
// directly above it — the module-level twin of Pass.Allowed.
func (mp *ModulePass) AllowedAt(pos token.Pos, name string) bool {
	return allowedAt(mp.Fset, mp.directives, mp.onUse, pos, name)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces a meglint justification comment.
const directivePrefix = "//meg:"

// A directive is one parsed //meg: comment.
type directive struct {
	name   string // e.g. "order-insensitive"
	reason string // justification text after the name
	pos    token.Pos
}

// directiveIndex maps (file, line) to the directives written there.
// Entries are pointers so a suppression hit can be observed by every
// pass sharing the index (the staledirective audit keys off that).
type directiveIndex map[string]map[int][]*directive

// mergeInto folds idx into dst (filenames are unique module-wide — the
// shared FileSet guarantees it).
func (idx directiveIndex) mergeInto(dst directiveIndex) {
	for file, byLine := range idx {
		dst[file] = byLine
	}
}

// parseDirectives collects every //meg: comment in the files. Comments
// that start with the prefix but carry an unknown or empty name are
// reported immediately — a typoed directive must never silently
// suppress nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				d := &directive{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*directive{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
				if !knownDirectives[name] {
					report(Diagnostic{
						Analyzer: "directives",
						Pos:      pos,
						Message:  fmt.Sprintf("unknown meglint directive %q (known: %s)", directivePrefix+name, knownDirectiveList()),
					})
				} else if d.reason == "" {
					report(Diagnostic{
						Analyzer: "directives",
						Pos:      pos,
						Message:  fmt.Sprintf("%s%s needs a justification: say why this site cannot break determinism", directivePrefix, name),
					})
				}
			}
		}
	}
	return idx
}

// knownDirectives enumerates the accepted directive names.
var knownDirectives = map[string]bool{
	"order-insensitive": true, // mapiter/ordertaint: this range's effect is order-independent
	"allow-go":          true, // rawgo: this goroutine is outside the fork/join rule
	"shard-safe":        true, // shardwrite: this captured write provably cannot race across shards
}

func knownDirectiveList() string {
	names := make([]string, 0, len(knownDirectives))
	for n := range knownDirectives {
		names = append(names, directivePrefix+n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Allowed reports whether node carries the named directive: written on
// the node's starting line (a trailing comment) or on the line
// directly above it (a lead comment). Directives never apply at a
// distance — moving code away from its justification re-arms the
// check.
func (p *Pass) Allowed(node ast.Node, name string) bool {
	return allowedAt(p.Fset, p.directives, p.onUse, node.Pos(), name)
}

// allowedAt is the shared lookup behind Pass.Allowed and
// ModulePass.AllowedAt. A hit is reported to onUse, which is how the
// staledirective audit learns a directive still suppresses something.
func allowedAt(fset *token.FileSet, idx directiveIndex, onUse func(*directive), at token.Pos, name string) bool {
	pos := fset.Position(at)
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name && d.reason != "" {
				if onUse != nil {
					onUse(d)
				}
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position. A non-nil error means an analyzer
// itself failed, not that it found problems.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	module := directiveIndex{}
	for _, pkg := range pkgs {
		idx := parseDirectives(pkg.Fset, pkg.Files, report)
		idx.mergeInto(module)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Path:       pkg.Path,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				directives: idx,
				report:     report,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if len(pkgs) > 0 {
		for _, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			mp := &ModulePass{
				Analyzer:   a,
				Fset:       pkgs[0].Fset,
				Packages:   pkgs,
				directives: module,
				report:     report,
			}
			if err := a.RunModule(mp); err != nil {
				return diags, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// The directive scan runs once per package but is keyed into every
	// pass; duplicate directive diagnostics cannot arise. Findings from
	// different analyzers on one line are all kept.
	return diags, nil
}

// All returns the full analyzer suite in a stable order: the six
// per-package syntactic analyzers first, then the interprocedural
// dataflow pair, then the directive audit (which re-runs the
// suppressible analyzers internally, so it is self-contained under
// -only).
func All() []*Analyzer {
	return []*Analyzer{MapIter, RNGDiscipline, WallClock, RawGo, HashHints, MetricsHooks, OrderTaint, ShardWrite, StaleDirective}
}
