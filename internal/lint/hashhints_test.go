package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestHashHintsClean(t *testing.T) {
	// Hints excluded, hashed fields re-parseable, semantic fields
	// hashed — including an "execution hint" phrase wrapping across a
	// comment line break.
	linttest.Run(t, lint.HashHints, "hashspec_clean")
}

func TestHashHintsDrift(t *testing.T) {
	// All three drift classes: hint in the hash view, unparseable
	// hashed field, unhashed semantic field.
	linttest.Run(t, lint.HashHints, "hashspec_drift")
}
