package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestMetricsHooks(t *testing.T) {
	// Guarded calls (locals, fields, && chains, nesting) pass; bare
	// calls, wrong-hook guards, else branches, and disjunctions are
	// flagged.
	linttest.Run(t, lint.MetricsHooks, "meg/internal/expansion")
}

func TestMetricsHooksOutsideScope(t *testing.T) {
	// serve is not determinism-critical: no findings even on unguarded
	// shapes (the fixture has none, but the scope gate is what's under
	// test — the analyzer must return before inspecting).
	linttest.Run(t, lint.MetricsHooks, "meg/internal/serve")
}
