package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestMapIter(t *testing.T) {
	// Positive cases plus the justified-directive negative case.
	linttest.Run(t, lint.MapIter, "meg/internal/core")
}

func TestMapIterOutsideScope(t *testing.T) {
	// The same map ranges in a non-critical package draw no findings.
	linttest.Run(t, lint.MapIter, "meg/internal/stats")
}
