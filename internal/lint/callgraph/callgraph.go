// Package callgraph builds the module-local call graph the
// interprocedural meglint analyzers walk: one node per function or
// method declared with a body in an analyzed package, one edge per
// call site whose callee resolves statically to another such function.
//
// The graph is deliberately modest — it is a static over/under
// approximation in exactly the ways a determinism linter can afford:
//
//   - calls through function values, interface methods, and reflection
//     produce no edge (the callee is unknown; the taint engine treats
//     such calls conservatively at the call site instead);
//   - calls into packages outside the analyzed set (the standard
//     library, chiefly) produce no edge — those callees have per-name
//     models in the taint engine (cleansers, builtins) or a generic
//     propagate-through model;
//   - function literals do not get nodes of their own: a call inside a
//     closure belongs to the enclosing declared function, which is the
//     unit the summaries are keyed on.
//
// Everything is stdlib-only (go/ast + go/types), same as the loader in
// internal/lint; the shapes mirror golang.org/x/tools/go/callgraph
// loosely so a future migration stays mechanical.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Package is the slice of a loaded, type-checked package the builder
// needs. internal/lint adapts its own Package type to this one.
type Package struct {
	// Path is the package's import path.
	Path string
	// Files are the parsed source files.
	Files []*ast.File
	// Info carries the type checker's results; Uses, Defs, Types, and
	// Selections must be populated.
	Info *types.Info
}

// A Node is one declared function or method with a body.
type Node struct {
	// Func is the type-checker object; the graph is keyed on it.
	Func *types.Func
	// Decl is the declaration, Body non-nil.
	Decl *ast.FuncDecl
	// PkgPath is the declaring package's import path.
	PkgPath string
	// Info is the declaring package's type info — callers of the graph
	// need it to resolve expressions inside Decl.
	Info *types.Info
	// Out lists the resolved call sites inside this function, in
	// source order. In lists the reverse edges, in caller order.
	Out []*Edge
	In  []*Edge
}

// An Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression, inside Caller.Decl.
	Site *ast.CallExpr
}

// A Graph is the module-local call graph.
type Graph struct {
	// Nodes indexes every function by its type-checker object.
	Nodes map[*types.Func]*Node
	// Sorted lists the nodes in deterministic order (package path,
	// then declaration position) — fixpoint loops iterate this, never
	// the map, so analysis results are stable run to run.
	Sorted []*Node
}

// Build constructs the graph over the given packages.
func Build(pkgs []Package) *Graph {
	g := &Graph{Nodes: map[*types.Func]*Node{}}
	// Pass 1: a node per declared function with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: obj, Decl: fd, PkgPath: pkg.Path, Info: pkg.Info}
				g.Nodes[obj] = n
				g.Sorted = append(g.Sorted, n)
			}
		}
	}
	sort.Slice(g.Sorted, func(i, j int) bool {
		a, b := g.Sorted[i], g.Sorted[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	// Pass 2: edges for call sites that resolve within the node set.
	for _, n := range g.Sorted {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeOf(n.Info, call)
			if callee == nil {
				return true
			}
			target, ok := g.Nodes[callee]
			if !ok {
				return true
			}
			e := &Edge{Caller: n, Callee: target, Site: call}
			n.Out = append(n.Out, e)
			target.In = append(target.In, e)
			return true
		})
	}
	return g
}

// CalleeOf resolves the static callee of call: a declared function, a
// method called on a concrete receiver, or a package-qualified
// function. Calls through function values and interface methods return
// the best object the type checker has (for interface methods that is
// the interface's method object, which never has a body in the graph);
// unresolvable calls return nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// No selection: a package-qualified call (pkg.F).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ReachableFrom returns the set of nodes reachable from the given
// roots by following Out edges, roots included. Analyzers use it to
// scope reporting to code that is actually called.
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]bool {
	seen := map[*Node]bool{}
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// PosOf is a convenience for diagnostics: the position of a node's
// declaration name.
func (n *Node) PosOf() token.Pos { return n.Decl.Name.Pos() }
