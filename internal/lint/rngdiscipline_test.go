package lint_test

import (
	"testing"

	"meg/internal/lint"
	"meg/internal/lint/linttest"
)

func TestRNGDiscipline(t *testing.T) {
	// Forbidden imports, constant-seeded streams, and the allowed
	// counter-keyed constructions, all in one critical-package fixture.
	linttest.Run(t, lint.RNGDiscipline, "meg/internal/protocol")
}

func TestRNGDisciplineOutsideScope(t *testing.T) {
	// A non-critical package may import anything; the stats fixture
	// has no rng wants and must stay clean under this analyzer too.
	linttest.Run(t, lint.RNGDiscipline, "meg/internal/stats")
}
