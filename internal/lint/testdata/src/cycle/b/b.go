// Package b is the other half of the deliberate import cycle.
package b

import "cycle/a"

// B bounces back.
func B() int { return a.A() }
