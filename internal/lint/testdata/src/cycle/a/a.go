// Package a is half of a deliberate import cycle: the loader must
// report it as an error instead of recursing forever.
package a

import "cycle/b"

// A bounces through the cycle.
func A() int { return b.B() }
