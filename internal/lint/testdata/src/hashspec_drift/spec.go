// Package hashspec is a hashhints fixture with every drift class the
// analyzer guards against: a hint leaking into the hash view, a hashed
// field that cannot re-parse, and a semantic field missing from the
// hash.
package hashspec

// Spec is the run description.
type Spec struct {
	// SchemaVersion must be 1.
	SchemaVersion int `json:"version"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Trials is the number of repetitions. A new semantic field the
	// author forgot to add to hashView.
	Trials int `json:"trials"` // want `is neither documented .* nor present in hashView`
	// Workers bounds worker parallelism. An execution hint: excluded
	// from the content hash.
	Workers int `json:"workers,omitempty"`
}

// hashView is the hashed subset — with two drift bugs.
type hashView struct {
	SchemaVersion int    `json:"version"`
	Seed          uint64 `json:"seed"`
	// Workers is a hint; hashing it splits the cache by parallelism.
	Workers int `json:"workers,omitempty"` // want `documents as an execution hint`
	// Legacy has no Spec counterpart: canonical JSON would not re-parse.
	Legacy string `json:"legacy,omitempty"` // want `no Spec counterpart`
}

// String keeps hashView referenced.
func (hashView) String() string { return "" }
