// Package shadowuser consumes the fixture shadow of hash/maphash: it
// type-checks only if the loader resolved the import against
// testdata/src rather than the real standard library.
package shadowuser

import "hash/maphash"

// Marker forwards the shadow-only symbol.
func Marker() int { return maphash.FixtureMarker() }
