// Package celldelta is a staledirective fixture posing as a
// determinism-critical package: directives that still suppress a live
// finding are earning their keep, orphaned ones are flagged.
package celldelta

// Count carries a LIVE directive: the map range below it is a real
// mapiter finding that the justification suppresses, so the audit
// leaves it alone.
func Count(m map[int]int) int {
	n := 0
	//meg:order-insensitive pure cardinality count, no order-dependent effect
	for range m {
		n++
	}
	return n
}

// Total carries a STALE order-insensitive: the map range it once
// justified was refactored into a slice range, so nothing consults the
// directive anymore.
func Total(xs []int) int {
	n := 0
	// want:+1 `stale directive //meg:order-insensitive`
	//meg:order-insensitive iteration reduces by commutative integer sum
	for _, x := range xs {
		n += x
	}
	return n
}

// Shut carries a STALE allow-go: the goroutine it once justified was
// removed, leaving the exemption advertising nothing.
func Shut() int {
	// want:+1 `stale directive //meg:allow-go`
	//meg:allow-go completion watcher, joined before return
	return 0
}
