// Package protocol is an rngdiscipline fixture posing as the
// determinism-critical protocol package. It imports the real
// meg/internal/rng so callee resolution runs against the true package
// path.
package protocol

import (
	"crypto/rand"     // want "import of crypto/rand"
	mrand "math/rand" // want "import of math/rand"

	"meg/internal/rng"
)

// Decide draws one per-(node, round) decision the disciplined way and
// several undisciplined ways.
func Decide(base uint64, u, t uint64) bool {
	lr := rng.At(base, u, t) // derived from the trial seed: allowed
	ok := lr.Bool()

	bad := rng.At(1, 2, 3) // want "only compile-time constants"
	ok = ok || bad.Bool()

	r := rng.New(42) // want "only compile-time constants"
	r.Seed(7)        // want "only compile-time constants"
	r.Seed(base)     // runtime seed: allowed

	const tagDecide = 0xbeef
	mixed := rng.Mix(base, tagDecide, t) // constant tag component with runtime base: allowed
	fixed := rng.Mix(1, 2)               // want "only compile-time constants"

	buf := make([]byte, 8)
	_, _ = rand.Read(buf) // the import line carries the finding, not the call

	return ok && mixed != fixed && mrand.Int() >= 0
}
