// Package walk is a shardwrite fixture posing as a deterministic
// engine package that fans work out through par: captured writes in
// worker closures must be keyed by the shard identity.
package walk

import "meg/internal/par"

// Scale is the blessed block shape: every write lands at an index
// walked from the closure's own block bounds.
func Scale(in []float64, workers int) []float64 {
	out := make([]float64, len(in))
	par.ForBlocks(workers, len(in), func(block, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = in[i] * 2
		}
	})
	return out
}

// Mask exercises transitive shard derivation: wi is computed from a
// value read at a block-derived position, so words[wi] counts as
// shard-keyed (the analyzer under-approximates here on purpose).
func Mask(set []int, words []uint64, workers int) {
	par.ForBlocks(workers, len(set), func(block, lo, hi int) {
		for i := lo; i < hi; i++ {
			wi := set[i] >> 6
			words[wi] |= 1 << (uint(set[i]) & 63)
		}
	})
}

// Sum is the seeded race: every shard accumulates into the same
// captured scalars.
func Sum(vals []float64, workers int) float64 {
	total := 0.0
	n := 0
	par.Do(workers, workers, func(shard int) {
		for i := shard; i < len(vals); i += workers {
			total += vals[i] // want `write to captured variable "total"`
			n++              // want `write to captured variable "n"`
		}
	})
	return total / float64(n)
}

// First writes every shard's result into slot zero — indexed, but the
// index ignores the shard identity, so the last shard to finish wins.
func First(vals []float64, workers int) float64 {
	out := make([]float64, 1)
	par.Do(workers, workers, func(shard int) {
		out[0] = vals[shard] // want `captured variable at a shard-independent index "out"`
	})
	return out[0]
}

// PerShard is the blessed fan-out/merge shape: shard-keyed slots
// inside the closure, captured scalar writes only after the join.
func PerShard(vals []float64, workers int) float64 {
	partial := make([]float64, workers)
	par.Do(workers, workers, func(shard int) {
		local := 0.0
		for i := shard; i < len(vals); i += workers {
			local += vals[i]
		}
		partial[shard] = local
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// Alias writes through a closure-local alias of shard-keyed state:
// shard-private by construction.
func Alias(frontiers [][]int, workers int) {
	par.Do(workers, len(frontiers), func(shard int) {
		f := frontiers[shard]
		for i := range f {
			f[i] = 0
		}
		frontiers[shard] = f[:0]
	})
}

// Guarded carries the reviewed escape hatch: the caller runs a single
// worker, so the shards execute serially.
func Guarded(vals []float64) float64 {
	total := 0.0
	par.Do(1, 4, func(shard int) {
		//meg:shard-safe single worker: shards run serially in submission order
		total += vals[shard]
	})
	return total
}
