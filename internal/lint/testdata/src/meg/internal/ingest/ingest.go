// Package ingest is the source end of the ordertaint chain fixture: a
// harness package (not determinism-critical, so mapiter does not apply
// here) that manufactures order-dependent sequences. Nothing in this
// package is a finding — the taint only becomes one when a caller
// hands it to a sink.
package ingest

import (
	"sort"
	"sync"
)

// Rates drains the per-node rate map in iteration order: the returned
// slice's order is runtime-randomized. This is the taint source the
// cross-package test traces.
func Rates(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// SortedRates is the cleansed variant: the in-place sort re-establishes
// a canonical order before the slice escapes.
func SortedRates(m map[int]float64) []float64 {
	out := Rates(m)
	sort.Float64s(out)
	return out
}

// Keyed places each value at its content key — the slot is a function
// of the element, not of visit order, so the result is clean.
func Keyed(m map[int]float64, n int) []float64 {
	out := make([]float64, n)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Registry drains a sync.Map in callback order — the method-shaped
// twin of the map-range source.
func Registry(m *sync.Map) []string {
	var out []string
	m.Range(func(k, v any) bool {
		out = append(out, k.(string))
		return true
	})
	return out
}
