// Package serve is a wallclock fixture posing as the serving layer,
// where wall-clock reads are legitimate: no findings expected.
package serve

import "time"

// Deadline reads the clock inside an exempt package.
func Deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}
