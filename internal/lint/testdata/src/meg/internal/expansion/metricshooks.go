// Package expansion is a metricshooks fixture posing as a
// determinism-critical package that threads phase hooks.
package expansion

import "meg/internal/core"

// Options carries a hook field like the real engine options do.
type Options struct {
	Hook core.PhaseHook
}

// Guarded is the canonical discipline: bind, guard, call. No findings.
func Guarded(opt Options) {
	h := opt.Hook
	if h != nil {
		h.BeginPhase(core.PhaseKernel)
	}
	if h != nil {
		h.EndPhase(core.PhaseKernel)
		h.RoundDone(core.RoundStats{Round: 1})
	}
}

// GuardedField guards the field expression itself — also fine.
func GuardedField(opt Options) {
	if opt.Hook != nil {
		opt.Hook.BeginPhase(core.PhaseSnapshot)
	}
}

// GuardedConjunction proves the hook non-nil through an && chain.
func GuardedConjunction(opt Options, on bool) {
	h := opt.Hook
	if on && h != nil {
		h.BeginPhase(core.PhaseKernel)
	}
}

// Unguarded calls the hook bare: the latent nil panic the analyzer
// exists to catch.
func Unguarded(opt Options) {
	h := opt.Hook
	h.BeginPhase(core.PhaseKernel) // want "unguarded PhaseHook call h.BeginPhase"
}

// UnguardedField calls through the field without any guard.
func UnguardedField(opt Options) {
	opt.Hook.RoundDone(core.RoundStats{}) // want `unguarded PhaseHook call opt\.Hook\.RoundDone`
}

// WrongBranch guards one hook but calls another in its shadow, and
// calls the guarded hook in the else branch where the guard is false.
func WrongBranch(a, b Options) {
	ha, hb := a.Hook, b.Hook
	if ha != nil {
		hb.EndPhase(core.PhaseKernel) // want "unguarded PhaseHook call hb.EndPhase"
	} else {
		ha.EndPhase(core.PhaseKernel) // want "unguarded PhaseHook call ha.EndPhase"
	}
}

// Disjunction does not prove either operand non-nil.
func Disjunction(opt Options, on bool) {
	h := opt.Hook
	if on || h != nil {
		h.BeginPhase(core.PhaseKernel) // want "unguarded PhaseHook call h.BeginPhase"
	}
}

// NestedGuard keeps outer guards in force inside nested statements.
func NestedGuard(opt Options, rounds int) {
	h := opt.Hook
	if h != nil {
		for t := 0; t < rounds; t++ {
			h.RoundDone(core.RoundStats{Round: t})
		}
	}
}
