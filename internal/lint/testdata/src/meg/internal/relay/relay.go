// Package relay is the middle of the ordertaint chain fixture: it
// neither creates nor consumes order-dependence, it just passes values
// through — taint must survive this package boundary in both the
// return-source and the parameter-to-return summaries.
package relay

import (
	"sync"

	"meg/internal/ingest"
)

// Forward returns the map-ordered rates untouched: ingest.Rates'
// return taint becomes Forward's return taint.
func Forward(m map[int]float64) []float64 {
	return ingest.Rates(m)
}

// Identity propagates parameter taint to the return value.
func Identity(vals []float64) []float64 {
	return vals
}

// Names forwards the sync.Map callback-ordered name list.
func Names(m *sync.Map) []string {
	return ingest.Registry(m)
}
