// Package par is a fixture posing as the fork/join primitive package
// itself — the one module package where bare goroutines ARE the
// implementation, so rawgo expects no findings here. The exported
// signatures mirror the real meg/internal/par so that shardwrite
// fixtures calling par.Do / par.ForBlocks type-check identically to
// real call sites.
package par

import "sync"

// Do runs fn once per shard in [0, shards), fanning the shards over
// the workers.
func Do(workers, shards int, fn func(shard int)) {
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func() {
			defer wg.Done()
			fn(s)
		}()
	}
	wg.Wait()
}

// ForBlocks splits [0, n) into one contiguous block per worker and
// runs fn(block, lo, hi) for each.
func ForBlocks(workers, n int, fn func(block, lo, hi int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for b := 0; b < workers; b++ {
		go func() {
			defer wg.Done()
			lo := b * n / workers
			hi := (b + 1) * n / workers
			fn(b, lo, hi)
		}()
	}
	wg.Wait()
}
