// Package par is a rawgo fixture posing as the fork/join primitive
// package itself, where bare goroutines are the implementation: no
// findings expected.
package par

import "sync"

// ForBlocks launches one goroutine per block.
func ForBlocks(workers int, fn func(b int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for b := 0; b < workers; b++ {
		go func() {
			defer wg.Done()
			fn(b)
		}()
	}
	wg.Wait()
}
