// Package stats is a mapiter fixture posing as a non-critical
// package: identical map ranges draw no findings here.
package stats

// Collect ranges a map outside the determinism-critical scope.
func Collect(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
