// Package driver is the outermost harness of the ordertaint chain
// fixture: order-dependence born in ingest, two package boundaries
// away, must be reported HERE — at the call argument that hands it to
// the determinism-critical engine.
package driver

import (
	"sort"
	"sync"

	"meg/internal/edgemeg"
	"meg/internal/ingest"
	"meg/internal/relay"
)

// Seed is the seeded cross-package leak: map iteration order in
// ingest.Rates reaches the engine through two pass-through calls.
func Seed(m map[int]float64) []float64 {
	vals := relay.Identity(relay.Forward(m))
	return edgemeg.Snapshot(vals) // want `value ordered by map iteration order .*edgemeg\.Snapshot`
}

// SeedSorted re-establishes a canonical order before the sink: clean.
func SeedSorted(m map[int]float64) []float64 {
	vals := relay.Forward(m)
	sort.Float64s(vals)
	return edgemeg.Snapshot(vals)
}

// SeedPresorted consumes the variant ingest cleansed itself: clean.
func SeedPresorted(m map[int]float64) []float64 {
	return edgemeg.Snapshot(ingest.SortedRates(m))
}

// SeedKeyed consumes the content-keyed variant: clean.
func SeedKeyed(m map[int]float64, n int) []float64 {
	return edgemeg.Snapshot(ingest.Keyed(m, n))
}

// SeedJustified documents a reviewed exemption on the sink line: the
// directive suppresses the finding (and staledirective keeps it
// honest).
func SeedJustified(m map[int]float64) float64 {
	vals := relay.Forward(m)
	//meg:order-insensitive fixture exemption: checksum treated as order-free here
	return edgemeg.Checksum(vals)
}

// SeedRegistry leaks sync.Map callback order into dense id assignment.
func SeedRegistry(m *sync.Map) map[string]int {
	names := relay.Names(m)
	return edgemeg.Intern(names) // want `value ordered by sync\.Map\.Range order .*edgemeg\.Intern`
}

// item is a fan-in message carrying its own placement index.
type item struct {
	idx int
	val float64
}

// Gather collects worker results in completion order: append order is
// whichever goroutine finished first.
func Gather(ch chan float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return edgemeg.Snapshot(out) // want `value ordered by goroutine completion order .*edgemeg\.Snapshot`
}

// GatherKeyed places each message at the index it carries: the slot is
// a function of the message, not of completion order — clean.
func GatherKeyed(ch chan item, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		r := <-ch
		out[r.idx] = r.val
	}
	return edgemeg.Snapshot(out)
}
