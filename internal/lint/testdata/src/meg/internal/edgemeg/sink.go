// Package edgemeg is an ordertaint fixture posing as a
// determinism-critical engine package: every function here is a sink
// for order-tainted arguments, because whatever enters this package is
// promised byte-identical across worker counts.
package edgemeg

// Snapshot freezes the per-round values in slice order.
func Snapshot(vals []float64) []float64 {
	out := make([]float64, len(vals))
	copy(out, vals)
	return out
}

// Checksum folds the values in slice order — float addition does not
// commute in rounding, so the argument's order is load-bearing.
func Checksum(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// Intern assigns dense ids in first-seen order.
func Intern(names []string) map[string]int {
	ids := make(map[string]int, len(names))
	for i, n := range names {
		ids[n] = i
	}
	return ids
}
