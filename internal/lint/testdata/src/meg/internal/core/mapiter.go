// Package core is a mapiter fixture posing as the determinism-critical
// engine package.
package core

// Collect appends map values in iteration order — the canonical
// order-dependent effect the analyzer exists to catch.
func Collect(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "range over map"
		out = append(out, v)
	}
	return out
}

// Count ranges a map twice: once bare (flagged), once under a
// justified directive (allowed).
func Count(m map[string]int, keys []string) int {
	total := 0
	for range m { // want "range over map"
		total++
	}
	//meg:order-insensitive pure cardinality count, no order-dependent effect
	for range m {
		total++
	}
	for _, k := range keys { // slice iteration is ordered: never flagged
		total += m[k]
	}
	return total
}

// NamedMap exercises the named-map-type case: the underlying type is
// what matters.
type NamedMap map[uint64]struct{}

// Keys drains a named map type.
func Keys(m NamedMap) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m { // want "range over map"
		out = append(out, k)
	}
	return out
}
