package core

// Phase mirrors the real core.Phase for the metricshooks fixtures.
type Phase uint8

// Fixture phase constants.
const (
	PhaseSnapshot Phase = iota
	PhaseKernel
)

// RoundStats mirrors the real core.RoundStats.
type RoundStats struct {
	Round, Informed, Newly int
}

// PhaseHook mirrors the real core.PhaseHook: the observation-only
// timing interface whose call sites must be nil-guarded.
type PhaseHook interface {
	BeginPhase(Phase)
	EndPhase(Phase)
	RoundDone(RoundStats)
}
