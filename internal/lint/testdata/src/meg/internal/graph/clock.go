// Package graph is a wallclock fixture posing as the
// determinism-critical snapshot package.
package graph

import "time"

// Build reads the wall clock three ways, all forbidden here, and uses
// time's pure value types, which are fine.
func Build(rounds int) time.Duration {
	start := time.Now() // want `time\.Now in simulation package`
	var d time.Duration // value types carry no clock read: allowed
	for i := 0; i < rounds; i++ {
		time.Sleep(time.Microsecond) // want `time\.Sleep in simulation package`
	}
	d = time.Since(start) // want `time\.Since in simulation package`
	return d
}

// Now is a local function whose name collides with time.Now: calling
// it is allowed (resolution is by package path, not name).
func Now() int64 { return 0 }

// Stamp calls the local Now.
func Stamp() int64 { return Now() }
