// Package mobility is a rawgo fixture posing as a determinism-critical
// model package.
package mobility

import "sync"

// Step launches goroutines four ways: bare (flagged), justified
// (allowed), under a bare directive with no reason (directive finding,
// and the goroutine stays flagged), and under a typoed directive
// (unknown-directive finding, goroutine flagged).
func Step(n int) {
	var wg sync.WaitGroup
	wg.Add(4)

	go wg.Done() // want "raw go statement"

	//meg:allow-go completion-order-free: each goroutine only decrements the waitgroup
	go wg.Done()

	//meg:allow-go
	go wg.Done() // want "raw go statement" and want:-1 "needs a justification"

	//meg:alow-go misspelled directive // want "unknown meglint directive"
	go wg.Done() // want "raw go statement"

	wg.Wait()
}
