// Command demo is a wallclock fixture: command binaries report
// durations to humans, so clock reads draw no findings.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
