// Package hashspec is a hashhints fixture with a consistent schema:
// the hint fields are excluded from the hash view, every hashed field
// re-parses, and every semantic field is hashed. No findings expected.
package hashspec

// Spec is the run description.
type Spec struct {
	// SchemaVersion must be 1.
	SchemaVersion int `json:"version"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Trials is the number of repetitions.
	Trials int `json:"trials"`
	// Workers bounds worker parallelism. An execution hint: excluded
	// from the content hash.
	Workers int `json:"workers,omitempty"`
	// Snapshot selects the snapshot path; results are byte-identical
	// either way, so it is an execution
	// hint excluded from the content hash (note the phrase wraps).
	Snapshot string `json:"snapshot,omitempty"`
	// scratch is unexported internal state, invisible to JSON.
	scratch []byte `json:"-"`
}

// hashView is the hashed subset of a canonical spec.
type hashView struct {
	SchemaVersion int    `json:"version"`
	Seed          uint64 `json:"seed"`
	Trials        int    `json:"trials"`
}

// use keeps the unexported field referenced.
func (s *Spec) use() int { return len(s.scratch) + len(hashView{}.String()) }

// String keeps hashView referenced.
func (hashView) String() string { return "" }
