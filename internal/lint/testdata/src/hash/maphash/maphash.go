// Package maphash shadows the standard library's hash/maphash from
// inside the fixture tree: the loader consults testdata/src before the
// stdlib source importer for EVERY import path, so a fixture can pin
// down exactly what an analyzed package sees. FixtureMarker exists
// only in this shadow — if the real stdlib package were loaded
// instead, the consumer below would fail to type-check.
package maphash

// FixtureMarker proves the shadow won resolution.
func FixtureMarker() int { return 42 }
