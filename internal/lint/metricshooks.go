package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meg/internal/lint/scope"
)

// MetricsHooks enforces the observability layer's zero-cost contract
// inside determinism-critical packages: every call to a core.PhaseHook
// method must sit under a nil guard on that hook expression.
//
// Phase hooks are the one seam where the simulation core talks to the
// wall-clock world (internal/metrics times the spans; the core only
// announces them). The discipline that keeps the hookless path free —
// and keeps instrumented runs byte-identical to bare ones — is that
// hook calls are always written
//
//	h := opt.Hook
//	if h != nil {
//		h.BeginPhase(core.PhaseKernel)
//	}
//
// so the nil case costs a single branch and no interface dispatch. An
// unguarded call panics the moment a caller runs without telemetry,
// which is the default; this analyzer turns that runtime trap into a
// compile-time finding. There is no suppression directive: a call
// provably reached only with a non-nil hook can simply restate the
// guard.
var MetricsHooks = &Analyzer{
	Name: "metricshooks",
	Doc:  "require nil guards on core.PhaseHook method calls in determinism-critical packages",
	Run:  runMetricsHooks,
}

func runMetricsHooks(pass *Pass) error {
	if !scope.Deterministic(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkGuarded(pass, fd.Body, map[string]bool{})
		}
	}
	return nil
}

// walkGuarded traverses n carrying the set of hook-expression strings
// currently known non-nil. If statements extend the set for their body
// from the condition's `x != nil` conjuncts; everything else recurses
// with the set unchanged.
func walkGuarded(pass *Pass, n ast.Node, guards map[string]bool) {
	if n == nil {
		return
	}
	if ifs, ok := n.(*ast.IfStmt); ok {
		if ifs.Init != nil {
			walkGuarded(pass, ifs.Init, guards)
		}
		walkGuarded(pass, ifs.Cond, guards)
		inner := guards
		if extra := nilGuards(ifs.Cond); len(extra) > 0 {
			inner = make(map[string]bool, len(guards)+len(extra))
			for k := range guards {
				inner[k] = true
			}
			for k := range extra {
				inner[k] = true
			}
		}
		walkGuarded(pass, ifs.Body, inner)
		// The else branch sees the condition false: its guards are the
		// outer ones only.
		walkGuarded(pass, ifs.Else, guards)
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		switch c := child.(type) {
		case *ast.IfStmt:
			if c == n {
				return true // cannot happen; defensive
			}
			walkGuarded(pass, c, guards)
			return false
		case *ast.CallExpr:
			checkHookCall(pass, c, guards)
		}
		return true
	})
}

// checkHookCall reports call when it invokes a method on a
// core.PhaseHook-typed expression that no enclosing guard covers.
func checkHookCall(pass *Pass, call *ast.CallExpr, guards map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isPhaseHookType(tv.Type) {
		return
	}
	if recv := hookExprString(sel.X); recv != "" && guards[recv] {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded PhaseHook call %s.%s in determinism-critical package %s: hook fields are nil by default — wrap the call in `if %s != nil { ... }` so the hookless path stays zero-cost",
		exprLabel(sel.X), sel.Sel.Name, pass.Path, exprLabel(sel.X))
}

// isPhaseHookType reports whether t is the core.PhaseHook interface.
func isPhaseHookType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "PhaseHook" &&
		obj.Pkg() != nil && obj.Pkg().Path() == scope.ModulePath+"/internal/core"
}

// nilGuards extracts the hook expressions a condition proves non-nil:
// `x != nil` (either operand order) and every conjunct of `&&` chains.
// Disjunctions prove nothing — either side alone may hold.
func nilGuards(cond ast.Expr) map[string]bool {
	out := map[string]bool{}
	collectNilGuards(cond, out)
	return out
}

func collectNilGuards(cond ast.Expr, out map[string]bool) {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		collectNilGuards(e.X, out)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			collectNilGuards(e.X, out)
			collectNilGuards(e.Y, out)
		case token.NEQ:
			if isNilExpr(e.Y) {
				if s := hookExprString(e.X); s != "" {
					out[s] = true
				}
			} else if isNilExpr(e.X) {
				if s := hookExprString(e.Y); s != "" {
					out[s] = true
				}
			}
		}
	}
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// hookExprString renders the identifier/selector chains guards can
// track ("h", "opt.Hook", "s.hook"). Anything else — calls, index
// expressions — returns "" and never matches a guard, so a call on it
// is flagged; the fix is binding the hook to a local first, which is
// the discipline's canonical shape anyway.
func hookExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.ParenExpr:
		return hookExprString(x.X)
	case *ast.SelectorExpr:
		base := hookExprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// exprLabel names the receiver in diagnostics, degrading gracefully
// for untrackable expressions.
func exprLabel(e ast.Expr) string {
	if s := hookExprString(e); s != "" {
		return s
	}
	return "hook"
}
