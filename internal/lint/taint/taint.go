// Package taint implements the forward order-taint dataflow analysis
// behind the ordertaint analyzer: a small interprocedural lattice over
// the module-local call graph (internal/lint/callgraph) that tracks
// values whose ORDER is scheduling- or runtime-dependent and reports
// when such a value reaches a determinism sink.
//
// # The lattice
//
// A value is order-tainted when the sequence of its elements derives
// from an ordering the language does not fix:
//
//   - map iteration (`range m` — the runtime randomizes it per loop);
//   - sync.Map.Range callbacks (same contract, method-shaped);
//   - goroutine-completion order (receiving from a channel in a loop
//     without using an index carried by the message — classic fan-in).
//
// Taint propagates forward through assignments, appends, composite
// literals, slicing and indexing, string conversion, copy, and —
// interprocedurally — through call arguments and return values of
// module functions, via per-function summaries computed to fixpoint
// over the call graph (so cycles of mutual recursion converge).
// Calls whose callee cannot be resolved (function values, interface
// methods, the standard library) propagate taint from arguments to
// results, which overapproximates helpers like strings.Join without a
// model for each.
//
// # Cleansers
//
// Taint is erased where the order is re-established canonically:
//
//   - sort.Sort/Stable/Slice/SliceStable/Ints/Float64s/Strings on the
//     value (the argument's variable is cleansed in place);
//   - slices.Sort/SortFunc/SortStableFunc likewise, and
//     slices.Sorted/SortedFunc/SortedStableFunc return clean;
//   - content-keyed placement inside the iteration itself: `out[k] = v`
//     where k is the range key — the slot is a function of the element,
//     not of visit order. (An index carried by a counter incremented in
//     the loop is NOT content-keyed and taints the slice.)
//
// # Sinks
//
// A sink is a call that hands a tainted value to code whose output is
// promised byte-identical across worker counts: any function of a
// determinism-critical package (graph snapshot construction, PackEdge
// key lists, Delta/Builder feeding), plus the named sink packages the
// analyzer configures (rng seeding, spec content hashing, bench
// checksums). Reaching a sink through a chain of module calls is
// reported at the outermost call site that made it inevitable, with
// the source attached.
//
// The analysis is flow-insensitive within basic blocks beyond
// statement order (each function body is walked a bounded number of
// times to close loop-carried flows), path-insensitive, and therefore
// an overapproximation: a finding means "this order can leak", not
// "this run misbehaved". The //meg:order-insensitive directive at the
// source or the sink line is the escape hatch, audited by the
// staledirective analyzer.
package taint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"meg/internal/lint/callgraph"
)

// Kind classifies a taint source.
type Kind int

const (
	// MapRange is iteration over a Go map.
	MapRange Kind = iota
	// SyncMapRange is a sync.Map.Range callback.
	SyncMapRange
	// ChanFanIn is channel receiving inside a loop (completion order).
	ChanFanIn
)

func (k Kind) String() string {
	switch k {
	case MapRange:
		return "map iteration order"
	case SyncMapRange:
		return "sync.Map.Range order"
	case ChanFanIn:
		return "goroutine completion order (channel fan-in)"
	}
	return "unknown order source"
}

// A Source is one place order-dependence enters.
type Source struct {
	Kind Kind
	Pos  token.Pos
}

// A Finding is one tainted-value-reaches-sink report.
type Finding struct {
	// Pos is where to report: the call argument handing the tainted
	// value to the sink (in the outermost function on the chain).
	Pos token.Pos
	// Source is the origin of the taint.
	Source Source
	// Sink describes the receiving function, e.g.
	// "meg/internal/graph.PackEdge".
	Sink string
	// SinkPos is the position of the sink call itself (equal to Pos for
	// direct sinks; the interior call site when reached via a summary).
	SinkPos token.Pos
}

// Config parameterizes the engine.
type Config struct {
	// DeterministicPkg reports whether the package at path carries the
	// determinism discipline; every function of such a package is a
	// sink for tainted arguments.
	DeterministicPkg func(path string) bool
	// SinkPkgs names additional sink packages (path → why), e.g. the
	// rng, spec, and bench packages.
	SinkPkgs map[string]string
	// Suppressed, when non-nil, reports whether a position is covered
	// by an order-insensitive justification; sources and sinks at such
	// positions are skipped.
	Suppressed func(pos token.Pos) bool
}

// Run analyzes the graph and returns the findings in deterministic
// order (by position), deduplicated by (source, sink) pair.
func Run(g *callgraph.Graph, cfg Config) []Finding {
	e := &engine{
		g:    g,
		cfg:  cfg,
		sums: map[*callgraph.Node]*summary{},
		seen: map[findKey]bool{},
	}
	for _, n := range g.Sorted {
		e.sums[n] = &summary{
			paramToRet: make([]bool, numParams(n)),
			paramSinks: make([]*sinkRef, numParams(n)),
		}
	}
	// Summaries to fixpoint: findings are only recorded on the final
	// pass, once the summaries have stabilized, so every report sees
	// the full interprocedural picture.
	for round := 0; round < maxFixpointRounds; round++ {
		changed := false
		for _, n := range g.Sorted {
			if e.analyze(n, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range g.Sorted {
		e.analyze(n, true)
	}
	sort.Slice(e.findings, func(i, j int) bool {
		if e.findings[i].Pos != e.findings[j].Pos {
			return e.findings[i].Pos < e.findings[j].Pos
		}
		return e.findings[i].Source.Pos < e.findings[j].Source.Pos
	})
	return e.findings
}

// maxFixpointRounds bounds summary iteration; the lattice is finite
// (per function: param set + a single source list that only grows), so
// convergence is guaranteed well inside this for any real module.
const maxFixpointRounds = 12

// summary is one function's interprocedural behavior.
type summary struct {
	// retSources lists sources that reach a return value regardless of
	// argument taint (the function manufactures order-dependence).
	retSources []Source
	// paramToRet[i] reports that taint on parameter i flows to a
	// return value.
	paramToRet []bool
	// paramSinks[i] records that parameter i reaches a sink inside the
	// function (directly or transitively).
	paramSinks []*sinkRef
}

type sinkRef struct {
	desc string
	pos  token.Pos
}

func (s *summary) equal(o *summary) bool {
	if len(s.retSources) != len(o.retSources) {
		return false
	}
	for i := range s.paramToRet {
		if s.paramToRet[i] != o.paramToRet[i] {
			return false
		}
	}
	for i := range s.paramSinks {
		if (s.paramSinks[i] == nil) != (o.paramSinks[i] == nil) {
			return false
		}
	}
	return true
}

type findKey struct {
	pos token.Pos
	src token.Pos
}

type engine struct {
	g        *callgraph.Graph
	cfg      Config
	sums     map[*callgraph.Node]*summary
	findings []Finding
	seen     map[findKey]bool
}

// val is one value's taint: concrete sources plus a bitmask of the
// current function's parameters it may alias. nil means untainted.
type val struct {
	srcs   []Source
	params uint64
}

func (v *val) tainted() bool { return v != nil && (len(v.srcs) > 0 || v.params != 0) }

// merge unions two taints, returning nil when both are nil.
func merge(a, b *val) *val {
	if !a.tainted() {
		if !b.tainted() {
			return nil
		}
		return b.clone()
	}
	out := a.clone()
	if b.tainted() {
		out.params |= b.params
		for _, s := range b.srcs {
			out.addSrc(s)
		}
	}
	return out
}

func (v *val) clone() *val {
	if v == nil {
		return nil
	}
	return &val{srcs: append([]Source(nil), v.srcs...), params: v.params}
}

func (v *val) addSrc(s Source) {
	for _, have := range v.srcs {
		if have.Pos == s.Pos {
			return
		}
	}
	v.srcs = append(v.srcs, s)
}

// region is one active order-source scope (a map/chan range body or a
// sync.Map.Range callback).
type region struct {
	src Source
	// node spans the region's syntax; objects declared inside it are
	// region-local.
	node ast.Node
	// keys are the iteration variables (range key/value, callback
	// params): indexing by them is content-keyed placement, a cleanser.
	keys map[types.Object]bool
}

// fnState is the per-function walk state.
type fnState struct {
	node    *callgraph.Node
	info    *types.Info
	params  map[types.Object]int
	taint   map[types.Object]*val
	regions []*region
	sum     *summary
	record  bool // final pass: emit findings
}

func numParams(n *callgraph.Node) int {
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return 0
	}
	c := sig.Params().Len()
	if sig.Recv() != nil {
		c++
	}
	return c
}

// analyze walks one function, updating its summary; reports whether
// the summary changed. With record set, findings are emitted.
func (e *engine) analyze(n *callgraph.Node, record bool) bool {
	old := e.sums[n]
	st := &fnState{
		node:   n,
		info:   n.Info,
		params: map[types.Object]int{},
		taint:  map[types.Object]*val{},
		sum: &summary{
			paramToRet: make([]bool, numParams(n)),
			paramSinks: append([]*sinkRef(nil), old.paramSinks...),
		},
		record: record,
	}
	copy(st.sum.paramToRet, old.paramToRet)
	st.sum.retSources = append(st.sum.retSources, old.retSources...)

	sig := n.Func.Type().(*types.Signature)
	idx := 0
	if recv := sig.Recv(); recv != nil {
		st.params[recv] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		st.params[sig.Params().At(i)] = idx
		idx++
	}
	// Parameters start symbolically tainted by their own index.
	for obj, i := range st.params {
		if i < 64 {
			st.taint[obj] = &val{params: 1 << uint(i)}
		}
	}

	// Walk the body a few times so loop-carried taint (append in a
	// loop, then use above the append) stabilizes.
	for pass := 0; pass < 3; pass++ {
		emit := record && pass == 2
		st.record = emit
		e.walkStmt(st, n.Decl.Body)
	}
	// Named results: fold their final taint into the return summary
	// (covers naked returns and writes to named results).
	if res := sig.Results(); res != nil {
		for i := 0; i < res.Len(); i++ {
			if obj := res.At(i); obj.Name() != "" {
				e.foldReturn(st, st.taint[obj])
			}
		}
	}
	e.sums[n] = st.sum
	return !st.sum.equal(old)
}

func (e *engine) foldReturn(st *fnState, v *val) {
	if !v.tainted() {
		return
	}
	for _, s := range v.srcs {
		found := false
		for _, have := range st.sum.retSources {
			if have.Pos == s.Pos {
				found = true
				break
			}
		}
		if !found {
			st.sum.retSources = append(st.sum.retSources, s)
		}
	}
	for i := range st.sum.paramToRet {
		if i < 64 && v.params&(1<<uint(i)) != 0 {
			st.sum.paramToRet[i] = true
		}
	}
}

// ---- statement walk ----

func (e *engine) walkStmt(st *fnState, s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			e.walkStmt(st, sub)
		}
	case *ast.AssignStmt:
		e.walkAssign(st, s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v *val
					if len(vs.Values) == len(vs.Names) {
						v = e.eval(st, vs.Values[i])
					} else if len(vs.Values) == 1 {
						v = e.eval(st, vs.Values[0])
					}
					if obj := st.info.Defs[name]; obj != nil {
						st.taint[obj] = v
					}
				}
			}
		}
	case *ast.RangeStmt:
		e.walkRange(st, s)
	case *ast.ForStmt:
		e.walkStmt(st, s.Init)
		if s.Cond != nil {
			e.eval(st, s.Cond)
		}
		// A loop that receives from a channel is a fan-in region: the
		// iteration order is goroutine completion order.
		if pos, ok := hasReceive(s.Body); ok {
			st.regions = append(st.regions, &region{
				src:  Source{Kind: ChanFanIn, Pos: pos},
				node: s.Body,
				keys: map[types.Object]bool{},
			})
			e.walkStmt(st, s.Body)
			st.regions = st.regions[:len(st.regions)-1]
		} else {
			e.walkStmt(st, s.Body)
		}
		e.walkStmt(st, s.Post)
	case *ast.IfStmt:
		e.walkStmt(st, s.Init)
		e.eval(st, s.Cond)
		e.walkStmt(st, s.Body)
		e.walkStmt(st, s.Else)
	case *ast.SwitchStmt:
		e.walkStmt(st, s.Init)
		if s.Tag != nil {
			e.eval(st, s.Tag)
		}
		e.walkStmt(st, s.Body)
	case *ast.TypeSwitchStmt:
		e.walkStmt(st, s.Init)
		e.walkStmt(st, s.Assign)
		e.walkStmt(st, s.Body)
	case *ast.CaseClause:
		for _, x := range s.List {
			e.eval(st, x)
		}
		for _, sub := range s.Body {
			e.walkStmt(st, sub)
		}
	case *ast.SelectStmt:
		e.walkStmt(st, s.Body)
	case *ast.CommClause:
		e.walkStmt(st, s.Comm)
		for _, sub := range s.Body {
			e.walkStmt(st, sub)
		}
	case *ast.ReturnStmt:
		for _, x := range s.Results {
			e.foldReturn(st, e.eval(st, x))
		}
	case *ast.ExprStmt:
		e.eval(st, s.X)
	case *ast.GoStmt:
		e.eval(st, s.Call)
	case *ast.DeferStmt:
		e.eval(st, s.Call)
	case *ast.SendStmt:
		e.eval(st, s.Chan)
		e.eval(st, s.Value)
	case *ast.IncDecStmt:
		e.eval(st, s.X)
	case *ast.LabeledStmt:
		e.walkStmt(st, s.Stmt)
	}
}

// walkAssign handles =, :=, and op= assignments: RHS taint lands on
// the LHS roots; inside an order region, appends and order-keyed
// placements introduce taint.
func (e *engine) walkAssign(st *fnState, s *ast.AssignStmt) {
	var rhs []*val
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// x, y := f(): every LHS shares the call's merged taint.
		v := e.eval(st, s.Rhs[0])
		for range s.Lhs {
			rhs = append(rhs, v)
		}
	} else {
		for _, r := range s.Rhs {
			rhs = append(rhs, e.eval(st, r))
		}
	}
	for i, l := range s.Lhs {
		var v *val
		if i < len(rhs) {
			v = rhs[i]
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment keeps the old taint and may add the
			// operand's; inside an order region a floating-point
			// accumulation into an outer variable is itself order-
			// dependent (float addition does not commute in rounding).
			v = merge(v, e.eval(st, l))
			if reg := e.outerRegion(st, rootObj(st, l)); reg != nil && isFloat(st.info, l) {
				v = merge(v, &val{srcs: []Source{reg.src}})
			}
		}
		e.assignTo(st, l, v, s)
	}
}

// assignTo writes taint v to target l.
func (e *engine) assignTo(st *fnState, l ast.Expr, v *val, at ast.Stmt) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := st.info.Defs[l]
		if obj == nil {
			obj = st.info.Uses[l]
		}
		if obj == nil {
			return
		}
		// Strong update: plain rebinding replaces taint, which is what
		// lets `x = sortedCopy(x)` cleanse.
		st.taint[obj] = v.clone()
	case *ast.IndexExpr:
		root := rootObj(st, l.X)
		if root == nil {
			return
		}
		// Inside an order region, placement keyed by anything other
		// than the iteration identity commits visit order to a slot:
		// taint the container. Content-keyed placement (index mentions
		// a range key/value — or, for channel fan-in, an index carried
		// by the received message) is the canonical cleanser and stays
		// clean.
		if reg := e.outerRegion(st, root); reg != nil && !regionKeyed(st, l.Index, reg) {
			v = merge(v, &val{srcs: []Source{reg.src}})
		}
		// Weak update: one slot write taints the whole container but
		// never cleanses it.
		if v.tainted() {
			st.taint[root] = merge(st.taint[root], v)
		}
		e.eval(st, l.Index)
	case *ast.SelectorExpr, *ast.StarExpr:
		root := rootObj(st, l)
		if root != nil && v.tainted() {
			st.taint[root] = merge(st.taint[root], v)
		}
	}
}

// walkRange handles range statements: map and channel ranges open
// order regions; ranging a tainted sequence taints the element.
func (e *engine) walkRange(st *fnState, s *ast.RangeStmt) {
	xv := e.eval(st, s.X)
	tv, _ := st.info.Types[s.X]
	var reg *region
	if tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			reg = &region{src: Source{Kind: MapRange, Pos: s.Pos()}, node: s, keys: map[types.Object]bool{}}
		case *types.Chan:
			reg = &region{src: Source{Kind: ChanFanIn, Pos: s.Pos()}, node: s, keys: map[types.Object]bool{}}
		}
	}
	// The iteration variables: content values (clean in themselves for
	// maps — a key is a key regardless of visit order), but elements of
	// a tainted slice inherit its taint.
	for _, kv := range []ast.Expr{s.Key, s.Value} {
		if kv == nil {
			continue
		}
		if id, ok := ast.Unparen(kv).(*ast.Ident); ok && id.Name != "_" {
			obj := st.info.Defs[id]
			if obj == nil {
				obj = st.info.Uses[id]
			}
			if obj != nil {
				if reg != nil {
					reg.keys[obj] = true
					st.taint[obj] = nil
				} else {
					st.taint[obj] = xv.clone()
				}
			}
		}
	}
	if reg != nil {
		if e.cfg.Suppressed != nil && e.cfg.Suppressed(s.Pos()) {
			reg = nil
		}
	}
	if reg != nil {
		st.regions = append(st.regions, reg)
		e.walkStmt(st, s.Body)
		st.regions = st.regions[:len(st.regions)-1]
	} else {
		e.walkStmt(st, s.Body)
	}
}

// outerRegion returns the innermost active region that obj is declared
// OUTSIDE of — the situation where an effect inside the region escapes
// it — or nil.
func (e *engine) outerRegion(st *fnState, obj types.Object) *region {
	if obj == nil {
		return nil
	}
	for i := len(st.regions) - 1; i >= 0; i-- {
		reg := st.regions[i]
		if obj.Pos() < reg.node.Pos() || obj.Pos() > reg.node.End() {
			return reg
		}
	}
	return nil
}

// ---- expression evaluation ----

// eval computes an expression's taint, performing sink and cleanser
// bookkeeping on any calls inside it.
func (e *engine) eval(st *fnState, x ast.Expr) *val {
	switch x := x.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := st.info.Uses[x]
		if obj == nil {
			obj = st.info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		return st.taint[obj]
	case *ast.ParenExpr:
		return e.eval(st, x.X)
	case *ast.SelectorExpr:
		// Field read or qualified name: the container's taint covers
		// its fields; a package-level var has its own entry.
		v := e.eval(st, x.X)
		if obj := st.info.Uses[x.Sel]; obj != nil {
			v = merge(v, st.taint[obj])
		}
		return v
	case *ast.IndexExpr:
		return merge(e.eval(st, x.X), e.eval(st, x.Index))
	case *ast.SliceExpr:
		v := e.eval(st, x.X)
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b != nil {
				e.eval(st, b)
			}
		}
		return v
	case *ast.StarExpr:
		return e.eval(st, x.X)
	case *ast.UnaryExpr:
		return e.eval(st, x.X)
	case *ast.BinaryExpr:
		return merge(e.eval(st, x.X), e.eval(st, x.Y))
	case *ast.TypeAssertExpr:
		return e.eval(st, x.X)
	case *ast.CompositeLit:
		var v *val
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = merge(v, e.eval(st, kv.Value))
			} else {
				v = merge(v, e.eval(st, elt))
			}
		}
		return v
	case *ast.FuncLit:
		// The closure body is walked inline as part of the enclosing
		// function; its own parameters are untracked.
		e.walkStmt(st, x.Body)
		return nil
	case *ast.CallExpr:
		return e.evalCall(st, x)
	}
	return nil
}

// evalCall models one call: builtins, cleansers, sync.Map.Range
// regions, module callees via summaries (with sink reporting), named
// sink packages, and a propagate-through default for everything else.
func (e *engine) evalCall(st *fnState, call *ast.CallExpr) *val {
	// Conversions: T(x) keeps x's taint.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		var v *val
		for _, a := range call.Args {
			v = merge(v, e.eval(st, a))
		}
		return v
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := st.info.Uses[id].(*types.Builtin); ok {
			return e.evalBuiltin(st, call, b.Name())
		}
	}

	callee := callgraph.CalleeOf(st.info, call)

	// sync.Map.Range(fn): the callback body is an order region.
	if isSyncMapRange(st.info, call) {
		if len(call.Args) == 1 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				reg := &region{
					src:  Source{Kind: SyncMapRange, Pos: call.Pos()},
					node: lit,
					keys: map[types.Object]bool{},
				}
				for _, f := range lit.Type.Params.List {
					for _, name := range f.Names {
						if obj := st.info.Defs[name]; obj != nil {
							reg.keys[obj] = true
						}
					}
				}
				if !(e.cfg.Suppressed != nil && e.cfg.Suppressed(call.Pos())) {
					st.regions = append(st.regions, reg)
					e.walkStmt(st, lit.Body)
					st.regions = st.regions[:len(st.regions)-1]
					return nil
				}
			}
		}
	}

	// Cleansers erase taint instead of propagating it.
	if c, ok := cleanserOf(callee); ok {
		for _, a := range call.Args {
			e.eval(st, a)
		}
		if c.inPlace && len(call.Args) > 0 {
			if root := rootObj(st, call.Args[0]); root != nil {
				st.taint[root] = nil
			}
		}
		return nil
	}

	// Evaluate arguments (also walks nested calls / closures).
	args := make([]*val, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(st, a)
	}
	var recvVal *val
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := st.info.Selections[sel]; isMethod {
			recvVal = e.eval(st, sel.X)
		}
	}

	// Module callee with a summary: flow through it.
	if node, ok := e.nodeFor(callee); ok {
		sum := e.sums[node]
		all := make([]*val, 0, len(args)+1)
		if numParams(node) == len(call.Args)+1 {
			all = append(all, recvVal)
		}
		all = append(all, args...)
		var out *val
		for _, s := range sum.retSources {
			out = merge(out, &val{srcs: []Source{s}})
		}
		for i, av := range all {
			if i >= len(sum.paramToRet) {
				break
			}
			if av.tainted() && sum.paramToRet[i] {
				out = merge(out, av)
			}
			if av.tainted() && sum.paramSinks[i] != nil {
				e.reachSink(st, call.Args, i, av, sum.paramSinks[i].desc, sum.paramSinks[i].pos, numParams(node) == len(call.Args)+1)
			}
		}
		// The callee itself may be a sink-package function too.
		e.checkDirectSink(st, call, callee, all, numParams(node) == len(call.Args)+1)
		return out
	}

	// Non-module callee in a sink package (a deterministic package or
	// a named sink like rng/spec/bench, loaded but outside the graph —
	// e.g. a function without a body in the analyzed set).
	if callee != nil {
		all := make([]*val, 0, len(args)+1)
		if recvVal != nil {
			all = append(all, recvVal)
		}
		all = append(all, args...)
		if e.checkDirectSink(st, call, callee, all, recvVal != nil) {
			return nil
		}
	}

	// Unknown call: propagate argument (and receiver) taint to the
	// result — the right model for strings.Join and friends, and a
	// safe overapproximation elsewhere.
	out := recvVal
	for _, av := range args {
		out = merge(out, av)
	}
	return out
}

// checkDirectSink reports tainted arguments handed straight to a sink
// function; returns whether the callee was a sink.
func (e *engine) checkDirectSink(st *fnState, call *ast.CallExpr, callee *types.Func, all []*val, hasRecv bool) bool {
	pkg := callee.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	isSink := e.cfg.DeterministicPkg != nil && e.cfg.DeterministicPkg(path)
	if !isSink {
		_, isSink = e.cfg.SinkPkgs[path]
	}
	if !isSink {
		return false
	}
	for i, av := range all {
		if av.tainted() {
			e.reachSink(st, call.Args, i, av, qualifiedName(callee), call.Pos(), hasRecv)
		}
	}
	return true
}

// reachSink records a finding (concrete taint) and/or extends the
// current function's parameter-sink summary (symbolic taint).
func (e *engine) reachSink(st *fnState, argExprs []ast.Expr, argIdx int, av *val, sinkDesc string, sinkPos token.Pos, hasRecv bool) {
	// Map the all-params index back onto the argument expression for
	// position reporting (receiver taint reports at the call).
	var pos token.Pos = sinkPos
	i := argIdx
	if hasRecv {
		i--
	}
	if i >= 0 && i < len(argExprs) {
		pos = argExprs[i].Pos()
	}
	for _, s := range av.srcs {
		if e.cfg.Suppressed != nil && (e.cfg.Suppressed(pos) || e.cfg.Suppressed(s.Pos)) {
			continue
		}
		if st.record {
			k := findKey{pos: pos, src: s.Pos}
			if !e.seen[k] {
				e.seen[k] = true
				e.findings = append(e.findings, Finding{
					Pos:     pos,
					Source:  s,
					Sink:    sinkDesc,
					SinkPos: sinkPos,
				})
			}
		}
	}
	for p := 0; p < len(st.sum.paramSinks); p++ {
		if p < 64 && av.params&(1<<uint(p)) != 0 && st.sum.paramSinks[p] == nil {
			st.sum.paramSinks[p] = &sinkRef{desc: sinkDesc, pos: sinkPos}
		}
	}
}

func (e *engine) nodeFor(f *types.Func) (*callgraph.Node, bool) {
	if f == nil {
		return nil, false
	}
	n, ok := e.g.Nodes[f]
	return n, ok
}

// evalBuiltin models the builtins that matter for taint.
func (e *engine) evalBuiltin(st *fnState, call *ast.CallExpr, name string) *val {
	switch name {
	case "append":
		var v *val
		for _, a := range call.Args {
			v = merge(v, e.eval(st, a))
		}
		// Appending inside an order region to a slice declared outside
		// it records visit order — the canonical taint introduction.
		if len(call.Args) > 0 {
			if root := rootObj(st, call.Args[0]); root != nil {
				if reg := e.outerRegion(st, root); reg != nil {
					v = merge(v, &val{srcs: []Source{reg.src}})
				}
			}
		}
		return v
	case "copy":
		if len(call.Args) == 2 {
			srcV := e.eval(st, call.Args[1])
			if root := rootObj(st, call.Args[0]); root != nil && srcV.tainted() {
				st.taint[root] = merge(st.taint[root], srcV)
			}
		}
		return nil
	case "len", "cap":
		// Cardinality is order-insensitive by construction.
		for _, a := range call.Args {
			e.eval(st, a)
		}
		return nil
	default:
		var v *val
		for _, a := range call.Args {
			v = merge(v, e.eval(st, a))
		}
		if name == "make" || name == "new" || name == "delete" || name == "clear" {
			return nil
		}
		return v
	}
}

// ---- helpers ----

// rootObj resolves the variable at the base of an lvalue chain
// (x, x.f, x[i], *x, x[i].f ...).
func rootObj(st *fnState, x ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj := st.info.Uses[e]; obj != nil {
				return obj
			}
			return st.info.Defs[e]
		case *ast.SelectorExpr:
			// Package-qualified var: the selected object itself.
			if _, ok := st.info.Selections[e]; !ok {
				if obj := st.info.Uses[e.Sel]; obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						return obj
					}
				}
			}
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.CallExpr, *ast.CompositeLit:
			return nil
		default:
			return nil
		}
	}
}

// regionKeyed reports whether an index expression derives from the
// region's iteration identity: it mentions an iteration variable
// (range key/value, Range callback parameter), or any value declared
// inside the region itself. The latter covers channel fan-in, where
// the only in-region source of identity is the received message —
// `r := <-ch; out[r.idx] = r.val` is content-keyed, while `out[i]`
// with the loop counter declared outside the body commits completion
// order to slots. A counter smuggled through a region-local alias is
// over-blessed; the analyzer under-approximates here rather than flag
// every keyed fan-in.
func regionKeyed(st *fnState, index ast.Expr, reg *region) bool {
	if mentionsAny(st, index, reg.keys) {
		return true
	}
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := st.info.Uses[id]
			if obj == nil {
				obj = st.info.Defs[id]
			}
			if obj != nil && obj.Pos() >= reg.node.Pos() && obj.Pos() <= reg.node.End() {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsAny reports whether expr mentions any of the given objects.
func mentionsAny(st *fnState, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasReceive reports whether the statement contains a channel receive
// outside any nested function literal, with its position.
func hasReceive(s ast.Stmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, found = n.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}

// isFloat reports whether the expression has floating-point (or
// float-element slice) type.
func isFloat(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSyncMapRange reports whether call is (*sync.Map).Range.
func isSyncMapRange(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Map" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// cleanser describes one order-re-establishing function.
type cleanser struct {
	inPlace bool // cleanses its first argument's variable
}

// cleanserOf recognizes the sort/slices cleansers.
func cleanserOf(f *types.Func) (cleanser, bool) {
	if f == nil || f.Pkg() == nil {
		return cleanser{}, false
	}
	switch f.Pkg().Path() {
	case "sort":
		switch f.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Float64s", "Strings":
			return cleanser{inPlace: true}, true
		}
	case "slices":
		switch f.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return cleanser{inPlace: true}, true
		case "Sorted", "SortedFunc", "SortedStableFunc", "Compact", "CompactFunc":
			return cleanser{inPlace: false}, true
		}
	}
	return cleanser{}, false
}

// qualifiedName renders pkg.Func or pkg.(T).Method for diagnostics.
func qualifiedName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s.%s", f.Pkg().Path(), n.Obj().Name(), f.Name())
		}
	}
	return fmt.Sprintf("%s.%s", f.Pkg().Path(), f.Name())
}
