package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"meg/internal/lint/scope"
)

// RNGDiscipline enforces the counter-based randomness contract inside
// determinism-critical packages:
//
//  1. the only randomness source is meg/internal/rng — math/rand,
//     math/rand/v2, and crypto/rand imports are findings;
//  2. rng streams must derive from the trial seed: a call to rng.New,
//     rng.At, rng.Mix, rng.SeedFor, or (*rng.RNG).Seed whose arguments
//     are all compile-time constants constructs a stream that is a
//     function of nothing — it cannot vary with the trial seed, so
//     every trial (and every cache key) silently shares it.
//
// Constant *components* are fine — rng.Mix(base, tagBirths, t) uses a
// constant domain-separation tag — the finding fires only when no
// argument carries runtime-derived entropy at all.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "forbid non-internal/rng randomness and constant-seeded rng streams in determinism-critical packages",
	Run:  runRNGDiscipline,
}

// seedConstructors are the internal/rng entry points that key a
// stream. Methods are matched by receiver type below.
var seedConstructors = map[string]bool{
	"New": true, "At": true, "Mix": true, "SeedFor": true,
}

func runRNGDiscipline(pass *Pass) error {
	if !scope.Deterministic(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := scope.ForbiddenRandImports[path]; bad {
				pass.Reportf(imp.Pos(),
					"import of %s in determinism-critical package %s (%s): draw all randomness from %s, keyed (node, round) via rng.Mix/rng.At",
					path, pass.Path, why, scope.RNGPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := rngCallee(pass, call)
			if fn == "" || len(call.Args) == 0 {
				return true
			}
			if !allConstant(pass, call.Args) {
				return true
			}
			pass.Reportf(call.Pos(),
				"rng.%s called with only compile-time constants: the stream cannot derive from the trial seed; key it with rng.Mix/rng.At over the trial base seed and the (node, round) counters",
				fn)
			return true
		})
	}
	return nil
}

// rngCallee returns the internal/rng stream-keying function the call
// invokes ("New", "At", "Mix", "SeedFor", or "Seed" for the method),
// or "" if the call is something else.
func rngCallee(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != scope.RNGPath {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name == "Seed" {
			return name
		}
		return ""
	}
	if seedConstructors[name] {
		return name
	}
	return ""
}

// allConstant reports whether every argument is a compile-time
// constant (including constant-folded expressions and conversions of
// constants).
func allConstant(pass *Pass, args []ast.Expr) bool {
	for _, a := range args {
		tv, ok := pass.TypesInfo.Types[a]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}
