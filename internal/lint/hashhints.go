package lint

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"
)

// HashHints cross-checks the spec schema against its content-hash
// view.
//
// internal/spec promises "same hash, same bytes": the content address
// under which results are cached covers exactly the fields that
// change what a run computes, and none of the fields that only change
// how it executes. Two drift bugs have historically threatened that
// promise (the protoAlgo/modelAlgo revisions of PRs 4–5 were the
// cleanup):
//
//   - an execution hint leaking into the hash view, so the same
//     computation run with different parallelism misses its own cache
//     entry (or worse, a hint-stripped cached result is served under a
//     hash that promised the hint);
//   - a hashed field with no counterpart in the Spec schema, so the
//     canonical JSON — which Parse decodes with unknown fields
//     rejected — no longer re-parses;
//   - a new semantic Spec field that never gets added to the hash
//     view, so specs differing in it silently collide on one cache
//     entry.
//
// The analyzer reads the package that declares both `Spec` and
// `hashView` and enforces all three: a Spec field whose doc comment
// declares it an "execution hint" must be absent from hashView, every
// hashView field must map (by JSON name) onto a Spec field, and every
// other Spec field must appear in hashView. The doc-comment phrase is
// the contract: documenting a field as an execution hint is what
// excludes it, and this analyzer is what keeps the documentation and
// the code telling the same story.
var HashHints = &Analyzer{
	Name: "hashhints",
	Doc:  "cross-check spec.Spec against spec.hashView: hints excluded from the hash, hashed fields re-parseable, semantic fields hashed",
	Run:  runHashHints,
}

// hintPhrase in a field's doc comment marks it as an execution-only
// hint, excluded from the content hash.
const hintPhrase = "execution hint"

// specField is one parsed struct field.
type specField struct {
	name     string // Go field name
	jsonName string // effective JSON key ("" if json:"-")
	hint     bool   // doc comment declares it an execution hint
	pos      ast.Node
}

func runHashHints(pass *Pass) error {
	specStruct := findStruct(pass.Files, "Spec")
	viewStruct := findStruct(pass.Files, "hashView")
	if specStruct == nil || viewStruct == nil {
		return nil
	}
	specFields := parseFields(specStruct)
	viewFields := parseFields(viewStruct)

	specByJSON := map[string]specField{}
	for _, f := range specFields {
		if f.jsonName != "" {
			specByJSON[f.jsonName] = f
		}
	}
	viewByJSON := map[string]specField{}
	for _, f := range viewFields {
		if f.jsonName != "" {
			viewByJSON[f.jsonName] = f
		}
	}

	for _, vf := range viewFields {
		if vf.jsonName == "" {
			continue
		}
		sf, inSpec := specByJSON[vf.jsonName]
		if !inSpec {
			pass.Reportf(vf.pos.Pos(),
				"hashView field %s (json %q) has no Spec counterpart: the canonical JSON would not survive re-parse (Parse rejects unknown fields)",
				vf.name, vf.jsonName)
			continue
		}
		if sf.hint {
			pass.Reportf(vf.pos.Pos(),
				"hashView includes %s (json %q), which Spec documents as an execution hint: hints must be excluded from the content-hash input or identical computations stop sharing a cache entry",
				vf.name, vf.jsonName)
		}
	}
	for _, sf := range specFields {
		if sf.jsonName == "" || sf.hint {
			continue
		}
		if _, hashed := viewByJSON[sf.jsonName]; !hashed {
			pass.Reportf(sf.pos.Pos(),
				"Spec field %s (json %q) is neither documented as an execution hint nor present in hashView: specs differing in it would collide on one content hash; add it to hashView or document why it is a hint",
				sf.name, sf.jsonName)
		}
	}
	return nil
}

// findStruct returns the struct type declared under the given name, or
// nil.
func findStruct(files []*ast.File, name string) *ast.StructType {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// parseFields flattens a struct's named fields with their JSON names
// and hint markers. Embedded fields are skipped (the spec schema has
// none; flattening their promotion rules is out of scope).
func parseFields(st *ast.StructType) []specField {
	var out []specField
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue
		}
		doc := ""
		if field.Doc != nil {
			doc += field.Doc.Text()
		}
		if field.Comment != nil {
			doc += " " + field.Comment.Text()
		}
		// Comments wrap freely, so the phrase may span a line break;
		// collapse all whitespace before matching.
		doc = strings.Join(strings.Fields(strings.ToLower(doc)), " ")
		hint := strings.Contains(doc, hintPhrase)
		for _, name := range field.Names {
			out = append(out, specField{
				name:     name.Name,
				jsonName: jsonName(name.Name, field.Tag),
				hint:     hint,
				pos:      name,
			})
		}
	}
	return out
}

// jsonName resolves the JSON key encoding/json would use for a field:
// the tag's first element, the Go name without a tag, "" for json:"-".
func jsonName(goName string, tag *ast.BasicLit) string {
	if tag == nil {
		return goName
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return goName
	}
	jt, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return goName
	}
	name, _, _ := strings.Cut(jt, ",")
	switch name {
	case "-":
		return ""
	case "":
		return goName
	}
	return name
}
