package lint

import (
	"go/ast"
	"go/types"

	"meg/internal/lint/scope"
)

// WallClock flags wall-clock reads — time.Now, time.Since — inside
// simulation packages.
//
// Wall time is the canonical nondeterministic input: a simulation that
// reads it (for timing-based heuristics, struct timestamps, "how long
// has this round run" logic) produces results that vary with machine
// load, which the byte-identical promise forbids. Timing belongs to
// the harnesses: the bench suite (whose entire job is measuring wall
// time), the serving layer (timeouts, heartbeats), and the command
// binaries that report durations to humans — all of which the scope
// table exempts. There is deliberately no suppression directive:
// simulation code has no known-safe wall-clock read, so the fix is
// always to hoist the measurement into the caller.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since in simulation packages (wall time is a nondeterministic input)",
	Run:  runWallClock,
}

// wallClockFuncs are the time package's clock-reading entry points.
// time.Sleep is included: sleeping does not itself perturb results,
// but no simulation package has a legitimate reason to stall, and
// sleeps correlate results with the scheduler.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

func runWallClock(pass *Pass) error {
	if !scope.InModule(pass.Path) || scope.WallClockAllowed(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in simulation package %s: wall time is a nondeterministic input; measure in the bench/serve harness or a cmd binary instead",
				fn.Name(), pass.Path)
			return true
		})
	}
	return nil
}
