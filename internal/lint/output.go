package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// This file renders diagnostics for machine consumers. Text output
// (Diagnostic.String, one line per finding) stays the CI gate; JSON is
// for scripting over findings, and SARIF 2.1.0 is what GitHub code
// scanning ingests to annotate pull requests inline. All three render
// the same diagnostics in the same order, so the gate and the
// annotations can never disagree.

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders the diagnostics as a JSON array, with file paths
// relative to root (module-relative paths keep output stable across
// checkouts).
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relTo(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — just the fields GitHub code scanning reads.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. The rule
// catalog lists every analyzer that ran (not just those that fired),
// so a clean run still documents what was checked; artifact URIs are
// root-relative with the %SRCROOT% base GitHub resolves against the
// repository checkout.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(relTo(root, d.Pos.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "meglint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relTo relativizes file against root when possible, else returns it
// unchanged.
func relTo(root, file string) string {
	if root == "" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 1 && rel[0] == '.' && rel[1] == '.' {
		return file
	}
	return rel
}
