package lint

import (
	"go/ast"
	"go/types"

	"meg/internal/lint/scope"
)

// MapIter flags `range` over a map inside determinism-critical
// packages.
//
// The Go runtime randomizes map iteration order on every loop, so any
// map range whose effect depends on element order — appending to a
// slice, accumulating floating-point sums, emitting edges — silently
// varies between runs and between worker layouts, which is exactly
// the bug class the byte-identical checksum gates exist to catch. The
// simulation core therefore traverses canonically ordered slices, and
// this analyzer keeps maps from creeping back in.
//
// A range whose effect provably cannot depend on order (a pure
// membership count, say) may carry a `//meg:order-insensitive
// <justification>` directive on its line or the line above.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid range over maps in determinism-critical packages (iteration order is randomized)",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	if !scope.Deterministic(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Allowed(rs, "order-insensitive") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s in determinism-critical package %s: iteration order is randomized; iterate a canonically sorted slice, or annotate //meg:order-insensitive with a justification",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Path)
			return true
		})
	}
	return nil
}
