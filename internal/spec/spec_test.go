package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"meg/internal/core"
)

func TestParseDefaultsAndCanonical(t *testing.T) {
	s, err := Parse([]byte(`{"model":{"name":"geometric","n":256}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.SchemaVersion != Version {
		t.Errorf("version not defaulted: %d", s.SchemaVersion)
	}
	if s.Model.Mult != 2 || s.Model.RFrac != 0.5 || s.Model.Density != 1 {
		t.Errorf("geometric defaults wrong: %+v", s.Model)
	}
	if s.Protocol.Name != "flooding" || s.Engine.Kernel != "auto" {
		t.Errorf("protocol/engine defaults wrong: %+v %+v", s.Protocol, s.Engine)
	}
	if s.Trials != 1 || s.Sources != 1 || s.Seed != 1 || s.SeedPolicy != SeedFixed {
		t.Errorf("campaign defaults wrong: %+v", s)
	}
	if s.MaxRounds != core.DefaultRoundCap(256) {
		t.Errorf("round cap not materialized: %d", s.MaxRounds)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"model":{"name":"geometric","n":256},"trails":7}`))
	if err == nil || !strings.Contains(err.Error(), "trails") {
		t.Fatalf("typo'd field not rejected: %v", err)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"model":{"name":"geometric","n":1}}`,                                      // n too small
		`{"model":{"name":"nosuch","n":64}}`,                                        // unknown model
		`{"model":{"name":"geometric","n":64},"protocol":{"name":"x"}}`,             // unknown protocol
		`{"model":{"name":"geometric","n":64},"seedPolicy":"rolled"}`,               // unknown policy
		`{"version":9,"model":{"name":"geometric","n":64}}`,                         // unknown version
		`{"model":{"name":"geometric","n":64},"sources":65}`,                        // sources > n
		`{"model":{"name":"edge","n":64,"q":1.5}}`,                                  // q out of range
		`{"experiment":"E1","scale":"gigantic"}`,                                    // unknown scale
		`{"model":{"name":"geometric","n":64},"protocol":{"name":"probabilistic"}}`, // missing beta
		`{"model":{"name":"waypoint","n":64,"rfrac":0}}`,                            // frozen walk needs lattice
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("invalid spec accepted: %s", c)
		}
	}
}

func TestHashStableAcrossSpellings(t *testing.T) {
	sparse, err := Parse([]byte(`{"model":{"name":"geometric","n":256}}`))
	if err != nil {
		t.Fatalf("Parse sparse: %v", err)
	}
	explicit, err := Parse([]byte(`{
		"version": 1,
		"model": {"name":"geometric","n":256,"mult":2,"rfrac":0.5,"density":1},
		"protocol": {"name":"flooding"},
		"engine": {"kernel":"auto"},
		"trials": 1, "sources": 1, "maxRounds": 512,
		"seed": 1, "seedPolicy": "fixed"
	}`))
	if err != nil {
		t.Fatalf("Parse explicit: %v", err)
	}
	h1, err := sparse.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h1 != h2 {
		t.Errorf("sparse and explicit spellings hash differently:\n%s\n%s", h1, h2)
	}
	if len(h1) != 64 {
		t.Errorf("hash is not hex sha256: %q", h1)
	}
}

func TestHashIgnoresWorkers(t *testing.T) {
	a, _ := Parse([]byte(`{"model":{"name":"edge","n":128}}`))
	b, _ := Parse([]byte(`{"model":{"name":"edge","n":128},"workers":8}`))
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Errorf("workers (an execution hint) perturbed the hash")
	}
}

func TestHashSensitiveToContent(t *testing.T) {
	base, _ := Parse([]byte(`{"model":{"name":"edge","n":128}}`))
	hBase, _ := base.Hash()
	for _, variant := range []string{
		`{"model":{"name":"edge","n":128},"trials":2}`,
		`{"model":{"name":"edge","n":128},"seed":2}`,
		`{"model":{"name":"edge","n":128,"q":0.25}}`,
		`{"model":{"name":"edge","n":256}}`,
		`{"model":{"name":"edge","n":128},"protocol":{"name":"push"}}`,
	} {
		v, err := Parse([]byte(variant))
		if err != nil {
			t.Fatalf("Parse %s: %v", variant, err)
		}
		hv, _ := v.Hash()
		if hv == hBase {
			t.Errorf("variant did not change the hash: %s", variant)
		}
	}
}

func TestUnconsumedFieldsZeroed(t *testing.T) {
	// A geometric spec with stray edge-model parameters hashes the same
	// as one without them: canonicalization zeroes unconsumed fields.
	a, err := Parse([]byte(`{"model":{"name":"geometric","n":256,"phatmult":9,"q":0.9}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b, _ := Parse([]byte(`{"model":{"name":"geometric","n":256}}`))
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Errorf("stray edge params perturbed a geometric spec's hash")
	}
	if a.Model.PhatMult != 0 || a.Model.Q != 0 {
		t.Errorf("unconsumed fields not zeroed: %+v", a.Model)
	}
}

func TestCanonicalJSONRoundTrip(t *testing.T) {
	s, _ := Parse([]byte(`{"model":{"name":"torus","n":128},"trials":3,"sources":2}`))
	cj, err := s.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	re, err := Parse(cj)
	if err != nil {
		t.Fatalf("canonical JSON does not re-parse: %v\n%s", err, cj)
	}
	h1, _ := s.Hash()
	h2, _ := re.Hash()
	if h1 != h2 {
		t.Errorf("canonical JSON round trip changed the hash")
	}
}

func TestSeedPolicyContent(t *testing.T) {
	a, err := Parse([]byte(`{"model":{"name":"edge","n":128},"seedPolicy":"content","seed":77}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a.Seed != 0 {
		t.Errorf("content policy should zero the stored seed, got %d", a.Seed)
	}
	sa, err := a.EffectiveSeed()
	if err != nil {
		t.Fatalf("EffectiveSeed: %v", err)
	}
	if sa == 0 {
		t.Errorf("derived seed is zero")
	}
	// Same content → same derived seed; different content → different.
	b, _ := Parse([]byte(`{"model":{"name":"edge","n":128},"seedPolicy":"content"}`))
	sb, _ := b.EffectiveSeed()
	if sa != sb {
		t.Errorf("identical content derived different seeds")
	}
	c, _ := Parse([]byte(`{"model":{"name":"edge","n":256},"seedPolicy":"content"}`))
	sc, _ := c.EffectiveSeed()
	if sc == sa {
		t.Errorf("different content derived identical seeds")
	}
}

func TestExperimentSpecCanonical(t *testing.T) {
	s, err := Parse([]byte(`{"experiment":"E4","model":{"name":"geometric","n":4096},"trials":9}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Scale != "quick" {
		t.Errorf("scale not defaulted: %q", s.Scale)
	}
	if s.Model.Name != "" || s.Trials != 0 {
		t.Errorf("experiment spec should drop campaign fields: %+v", s)
	}
	if _, _, err := s.NewFactory(); err == nil {
		t.Errorf("experiment spec should have no model factory")
	}
}

func TestNewFactoryAllModels(t *testing.T) {
	for _, name := range []string{"geometric", "torus", "edge", "waypoint", "billiard", "walkers", "iiddisk"} {
		s := Spec{Model: Model{Name: name, N: 64, RFrac: 0.5}}
		factory, desc, err := s.NewFactory()
		if err != nil {
			t.Fatalf("NewFactory(%s): %v", name, err)
		}
		if desc == "" {
			t.Errorf("NewFactory(%s): empty description", name)
		}
		d := factory()
		if d.N() != 64 {
			t.Errorf("NewFactory(%s): wrong n %d", name, d.N())
		}
	}
}

func TestSpecJSONStructRoundTrip(t *testing.T) {
	s, _ := Parse([]byte(`{"model":{"name":"edge","n":128},"workers":4}`))
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(out, s) {
		t.Errorf("struct round trip changed the spec:\n in=%+v\nout=%+v", s, out)
	}
}

func TestRFracZeroIsFrozenWalkNotDefault(t *testing.T) {
	// Explicit rfrac 0 is a meaningful configuration (frozen walk /
	// static snapshot) and must not be silently replaced by the 0.5
	// default — only an absent field defaults.
	frozen, err := Parse([]byte(`{"model":{"name":"geometric","n":256,"rfrac":0}}`))
	if err != nil {
		t.Fatalf("Parse frozen: %v", err)
	}
	if frozen.Model.RFrac != 0 {
		t.Fatalf("explicit rfrac 0 rewritten to %g", frozen.Model.RFrac)
	}
	absent, _ := Parse([]byte(`{"model":{"name":"geometric","n":256}}`))
	if absent.Model.RFrac != 0.5 {
		t.Fatalf("absent rfrac defaulted to %g, want 0.5", absent.Model.RFrac)
	}
	hf, _ := frozen.Hash()
	ha, _ := absent.Hash()
	if hf == ha {
		t.Fatalf("frozen and default specs hash identically")
	}
	// The frozen spec's canonical JSON must round-trip to the same
	// hash (rfrac always marshals, so 0 is not re-defaulted).
	cj, _ := frozen.CanonicalJSON()
	re, err := Parse(cj)
	if err != nil {
		t.Fatalf("re-parse canonical frozen spec: %v", err)
	}
	hr, _ := re.Hash()
	if hr != hf {
		t.Fatalf("frozen spec hash changed across canonical JSON round trip")
	}
	if _, _, err := frozen.NewFactory(); err != nil {
		t.Fatalf("frozen-walk factory: %v", err)
	}
}

func TestProtocolEngineIsExecutionHint(t *testing.T) {
	base := Spec{
		Model:    Model{Name: "edge", N: 256},
		Protocol: Protocol{Name: "push"},
	}
	ref := base
	ref.ProtocolEngine = "reference"
	h1, err := base.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	h2, err := ref.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("protocolEngine perturbed the content hash: %s vs %s", h1, h2)
	}
	c, err := ref.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if c.ProtocolEngine != "reference" {
		t.Fatalf("canonicalization dropped protocolEngine: %q", c.ProtocolEngine)
	}
}

func TestProtocolEngineValidation(t *testing.T) {
	s := Spec{
		Model:          Model{Name: "edge", N: 256},
		Protocol:       Protocol{Name: "push"},
		ProtocolEngine: "warp",
	}
	if _, err := s.Canonical(); err == nil {
		t.Fatal("bogus protocolEngine accepted")
	}
}

func TestProtocolEngineZeroedWhereMeaningless(t *testing.T) {
	flood := Spec{Model: Model{Name: "edge", N: 256}, ProtocolEngine: "reference"}
	c, err := flood.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if c.ProtocolEngine != "" {
		t.Fatalf("flooding spec kept protocolEngine %q", c.ProtocolEngine)
	}
	// Experiment specs keep it: like Workers/Parallelism it is a
	// preserved execution hint the experiment harness can honor.
	exp := Spec{Experiment: "E4", ProtocolEngine: "reference"}
	c, err = exp.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if c.ProtocolEngine != "reference" {
		t.Fatalf("experiment spec lost protocolEngine: %q", c.ProtocolEngine)
	}
}

func TestProtocolHashCarriesAlgoRevision(t *testing.T) {
	// Non-flooding protocol realizations are versioned into the hash so
	// algorithm changes can invalidate stale cached results; only
	// flooding campaign hashes stay on the bare spec.
	push := Spec{Model: Model{Name: "edge", N: 256}, Protocol: Protocol{Name: "push"}}
	b, err := push.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if !strings.Contains(string(b), `"protoAlgo":`) {
		t.Fatalf("protocol hash view lacks protoAlgo: %s", b)
	}
	flood := Spec{Model: Model{Name: "edge", N: 256}}
	b, err = flood.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if strings.Contains(string(b), `"protoAlgo":`) {
		t.Fatalf("flooding hash view carries protoAlgo: %s", b)
	}
	// Experiments run the protocol family internally (E16), so their
	// hashes carry the revision too.
	exp := Spec{Experiment: "E16"}
	b, err = exp.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if !strings.Contains(string(b), `"protoAlgo":`) {
		t.Fatalf("experiment hash view lacks protoAlgo: %s", b)
	}
}

func TestHashIgnoresReceivers(t *testing.T) {
	a, _ := Parse([]byte(`{"model":{"name":"edge","n":128}}`))
	b, _ := Parse([]byte(`{"model":{"name":"edge","n":128},"receivers":["http://hooks.example/jobs"]}`))
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Errorf("receivers (an execution hint) perturbed the hash")
	}
}

func TestReceiversValidation(t *testing.T) {
	ok := `{"model":{"name":"edge","n":128},"receivers":["http://a.example/h","https://b.example:9090/h?x=1"]}`
	if _, err := Parse([]byte(ok)); err != nil {
		t.Fatalf("valid receivers rejected: %v", err)
	}
	for _, bad := range []string{
		`{"model":{"name":"edge","n":128},"receivers":["ftp://a.example/h"]}`,
		`{"model":{"name":"edge","n":128},"receivers":["not a url"]}`,
		`{"model":{"name":"edge","n":128},"receivers":["/relative/path"]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("bad receiver accepted: %s", bad)
		}
	}
	many := make([]string, maxReceivers+1)
	for i := range many {
		many[i] = "http://hooks.example/h"
	}
	s := Spec{Model: Model{Name: "edge", N: 128}, Receivers: many}
	if _, err := s.Canonical(); err == nil {
		t.Errorf("%d receivers accepted, want the %d cap enforced", len(many), maxReceivers)
	}
}
