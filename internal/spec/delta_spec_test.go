package spec

import (
	"strings"
	"testing"
)

func TestSnapshotHintValidatedAndExcludedFromHash(t *testing.T) {
	if _, err := Parse([]byte(`{"model":{"name":"edge","n":128},"snapshot":"sideways"}`)); err == nil {
		t.Fatal("bogus snapshot mode accepted")
	}
	a, err := Parse([]byte(`{"model":{"name":"edge","n":128}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b, err := Parse([]byte(`{"model":{"name":"edge","n":128},"snapshot":"delta"}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Fatal("snapshot execution hint perturbed the content hash")
	}
	if b.Snapshot != "delta" {
		t.Fatalf("canonicalization dropped the snapshot hint: %q", b.Snapshot)
	}
	cj, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cj), "snapshot") {
		t.Fatalf("hash view leaks the snapshot hint: %s", cj)
	}
}

func TestJumpIsHashedForLatticeModels(t *testing.T) {
	base, err := Parse([]byte(`{"model":{"name":"geometric","n":256}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if base.Model.Jump != 1 {
		t.Fatalf("geometric jump default = %g, want 1", base.Model.Jump)
	}
	lazy, err := Parse([]byte(`{"model":{"name":"geometric","n":256,"jump":0.05}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	hb, _ := base.Hash()
	hl, _ := lazy.Hash()
	if hb == hl {
		t.Fatal("jump is a model parameter and must perturb the hash")
	}
	if _, err := Parse([]byte(`{"model":{"name":"geometric","n":256,"jump":1.5}}`)); err == nil {
		t.Fatal("jump > 1 accepted")
	}
}

func TestJumpZeroedForNonLatticeModels(t *testing.T) {
	s, err := Parse([]byte(`{"model":{"name":"waypoint","n":256,"jump":0.1}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Model.Jump != 0 {
		t.Fatalf("mobility model kept jump=%g; unconsumed fields must zero", s.Model.Jump)
	}
	e, err := Parse([]byte(`{"model":{"name":"edge","n":256,"jump":0.1}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if e.Model.Jump != 0 {
		t.Fatalf("edge model kept jump=%g", e.Model.Jump)
	}
}

// TestModelAlgoRevisionInHash pins which hashes carry the model
// realization revision: geometric-family campaigns and experiments —
// whose walks moved to counter-based streams and sorted rows — but
// never edge-only campaigns, whose realizations did not change.
func TestModelAlgoRevisionInHash(t *testing.T) {
	hashViewOf := func(src string) string {
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatalf("Parse(%s): %v", src, err)
		}
		b, err := s.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for _, src := range []string{
		`{"model":{"name":"geometric","n":128}}`,
		`{"model":{"name":"torus","n":128}}`,
		`{"model":{"name":"walkers","n":128}}`,
		`{"experiment":"E4"}`,
	} {
		if !strings.Contains(hashViewOf(src), `"modelAlgo":`) {
			t.Errorf("hash view of %s lacks modelAlgo", src)
		}
	}
	if strings.Contains(hashViewOf(`{"model":{"name":"edge","n":128}}`), `"modelAlgo":`) {
		t.Error("edge-only campaign hash carries modelAlgo; edge realizations did not change")
	}
}

// TestAlgoRevisionFieldsAreInert pins that user-supplied revision
// markers are ignored: they exist on Spec only so canonical JSON
// re-parses.
func TestAlgoRevisionFieldsAreInert(t *testing.T) {
	a, err := Parse([]byte(`{"model":{"name":"geometric","n":128}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{"model":{"name":"geometric","n":128},"modelAlgo":7,"protoAlgo":9}`))
	if err != nil {
		t.Fatalf("canonical-form fields rejected on input: %v", err)
	}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Fatal("supplied algo revisions perturbed the hash")
	}
	if b.ModelAlgo != 0 || b.ProtoAlgo != 0 {
		t.Fatalf("canonicalization kept supplied revisions: %d/%d", b.ModelAlgo, b.ProtoAlgo)
	}
}
