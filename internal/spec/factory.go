package spec

import (
	"fmt"
	"math"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/geommeg"
	"meg/internal/mobility"
	"meg/internal/protocol"
)

// NewFactory builds the trial factory for the spec's model together
// with a human-readable description of the instantiated parameters.
// This is the single model-construction path shared by megsim and
// megserve. It fails on experiment specs, which do not name a model.
//
// When the spec carries a Parallelism hint the factory hands it to
// every constructed dynamics (core.Parallelizable), so snapshot builds
// use the worker pool no matter which engine — flooding, protocol, or
// experiment — drives the model. Snapshots are byte-identical for every
// worker count, which is what lets an execution hint stay outside the
// content hash.
func (s Spec) NewFactory() (func() core.Dynamics, string, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, "", err
	}
	if c.Experiment != "" {
		return nil, "", fmt.Errorf("spec: experiment spec %q has no model factory", c.Experiment)
	}
	wrap := func(mk func() core.Dynamics, desc string, err error) (func() core.Dynamics, string, error) {
		if p := c.Parallelism; p != 0 && err == nil {
			inner := mk
			mk = func() core.Dynamics {
				d := inner()
				if pz, ok := d.(core.Parallelizable); ok {
					pz.SetParallelism(p)
				}
				return d
			}
		}
		return mk, desc, err
	}
	m := c.Model
	n := m.N
	radius := m.Mult * math.Sqrt(math.Log(float64(n))/m.Density)
	side := math.Sqrt(float64(n))
	moveR := m.RFrac * radius

	switch m.Name {
	case "geometric":
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: moveR, Density: m.Density, Jump: m.Jump}
		if err := cfg.Validate(); err != nil {
			return nil, "", err
		}
		return wrap(func() core.Dynamics { return geommeg.MustNew(cfg) },
			fmt.Sprintf("geometric-MEG n=%d R=%.2f r=%.2f δ=%.2f", n, radius, moveR, m.Density), nil)
	case "torus":
		cfg := geommeg.Config{N: n, R: radius, MoveRadius: moveR, Density: m.Density, Jump: m.Jump, Torus: true}
		if err := cfg.Validate(); err != nil {
			return nil, "", err
		}
		return wrap(func() core.Dynamics { return geommeg.MustNew(cfg) },
			fmt.Sprintf("walkers on toroidal grid n=%d R=%.2f r=%.2f", n, radius, moveR), nil)
	case "edge":
		pHat := m.PhatMult * math.Log(float64(n)) / float64(n)
		if pHat >= 1 {
			return nil, "", fmt.Errorf("spec: edge model p̂=%.3g ≥ 1 (phatmult too large for n=%d)", pHat, n)
		}
		p := m.Q * pHat / (1 - pHat)
		init := edgemeg.InitStationary
		if m.Empty {
			init = edgemeg.InitEmpty
		}
		cfg := edgemeg.Config{N: n, P: p, Q: m.Q, Init: init}
		if err := cfg.Validate(); err != nil {
			return nil, "", err
		}
		return wrap(func() core.Dynamics { return edgemeg.MustNew(cfg) },
			fmt.Sprintf("edge-MEG n=%d p=%.3g q=%.3g p̂=%.3g init=%s", n, p, m.Q, pHat, init), nil)
	case "waypoint":
		return wrap(func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWaypointTorus(n, side, moveR/2, moveR), radius)
		},
			fmt.Sprintf("random waypoint torus n=%d R=%.2f v∈[%.2f,%.2f]", n, radius, moveR/2, moveR), nil)
	case "billiard":
		return wrap(func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewBilliard(n, side, moveR, 0.1), radius)
		},
			fmt.Sprintf("billiard n=%d R=%.2f speed=%.2f", n, radius, moveR), nil)
	case "walkers":
		return wrap(func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewWalkersTorus(n, side, moveR), radius)
		},
			fmt.Sprintf("continuous walkers torus n=%d R=%.2f r=%.2f", n, radius, moveR), nil)
	case "iiddisk":
		return wrap(func() core.Dynamics {
			return mobility.NewDynamics(mobility.NewRestrictedDisk(n, side, 2*radius), radius)
		},
			fmt.Sprintf("restricted i.i.d. disk n=%d R=%.2f roam=%.2f", n, radius, 2*radius), nil)
	}
	return nil, "", fmt.Errorf("spec: unknown model %q", m.Name)
}

// NewProtocol builds the spec's protocol runner.
func (s Spec) NewProtocol() (protocol.Protocol, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	return protocol.ByName(c.Protocol.Name, c.Protocol.Beta, c.Protocol.Loss)
}

// Kernel returns the parsed engine kernel (KernelAuto for non-flooding
// protocols, whose Engine is zeroed).
func (s Spec) Kernel() (core.Kernel, error) {
	c, err := s.Canonical()
	if err != nil {
		return core.KernelAuto, err
	}
	return core.ParseKernel(c.Engine.Kernel)
}
