// Package spec defines the canonical, versioned JSON description of one
// simulation run — the unit of work megserve schedules, caches, and
// streams, and the value megsim builds from its flags so that the CLI
// and the service execute the exact same code path.
//
// A spec goes through three stages:
//
//  1. Parse: strict JSON decoding (unknown fields rejected);
//  2. Canonicalize: defaults filled in, fields the chosen model or
//     protocol does not consume zeroed out, the round cap materialized;
//  3. Hash: SHA-256 over the canonical form minus execution-only hints
//     (Workers, Parallelism), yielding the content address under which results are
//     cached — two specs that describe the same computation hash
//     identically no matter how sparsely they were written.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"

	"meg/internal/core"
)

// Version is the current spec schema version.
const Version = 1

// Model selects the evolving-graph substrate and its parameters. The
// geometric family (geometric, torus, waypoint, billiard, walkers,
// iiddisk) consumes Mult, RFrac, and Density; the edge family (edge)
// consumes PhatMult, Q, and Empty. Unconsumed fields are zeroed during
// canonicalization so they cannot perturb the content hash.
type Model struct {
	// Name is one of geometric|torus|edge|waypoint|billiard|walkers|iiddisk.
	Name string `json:"name"`
	// N is the number of nodes.
	N int `json:"n"`
	// Mult scales the transmission radius: R = Mult·√(log n / Density).
	// Default 2.
	Mult float64 `json:"mult,omitempty"`
	// RFrac scales the move radius: r = RFrac·R. Zero is meaningful —
	// it freezes the walk (a static snapshot) — so unlike the other
	// parameters it does NOT default from zero: an absent JSON field
	// defaults to 0.5 (applied at decode time), while an explicit 0
	// (JSON or struct literal) stays 0. The field always marshals so
	// canonical JSON is unambiguous.
	RFrac float64 `json:"rfrac"`
	// Density is the node density δ. Default 1.
	Density float64 `json:"density,omitempty"`
	// Jump is the lazy-walk activation probability of the lattice
	// models (geometric, torus): each round a node jumps with
	// probability Jump and holds otherwise. Default 1 (the paper's
	// walk); small values give the low-churn regime the incremental
	// snapshot path targets. Zeroed for every other model.
	Jump float64 `json:"jump,omitempty"`
	// PhatMult sets the edge model's stationary edge probability:
	// p̂ = PhatMult·log n / n. Default 4.
	PhatMult float64 `json:"phatmult,omitempty"`
	// Q is the edge model's death rate. Default 0.5.
	Q float64 `json:"q,omitempty"`
	// Empty starts the edge model from the empty graph (worst case)
	// instead of the stationary distribution.
	Empty bool `json:"empty,omitempty"`
}

// modelJSON mirrors Model for decoding. RFrac is a pointer so an
// absent field (→ default 0.5) is distinguishable from an explicit 0
// (→ frozen walk); everything else treats zero as unset because zero
// is invalid for those parameters anyway.
type modelJSON struct {
	Name     string   `json:"name"`
	N        int      `json:"n"`
	Mult     float64  `json:"mult,omitempty"`
	RFrac    *float64 `json:"rfrac"`
	Density  float64  `json:"density,omitempty"`
	Jump     float64  `json:"jump,omitempty"`
	PhatMult float64  `json:"phatmult,omitempty"`
	Q        float64  `json:"q,omitempty"`
	Empty    bool     `json:"empty,omitempty"`
}

// UnmarshalJSON implements json.Unmarshaler with the same strictness
// Parse applies at the top level (a custom unmarshaler would otherwise
// silently drop unknown-field rejection for the model subobject).
func (m *Model) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j modelJSON
	if err := dec.Decode(&j); err != nil {
		return err
	}
	*m = Model{
		Name: j.Name, N: j.N,
		Mult: j.Mult, RFrac: 0.5, Density: j.Density, Jump: j.Jump,
		PhatMult: j.PhatMult, Q: j.Q, Empty: j.Empty,
	}
	if j.RFrac != nil {
		m.RFrac = *j.RFrac
	}
	return nil
}

// Protocol selects the information-spreading protocol run on every
// snapshot sequence. Beta parameterizes probabilistic flooding, Loss
// lossy flooding; both are zeroed for the other protocols.
type Protocol struct {
	// Name is one of flooding|probabilistic|push|push-pull|lossy.
	// Default flooding.
	Name string `json:"name"`
	// Beta is the forward probability of probabilistic flooding, in (0, 1].
	Beta float64 `json:"beta,omitempty"`
	// Loss is the per-message loss probability of lossy flooding, in [0, 1).
	Loss float64 `json:"loss,omitempty"`
}

// Engine tunes the flooding engine. Only the flooding protocol consumes
// it; it is zeroed for the others.
type Engine struct {
	// Kernel is auto|push|pull (default auto).
	Kernel string `json:"kernel,omitempty"`
	// PullThreshold overrides the push→pull switch fraction (0 = derive).
	PullThreshold float64 `json:"pullThreshold,omitempty"`
	// BatchSources runs each trial's sources bit-parallel over one
	// shared realization (core.FloodMulti). Effective only with the
	// auto kernel.
	BatchSources bool `json:"batchSources,omitempty"`
}

// SeedPolicy values.
const (
	// SeedFixed uses the spec's Seed verbatim.
	SeedFixed = "fixed"
	// SeedContent derives the seed from the spec's content hash: the
	// run stays fully deterministic and cacheable, but specs differing
	// in any field get decorrelated randomness without the author
	// picking seeds.
	SeedContent = "content"
)

// Spec is the versioned description of one run. The zero value is not
// usable; build specs via JSON (Parse) or literals and call Canonical.
type Spec struct {
	// SchemaVersion must be 1 (0 is defaulted to 1).
	SchemaVersion int `json:"version"`
	// Model selects the evolving-graph substrate.
	Model Model `json:"model"`
	// Protocol selects the spreading protocol (default flooding).
	Protocol Protocol `json:"protocol"`
	// Engine tunes the flooding engine (flooding protocol only).
	Engine Engine `json:"engine"`
	// Trials is the number of independent repetitions (default 1).
	Trials int `json:"trials"`
	// Sources is the number of sources per trial (default 1).
	Sources int `json:"sources"`
	// MaxRounds caps each run; 0 selects core.DefaultRoundCap(n) and is
	// materialized during canonicalization.
	MaxRounds int `json:"maxRounds"`
	// Seed is the campaign seed under SeedFixed (default 1).
	Seed uint64 `json:"seed"`
	// SeedPolicy is fixed|content (default fixed).
	SeedPolicy string `json:"seedPolicy"`
	// Experiment, when non-empty, makes the job run the named
	// paper-reproduction experiment (e.g. "E4") instead of a raw
	// campaign; Model/Protocol/Engine/Trials/Sources are zeroed and
	// Scale sizes the run.
	Experiment string `json:"experiment,omitempty"`
	// Scale sizes experiment jobs: quick|standard|full (default quick).
	Scale string `json:"scale,omitempty"`
	// Workers bounds worker parallelism (0 = all CPUs). An execution
	// hint: excluded from the content hash, so the same spec run with
	// different parallelism still hits the same cache entry.
	Workers int `json:"workers,omitempty"`
	// Parallelism is the intra-trial worker count of the sharded
	// flooding engine and the models' parallel snapshot builds
	// (0 or 1 = serial, -1 = all CPUs). Like Workers it is an execution
	// hint: results are byte-identical for every value, so it is
	// excluded from the content hash and stripped from cached results.
	Parallelism int `json:"parallelism,omitempty"`
	// ProtocolEngine selects the implementation that runs a non-flooding
	// protocol: "kernel" (the bit-parallel sharded gossip engine, the
	// default) or "reference" (the per-node oracle in internal/protocol).
	// The engines are byte-identical on the same seeds, so like Workers
	// and Parallelism this is an execution hint excluded from the
	// content hash and stripped from cached results. Zeroed for the
	// flooding protocol (which it cannot affect); preserved for
	// experiment specs, whose protocol experiments honor it.
	ProtocolEngine string `json:"protocolEngine,omitempty"`
	// Snapshot selects the engines' per-round snapshot path: "full"
	// (or empty — rebuild every round) or "delta" (incremental
	// maintenance from the model's edge churn, with transparent
	// fallback for models without delta support). The paths are
	// byte-identical, so like Workers and Parallelism this is an
	// execution hint excluded from the content hash and stripped from
	// cached results.
	Snapshot string `json:"snapshot,omitempty"`
	// Receivers lists webhook URLs (http/https) that megserve notifies
	// when the job reaches a terminal state: a POST per URL carrying
	// {event, id, hash, status, error}, with bounded retry. Receivers
	// change where a result is announced, never what it contains, so
	// like Workers this is an execution hint: excluded from the content
	// hash and stripped from cached results. Coalesced submissions each
	// contribute their receivers to the one in-flight job.
	Receivers []string `json:"receivers,omitempty"`
	// ProtoAlgo and ModelAlgo appear in the hashed canonical form
	// (CanonicalJSON) to version realization semantics. They are
	// accepted on input only so canonical JSON re-parses; their values
	// are never trusted — canonicalization zeroes them and the hash
	// recomputes them from the current revisions.
	ProtoAlgo int `json:"protoAlgo,omitempty"`
	ModelAlgo int `json:"modelAlgo,omitempty"`
}

// Parse strictly decodes and canonicalizes a spec: unknown fields are
// rejected so typos fail loudly instead of silently running defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after spec object")
	}
	return s.Canonical()
}

// geometricFamily reports whether the model consumes the geometric
// parameters (Mult, RFrac, Density).
func geometricFamily(name string) bool {
	switch name {
	case "geometric", "torus", "waypoint", "billiard", "walkers", "iiddisk":
		return true
	}
	return false
}

// Canonical validates s and returns its canonical form: defaults
// filled, unconsumed fields zeroed, the round cap materialized. The
// input is not modified. Canonical is idempotent, and every exported
// consumer (Hash, NewFactory, executors) canonicalizes internally, so
// callers may pass sparse specs anywhere.
func (s Spec) Canonical() (Spec, error) {
	if s.SchemaVersion == 0 {
		s.SchemaVersion = Version
	}
	if s.SchemaVersion != Version {
		return Spec{}, fmt.Errorf("spec: unsupported version %d (want %d)", s.SchemaVersion, Version)
	}
	if s.SeedPolicy == "" {
		s.SeedPolicy = SeedFixed
	}
	switch s.SeedPolicy {
	case SeedFixed:
		if s.Seed == 0 {
			s.Seed = 1
		}
	case SeedContent:
		// The seed is derived from the hash; a stored value is noise.
		s.Seed = 0
	default:
		return Spec{}, fmt.Errorf("spec: unknown seedPolicy %q (want %s|%s)", s.SeedPolicy, SeedFixed, SeedContent)
	}
	if s.Workers < 0 {
		return Spec{}, fmt.Errorf("spec: workers %d must be non-negative", s.Workers)
	}
	if s.Parallelism < -1 {
		return Spec{}, fmt.Errorf("spec: parallelism %d must be -1 (all CPUs), 0/1 (serial), or a worker count", s.Parallelism)
	}
	switch s.ProtocolEngine {
	case "", "kernel", "reference":
	default:
		return Spec{}, fmt.Errorf("spec: unknown protocolEngine %q (want kernel|reference)", s.ProtocolEngine)
	}
	if _, err := core.ParseSnapshotMode(s.Snapshot); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if err := validateReceivers(s.Receivers); err != nil {
		return Spec{}, err
	}
	// Revision markers are outputs of hashing, never inputs.
	s.ProtoAlgo, s.ModelAlgo = 0, 0

	if s.Experiment != "" {
		// Experiment jobs carry only (experiment, scale, seed): the
		// experiment defines its own models, protocols, and trial
		// counts internally.
		if s.Scale == "" {
			s.Scale = "quick"
		}
		switch s.Scale {
		case "quick", "standard", "full":
		default:
			return Spec{}, fmt.Errorf("spec: unknown scale %q (want quick|standard|full)", s.Scale)
		}
		s.Model = Model{}
		s.Protocol = Protocol{}
		s.Engine = Engine{}
		s.Trials, s.Sources, s.MaxRounds = 0, 0, 0
		return s, nil
	}
	s.Scale = ""

	m := &s.Model
	if m.Name == "" {
		return Spec{}, fmt.Errorf("spec: model.name is required")
	}
	if m.N < 2 {
		return Spec{}, fmt.Errorf("spec: model.n %d must be at least 2", m.N)
	}
	switch {
	case geometricFamily(m.Name):
		if m.Mult == 0 {
			m.Mult = 2
		}
		if m.Density == 0 {
			m.Density = 1
		}
		if m.Mult <= 0 || m.RFrac < 0 || m.Density <= 0 {
			return Spec{}, fmt.Errorf("spec: geometric model needs mult > 0, rfrac ≥ 0, density > 0")
		}
		// rfrac 0 freezes the walk — meaningful only on the lattice
		// models; the mobility models need a positive speed scale.
		if m.RFrac == 0 && m.Name != "geometric" && m.Name != "torus" {
			return Spec{}, fmt.Errorf("spec: model %q needs rfrac > 0 (only geometric|torus support a frozen walk)", m.Name)
		}
		// The lazy walk is a lattice-model knob; the mobility models
		// have no hold step, so the field is unconsumed there.
		if m.Name == "geometric" || m.Name == "torus" {
			if m.Jump == 0 {
				m.Jump = 1
			}
			if m.Jump < 0 || m.Jump > 1 {
				return Spec{}, fmt.Errorf("spec: jump probability %g outside (0, 1]", m.Jump)
			}
		} else {
			m.Jump = 0
		}
		m.PhatMult, m.Q, m.Empty = 0, 0, false
	case m.Name == "edge":
		if m.PhatMult == 0 {
			m.PhatMult = 4
		}
		if m.Q == 0 {
			m.Q = 0.5
		}
		if m.PhatMult <= 0 || m.Q <= 0 || m.Q > 1 {
			return Spec{}, fmt.Errorf("spec: edge model needs phatmult > 0 and q in (0, 1]")
		}
		m.Mult, m.RFrac, m.Density, m.Jump = 0, 0, 0, 0
	default:
		return Spec{}, fmt.Errorf("spec: unknown model %q (want geometric|torus|edge|waypoint|billiard|walkers|iiddisk)", m.Name)
	}

	p := &s.Protocol
	if p.Name == "" {
		p.Name = "flooding"
	}
	switch p.Name {
	case "flooding", "push", "push-pull":
		p.Beta, p.Loss = 0, 0
	case "probabilistic":
		if p.Beta <= 0 || p.Beta > 1 {
			return Spec{}, fmt.Errorf("spec: probabilistic protocol needs beta in (0, 1], got %g", p.Beta)
		}
		p.Loss = 0
	case "lossy":
		if p.Loss < 0 || p.Loss >= 1 {
			return Spec{}, fmt.Errorf("spec: lossy protocol needs loss in [0, 1), got %g", p.Loss)
		}
		p.Beta = 0
	default:
		return Spec{}, fmt.Errorf("spec: unknown protocol %q (want flooding|probabilistic|push|push-pull|lossy)", p.Name)
	}

	if p.Name == "flooding" {
		// Flooding runs on the flooding engine; the gossip-engine
		// selection hint does not apply.
		s.ProtocolEngine = ""
		e := &s.Engine
		if e.Kernel == "" {
			e.Kernel = "auto"
		}
		if _, err := core.ParseKernel(e.Kernel); err != nil {
			return Spec{}, fmt.Errorf("spec: %w", err)
		}
		if e.PullThreshold < 0 {
			return Spec{}, fmt.Errorf("spec: pullThreshold %g must be non-negative", e.PullThreshold)
		}
	} else {
		// Only the flooding protocol runs on the optimized engine.
		s.Engine = Engine{}
	}

	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Trials < 0 {
		return Spec{}, fmt.Errorf("spec: trials %d must be positive", s.Trials)
	}
	if s.Sources == 0 {
		s.Sources = 1
	}
	if s.Sources < 0 || s.Sources > m.N {
		return Spec{}, fmt.Errorf("spec: sources %d must be in [1, n]", s.Sources)
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = core.DefaultRoundCap(m.N)
	}
	if s.MaxRounds < 0 {
		return Spec{}, fmt.Errorf("spec: maxRounds %d must be positive", s.MaxRounds)
	}
	return s, nil
}

// maxReceivers bounds the webhook fan-out one spec may request.
const maxReceivers = 8

// validateReceivers checks the receiver URL list: bounded count, each
// entry an absolute http/https URL. The list is a delivery instruction,
// so validation is purely structural — reachability is the notifier's
// retry loop's problem, not the spec's.
func validateReceivers(urls []string) error {
	if len(urls) > maxReceivers {
		return fmt.Errorf("spec: %d receivers exceeds the maximum of %d", len(urls), maxReceivers)
	}
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil {
			return fmt.Errorf("spec: receiver %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("spec: receiver %q must be an absolute http(s) URL", raw)
		}
	}
	return nil
}

// protoAlgoRevision versions the realization semantics of the
// non-flooding protocols. The content hash promises "same hash, same
// bytes", so any change that makes the same (spec, seed) legitimately
// produce different results — such as the move to (node, round)-keyed
// decision streams that enabled the sharded gossip engine — must bump
// this revision, or a pre-existing on-disk cache would serve stale
// bytes for the new algorithm. It is folded into the hash for protocol
// campaigns AND for experiment specs (experiments like E16 run the
// protocol family internally); only flooding campaigns — whose
// realizations did not change — keep their original hashes.
const protoAlgoRevision = 2

// modelAlgoRevision versions the realization semantics of the
// geometric-family models, exactly as protoAlgoRevision does for the
// protocols: the move to counter-based per-node walk streams (which
// enabled the sharded Step) and the canonical sorted adjacency rows
// (which enabled the incremental snapshot path) legitimately changed
// the realizations every geometric-family (spec, seed) produces, so
// the revision is folded into their hashes — and into experiment
// hashes, since experiments run these models internally — to keep
// pre-existing caches from serving stale bytes. Edge-MEG campaigns are
// untouched: their resampling, draws, and row order did not change.
const modelAlgoRevision = 2

// hashView is the hashed subset of a canonical spec: everything except
// execution-only hints (Workers, Parallelism, ProtocolEngine,
// Snapshot). Field order is fixed by this struct, so the marshaled
// form is canonical.
type hashView struct {
	SchemaVersion int      `json:"version"`
	Model         Model    `json:"model"`
	Protocol      Protocol `json:"protocol"`
	// ProtoAlgo carries protoAlgoRevision for non-flooding protocol
	// campaigns and experiment specs (0, omitted, for flooding).
	ProtoAlgo int `json:"protoAlgo,omitempty"`
	// ModelAlgo carries modelAlgoRevision for geometric-family model
	// campaigns and experiment specs (0, omitted, for the edge model).
	ModelAlgo  int    `json:"modelAlgo,omitempty"`
	Engine     Engine `json:"engine"`
	Trials     int    `json:"trials"`
	Sources    int    `json:"sources"`
	MaxRounds  int    `json:"maxRounds"`
	Seed       uint64 `json:"seed"`
	SeedPolicy string `json:"seedPolicy"`
	Experiment string `json:"experiment,omitempty"`
	Scale      string `json:"scale,omitempty"`
}

// CanonicalJSON returns the canonical spec's hashed form as JSON — the
// exact bytes the content hash covers.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	v := hashView{
		SchemaVersion: c.SchemaVersion,
		Model:         c.Model,
		Protocol:      c.Protocol,
		Engine:        c.Engine,
		Trials:        c.Trials,
		Sources:       c.Sources,
		MaxRounds:     c.MaxRounds,
		Seed:          c.Seed,
		SeedPolicy:    c.SeedPolicy,
		Experiment:    c.Experiment,
		Scale:         c.Scale,
	}
	if c.Experiment != "" || c.Protocol.Name != "flooding" {
		v.ProtoAlgo = protoAlgoRevision
	}
	if c.Experiment != "" || geometricFamily(c.Model.Name) {
		v.ModelAlgo = modelAlgoRevision
	}
	return json.Marshal(v)
}

// Hash returns the spec's content address: the hex SHA-256 of its
// canonical JSON. Specs that canonicalize identically hash identically.
func (s Spec) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// EffectiveSeed resolves the seed the run actually uses: the spec's
// Seed under SeedFixed, the first 8 bytes of the content hash under
// SeedContent.
func (s Spec) EffectiveSeed() (uint64, error) {
	c, err := s.Canonical()
	if err != nil {
		return 0, err
	}
	if c.SeedPolicy != SeedContent {
		return c.Seed, nil
	}
	h, err := c.Hash()
	if err != nil {
		return 0, err
	}
	raw, err := hex.DecodeString(h[:16])
	if err != nil {
		return 0, err
	}
	var seed uint64
	for _, b := range raw {
		seed = seed<<8 | uint64(b)
	}
	if seed == 0 {
		seed = 1
	}
	return seed, nil
}
