package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// wallRegressionPct is the flat wall-clock regression threshold (in
// percent, sharded variant) past which a scenario is flagged when the
// trajectory is too short to estimate its noise. Comparisons warn —
// they never fail a build — because CI runner speed varies run to run.
const wallRegressionPct = 20

// Noise-band estimation: with enough trajectory a scenario's threshold
// comes from its own run-to-run scatter instead of the flat default —
// noisy scenarios stop crying wolf, quiet ones catch small regressions.
const (
	// noiseWindow is how many trailing entries feed the estimate.
	noiseWindow = 8
	// noiseMinEntries is the minimum number of measurements before the
	// estimate replaces the flat threshold.
	noiseMinEntries = 3
	// noiseSigmas scales the relative stddev into a threshold.
	noiseSigmas = 3.0
	// noiseFloorPct keeps the threshold from collapsing on eerily
	// stable scenarios — a sub-floor band would flag measurement jitter.
	noiseFloorPct = 5.0
)

// Load reads one BENCH file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d (want %d)", path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// LoadLatest returns the newest BENCH_*.json in dir, judged by the
// files' own generatedAt stamps (RFC 3339, so lexicographic order is
// chronological) — file mtimes are useless after a CI checkout.
func LoadLatest(dir string) (*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var latest *File
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			// A malformed trajectory entry shouldn't hide the rest.
			continue
		}
		if latest == nil || f.GeneratedAt > latest.GeneratedAt {
			latest = f
		}
	}
	if latest == nil {
		return nil, fmt.Errorf("bench: no readable BENCH_*.json in %s", dir)
	}
	return latest, nil
}

// ScenarioDiff is one scenario's baseline-vs-current comparison. Wall
// and ns/round figures come from each run's sharded variant (the
// configuration CI actually ships); the speedup column is the file's
// recorded serial/sharded ratio.
type ScenarioDiff struct {
	Name string
	// OnlyInBase/OnlyInCurrent flag scenarios the other run lacks
	// (suite composition changed).
	OnlyInBase    bool
	OnlyInCurrent bool

	BaseWallNS, CurWallNS         int64
	WallPct                       float64 // (cur-base)/base · 100
	BaseNSPerRound, CurNSPerRound float64
	NSPerRoundPct                 float64
	BaseSpeedup, CurSpeedup       float64
	// ThresholdPct is the regression threshold applied to this scenario:
	// its noise band when the trajectory supports one (CompareHistory),
	// the flat wallRegressionPct otherwise.
	ThresholdPct float64
	// Regressed reports a wall regression beyond ThresholdPct.
	Regressed bool
}

// Comparison is the scenario-by-scenario diff of two BENCH files.
type Comparison struct {
	BaseSHA, CurSHA             string
	BaseGenerated, CurGenerated string
	Diffs                       []ScenarioDiff
}

// shardedVariant returns a result's last variant — the sharded run —
// and whether the result carries any variants at all (a truncated
// trajectory entry must degrade to "incomparable", never crash the
// advisory comparison).
func shardedVariant(r Result) (Variant, bool) {
	if len(r.Variants) == 0 {
		return Variant{}, false
	}
	return r.Variants[len(r.Variants)-1], true
}

// Compare diffs the current suite run against a baseline, matching
// scenarios by name. Scenarios present on only one side are reported
// as such rather than dropped, so suite composition changes stay
// visible in the trajectory.
func Compare(base, cur *File) Comparison {
	c := Comparison{
		BaseSHA: base.GitSHA, CurSHA: cur.GitSHA,
		BaseGenerated: base.GeneratedAt, CurGenerated: cur.GeneratedAt,
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		seen[r.Name] = true
		b, ok := baseByName[r.Name]
		if !ok {
			c.Diffs = append(c.Diffs, ScenarioDiff{Name: r.Name, OnlyInCurrent: true})
			continue
		}
		bv, bok := shardedVariant(b)
		cv, cok := shardedVariant(r)
		if !bok || !cok {
			// One side has no measurements: surface the scenario as
			// present-only-where-measured instead of comparing.
			c.Diffs = append(c.Diffs, ScenarioDiff{Name: r.Name, OnlyInCurrent: !bok, OnlyInBase: !cok})
			continue
		}
		d := ScenarioDiff{
			Name:       r.Name,
			BaseWallNS: bv.WallNS, CurWallNS: cv.WallNS,
			BaseNSPerRound: bv.NSPerRound, CurNSPerRound: cv.NSPerRound,
			BaseSpeedup: b.SpeedupVsSerial, CurSpeedup: r.SpeedupVsSerial,
		}
		if bv.WallNS > 0 {
			d.WallPct = 100 * float64(cv.WallNS-bv.WallNS) / float64(bv.WallNS)
		}
		if bv.NSPerRound > 0 {
			d.NSPerRoundPct = 100 * (cv.NSPerRound - bv.NSPerRound) / bv.NSPerRound
		}
		d.ThresholdPct = wallRegressionPct
		d.Regressed = d.WallPct > d.ThresholdPct
		c.Diffs = append(c.Diffs, d)
	}
	var missing []string
	for name := range baseByName {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		c.Diffs = append(c.Diffs, ScenarioDiff{Name: name, OnlyInBase: true})
	}
	return c
}

// NoiseBand is one scenario's wall-clock scatter over the trailing
// trajectory window.
type NoiseBand struct {
	// Entries is how many measurements fed the estimate.
	Entries int
	// MeanWallNS / StddevWallNS describe the window's sharded wall
	// times.
	MeanWallNS   float64
	StddevWallNS float64
	// ThresholdPct is the derived regression threshold:
	// max(noiseFloorPct, noiseSigmas · 100 · stddev/mean).
	ThresholdPct float64
}

// NoiseBands estimates a per-scenario noise band from a chronological
// trajectory (as LoadAll returns): the relative stddev of the sharded
// wall time over the last noiseWindow entries that measured the
// scenario. Scenarios with fewer than noiseMinEntries measurements are
// omitted — callers fall back to the flat threshold for those.
func NoiseBands(files []*File) map[string]NoiseBand {
	walls := make(map[string][]float64)
	for _, f := range files {
		for _, r := range f.Results {
			v, ok := shardedVariant(r)
			if !ok || v.WallNS <= 0 {
				continue
			}
			walls[r.Name] = append(walls[r.Name], float64(v.WallNS))
		}
	}
	bands := make(map[string]NoiseBand)
	for name, w := range walls {
		if len(w) > noiseWindow {
			w = w[len(w)-noiseWindow:]
		}
		if len(w) < noiseMinEntries {
			continue
		}
		var sum float64
		for _, x := range w {
			sum += x
		}
		mean := sum / float64(len(w))
		var sq float64
		for _, x := range w {
			sq += (x - mean) * (x - mean)
		}
		// Sample stddev: the window is a sample of the scenario's noise
		// process, not the whole population.
		stddev := math.Sqrt(sq / float64(len(w)-1))
		threshold := noiseSigmas * 100 * stddev / mean
		if threshold < noiseFloorPct {
			threshold = noiseFloorPct
		}
		bands[name] = NoiseBand{
			Entries:      len(w),
			MeanWallNS:   mean,
			StddevWallNS: stddev,
			ThresholdPct: threshold,
		}
	}
	return bands
}

// CompareHistory diffs the current run against the newest trajectory
// entry, like Compare, but flags regressions against each scenario's
// own noise band when the trajectory is long enough to estimate one.
// files must be chronological (LoadAll order) and non-empty.
func CompareHistory(files []*File, cur *File) Comparison {
	c := Compare(files[len(files)-1], cur)
	bands := NoiseBands(files)
	for i := range c.Diffs {
		d := &c.Diffs[i]
		if d.OnlyInBase || d.OnlyInCurrent {
			continue
		}
		if band, ok := bands[d.Name]; ok {
			d.ThresholdPct = band.ThresholdPct
			d.Regressed = d.WallPct > d.ThresholdPct
		}
	}
	return c
}

// Regressions returns the names of scenarios whose wall time regressed
// beyond the threshold.
func (c Comparison) Regressions() []string {
	var out []string
	for _, d := range c.Diffs {
		if d.Regressed {
			out = append(out, d.Name)
		}
	}
	return out
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown
// table — the payload the CI bench job appends to its job summary.
// Regression annotations are a separate stream (WriteWarnings), so the
// summary never carries literal `::warning::` text.
func (c Comparison) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### Bench comparison: %s vs baseline %s (%s)\n\n", c.CurSHA, c.BaseSHA, c.BaseGenerated)
	fmt.Fprintf(w, "| scenario | wall | Δwall | threshold | ns/round | Δns/round | speedup |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|\n")
	for _, d := range c.Diffs {
		switch {
		case d.OnlyInCurrent:
			fmt.Fprintf(w, "| %s | — | new scenario | — | — | — | — |\n", d.Name)
		case d.OnlyInBase:
			fmt.Fprintf(w, "| %s | — | removed | — | — | — | — |\n", d.Name)
		default:
			flag := ""
			if d.Regressed {
				flag = " ⚠"
			}
			fmt.Fprintf(w, "| %s | %.1f ms | %+.1f%%%s | >%.1f%% | %.0f | %+.1f%% | %.2fx → %.2fx |\n",
				d.Name, float64(d.CurWallNS)/1e6, d.WallPct, flag, d.ThresholdPct,
				d.CurNSPerRound, d.NSPerRoundPct, d.BaseSpeedup, d.CurSpeedup)
		}
	}
	fmt.Fprintln(w)
}

// WriteWarnings emits one `::warning::` workflow-command line per
// regression — interpreted as an annotation by GitHub Actions, a plain
// informative line elsewhere; never an error either way.
func (c Comparison) WriteWarnings(w io.Writer) {
	for _, d := range c.Diffs {
		if d.Regressed {
			fmt.Fprintf(w, "::warning title=bench regression::%s wall %+.1f%% (threshold %.1f%%) vs %s (%.1f ms → %.1f ms)\n",
				d.Name, d.WallPct, d.ThresholdPct, c.BaseSHA, float64(d.BaseWallNS)/1e6, float64(d.CurWallNS)/1e6)
		}
	}
}
