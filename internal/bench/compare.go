package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// wallRegressionPct is the wall-clock regression (in percent, sharded
// variant) past which a scenario is flagged. Comparisons warn — they
// never fail a build — because CI runner speed varies run to run.
const wallRegressionPct = 20

// Load reads one BENCH file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d (want %d)", path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// LoadLatest returns the newest BENCH_*.json in dir, judged by the
// files' own generatedAt stamps (RFC 3339, so lexicographic order is
// chronological) — file mtimes are useless after a CI checkout.
func LoadLatest(dir string) (*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var latest *File
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			// A malformed trajectory entry shouldn't hide the rest.
			continue
		}
		if latest == nil || f.GeneratedAt > latest.GeneratedAt {
			latest = f
		}
	}
	if latest == nil {
		return nil, fmt.Errorf("bench: no readable BENCH_*.json in %s", dir)
	}
	return latest, nil
}

// ScenarioDiff is one scenario's baseline-vs-current comparison. Wall
// and ns/round figures come from each run's sharded variant (the
// configuration CI actually ships); the speedup column is the file's
// recorded serial/sharded ratio.
type ScenarioDiff struct {
	Name string
	// OnlyInBase/OnlyInCurrent flag scenarios the other run lacks
	// (suite composition changed).
	OnlyInBase    bool
	OnlyInCurrent bool

	BaseWallNS, CurWallNS         int64
	WallPct                       float64 // (cur-base)/base · 100
	BaseNSPerRound, CurNSPerRound float64
	NSPerRoundPct                 float64
	BaseSpeedup, CurSpeedup       float64
	// Regressed reports a wall regression beyond wallRegressionPct.
	Regressed bool
}

// Comparison is the scenario-by-scenario diff of two BENCH files.
type Comparison struct {
	BaseSHA, CurSHA             string
	BaseGenerated, CurGenerated string
	Diffs                       []ScenarioDiff
}

// shardedVariant returns a result's last variant — the sharded run —
// and whether the result carries any variants at all (a truncated
// trajectory entry must degrade to "incomparable", never crash the
// advisory comparison).
func shardedVariant(r Result) (Variant, bool) {
	if len(r.Variants) == 0 {
		return Variant{}, false
	}
	return r.Variants[len(r.Variants)-1], true
}

// Compare diffs the current suite run against a baseline, matching
// scenarios by name. Scenarios present on only one side are reported
// as such rather than dropped, so suite composition changes stay
// visible in the trajectory.
func Compare(base, cur *File) Comparison {
	c := Comparison{
		BaseSHA: base.GitSHA, CurSHA: cur.GitSHA,
		BaseGenerated: base.GeneratedAt, CurGenerated: cur.GeneratedAt,
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		seen[r.Name] = true
		b, ok := baseByName[r.Name]
		if !ok {
			c.Diffs = append(c.Diffs, ScenarioDiff{Name: r.Name, OnlyInCurrent: true})
			continue
		}
		bv, bok := shardedVariant(b)
		cv, cok := shardedVariant(r)
		if !bok || !cok {
			// One side has no measurements: surface the scenario as
			// present-only-where-measured instead of comparing.
			c.Diffs = append(c.Diffs, ScenarioDiff{Name: r.Name, OnlyInCurrent: !bok, OnlyInBase: !cok})
			continue
		}
		d := ScenarioDiff{
			Name:       r.Name,
			BaseWallNS: bv.WallNS, CurWallNS: cv.WallNS,
			BaseNSPerRound: bv.NSPerRound, CurNSPerRound: cv.NSPerRound,
			BaseSpeedup: b.SpeedupVsSerial, CurSpeedup: r.SpeedupVsSerial,
		}
		if bv.WallNS > 0 {
			d.WallPct = 100 * float64(cv.WallNS-bv.WallNS) / float64(bv.WallNS)
		}
		if bv.NSPerRound > 0 {
			d.NSPerRoundPct = 100 * (cv.NSPerRound - bv.NSPerRound) / bv.NSPerRound
		}
		d.Regressed = d.WallPct > wallRegressionPct
		c.Diffs = append(c.Diffs, d)
	}
	var missing []string
	for name := range baseByName {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		c.Diffs = append(c.Diffs, ScenarioDiff{Name: name, OnlyInBase: true})
	}
	return c
}

// Regressions returns the names of scenarios whose wall time regressed
// beyond the threshold.
func (c Comparison) Regressions() []string {
	var out []string
	for _, d := range c.Diffs {
		if d.Regressed {
			out = append(out, d.Name)
		}
	}
	return out
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown
// table — the payload the CI bench job appends to its job summary.
// Regression annotations are a separate stream (WriteWarnings), so the
// summary never carries literal `::warning::` text.
func (c Comparison) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### Bench comparison: %s vs baseline %s (%s)\n\n", c.CurSHA, c.BaseSHA, c.BaseGenerated)
	fmt.Fprintf(w, "| scenario | wall | Δwall | ns/round | Δns/round | speedup |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|\n")
	for _, d := range c.Diffs {
		switch {
		case d.OnlyInCurrent:
			fmt.Fprintf(w, "| %s | — | new scenario | — | — | — |\n", d.Name)
		case d.OnlyInBase:
			fmt.Fprintf(w, "| %s | — | removed | — | — | — |\n", d.Name)
		default:
			flag := ""
			if d.Regressed {
				flag = " ⚠"
			}
			fmt.Fprintf(w, "| %s | %.1f ms | %+.1f%%%s | %.0f | %+.1f%% | %.2fx → %.2fx |\n",
				d.Name, float64(d.CurWallNS)/1e6, d.WallPct, flag,
				d.CurNSPerRound, d.NSPerRoundPct, d.BaseSpeedup, d.CurSpeedup)
		}
	}
	fmt.Fprintln(w)
}

// WriteWarnings emits one `::warning::` workflow-command line per
// regression — interpreted as an annotation by GitHub Actions, a plain
// informative line elsewhere; never an error either way.
func (c Comparison) WriteWarnings(w io.Writer) {
	for _, d := range c.Diffs {
		if d.Regressed {
			fmt.Fprintf(w, "::warning title=bench regression::%s wall %+.1f%% vs %s (%.1f ms → %.1f ms)\n",
				d.Name, d.WallPct, c.BaseSHA, float64(d.BaseWallNS)/1e6, float64(d.CurWallNS)/1e6)
		}
	}
}
