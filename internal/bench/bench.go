// Package bench is the benchmark trajectory recorder: a fixed suite of
// named flooding scenarios, each run with the serial and the sharded
// engine on the same seeds, timed, and emitted as a schema-versioned
// BENCH_<git-sha>.json. CI runs the suite on every push and uploads the
// file as an artifact, so the repository accumulates a measured speed
// trajectory instead of anecdotes — and because serial and sharded
// variants must produce byte-identical flooding results, the suite
// doubles as the cross-kernel divergence gate.
package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"meg/internal/core"
	"meg/internal/flood"
	"meg/internal/metrics"
	"meg/internal/par"
	"meg/internal/spec"
)

// SchemaVersion identifies the BENCH file layout. Bump on any
// backwards-incompatible change so trajectory tooling can dispatch.
const SchemaVersion = 1

// Scenario is one named workload of the suite. Spec carries the model,
// trial, source, and engine configuration; the runner executes it once
// with Parallelism 1 (serial baseline) and once with the sharded
// engine, asserting byte-identical results.
type Scenario struct {
	// Name is the stable scenario identifier (the trajectory key).
	Name string `json:"name"`
	// Note says what the scenario exercises.
	Note string `json:"note"`
	// Spec is the canonical workload. Seed/SeedPolicy are fixed so the
	// serial and sharded runs (and every CI run) see the same draws.
	Spec spec.Spec `json:"spec"`
	// DeltaVsFull marks a snapshot-path scenario: the serial variant
	// pins the full per-round rebuild, the sharded variant the
	// incremental delta path — so the speedup column records the delta
	// engine's gain and the checksum gate doubles as the
	// delta-vs-full equivalence check.
	DeltaVsFull bool `json:"deltaVsFull,omitempty"`
}

// Suite returns the fixed scenario list: geometric flooding at three
// sizes (the scaling axis the paper's Θ(√n/R) bound lives on), sparse
// and dense edge-MEGs (the Θ(log n/log np̂) axis), a batched 64-source
// geometric run (the bit-parallel estimator), and the gossip-family
// protocols (push, push-pull, lossy) — for those the serial baseline is
// the per-node reference implementation and the sharded run is the
// bitset kernel engine, so the speedup column records the protocol
// engine's gain and the checksum gate doubles as the reference-vs-
// kernel equivalence check.
func Suite() []Scenario {
	geom := func(n int) spec.Spec {
		return spec.Spec{
			Model:  spec.Model{Name: "geometric", N: n, RFrac: 0.5},
			Trials: 1,
			Seed:   7,
		}
	}
	edge := func(n int, phatMult float64) spec.Spec {
		return spec.Spec{
			Model:  spec.Model{Name: "edge", N: n, PhatMult: phatMult},
			Trials: 1,
			Seed:   7,
		}
	}
	multi := geom(65536)
	multi.Sources = 64
	multi.Engine.BatchSources = true
	proto := func(base spec.Spec, p spec.Protocol) spec.Spec {
		base.Protocol = p
		return base
	}
	lowchurn := spec.Spec{
		Model:     spec.Model{Name: "edge", N: 65536, PhatMult: 0.5, Q: 0.002},
		Trials:    1,
		MaxRounds: 400,
		Seed:      7,
	}
	smallrho := spec.Spec{
		Model:  spec.Model{Name: "geometric", N: 65536, RFrac: 0.2, Jump: 0.01},
		Trials: 1,
		Seed:   7,
	}
	// Sub-threshold geometric runs: Mult = 0.5 puts R = 0.89·R_c just
	// below the connectivity radius R_c = √(log n/π), so the static
	// snapshot has a giant component plus isolated pockets, and only
	// the lazy walk (jump = 0.005, r = 0.8R so the lattice move ball
	// stays non-degenerate) carries the message into them. The bulk
	// informs early; the rest of the fixed horizon chases the last <1%
	// of stragglers — the regime the active-set pull kernel targets,
	// isolated so its win is visible in the trajectory (see
	// Variant.StragglerShare). Both variants run the incremental delta
	// path, keeping per-round snapshot cost low enough that the kernel
	// span is not drowned out.
	straggler := func(n, maxRounds int) spec.Spec {
		return spec.Spec{
			Model:     spec.Model{Name: "geometric", N: n, Mult: 0.5, RFrac: 0.8, Jump: 0.005},
			Trials:    1,
			MaxRounds: maxRounds,
			Seed:      7,
			Snapshot:  "delta",
		}
	}
	return []Scenario{
		{Name: "geom-4k", Note: "geometric-MEG n=4096, single source", Spec: geom(4096)},
		{Name: "geom-64k", Note: "geometric-MEG n=65536, single source", Spec: geom(65536)},
		{Name: "geom-512k", Note: "geometric-MEG n=524288, single source — the headline scaling scenario", Spec: geom(524288)},
		{Name: "edge-sparse-64k", Note: "edge-MEG n=65536, p̂ = 2·log n/n (near-threshold sparse)", Spec: edge(65536, 2)},
		{Name: "edge-dense-16k", Note: "edge-MEG n=16384, p̂ = 16·log n/n (dense churn)", Spec: edge(16384, 16)},
		{Name: "multi64-geom-64k", Note: "geometric-MEG n=65536, 64 sources batched bit-parallel", Spec: multi},
		{Name: "proto-push-geom-16k", Note: "push gossip on geometric-MEG n=16384: reference vs sharded kernel", Spec: proto(geom(16384), spec.Protocol{Name: "push"})},
		{Name: "proto-pushpull-edge-16k", Note: "push-pull gossip on edge-MEG n=16384: reference vs sharded kernel", Spec: proto(edge(16384, 4), spec.Protocol{Name: "push-pull"})},
		{Name: "proto-lossy-geom-16k", Note: "lossy flooding (f=0.2) on geometric-MEG n=16384: reference vs sharded kernel", Spec: proto(geom(16384), spec.Protocol{Name: "lossy", Loss: 0.2})},
		{Name: "delta-edge-64k-lowchurn", Note: "edge-MEG n=65536, p̂=0.5·log n/n, q=0.002 — sub-threshold low churn over a fixed 400-round horizon: full rebuild vs incremental delta", Spec: lowchurn, DeltaVsFull: true},
		{Name: "delta-geom-64k-smallrho", Note: "lazy geometric-MEG n=65536, r=0.2R, jump=0.01 — ~1% of nodes move per round: full rebuild vs incremental delta", Spec: smallrho, DeltaVsFull: true},
		{Name: "flood-geom-64k-straggler", Note: "sub-threshold lazy geometric-MEG n=65536, R=0.89·R_c, jump=0.005, delta path, fixed 400-round horizon — a third of the rounds chase <1% uninformed stragglers", Spec: straggler(65536, 400)},
		{Name: "flood-geom-512k-straggler", Note: "sub-threshold lazy geometric-MEG n=524288, R=0.89·R_c, jump=0.005, delta path, fixed 1000-round horizon — the straggler regime at headline scale", Spec: straggler(524288, 1000)},
	}
}

// Variant is one timed execution of a scenario.
type Variant struct {
	// Variant is "serial" or "sharded".
	Variant string `json:"variant"`
	// Engine identifies the implementation for protocol scenarios:
	// "reference" (serial baseline) or "kernel" (sharded run). Empty for
	// flooding scenarios.
	Engine string `json:"engine,omitempty"`
	// Snapshot identifies the snapshot path for delta scenarios:
	// "full" (serial baseline) or "delta" (sharded run). Empty
	// elsewhere.
	Snapshot string `json:"snapshot,omitempty"`
	// Parallelism is the intra-trial worker count used.
	Parallelism int `json:"parallelism"`
	// Rounds is the total number of evaluated flooding rounds.
	Rounds int `json:"rounds"`
	// Completed reports whether every trial finished flooding.
	Completed bool `json:"completed"`
	// WallNS is the wall-clock time of the campaign in nanoseconds.
	WallNS int64 `json:"wallNS"`
	// NSPerRound is WallNS divided by Rounds.
	NSPerRound float64 `json:"nsPerRound"`
	// AllocBytes/Allocs are the heap allocation deltas of the run.
	AllocBytes uint64 `json:"allocBytes"`
	Allocs     uint64 `json:"allocs"`
	// StragglerRounds counts evaluated rounds that began with fewer
	// than 1% of nodes uninformed (but at least one) — the late-round
	// regime where the active-set pull kernel replaces the full
	// complement scan. StragglerShare is the fraction of Rounds.
	StragglerRounds int     `json:"stragglerRounds,omitempty"`
	StragglerShare  float64 `json:"stragglerShare,omitempty"`
	// Checksum fingerprints the full FloodResult set (sources, rounds,
	// trajectories, arrival arrays). Serial and sharded checksums must
	// match — the suite fails otherwise.
	Checksum string `json:"checksum"`
	// Telemetry is the aggregated engine-phase breakdown of the run,
	// present only when Options.Telemetry was set. Observation only:
	// hooks never change the checksum, and the field is additive so
	// trajectory tooling for older files keeps working.
	Telemetry *metrics.PhaseTotals `json:"telemetry,omitempty"`
}

// Result is one scenario's outcome: the serial baseline, the sharded
// run, and the speedup between them.
type Result struct {
	Name  string `json:"name"`
	Note  string `json:"note"`
	Model string `json:"model"`
	N     int    `json:"n"`
	// Hash is the scenario spec's content address, tying the trajectory
	// entry to the exact workload definition.
	Hash     string    `json:"hash"`
	Variants []Variant `json:"variants"`
	// SpeedupVsSerial is serial wall time divided by sharded wall time.
	SpeedupVsSerial float64 `json:"speedupVsSerial"`
	// Identical reports that every variant produced the same checksum.
	Identical bool `json:"identical"`
}

// File is the schema-versioned BENCH_<sha>.json payload.
type File struct {
	SchemaVersion int    `json:"schemaVersion"`
	GitSHA        string `json:"gitSHA"`
	GeneratedAt   string `json:"generatedAt"`
	GoVersion     string `json:"goVersion"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	CPUs          int    `json:"cpus"`
	// Parallelism is the sharded worker count the suite ran with.
	Parallelism int      `json:"parallelism"`
	Results     []Result `json:"results"`
}

// Options configures a suite run.
type Options struct {
	// Parallelism is the sharded variant's worker count (<= 0: all
	// CPUs). The serial baseline always runs with 1.
	Parallelism int
	// Filter, when non-empty, keeps only scenarios whose name contains
	// one of the entries.
	Filter []string
	// Telemetry attaches phase-timing hooks to every variant and stores
	// the aggregated breakdown on it (megbench -telemetry).
	Telemetry bool
	// CPUProfileDir, when non-empty, writes one CPU profile per scenario
	// (<dir>/<name>.cpu.pprof) covering all of its variants; the
	// directory is created if missing. Profiling the timed region
	// perturbs the wall numbers a little, so profile runs should not
	// feed the comparison trajectory.
	CPUProfileDir string
	// MemProfileDir, when non-empty, writes one post-GC heap profile per
	// scenario (<dir>/<name>.mem.pprof) taken after its variants finish.
	MemProfileDir string
	// Log, if non-nil, receives one progress line per variant.
	Log func(format string, args ...any)
}

// Run executes the fixed suite and assembles the BENCH file. It returns
// an error — after completing every scenario — if any scenario's serial
// and sharded results diverge, so callers can both persist the file and
// fail the build.
func Run(opts Options) (*File, error) {
	return RunScenarios(Suite(), opts)
}

// RunScenarios is Run over an explicit scenario list.
func RunScenarios(scenarios []Scenario, opts Options) (*File, error) {
	workers := par.Workers(opts.Parallelism)
	f := &File{
		SchemaVersion: SchemaVersion,
		GitSHA:        GitSHA(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Parallelism:   workers,
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var diverged []string
	for _, sc := range scenarios {
		if !nameMatches(sc.Name, opts.Filter) {
			continue
		}
		c, err := sc.Spec.Canonical()
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		hash, err := c.Hash()
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		res := Result{Name: sc.Name, Note: sc.Note, Model: c.Model.Name, N: c.Model.N, Hash: hash}
		stopCPU, err := startCPUProfile(opts.CPUProfileDir, sc.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		for _, pv := range []struct {
			variant string
			par     int
		}{{"serial", 1}, {"sharded", workers}} {
			v, err := runVariant(c, pv.variant, pv.par, sc.DeltaVsFull, opts.Telemetry)
			if err != nil {
				stopCPU()
				return nil, fmt.Errorf("bench: scenario %s (%s): %w", sc.Name, pv.variant, err)
			}
			logf("bench: %-18s %-8s par=%-2d rounds=%-5d %8.1f ms  checksum=%s",
				sc.Name, pv.variant, pv.par, v.Rounds, float64(v.WallNS)/1e6, v.Checksum)
			res.Variants = append(res.Variants, v)
		}
		stopCPU()
		if err := writeMemProfile(opts.MemProfileDir, sc.Name); err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		res.Identical = true
		for _, v := range res.Variants[1:] {
			if v.Checksum != res.Variants[0].Checksum {
				res.Identical = false
				diverged = append(diverged, sc.Name)
				break
			}
		}
		if s, p := res.Variants[0].WallNS, res.Variants[len(res.Variants)-1].WallNS; p > 0 {
			res.SpeedupVsSerial = float64(s) / float64(p)
		}
		f.Results = append(f.Results, res)
	}
	if len(diverged) > 0 {
		return f, fmt.Errorf("bench: sharded results diverge from serial on the same seeds: %s", strings.Join(diverged, ", "))
	}
	return f, nil
}

// runVariant executes one (scenario, parallelism) pair and measures it.
// Flooding scenarios time the flooding engine serially vs sharded; for
// gossip-family protocol scenarios the serial baseline runs the
// internal/protocol reference implementation and the sharded run the
// bitset kernel engine; for delta scenarios the serial baseline pins
// the full per-round snapshot rebuild and the sharded run the
// incremental delta path — byte-identical by contract in every case,
// so the shared checksum gate applies unchanged.
func runVariant(c spec.Spec, variant string, parallelism int, deltaVsFull, telemetry bool) (Variant, error) {
	c.Parallelism = parallelism
	c.Workers = 1 // isolate intra-trial parallelism from trial fan-out
	snapshot := ""
	if deltaVsFull {
		snapshot = "delta"
		if variant == "serial" {
			snapshot = "full"
		}
		c.Snapshot = snapshot
	}
	if c.Protocol.Name != "" && c.Protocol.Name != "flooding" {
		return runProtocolVariant(c, variant, parallelism, telemetry)
	}
	factory, _, err := c.NewFactory()
	if err != nil {
		return Variant{}, err
	}
	opt, err := flood.OptionsFromSpec(c)
	if err != nil {
		return Variant{}, err
	}
	var collect func() *metrics.PhaseTotals
	if telemetry {
		collect = attachTelemetry(func(h func(int) core.PhaseHook) { opt.Hook = h })
	}
	var camp flood.Campaign
	v := measure(func() { camp = flood.Run(factory, opt) })
	if collect != nil {
		v.Telemetry = collect()
	}
	v.Variant = variant
	v.Snapshot = snapshot
	v.Parallelism = parallelism
	v.Completed = camp.Incomplete == 0
	v.Checksum = checksum(camp)
	for _, t := range camp.Trials {
		v.Rounds += len(t.Result.Trajectory) - 1
		v.StragglerRounds += stragglerRounds(t.Result.Trajectory, c.Model.N)
	}
	v.finishRates()
	return v, nil
}

// stragglerRounds counts the evaluated rounds of one trajectory that
// began with 0 < uninformed < n/100 — the straggler regime.
// Trajectory[t] is the informed count after t rounds, so round t+1
// starts from Trajectory[t].
func stragglerRounds(traj []int, n int) int {
	count := 0
	for _, m := range traj[:len(traj)-1] {
		if u := n - m; u > 0 && 100*u < n {
			count++
		}
	}
	return count
}

// attachTelemetry installs a per-trial phase-recorder factory through
// set (which assigns it to the options' Hook field) and returns a
// closure that merges every trial's totals — called after the campaign,
// when all trial goroutines have finished. The reference protocol
// engine has no phase structure, so its variants report zero rounds.
func attachTelemetry(set func(func(trial int) core.PhaseHook)) func() *metrics.PhaseTotals {
	var mu sync.Mutex
	var recs []*metrics.PhaseRecorder
	set(func(trial int) core.PhaseHook {
		pr := metrics.NewPhaseRecorder(nil)
		mu.Lock()
		recs = append(recs, pr)
		mu.Unlock()
		return pr
	})
	return func() *metrics.PhaseTotals {
		var total metrics.PhaseTotals
		mu.Lock()
		for _, pr := range recs {
			total.Merge(pr.Totals())
		}
		mu.Unlock()
		return &total
	}
}

// measure times run under a clean heap baseline and returns a Variant
// carrying the wall-clock and allocation measurements — the one
// harness both the flooding and the protocol paths use, so the two row
// kinds can never silently measure differently.
func measure(run func()) Variant {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	run()
	wall := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return Variant{
		WallNS:     wall,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Allocs:     after.Mallocs - before.Mallocs,
	}
}

// finishRates derives the per-round rates once Rounds is known.
func (v *Variant) finishRates() {
	if v.Rounds > 0 {
		v.NSPerRound = float64(v.WallNS) / float64(v.Rounds)
		v.StragglerShare = float64(v.StragglerRounds) / float64(v.Rounds)
	}
}

// runProtocolVariant measures a gossip-family scenario: the serial
// variant pins the reference engine, the sharded variant the kernel.
func runProtocolVariant(c spec.Spec, variant string, parallelism int, telemetry bool) (Variant, error) {
	engine := flood.EngineKernel
	if variant == "serial" {
		engine = flood.EngineReference
	}
	c.ProtocolEngine = engine
	factory, _, err := c.NewFactory()
	if err != nil {
		return Variant{}, err
	}
	opt, err := flood.ProtocolOptionsFromSpec(c)
	if err != nil {
		return Variant{}, err
	}
	var collect func() *metrics.PhaseTotals
	if telemetry {
		collect = attachTelemetry(func(h func(int) core.PhaseHook) { opt.Hook = h })
	}
	var camp flood.ProtocolCampaign
	v := measure(func() { camp = flood.RunProtocol(factory, opt) })
	if collect != nil {
		v.Telemetry = collect()
	}
	v.Variant = variant
	v.Engine = engine
	v.Parallelism = parallelism
	v.Completed = camp.Incomplete == 0
	v.Checksum = protocolChecksum(camp)
	for _, t := range camp.Trials {
		v.Rounds += len(t.Result.Trajectory) - 1
		v.StragglerRounds += stragglerRounds(t.Result.Trajectory, c.Model.N)
	}
	v.finishRates()
	return v, nil
}

// checksum fingerprints every trial's full FloodResult — source,
// rounds, completion, trajectory, and the per-node arrival array — so
// any divergence between engine configurations is caught, not just
// differing round counts.
func checksum(camp flood.Campaign) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	for _, t := range camp.Trials {
		r := t.Result
		w(uint64(r.Source))
		w(uint64(r.Rounds))
		if r.Completed {
			w(1)
		} else {
			w(0)
		}
		for _, m := range r.Trajectory {
			w(uint64(m))
		}
		for _, a := range r.Arrival {
			w(uint64(uint32(a)))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// protocolChecksum fingerprints a protocol campaign over the fields
// both engines produce — source, rounds, completion, trajectory, and
// message totals (the reference engine computes no arrival arrays) —
// so reference-vs-kernel divergence fails the suite.
func protocolChecksum(camp flood.ProtocolCampaign) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	for _, t := range camp.Trials {
		r := t.Result
		w(uint64(r.Source))
		w(uint64(r.Rounds))
		if r.Completed {
			w(1)
		} else {
			w(0)
		}
		w(uint64(r.Messages))
		for _, m := range r.Trajectory {
			w(uint64(m))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// startCPUProfile begins a per-scenario CPU profile when dir is set,
// returning a stop func (a no-op when profiling is off or the profile
// could not start — never leave the runner half-profiled).
func startCPUProfile(dir, name string) (func(), error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return func() {}, err
	}
	f, err := os.Create(filepath.Join(dir, name+".cpu.pprof"))
	if err != nil {
		return func() {}, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile writes a post-GC heap profile for the scenario when
// dir is set.
func writeMemProfile(dir, name string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".mem.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// nameMatches reports whether name passes the filter (empty filter
// passes everything).
func nameMatches(name string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if strings.Contains(name, f) {
			return true
		}
	}
	return false
}

// GitSHA resolves the commit the benchmark describes: $GITHUB_SHA when
// CI exports it, otherwise `git rev-parse HEAD`, otherwise "local".
func GitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return short(sha)
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return short(sha)
		}
	}
	return "local"
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// FileName returns the canonical artifact name for the given SHA.
func FileName(sha string) string { return "BENCH_" + sha + ".json" }

// Write marshals f as indented JSON into path.
func (f *File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
