package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// histFile builds a minimal trajectory entry. wall maps scenario name
// to sharded wall ns; every result carries a serial and a sharded
// variant so shardedVariant picks the latter.
func histFile(sha, generated string, wall map[string]int64, order []string) *File {
	f := &File{SchemaVersion: SchemaVersion, GitSHA: sha, GeneratedAt: generated}
	for _, name := range order {
		ns := wall[name]
		f.Results = append(f.Results, Result{
			Name: name, N: 1024, SpeedupVsSerial: 2,
			Variants: []Variant{
				{Variant: "serial", WallNS: 2 * ns, NSPerRound: 200},
				{Variant: "sharded", WallNS: ns, NSPerRound: 100},
			},
		})
	}
	return f
}

func TestLoadAllSortsByGeneratedAt(t *testing.T) {
	dir := t.TempDir()
	// File names deliberately sort opposite to generatedAt.
	entries := []*File{
		histFile("zzz", "2026-01-03T00:00:00Z", map[string]int64{"a": 3e6}, []string{"a"}),
		histFile("mmm", "2026-01-02T00:00:00Z", map[string]int64{"a": 2e6}, []string{"a"}),
		histFile("aaa", "2026-01-04T00:00:00Z", map[string]int64{"a": 4e6}, []string{"a"}),
	}
	for _, f := range entries {
		if err := f.Write(filepath.Join(dir, FileName(f.GitSHA))); err != nil {
			t.Fatal(err)
		}
	}
	// A malformed entry must be skipped, not fail the load.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shas []string
	for _, f := range files {
		shas = append(shas, f.GitSHA)
	}
	if want := []string{"mmm", "zzz", "aaa"}; strings.Join(shas, ",") != strings.Join(want, ",") {
		t.Fatalf("LoadAll order = %v, want %v", shas, want)
	}
}

func TestLoadAllEmptyDir(t *testing.T) {
	if _, err := LoadAll(t.TempDir()); err == nil {
		t.Fatal("LoadAll on an empty dir must error")
	}
}

func TestBuildHistoryTrends(t *testing.T) {
	files := []*File{
		histFile("s1", "2026-01-01T00:00:00Z", map[string]int64{"flood": 10e6, "old-only": 5e6}, []string{"flood", "old-only"}),
		histFile("s2", "2026-01-02T00:00:00Z", map[string]int64{"flood": 12e6}, []string{"flood"}),
		histFile("s3", "2026-01-03T00:00:00Z", map[string]int64{"flood": 9e6, "proto": 4e6}, []string{"flood", "proto"}),
	}
	h := BuildHistory(files)
	if h.Entries != 3 {
		t.Fatalf("Entries = %d, want 3", h.Entries)
	}
	// Newest entry's order first, removed scenarios appended.
	var names []string
	for _, tr := range h.Trends {
		names = append(names, tr.Name)
	}
	if want := "flood,proto,old-only"; strings.Join(names, ",") != want {
		t.Fatalf("trend order = %v, want %s", names, want)
	}

	flood := h.Trends[0]
	if len(flood.Points) != 3 {
		t.Fatalf("flood has %d points, want 3", len(flood.Points))
	}
	if flood.Points[0].HasPrev {
		t.Error("first point must have no Δ")
	}
	if !flood.Points[1].HasPrev || flood.Points[1].WallPct != 20 {
		t.Errorf("second point Δwall = %v (hasPrev=%v), want +20%%", flood.Points[1].WallPct, flood.Points[1].HasPrev)
	}
	if !flood.Points[2].HasPrev || flood.Points[2].WallPct != -25 {
		t.Errorf("third point Δwall = %v, want -25%%", flood.Points[2].WallPct)
	}
	if flood.Points[2].GitSHA != "s3" || flood.Points[2].Speedup != 2 {
		t.Errorf("third point = %+v, want sha s3 speedup 2", flood.Points[2])
	}
	if got := h.Trends[2]; got.Name != "old-only" || len(got.Points) != 1 {
		t.Fatalf("old-only trend = %+v, want a single point", got)
	}
}

func TestBuildHistorySkipsVariantlessResults(t *testing.T) {
	f1 := histFile("s1", "2026-01-01T00:00:00Z", map[string]int64{"flood": 10e6}, []string{"flood"})
	f2 := histFile("s2", "2026-01-02T00:00:00Z", map[string]int64{"flood": 11e6}, []string{"flood"})
	f2.Results[0].Variants = nil // truncated entry
	h := BuildHistory([]*File{f1, f2})
	if len(h.Trends) != 1 || len(h.Trends[0].Points) != 1 {
		t.Fatalf("variantless result must contribute no point: %+v", h.Trends)
	}
}

func TestHistoryWriteMarkdown(t *testing.T) {
	files := []*File{
		histFile("aaaaaaaaaaaabbbb", "2026-01-01T00:00:00Z", map[string]int64{"flood": 10e6}, []string{"flood"}),
		histFile("cccccccccccc", "2026-01-02T00:00:00Z", map[string]int64{"flood": 15e6}, []string{"flood"}),
	}
	var sb strings.Builder
	BuildHistory(files).WriteMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"### Bench history: 2 entries",
		"#### flood (n=1024)",
		"| aaaaaaaaaaaa | 2026-01-01T00:00:00Z | 10.0 ms | — |",
		"| cccccccccccc | 2026-01-02T00:00:00Z | 15.0 ms | +50.0% |",
		"| 2.00x |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
