package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"meg/internal/spec"
)

// tinySuite mirrors the real suite's shape at test-sized n.
func tinySuite() []Scenario {
	multi := spec.Spec{
		Model:   spec.Model{Name: "geometric", N: 512, RFrac: 0.5},
		Trials:  1,
		Sources: 64,
		Engine:  spec.Engine{BatchSources: true},
		Seed:    7,
	}
	return []Scenario{
		{Name: "tiny-geom", Note: "t", Spec: spec.Spec{Model: spec.Model{Name: "geometric", N: 512, RFrac: 0.5}, Trials: 2, Seed: 7}},
		{Name: "tiny-edge", Note: "t", Spec: spec.Spec{Model: spec.Model{Name: "edge", N: 512, PhatMult: 4}, Trials: 2, Seed: 7}},
		{Name: "tiny-multi", Note: "t", Spec: multi},
	}
}

func TestRunScenariosSerialShardedIdentical(t *testing.T) {
	f, err := RunScenarios(tinySuite(), Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", f.SchemaVersion)
	}
	if len(f.Results) != 3 {
		t.Fatalf("got %d results", len(f.Results))
	}
	for _, r := range f.Results {
		if !r.Identical {
			t.Errorf("%s: serial and sharded diverged", r.Name)
		}
		if len(r.Variants) != 2 {
			t.Fatalf("%s: %d variants", r.Name, len(r.Variants))
		}
		for _, v := range r.Variants {
			if v.Rounds <= 0 || v.WallNS <= 0 || v.NSPerRound <= 0 {
				t.Errorf("%s/%s: empty measurement %+v", r.Name, v.Variant, v)
			}
			if !v.Completed {
				t.Errorf("%s/%s: flooding did not complete", r.Name, v.Variant)
			}
			if len(v.Checksum) != 16 {
				t.Errorf("%s/%s: checksum %q", r.Name, v.Variant, v.Checksum)
			}
		}
		if r.Hash == "" {
			t.Errorf("%s: missing spec hash", r.Name)
		}
	}
}

func TestRunScenariosFilter(t *testing.T) {
	f, err := RunScenarios(tinySuite(), Options{Parallelism: 2, Filter: []string{"edge"}})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if len(f.Results) != 1 || f.Results[0].Name != "tiny-edge" {
		t.Fatalf("filter selected %+v", f.Results)
	}
}

func TestFileRoundTrip(t *testing.T) {
	f, err := RunScenarios(tinySuite()[:1], Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	path := filepath.Join(t.TempDir(), FileName(f.GitSHA))
	if err := f.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var re File
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if re.SchemaVersion != f.SchemaVersion || len(re.Results) != len(f.Results) {
		t.Fatalf("round trip mutated the file")
	}
	if re.Results[0].Variants[0].Checksum != f.Results[0].Variants[0].Checksum {
		t.Fatalf("round trip mutated a checksum")
	}
}

func TestSuiteSpecsAreValid(t *testing.T) {
	for _, sc := range Suite() {
		if _, err := sc.Spec.Canonical(); err != nil {
			t.Errorf("%s: invalid spec: %v", sc.Name, err)
		}
		if sc.Name == "" || sc.Note == "" {
			t.Errorf("scenario missing name/note: %+v", sc)
		}
	}
}

func TestRunProtocolScenario(t *testing.T) {
	// A gossip scenario times the reference engine serially against the
	// sharded kernel — identical checksums, engine labels recorded.
	scenarios := []Scenario{{
		Name: "tiny-proto",
		Note: "t",
		Spec: spec.Spec{
			Model:    spec.Model{Name: "edge", N: 512, PhatMult: 4},
			Protocol: spec.Protocol{Name: "push-pull"},
			Trials:   2,
			Seed:     7,
		},
	}}
	f, err := RunScenarios(scenarios, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	r := f.Results[0]
	if !r.Identical {
		t.Fatalf("reference and kernel engines diverged: %+v", r.Variants)
	}
	if r.Variants[0].Engine != "reference" || r.Variants[1].Engine != "kernel" {
		t.Fatalf("engine labels wrong: %q/%q", r.Variants[0].Engine, r.Variants[1].Engine)
	}
	for _, v := range r.Variants {
		if v.Rounds <= 0 || !v.Completed || v.WallNS <= 0 {
			t.Fatalf("%s: empty measurement %+v", v.Variant, v)
		}
	}
}

func TestSuiteCoversProtocols(t *testing.T) {
	// The fixed suite must carry gossip scenarios so the trajectory
	// records protocol speedups and CI gates their divergence.
	protos := 0
	for _, sc := range Suite() {
		if sc.Spec.Protocol.Name != "" && sc.Spec.Protocol.Name != "flooding" {
			protos++
		}
	}
	if protos < 3 {
		t.Fatalf("suite has %d protocol scenarios, want ≥ 3", protos)
	}
}
