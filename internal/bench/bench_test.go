package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"meg/internal/spec"
)

// tinySuite mirrors the real suite's shape at test-sized n.
func tinySuite() []Scenario {
	multi := spec.Spec{
		Model:   spec.Model{Name: "geometric", N: 512, RFrac: 0.5},
		Trials:  1,
		Sources: 64,
		Engine:  spec.Engine{BatchSources: true},
		Seed:    7,
	}
	return []Scenario{
		{Name: "tiny-geom", Note: "t", Spec: spec.Spec{Model: spec.Model{Name: "geometric", N: 512, RFrac: 0.5}, Trials: 2, Seed: 7}},
		{Name: "tiny-edge", Note: "t", Spec: spec.Spec{Model: spec.Model{Name: "edge", N: 512, PhatMult: 4}, Trials: 2, Seed: 7}},
		{Name: "tiny-multi", Note: "t", Spec: multi},
	}
}

func TestRunScenariosSerialShardedIdentical(t *testing.T) {
	f, err := RunScenarios(tinySuite(), Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", f.SchemaVersion)
	}
	if len(f.Results) != 3 {
		t.Fatalf("got %d results", len(f.Results))
	}
	for _, r := range f.Results {
		if !r.Identical {
			t.Errorf("%s: serial and sharded diverged", r.Name)
		}
		if len(r.Variants) != 2 {
			t.Fatalf("%s: %d variants", r.Name, len(r.Variants))
		}
		for _, v := range r.Variants {
			if v.Rounds <= 0 || v.WallNS <= 0 || v.NSPerRound <= 0 {
				t.Errorf("%s/%s: empty measurement %+v", r.Name, v.Variant, v)
			}
			if !v.Completed {
				t.Errorf("%s/%s: flooding did not complete", r.Name, v.Variant)
			}
			if len(v.Checksum) != 16 {
				t.Errorf("%s/%s: checksum %q", r.Name, v.Variant, v.Checksum)
			}
		}
		if r.Hash == "" {
			t.Errorf("%s: missing spec hash", r.Name)
		}
	}
}

func TestRunScenariosFilter(t *testing.T) {
	f, err := RunScenarios(tinySuite(), Options{Parallelism: 2, Filter: []string{"edge"}})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if len(f.Results) != 1 || f.Results[0].Name != "tiny-edge" {
		t.Fatalf("filter selected %+v", f.Results)
	}
}

func TestFileRoundTrip(t *testing.T) {
	f, err := RunScenarios(tinySuite()[:1], Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	path := filepath.Join(t.TempDir(), FileName(f.GitSHA))
	if err := f.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var re File
	if err := json.Unmarshal(data, &re); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if re.SchemaVersion != f.SchemaVersion || len(re.Results) != len(f.Results) {
		t.Fatalf("round trip mutated the file")
	}
	if re.Results[0].Variants[0].Checksum != f.Results[0].Variants[0].Checksum {
		t.Fatalf("round trip mutated a checksum")
	}
}

func TestSuiteSpecsAreValid(t *testing.T) {
	for _, sc := range Suite() {
		if _, err := sc.Spec.Canonical(); err != nil {
			t.Errorf("%s: invalid spec: %v", sc.Name, err)
		}
		if sc.Name == "" || sc.Note == "" {
			t.Errorf("scenario missing name/note: %+v", sc)
		}
	}
}

func TestRunProtocolScenario(t *testing.T) {
	// A gossip scenario times the reference engine serially against the
	// sharded kernel — identical checksums, engine labels recorded.
	scenarios := []Scenario{{
		Name: "tiny-proto",
		Note: "t",
		Spec: spec.Spec{
			Model:    spec.Model{Name: "edge", N: 512, PhatMult: 4},
			Protocol: spec.Protocol{Name: "push-pull"},
			Trials:   2,
			Seed:     7,
		},
	}}
	f, err := RunScenarios(scenarios, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	r := f.Results[0]
	if !r.Identical {
		t.Fatalf("reference and kernel engines diverged: %+v", r.Variants)
	}
	if r.Variants[0].Engine != "reference" || r.Variants[1].Engine != "kernel" {
		t.Fatalf("engine labels wrong: %q/%q", r.Variants[0].Engine, r.Variants[1].Engine)
	}
	for _, v := range r.Variants {
		if v.Rounds <= 0 || !v.Completed || v.WallNS <= 0 {
			t.Fatalf("%s: empty measurement %+v", v.Variant, v)
		}
	}
}

func TestRunDeltaScenario(t *testing.T) {
	// A delta scenario times the full-rebuild path serially against the
	// incremental snapshot path — identical checksums, snapshot labels
	// recorded on the variants.
	scenarios := []Scenario{{
		Name: "tiny-delta",
		Note: "t",
		Spec: spec.Spec{
			Model:  spec.Model{Name: "edge", N: 512, PhatMult: 2, Q: 0.05},
			Trials: 2,
			Seed:   7,
		},
		DeltaVsFull: true,
	}}
	f, err := RunScenarios(scenarios, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	r := f.Results[0]
	if !r.Identical {
		t.Fatalf("full and delta snapshot paths diverged: %+v", r.Variants)
	}
	if r.Variants[0].Snapshot != "full" || r.Variants[1].Snapshot != "delta" {
		t.Fatalf("snapshot labels wrong: %q/%q", r.Variants[0].Snapshot, r.Variants[1].Snapshot)
	}
	for _, v := range r.Variants {
		if v.Rounds <= 0 || !v.Completed || v.WallNS <= 0 {
			t.Fatalf("%s: empty measurement %+v", v.Variant, v)
		}
	}
}

func TestSuiteCoversDeltaScenarios(t *testing.T) {
	// The fixed suite must carry the low-churn delta scenarios so the
	// trajectory records the incremental path's gain and CI gates its
	// equivalence with the full rebuild.
	deltas := 0
	for _, sc := range Suite() {
		if sc.DeltaVsFull {
			deltas++
		}
	}
	if deltas < 2 {
		t.Fatalf("suite has %d delta scenarios, want ≥ 2", deltas)
	}
}

func TestCompare(t *testing.T) {
	run := func(names ...string) *File {
		f := &File{SchemaVersion: SchemaVersion, GitSHA: "abc", GeneratedAt: "2026-07-26T00:00:00Z"}
		for i, name := range names {
			f.Results = append(f.Results, Result{
				Name: name,
				Variants: []Variant{
					{Variant: "serial", WallNS: 1000, NSPerRound: 10},
					{Variant: "sharded", WallNS: int64(100 * (i + 1)), NSPerRound: float64(i + 1)},
				},
				SpeedupVsSerial: 2,
			})
		}
		return f
	}
	base := run("a", "b", "gone")
	cur := run("a", "b", "fresh")
	// Regress scenario b by 50%.
	cur.Results[1].Variants[1].WallNS = 300
	c := Compare(base, cur)
	if got := c.Regressions(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("regressions = %v, want [b]", got)
	}
	byName := map[string]ScenarioDiff{}
	for _, d := range c.Diffs {
		byName[d.Name] = d
	}
	if d := byName["a"]; d.WallPct != 0 || d.Regressed {
		t.Fatalf("scenario a diff %+v", d)
	}
	if d := byName["b"]; d.WallPct != 50 || !d.Regressed {
		t.Fatalf("scenario b diff %+v", d)
	}
	if !byName["fresh"].OnlyInCurrent || !byName["gone"].OnlyInBase {
		t.Fatalf("composition diffs wrong: %+v", c.Diffs)
	}
}

func TestCompareSurvivesEmptyVariants(t *testing.T) {
	// A truncated trajectory entry (schema-valid JSON, no variants)
	// must degrade to an incomparable row — the comparison is advisory
	// and may never crash the bench job.
	base := &File{SchemaVersion: SchemaVersion, GitSHA: "b", Results: []Result{{Name: "a"}}}
	cur := &File{SchemaVersion: SchemaVersion, GitSHA: "c", Results: []Result{{
		Name:     "a",
		Variants: []Variant{{Variant: "serial", WallNS: 1}, {Variant: "sharded", WallNS: 1}},
	}}}
	c := Compare(base, cur)
	if len(c.Diffs) != 1 || !c.Diffs[0].OnlyInCurrent || c.Diffs[0].Regressed {
		t.Fatalf("empty-variant baseline diffed as %+v", c.Diffs)
	}
}

func TestLoadLatestPicksNewestGeneratedAt(t *testing.T) {
	dir := t.TempDir()
	old := &File{SchemaVersion: SchemaVersion, GitSHA: "old1", GeneratedAt: "2026-01-01T00:00:00Z"}
	newer := &File{SchemaVersion: SchemaVersion, GitSHA: "new1", GeneratedAt: "2026-06-01T00:00:00Z"}
	if err := old.Write(filepath.Join(dir, FileName("old1"))); err != nil {
		t.Fatal(err)
	}
	if err := newer.Write(filepath.Join(dir, FileName("new1"))); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got.GitSHA != "new1" {
		t.Fatalf("LoadLatest picked %s, want new1", got.GitSHA)
	}
	if _, err := LoadLatest(t.TempDir()); err == nil {
		t.Fatal("LoadLatest on empty dir should error")
	}
}

func TestSuiteCoversProtocols(t *testing.T) {
	// The fixed suite must carry gossip scenarios so the trajectory
	// records protocol speedups and CI gates their divergence.
	protos := 0
	for _, sc := range Suite() {
		if sc.Spec.Protocol.Name != "" && sc.Spec.Protocol.Name != "flooding" {
			protos++
		}
	}
	if protos < 3 {
		t.Fatalf("suite has %d protocol scenarios, want ≥ 3", protos)
	}
}
