package bench

import (
	"math"
	"strings"
	"testing"
)

// trajFile builds one trajectory entry measuring the given scenarios'
// sharded wall times (serial wall is irrelevant to the comparison).
func trajFile(gen string, walls map[string]int64) *File {
	f := &File{SchemaVersion: SchemaVersion, GitSHA: "sha-" + gen, GeneratedAt: gen}
	for _, name := range sortedKeys(walls) {
		f.Results = append(f.Results, Result{
			Name: name,
			Variants: []Variant{
				{Variant: "serial", WallNS: 5000, NSPerRound: 50},
				{Variant: "sharded", WallNS: walls[name], NSPerRound: 10},
			},
			SpeedupVsSerial: 2,
		})
	}
	return f
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func TestNoiseBands(t *testing.T) {
	files := []*File{
		trajFile("2026-08-01T00:00:00Z", map[string]int64{"steady": 1000, "noisy": 900}),
		trajFile("2026-08-02T00:00:00Z", map[string]int64{"steady": 1000, "noisy": 1000}),
		trajFile("2026-08-03T00:00:00Z", map[string]int64{"steady": 1000, "noisy": 1100, "short": 1000}),
		trajFile("2026-08-04T00:00:00Z", map[string]int64{"steady": 1000, "short": 1000}),
	}
	bands := NoiseBands(files)

	// Zero scatter clamps to the floor, not to zero.
	steady, ok := bands["steady"]
	if !ok || steady.Entries != 4 {
		t.Fatalf("steady band = %+v, ok=%v", steady, ok)
	}
	if steady.StddevWallNS != 0 || steady.ThresholdPct != noiseFloorPct {
		t.Errorf("steady band = %+v, want stddev 0 at the %v%% floor", steady, noiseFloorPct)
	}

	// 900/1000/1100: mean 1000, sample stddev 100 → 10% relative → 3σ = 30%.
	noisy := bands["noisy"]
	if noisy.Entries != 3 || math.Abs(noisy.MeanWallNS-1000) > 1e-9 {
		t.Fatalf("noisy band = %+v", noisy)
	}
	if math.Abs(noisy.StddevWallNS-100) > 1e-9 || math.Abs(noisy.ThresholdPct-30) > 1e-9 {
		t.Errorf("noisy band = %+v, want stddev 100, threshold 30%%", noisy)
	}

	// Two measurements are below noiseMinEntries: no band, flat fallback.
	if _, ok := bands["short"]; ok {
		t.Errorf("short trajectory produced a band: %+v", bands["short"])
	}
}

func TestNoiseBandsWindowTrimsOldEntries(t *testing.T) {
	// Two ancient wild measurements followed by eight identical ones:
	// only the trailing window feeds the estimate, so the band sits at
	// the floor instead of being blown up by stale history.
	var files []*File
	for i := 0; i < 2; i++ {
		files = append(files, trajFile("2026-07-0"+string(rune('1'+i))+"T00:00:00Z", map[string]int64{"w": 1_000_000}))
	}
	for i := 0; i < noiseWindow; i++ {
		files = append(files, trajFile("2026-08-0"+string(rune('1'+i))+"T00:00:00Z", map[string]int64{"w": 1000}))
	}
	band, ok := NoiseBands(files)["w"]
	if !ok || band.Entries != noiseWindow {
		t.Fatalf("band = %+v, ok=%v; want %d windowed entries", band, ok, noiseWindow)
	}
	if band.ThresholdPct != noiseFloorPct {
		t.Errorf("threshold = %v%%, want floor %v%% (stale entries leaked in)", band.ThresholdPct, noiseFloorPct)
	}
}

func TestCompareHistoryUsesPerScenarioThresholds(t *testing.T) {
	files := []*File{
		trajFile("2026-08-01T00:00:00Z", map[string]int64{"quiet": 1000, "noisy": 400}),
		trajFile("2026-08-02T00:00:00Z", map[string]int64{"quiet": 1000, "noisy": 1000}),
		trajFile("2026-08-03T00:00:00Z", map[string]int64{"quiet": 1000, "noisy": 1600, "short": 1000}),
	}
	cur := trajFile("2026-08-04T00:00:00Z", map[string]int64{
		"quiet": 1100, // +10% vs base — inside the flat 20% but beyond the 5% floor band
		"noisy": 2000, // +25% vs base 1600 — beyond flat 20% but far inside the 180% band
		"short": 1300, // +30% vs base — only 1 measurement, flat fallback applies
	})
	c := CompareHistory(files, cur)
	byName := map[string]ScenarioDiff{}
	for _, d := range c.Diffs {
		byName[d.Name] = d
	}

	if d := byName["quiet"]; !d.Regressed || d.ThresholdPct != noiseFloorPct {
		t.Errorf("quiet diff = %+v; want regressed at the %v%% floor band", d, noiseFloorPct)
	}
	// 400/1000/1600: stddev 600 → 60%% relative → 3σ = 180%%.
	if d := byName["noisy"]; d.Regressed || math.Abs(d.ThresholdPct-180) > 1e-9 {
		t.Errorf("noisy diff = %+v; want not regressed under a 180%% band", d)
	}
	if d := byName["short"]; !d.Regressed || d.ThresholdPct != wallRegressionPct {
		t.Errorf("short diff = %+v; want regressed at the flat %d%% fallback", d, wallRegressionPct)
	}

	// The base of the value comparison is still the newest entry.
	if c.BaseGenerated != "2026-08-03T00:00:00Z" {
		t.Errorf("base generatedAt = %s, want the newest trajectory entry", c.BaseGenerated)
	}

	// Rendering carries the per-scenario thresholds.
	var md, warn strings.Builder
	c.WriteMarkdown(&md)
	if !strings.Contains(md.String(), "| threshold |") || !strings.Contains(md.String(), ">180.0%") {
		t.Errorf("markdown missing per-scenario threshold column:\n%s", md.String())
	}
	c.WriteWarnings(&warn)
	if !strings.Contains(warn.String(), "threshold 5.0%") || strings.Contains(warn.String(), "noisy") {
		t.Errorf("warnings wrong:\n%s", warn.String())
	}
}

func TestCompareHistorySkipsCompositionDiffs(t *testing.T) {
	// Scenarios present on only one side must keep their composition
	// flags — a noise band for a renamed scenario must not resurrect it
	// as a regression.
	files := []*File{
		trajFile("2026-08-01T00:00:00Z", map[string]int64{"old": 1000}),
		trajFile("2026-08-02T00:00:00Z", map[string]int64{"old": 1000}),
		trajFile("2026-08-03T00:00:00Z", map[string]int64{"old": 1000}),
	}
	cur := trajFile("2026-08-04T00:00:00Z", map[string]int64{"new": 1000})
	c := CompareHistory(files, cur)
	byName := map[string]ScenarioDiff{}
	for _, d := range c.Diffs {
		byName[d.Name] = d
	}
	if d := byName["old"]; !d.OnlyInBase || d.Regressed {
		t.Errorf("removed scenario diff = %+v", d)
	}
	if d := byName["new"]; !d.OnlyInCurrent || d.Regressed {
		t.Errorf("added scenario diff = %+v", d)
	}
}
