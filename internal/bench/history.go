package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// LoadAll reads every readable BENCH_*.json in dir, oldest first by the
// files' own generatedAt stamps (RFC 3339, so lexicographic order is
// chronological; ties break on git SHA for a stable table). Malformed
// entries are skipped for the same reason LoadLatest skips them: one
// corrupt trajectory file shouldn't hide the rest of the history.
func LoadAll(dir string) ([]*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("bench: no readable BENCH_*.json in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].GeneratedAt != files[j].GeneratedAt {
			return files[i].GeneratedAt < files[j].GeneratedAt
		}
		return files[i].GitSHA < files[j].GitSHA
	})
	return files, nil
}

// TrendPoint is one scenario's measurement in one trajectory entry.
// Wall and ns/round come from the run's sharded variant, matching the
// comparison table's convention.
type TrendPoint struct {
	GitSHA      string
	GeneratedAt string
	WallNS      int64
	NSPerRound  float64
	Speedup     float64
	// WallPct is the wall change versus the previous entry that
	// measured this scenario; HasPrev is false on the first one.
	WallPct float64
	HasPrev bool
}

// ScenarioTrend is one scenario's measurements across the trajectory,
// oldest first.
type ScenarioTrend struct {
	Name   string
	N      int
	Points []TrendPoint
}

// History is the per-scenario view of a chronological run of BENCH
// files — the whole trajectory, where Compare diffs exactly two
// entries.
type History struct {
	Entries int
	Trends  []ScenarioTrend
}

// BuildHistory pivots a chronological file list (as LoadAll returns)
// into per-scenario trends. Scenarios appear in the newest entry's
// suite order; scenarios only present in older entries (since removed
// from the suite) follow, sorted by name, so suite composition changes
// stay visible.
func BuildHistory(files []*File) History {
	h := History{Entries: len(files)}
	if len(files) == 0 {
		return h
	}
	index := make(map[string]int)
	for _, r := range files[len(files)-1].Results {
		if _, ok := index[r.Name]; ok {
			continue
		}
		index[r.Name] = len(h.Trends)
		h.Trends = append(h.Trends, ScenarioTrend{Name: r.Name, N: r.N})
	}
	var removed []string
	for _, f := range files {
		for _, r := range f.Results {
			if _, ok := index[r.Name]; !ok {
				index[r.Name] = len(h.Trends)
				h.Trends = append(h.Trends, ScenarioTrend{Name: r.Name, N: r.N})
				removed = append(removed, r.Name)
			}
		}
	}
	sort.Strings(removed)
	// Re-sort only the removed tail; the newest entry's order leads.
	live := len(h.Trends) - len(removed)
	sort.Slice(h.Trends[live:], func(i, j int) bool {
		return h.Trends[live+i].Name < h.Trends[live+j].Name
	})
	for i := range h.Trends {
		index[h.Trends[i].Name] = i
	}
	for _, f := range files {
		for _, r := range f.Results {
			v, ok := shardedVariant(r)
			if !ok {
				continue
			}
			t := &h.Trends[index[r.Name]]
			p := TrendPoint{
				GitSHA:      f.GitSHA,
				GeneratedAt: f.GeneratedAt,
				WallNS:      v.WallNS,
				NSPerRound:  v.NSPerRound,
				Speedup:     r.SpeedupVsSerial,
			}
			if len(t.Points) > 0 {
				if prev := t.Points[len(t.Points)-1]; prev.WallNS > 0 {
					p.WallPct = 100 * float64(p.WallNS-prev.WallNS) / float64(prev.WallNS)
					p.HasPrev = true
				}
			}
			t.N = r.N
			t.Points = append(t.Points, p)
		}
	}
	return h
}

// WriteMarkdown renders the trajectory as one GitHub-flavored markdown
// table per scenario, oldest entry first, matching WriteMarkdown on
// Comparison so the two read side by side in a CI summary.
func (h History) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### Bench history: %d entries\n\n", h.Entries)
	for _, t := range h.Trends {
		fmt.Fprintf(w, "#### %s (n=%d)\n\n", t.Name, t.N)
		if len(t.Points) == 0 {
			fmt.Fprintf(w, "no measurements\n\n")
			continue
		}
		fmt.Fprintf(w, "| sha | generated | wall | Δwall | ns/round | speedup |\n")
		fmt.Fprintf(w, "|---|---|---:|---:|---:|---:|\n")
		for _, p := range t.Points {
			delta := "—"
			if p.HasPrev {
				delta = fmt.Sprintf("%+.1f%%", p.WallPct)
			}
			fmt.Fprintf(w, "| %s | %s | %.1f ms | %s | %.0f | %.2fx |\n",
				short(p.GitSHA), p.GeneratedAt, float64(p.WallNS)/1e6, delta, p.NSPerRound, p.Speedup)
		}
		fmt.Fprintln(w)
	}
}
