// Package walk implements random walks on Markovian evolving graphs —
// the other fundamental exploration primitive on MEGs, analyzed by
// Avin, Koucký and Lotker (the paper's reference [2], where hitting and
// cover times on evolving graphs were first studied). A token sits on a
// node; at every time step it moves to a uniformly random neighbor in
// the *current* snapshot (staying put when isolated), and the graph
// then advances.
//
// The package measures hitting times (first arrival at a target) and
// cover times (first time every node has been visited), the quantities
// [2] bounds. On a static snapshot these reduce to the classical
// random-walk quantities, which the tests use as ground truth.
package walk

import (
	"meg/internal/bitset"
	"meg/internal/core"
	"meg/internal/rng"
)

// Result records one random-walk run on an evolving graph.
type Result struct {
	// Steps is the number of time steps executed.
	Steps int
	// Done reports whether the objective (hit / cover) was reached
	// before the cap.
	Done bool
	// Visited is the set of nodes visited (including the start).
	Visited *bitset.Set
}

// Hit walks the token from start until it first reaches target (or the
// cap expires) and returns the hitting time. The walk is lazy on
// isolated nodes: a node with no current neighbors keeps the token for
// the step.
func Hit(d core.Dynamics, start, target, maxSteps int, r *rng.RNG) Result {
	n := d.N()
	checkNode(n, start)
	checkNode(n, target)
	if maxSteps <= 0 {
		panic("walk: maxSteps must be positive")
	}
	visited := bitset.New(n)
	visited.Add(start)
	pos := start
	if pos == target {
		return Result{Steps: 0, Done: true, Visited: visited}
	}
	for t := 1; t <= maxSteps; t++ {
		pos = step(d, pos, r)
		visited.Add(pos)
		d.Step()
		if pos == target {
			return Result{Steps: t, Done: true, Visited: visited}
		}
	}
	return Result{Steps: maxSteps, Done: false, Visited: visited}
}

// Cover walks the token from start until every node has been visited
// (or the cap expires) and returns the cover time.
func Cover(d core.Dynamics, start, maxSteps int, r *rng.RNG) Result {
	n := d.N()
	checkNode(n, start)
	if maxSteps <= 0 {
		panic("walk: maxSteps must be positive")
	}
	visited := bitset.New(n)
	visited.Add(start)
	remaining := n - 1
	pos := start
	if remaining == 0 {
		return Result{Steps: 0, Done: true, Visited: visited}
	}
	for t := 1; t <= maxSteps; t++ {
		pos = step(d, pos, r)
		if !visited.Contains(pos) {
			visited.Add(pos)
			remaining--
		}
		d.Step()
		if remaining == 0 {
			return Result{Steps: t, Done: true, Visited: visited}
		}
	}
	return Result{Steps: maxSteps, Done: false, Visited: visited}
}

// step advances the token one hop in the current snapshot.
func step(d core.Dynamics, pos int, r *rng.RNG) int {
	nbrs := d.Graph().Neighbors(pos)
	if len(nbrs) == 0 {
		return pos // lazy on isolation
	}
	return int(nbrs[r.Intn(len(nbrs))])
}

func checkNode(n, v int) {
	if v < 0 || v >= n {
		panic("walk: node out of range")
	}
}
