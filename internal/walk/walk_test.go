package walk

import (
	"math"
	"testing"

	"meg/internal/core"
	"meg/internal/edgemeg"
	"meg/internal/graph"
	"meg/internal/rng"
)

func TestHitSameNode(t *testing.T) {
	d := core.NewStatic(graph.Cycle(5))
	res := Hit(d, 2, 2, 10, rng.New(1))
	if !res.Done || res.Steps != 0 {
		t.Fatalf("hit self: %+v", res)
	}
}

func TestHitCompleteGraph(t *testing.T) {
	// On K_n the hitting time is geometric with mean n-1.
	const n = 16
	r := rng.New(2)
	var sum float64
	const reps = 2000
	for i := 0; i < reps; i++ {
		d := core.NewStatic(graph.Complete(n))
		res := Hit(d, 0, 1, 100000, r.Split())
		if !res.Done {
			t.Fatal("hit on K_n did not finish")
		}
		sum += float64(res.Steps)
	}
	mean := sum / reps
	if math.Abs(mean-(n-1)) > 1.5 {
		t.Fatalf("K%d hitting time mean %v, want ≈ %d", n, mean, n-1)
	}
}

func TestHitPathEndToEnd(t *testing.T) {
	// Hitting time of the far end of a path of length L is L².
	const L = 8
	r := rng.New(3)
	var sum float64
	const reps = 1500
	for i := 0; i < reps; i++ {
		d := core.NewStatic(graph.Path(L + 1))
		res := Hit(d, 0, L, 1000000, r.Split())
		if !res.Done {
			t.Fatal("path hit did not finish")
		}
		sum += float64(res.Steps)
	}
	mean := sum / reps
	want := float64(L * L)
	if math.Abs(mean-want) > 0.12*want {
		t.Fatalf("path hitting time mean %v, want ≈ %v", mean, want)
	}
}

func TestCoverCompleteGraph(t *testing.T) {
	// Coupon collector: cover time of K_n ≈ (n-1)·H_{n-1}.
	const n = 12
	r := rng.New(5)
	var sum float64
	const reps = 2000
	for i := 0; i < reps; i++ {
		d := core.NewStatic(graph.Complete(n))
		res := Cover(d, 0, 100000, r.Split())
		if !res.Done {
			t.Fatal("cover did not finish")
		}
		if res.Visited.Count() != n {
			t.Fatal("cover finished without visiting everything")
		}
		sum += float64(res.Steps)
	}
	mean := sum / reps
	h := 0.0
	for k := 1; k <= n-1; k++ {
		h += 1 / float64(k)
	}
	want := float64(n-1) * h
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("K%d cover time mean %v, want ≈ %v", n, mean, want)
	}
}

func TestCoverCycleQuadratic(t *testing.T) {
	// Cover time of the n-cycle is n(n-1)/2.
	const n = 12
	r := rng.New(7)
	var sum float64
	const reps = 1200
	for i := 0; i < reps; i++ {
		d := core.NewStatic(graph.Cycle(n))
		res := Cover(d, 0, 1000000, r.Split())
		sum += float64(res.Steps)
	}
	mean := sum / reps
	want := float64(n*(n-1)) / 2
	if math.Abs(mean-want) > 0.12*want {
		t.Fatalf("cycle cover time mean %v, want ≈ %v", mean, want)
	}
}

func TestWalkLazyOnIsolatedNode(t *testing.T) {
	// Node 0 is isolated at t=0 and connects to 1 at t=1: the token
	// waits one step, then crosses.
	g0 := graph.Empty(2)
	g1 := graph.FromEdges(2, [][2]int{{0, 1}})
	d := core.NewSequence(g0, g1, g1)
	res := Hit(d, 0, 1, 10, rng.New(9))
	if !res.Done || res.Steps != 2 {
		t.Fatalf("lazy walk: %+v, want done at step 2", res)
	}
}

func TestWalkOnEdgeMEG(t *testing.T) {
	// Integration: cover an evolving stationary edge-MEG; the evolving
	// links must let the token cover everything within a generous cap.
	n := 64
	cfg := edgemeg.Config{N: n, P: 0.02, Q: 0.5}
	m := edgemeg.MustNew(cfg)
	r := rng.New(11)
	m.Reset(r.Split())
	res := Cover(m, 0, 100*n*n, r)
	if !res.Done {
		t.Fatalf("cover on edge-MEG incomplete after %d steps (visited %d/%d)",
			res.Steps, res.Visited.Count(), n)
	}
}

func TestWalkCap(t *testing.T) {
	// Disconnected target: the cap is respected.
	d := core.NewStatic(graph.FromEdges(3, [][2]int{{0, 1}}))
	res := Hit(d, 0, 2, 50, rng.New(13))
	if res.Done || res.Steps != 50 {
		t.Fatalf("cap not respected: %+v", res)
	}
}

func TestWalkPanics(t *testing.T) {
	d := core.NewStatic(graph.Path(3))
	r := rng.New(1)
	for _, fn := range []func(){
		func() { Hit(d, -1, 0, 10, r) },
		func() { Hit(d, 0, 3, 10, r) },
		func() { Hit(d, 0, 1, 0, r) },
		func() { Cover(d, 5, 10, r) },
		func() { Cover(d, 0, 0, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCoverEdgeMEG(b *testing.B) {
	n := 256
	cfg := edgemeg.Config{N: n, P: 0.01, Q: 0.5}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := edgemeg.MustNew(cfg)
		m.Reset(r.Split())
		Cover(m, 0, 100*n*n, r.Split())
	}
}
