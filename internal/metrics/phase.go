package metrics

import "meg/internal/core"

// RoundTelemetry is one evaluated round's telemetry: the run signals
// (informed count, frontier churn) plus the round's wall time split by
// engine phase. MergeNS is a sub-span of KernelNS (the sharded flooding
// engine's frontier merge); DeltaApplyNS is nonzero only on the delta
// snapshot path. It is the JSON payload of megserve's SSE "telemetry"
// events and the unit the -telemetry aggregates are built from.
type RoundTelemetry struct {
	Round        int   `json:"round"`
	Informed     int   `json:"informed"`
	Newly        int   `json:"newly"`
	SnapshotNS   int64 `json:"snapshotNS"`
	KernelNS     int64 `json:"kernelNS"`
	MergeNS      int64 `json:"mergeNS,omitempty"`
	StepNS       int64 `json:"stepNS"`
	DeltaApplyNS int64 `json:"deltaApplyNS,omitempty"`
}

// PhaseTotals aggregates RoundTelemetry across rounds (and, via Merge,
// across trials): total nanoseconds per phase plus the run-shape
// signals. It is the -telemetry output schema of megsim and the
// per-variant telemetry block of megbench's BENCH documents.
type PhaseTotals struct {
	Rounds       int64 `json:"rounds"`
	SnapshotNS   int64 `json:"snapshotNS"`
	KernelNS     int64 `json:"kernelNS"`
	MergeNS      int64 `json:"mergeNS,omitempty"`
	StepNS       int64 `json:"stepNS"`
	DeltaApplyNS int64 `json:"deltaApplyNS,omitempty"`
	// MaxInformed is the largest informed count any round reported —
	// n on completed runs.
	MaxInformed int `json:"maxInformed"`
	// TotalNewly sums per-round frontier growth; PeakNewly is the
	// largest single-round frontier, the paper's growth-burst signal.
	TotalNewly int64 `json:"totalNewly"`
	PeakNewly  int   `json:"peakNewly"`
}

// AddRound folds one round's telemetry into the totals.
func (t *PhaseTotals) AddRound(rt RoundTelemetry) {
	t.Rounds++
	t.SnapshotNS += rt.SnapshotNS
	t.KernelNS += rt.KernelNS
	t.MergeNS += rt.MergeNS
	t.StepNS += rt.StepNS
	t.DeltaApplyNS += rt.DeltaApplyNS
	if rt.Informed > t.MaxInformed {
		t.MaxInformed = rt.Informed
	}
	t.TotalNewly += int64(rt.Newly)
	if rt.Newly > t.PeakNewly {
		t.PeakNewly = rt.Newly
	}
}

// Merge folds another run's totals into t (durations and counts sum;
// peaks take the max).
func (t *PhaseTotals) Merge(o PhaseTotals) {
	t.Rounds += o.Rounds
	t.SnapshotNS += o.SnapshotNS
	t.KernelNS += o.KernelNS
	t.MergeNS += o.MergeNS
	t.StepNS += o.StepNS
	t.DeltaApplyNS += o.DeltaApplyNS
	if o.MaxInformed > t.MaxInformed {
		t.MaxInformed = o.MaxInformed
	}
	t.TotalNewly += o.TotalNewly
	if o.PeakNewly > t.PeakNewly {
		t.PeakNewly = o.PeakNewly
	}
}

// TotalNS returns the summed top-level phase time (merge is nested
// inside kernel and therefore not added again).
func (t PhaseTotals) TotalNS() int64 {
	return t.SnapshotNS + t.KernelNS + t.StepNS + t.DeltaApplyNS
}

// PhaseRecorder implements core.PhaseHook: it times the engine's phase
// spans against the injected Clock, folds each round into running
// PhaseTotals, and (when OnRound is set) emits the round's telemetry as
// it completes. A recorder belongs to exactly one run at a time — the
// engines call hooks from a single goroutine — so its internals need no
// locking; create one recorder per trial when trials run concurrently.
//
// Nested spans are safe (PhaseMerge begins while PhaseKernel is open)
// because begin times are kept per phase.
type PhaseRecorder struct {
	clock Clock
	// OnRound, if non-nil, receives every round's telemetry right after
	// RoundDone folds it into the totals. It runs on the engine
	// goroutine; keep it cheap.
	OnRound func(RoundTelemetry)

	begins  [core.PhaseCount]int64
	roundNS [core.PhaseCount]int64
	totals  PhaseTotals
}

// NewPhaseRecorder returns a recorder reading the given clock (nil
// means the process wall clock).
func NewPhaseRecorder(clock Clock) *PhaseRecorder {
	if clock == nil {
		clock = WallClock()
	}
	return &PhaseRecorder{clock: clock}
}

// BeginPhase implements core.PhaseHook.
func (r *PhaseRecorder) BeginPhase(p core.Phase) {
	r.begins[p] = r.clock.Now()
}

// EndPhase implements core.PhaseHook.
func (r *PhaseRecorder) EndPhase(p core.Phase) {
	r.roundNS[p] += r.clock.Now() - r.begins[p]
}

// RoundDone implements core.PhaseHook: it packages the phase times
// accumulated since the previous round boundary with the round's stats,
// folds the result into Totals, and clears the per-round accumulators.
func (r *PhaseRecorder) RoundDone(s core.RoundStats) {
	rt := RoundTelemetry{
		Round:        s.Round,
		Informed:     s.Informed,
		Newly:        s.Newly,
		SnapshotNS:   r.roundNS[core.PhaseSnapshot],
		KernelNS:     r.roundNS[core.PhaseKernel],
		MergeNS:      r.roundNS[core.PhaseMerge],
		StepNS:       r.roundNS[core.PhaseStep],
		DeltaApplyNS: r.roundNS[core.PhaseDeltaApply],
	}
	for i := range r.roundNS {
		r.roundNS[i] = 0
	}
	r.totals.AddRound(rt)
	if r.OnRound != nil {
		r.OnRound(rt)
	}
}

// Totals returns the totals accumulated so far.
func (r *PhaseRecorder) Totals() PhaseTotals { return r.totals }
