package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per family,
// cumulative le-buckets plus _sum/_count for histograms, label values
// escaped per the format's rules.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if f.Help != "" {
			bw.WriteString("# HELP " + f.Name + " " + escapeHelp(f.Help) + "\n")
		}
		bw.WriteString("# TYPE " + f.Name + " " + f.Kind.String() + "\n")
		for _, s := range f.Series {
			if f.Kind != KindHistogram {
				bw.WriteString(f.Name + labelString(f.LabelNames, s.LabelValues, "", "") + " " + formatValue(s.Value) + "\n")
				continue
			}
			cum := uint64(0)
			for i, c := range s.BucketCounts {
				cum += c
				le := "+Inf"
				if i < len(f.Buckets) {
					le = formatValue(f.Buckets[i])
				}
				bw.WriteString(f.Name + "_bucket" + labelString(f.LabelNames, s.LabelValues, "le", le) + " " + strconv.FormatUint(cum, 10) + "\n")
			}
			bw.WriteString(f.Name + "_sum" + labelString(f.LabelNames, s.LabelValues, "", "") + " " + formatValue(s.Sum) + "\n")
			bw.WriteString(f.Name + "_count" + labelString(f.LabelNames, s.LabelValues, "", "") + " " + strconv.FormatUint(s.Count, 10) + "\n")
		}
	}
	return bw.Flush()
}

// Handler serves the exposition over HTTP — the body of GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// labelString renders {k="v",...}, appending the extra pair (used for
// le) when extraName is non-empty; empty label sets render as nothing.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
