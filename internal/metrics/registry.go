package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the three instrument families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE spelling.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Registry holds metric families in registration order. Registration
// (the *Vec / Counter / Gauge / Histogram constructors) takes a lock
// and may allocate; the returned handles update lock-free via atomics,
// so hot paths pay a few atomic adds per observation and nothing more.
// Invalid registrations (duplicate or malformed names) panic: they are
// programmer errors, caught the first time the process boots.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed label-name set; labeled
// families hold one series per observed label-value combination.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu     sync.Mutex
	series map[string]*series
	order  []*series // creation order; sorted lazily at Gather time
}

// series is the lock-free storage cell shared by every handle type:
// value holds float64 bits for counters/gauges and the running sum for
// histograms, counts holds per-bucket (non-cumulative) observation
// counts with the overflow (+Inf) bucket last.
type series struct {
	labelValues []string
	value       atomic.Uint64
	counts      []atomic.Uint64
}

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) {
			panic("metrics: invalid label name " + l + " on " + name)
		}
	}
	if kind == KindHistogram {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic("metrics: histogram buckets must be strictly increasing on " + name)
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("metrics: duplicate metric name " + name)
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// labelKey joins values with a separator no valid label value contains
// unescaped ambiguity for (0xFF never starts a UTF-8 rune).
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.series[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter add of negative value")
	}
	addFloat(&c.s.value, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.value.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.value.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { addFloat(&g.s.value, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.value.Load()) }

// Histogram counts observations into a fixed bucket layout.
type Histogram struct {
	buckets []float64
	s       *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound ≥ v
	h.s.counts[i].Add(1)
	addFloat(&h.s.value, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.s.counts {
		total += h.s.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.value.Load()) }

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// Histogram registers an unlabeled histogram with the given strictly
// increasing upper bounds (an implicit +Inf bucket is always added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, append([]float64(nil), buckets...))
	return &Histogram{buckets: f.buckets, s: f.get(nil)}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Hot paths should cache the handle.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.f.get(values)} }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.f.get(values)} }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with a shared
// bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, append([]float64(nil), buckets...))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{buckets: v.f.buckets, s: v.f.get(values)}
}

// SeriesSnapshot is one series' state at Gather time. BucketCounts are
// per-bucket (non-cumulative) with the +Inf bucket last; the exposition
// layer cumulates them.
type SeriesSnapshot struct {
	LabelValues  []string
	Value        float64 // counter/gauge value
	BucketCounts []uint64
	Sum          float64
	Count        uint64
}

// FamilySnapshot is one metric family's state at Gather time.
type FamilySnapshot struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Buckets    []float64
	Series     []SeriesSnapshot
}

// Gather snapshots every family: families in registration order, series
// sorted by label values, each series read once. Individual reads are
// atomic; the snapshot as a whole is consistent enough for scraping
// (counters only move forward between reads).
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(families))
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, LabelNames: f.labels, Buckets: f.buckets}
		f.mu.Lock()
		order := append([]*series(nil), f.order...)
		f.mu.Unlock()
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i].labelValues, order[j].labelValues
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		for _, s := range order {
			ss := SeriesSnapshot{LabelValues: s.labelValues}
			if f.kind == KindHistogram {
				ss.Sum = math.Float64frombits(s.value.Load())
				ss.BucketCounts = make([]uint64, len(s.counts))
				for i := range s.counts {
					c := s.counts[i].Load()
					ss.BucketCounts[i] = c
					ss.Count += c
				}
			} else {
				ss.Value = math.Float64frombits(s.value.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
