package metrics

import (
	"testing"

	"meg/internal/core"
)

// fakeClock advances only when told to, making span math exact.
type fakeClock struct{ t int64 }

func (c *fakeClock) Now() int64 { return c.t }

func TestPhaseRecorderSpansAndRounds(t *testing.T) {
	clk := &fakeClock{}
	var rounds []RoundTelemetry
	r := NewPhaseRecorder(clk)
	r.OnRound = func(rt RoundTelemetry) { rounds = append(rounds, rt) }

	// Round 1: snapshot 10ns, kernel 100ns with a 30ns merge inside.
	r.BeginPhase(core.PhaseSnapshot)
	clk.t += 10
	r.EndPhase(core.PhaseSnapshot)
	r.BeginPhase(core.PhaseKernel)
	r.BeginPhase(core.PhaseMerge)
	clk.t += 30
	r.EndPhase(core.PhaseMerge)
	clk.t += 70
	r.EndPhase(core.PhaseKernel)
	r.RoundDone(core.RoundStats{Round: 1, Informed: 5, Newly: 4})

	// Round 2: two kernel spans accumulate; step + delta apply too.
	r.BeginPhase(core.PhaseKernel)
	clk.t += 20
	r.EndPhase(core.PhaseKernel)
	r.BeginPhase(core.PhaseKernel)
	clk.t += 5
	r.EndPhase(core.PhaseKernel)
	r.BeginPhase(core.PhaseStep)
	clk.t += 40
	r.EndPhase(core.PhaseStep)
	r.BeginPhase(core.PhaseDeltaApply)
	clk.t += 15
	r.EndPhase(core.PhaseDeltaApply)
	r.RoundDone(core.RoundStats{Round: 2, Informed: 9, Newly: 4})

	if len(rounds) != 2 {
		t.Fatalf("OnRound fired %d times, want 2", len(rounds))
	}
	r1, r2 := rounds[0], rounds[1]
	if r1.SnapshotNS != 10 || r1.KernelNS != 100 || r1.MergeNS != 30 {
		t.Errorf("round 1 spans = %+v", r1)
	}
	if r1.Round != 1 || r1.Informed != 5 || r1.Newly != 4 {
		t.Errorf("round 1 stats = %+v", r1)
	}
	// Per-round counters reset between rounds.
	if r2.SnapshotNS != 0 || r2.KernelNS != 25 || r2.StepNS != 40 || r2.DeltaApplyNS != 15 {
		t.Errorf("round 2 spans = %+v", r2)
	}

	tot := r.Totals()
	if tot.Rounds != 2 || tot.SnapshotNS != 10 || tot.KernelNS != 125 || tot.MergeNS != 30 ||
		tot.StepNS != 40 || tot.DeltaApplyNS != 15 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.MaxInformed != 9 || tot.TotalNewly != 8 || tot.PeakNewly != 4 {
		t.Errorf("run stats = %+v", tot)
	}
	// Merge is nested inside kernel, so TotalNS must not double-count it.
	if want := int64(10 + 125 + 40 + 15); tot.TotalNS() != want {
		t.Errorf("TotalNS = %d, want %d", tot.TotalNS(), want)
	}
}

func TestPhaseTotalsMerge(t *testing.T) {
	a := PhaseTotals{Rounds: 2, KernelNS: 100, MaxInformed: 7, TotalNewly: 6, PeakNewly: 4}
	b := PhaseTotals{Rounds: 3, KernelNS: 50, SnapshotNS: 9, MaxInformed: 5, TotalNewly: 5, PeakNewly: 5}
	a.Merge(b)
	if a.Rounds != 5 || a.KernelNS != 150 || a.SnapshotNS != 9 {
		t.Errorf("summed fields wrong: %+v", a)
	}
	if a.MaxInformed != 7 || a.PeakNewly != 5 || a.TotalNewly != 11 {
		t.Errorf("peak fields wrong: %+v", a)
	}
}

func TestPhaseRecorderNilClockDefaultsToWallClock(t *testing.T) {
	r := NewPhaseRecorder(nil)
	r.BeginPhase(core.PhaseKernel)
	r.EndPhase(core.PhaseKernel)
	r.RoundDone(core.RoundStats{Round: 1, Informed: 1, Newly: 1})
	if r.Totals().Rounds != 1 {
		t.Errorf("rounds = %d, want 1", r.Totals().Rounds)
	}
	if r.Totals().KernelNS < 0 {
		t.Errorf("negative kernel span: %d", r.Totals().KernelNS)
	}
}
