package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestRegisterPanicsOnDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, f := range map[string]func(){
		"duplicate":    func() { r.Gauge("dup_total", "y") },
		"invalid name": func() { r.Counter("0bad-name", "z") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); math.Abs(got-55.55) > 1e-9 {
		t.Errorf("sum = %v, want 55.55", got)
	}
	snaps := r.Gather()
	if len(snaps) != 1 || len(snaps[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snaps)
	}
	s := snaps[0].Series[0]
	// Per-bucket (non-cumulative) counts, +Inf last.
	want := []uint64{1, 1, 1, 1}
	for i, w := range want {
		if s.BucketCounts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, s.BucketCounts[i], w)
		}
	}
}

func TestVecSeriesSortedAndIsolated(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_jobs_total", "jobs", "status")
	v.With("zeta").Add(1)
	v.With("alpha").Add(2)
	v.With("alpha").Inc() // same series, not a new one
	snaps := r.Gather()
	s := snaps[0].Series
	if len(s) != 2 {
		t.Fatalf("series count = %d, want 2", len(s))
	}
	if s[0].LabelValues[0] != "alpha" || s[1].LabelValues[0] != "zeta" {
		t.Errorf("series not sorted by label values: %+v", s)
	}
	if s[0].Value != 3 || s[1].Value != 1 {
		t.Errorf("series values = %v, %v; want 3, 1", s[0].Value, s[1].Value)
	}
}

func TestVecCardinalityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	v.With("only-one").Inc()
}

func TestGatherOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "late alphabet, first registered")
	r.Gauge("a_depth", "early alphabet, second registered")
	snaps := r.Gather()
	if snaps[0].Name != "z_total" || snaps[1].Name != "a_depth" {
		t.Errorf("families not in registration order: %s, %s", snaps[0].Name, snaps[1].Name)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x")
	g := r.Gauge("test_depth", "y")
	h := r.HistogramVec("test_seconds", "z", []float64{1}, "route")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(0.5)
				h.With("a").Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker*0.5 {
		t.Errorf("gauge = %v, want %v", got, workers*perWorker*0.5)
	}
	if got := h.With("a").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("meg_ops_total", "Operations.").Add(3)
	r.GaugeVec("meg_depth", `Depth with "quotes" and \slashes`, "queue").With(`q"1`).Set(2)
	h := r.Histogram("meg_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP meg_ops_total Operations.",
		"# TYPE meg_ops_total counter",
		"meg_ops_total 3",
		"# TYPE meg_depth gauge",
		`meg_depth{queue="q\"1"} 2`,
		"# TYPE meg_seconds histogram",
		`meg_seconds_bucket{le="0.1"} 1`,
		`meg_seconds_bucket{le="1"} 2`, // cumulative
		`meg_seconds_bucket{le="+Inf"} 3`,
		"meg_seconds_sum 5.55",
		"meg_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("meg_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "meg_x_total 1") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}
