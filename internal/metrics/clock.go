// Package metrics is the repository's stdlib-only observability core:
// an allocation-light registry of counters, gauges and histograms with
// a hand-rolled Prometheus text exposition, plus the PhaseRecorder that
// turns core.PhaseHook callbacks into per-round telemetry and run
// totals.
//
// The package owns every wall-clock read the instrumentation needs:
// determinism-critical packages record durations through an injected
// Clock (via PhaseRecorder) instead of calling time.Now themselves, so
// the wallclock analyzer's discipline — no time sources inside engine
// packages — survives instrumentation. internal/lint/scope blesses this
// package as a wall-clock boundary for exactly that reason.
package metrics

import "time"

// Clock is the injected monotonic time source: Now returns nanoseconds
// since an arbitrary fixed origin. Durations are differences of Now
// values, so the origin never matters; tests substitute a manual clock
// to make recorded durations deterministic.
type Clock interface {
	Now() int64
}

// WallClock returns the process's monotonic wall clock, anchored at
// the call so readings stay small and unaffected by wall-time jumps.
func WallClock() Clock {
	return wallClock{base: time.Now()}
}

type wallClock struct{ base time.Time }

func (c wallClock) Now() int64 { return int64(time.Since(c.base)) }
