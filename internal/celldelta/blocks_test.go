package celldelta

import (
	"slices"
	"testing"

	"meg/internal/rng"
)

func TestForBlockCellsBounded(t *testing.T) {
	k := 5
	// Interior cell: all nine distinct neighbors.
	var cells []int
	ForBlockCells(k, false, 2*k+2, func(c int) { cells = append(cells, c) })
	if len(cells) != 9 {
		t.Fatalf("interior block has %d cells, want 9", len(cells))
	}
	want := []int{k + 1, k + 2, k + 3, 2*k + 1, 2*k + 2, 2*k + 3, 3*k + 1, 3*k + 2, 3*k + 3}
	slices.Sort(cells)
	if !slices.Equal(cells, want) {
		t.Fatalf("interior block = %v, want %v", cells, want)
	}
	// Corner cell 0 without wrap: only the 2×2 quadrant.
	cells = cells[:0]
	ForBlockCells(k, false, 0, func(c int) { cells = append(cells, c) })
	slices.Sort(cells)
	if !slices.Equal(cells, []int{0, 1, k, k + 1}) {
		t.Fatalf("corner block = %v, want %v", cells, []int{0, 1, k, k + 1})
	}
}

func TestForBlockCellsTorus(t *testing.T) {
	k := 4
	var cells []int
	ForBlockCells(k, true, 0, func(c int) { cells = append(cells, c) })
	if len(cells) != 9 {
		t.Fatalf("torus corner block has %d cells, want 9", len(cells))
	}
	seen := map[int]bool{}
	for _, c := range cells {
		if c < 0 || c >= k*k {
			t.Fatalf("torus block cell %d out of range", c)
		}
		if seen[c] {
			t.Fatalf("torus block repeats cell %d", c)
		}
		seen[c] = true
	}
	// Wrapping from cell 0 must reach the opposite edges.
	for _, c := range []int{k*k - 1, k - 1, k * (k - 1)} {
		if !seen[c] {
			t.Fatalf("torus block from cell 0 misses wrapped cell %d (got %v)", c, cells)
		}
	}
}

// buildCellList lays out nodes into cells with the counting-sort
// layout (ascending node ids within each cell).
func buildCellList(nodeCell []int32, cells int) (starts, order []int32) {
	starts = make([]int32, cells+1)
	for _, c := range nodeCell {
		starts[c+1]++
	}
	for c := 1; c <= cells; c++ {
		starts[c] += starts[c-1]
	}
	order = make([]int32, len(nodeCell))
	fill := slices.Clone(starts)
	for u, c := range nodeCell {
		order[fill[c]] = int32(u)
		fill[c]++
	}
	return starts, order
}

// bruteAfter is the oracle for Blocks.After: the ascending nodes of
// cell's 3×3 block strictly greater than u.
func bruteAfter(nodeCell []int32, cellsPer int, torus bool, cell int32, u int) []int32 {
	inBlock := map[int]bool{}
	ForBlockCells(cellsPer, torus, int(cell), func(c int) { inBlock[c] = true })
	var out []int32
	for v, c := range nodeCell {
		if inBlock[int(c)] && v > u {
			out = append(out, int32(v))
		}
	}
	slices.Sort(out)
	return out
}

func TestBlocksAfterMatchesBruteForce(t *testing.T) {
	r := rng.New(21)
	for _, torus := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			k, n := 6, 300
			nodeCell := make([]int32, n)
			for u := range nodeCell {
				nodeCell[u] = int32(r.Intn(k * k))
			}
			starts, order := buildCellList(nodeCell, k*k)
			var b Blocks
			b.Build(k, torus, starts, order, workers)
			for u := 0; u < n; u += 7 {
				cell := nodeCell[u]
				got := b.After(cell, u)
				want := bruteAfter(nodeCell, k, torus, cell, u)
				if !slices.Equal(got, want) {
					t.Fatalf("torus=%v workers=%d After(%d, %d) = %v, want %v",
						torus, workers, cell, u, got, want)
				}
			}
			// After(cell, -1) is the whole block, ascending.
			for c := int32(0); c < int32(k*k); c++ {
				all := b.After(c, -1)
				if !slices.IsSorted(all) {
					t.Fatalf("block %d candidates not ascending: %v", c, all)
				}
				if want := bruteAfter(nodeCell, k, torus, c, -1); !slices.Equal(all, want) {
					t.Fatalf("block %d = %v, want %v", c, all, want)
				}
			}
		}
	}
}

func TestBlocksRebuildReusesBuffers(t *testing.T) {
	// A second Build over a smaller, different layout must fully
	// replace the first index even though the buffers are recycled.
	k := 4
	var b Blocks
	nodeCell1 := []int32{0, 0, 5, 10, 15, 15, 15}
	s1, o1 := buildCellList(nodeCell1, k*k)
	b.Build(k, true, s1, o1, 2)

	nodeCell2 := []int32{3, 3, 3}
	s2, o2 := buildCellList(nodeCell2, k*k)
	b.Build(k, true, s2, o2, 1)
	for c := int32(0); c < int32(k*k); c++ {
		got := b.After(c, -1)
		want := bruteAfter(nodeCell2, k, true, c, -1)
		if !slices.Equal(got, want) {
			t.Fatalf("after rebuild, block %d = %v, want %v", c, got, want)
		}
	}
}

func TestBlocksEmptyCells(t *testing.T) {
	// An entirely empty grid yields empty blocks everywhere.
	k := 3
	starts, order := buildCellList(nil, k*k)
	var b Blocks
	b.Build(k, false, starts, order, 3)
	for c := int32(0); c < int32(k*k); c++ {
		if got := b.After(c, -1); len(got) != 0 {
			t.Fatalf("empty grid block %d = %v, want empty", c, got)
		}
	}
}
