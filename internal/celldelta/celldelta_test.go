package celldelta

import (
	"math"
	"slices"
	"testing"

	"meg/internal/graph"
	"meg/internal/rng"
)

// testWorld is one side of a transition for testing: positions in the
// unit square plus the derived cell-list structures, mirroring the
// counting-sort layout geommeg and mobility produce.
type testWorld struct {
	pos      [][2]float64
	cellsPer int
	torus    bool
	radius   float64
	grid     Grid
}

func newWorld(pos [][2]float64, cellsPer int, torus bool, radius float64) *testWorld {
	w := &testWorld{pos: pos, cellsPer: cellsPer, torus: torus, radius: radius}
	n := len(pos)
	nodeCell := make([]int32, n)
	counts := make([]int32, cellsPer*cellsPer+1)
	for u, p := range pos {
		cx := int(p[0] * float64(cellsPer))
		cy := int(p[1] * float64(cellsPer))
		if cx >= cellsPer {
			cx = cellsPer - 1
		}
		if cy >= cellsPer {
			cy = cellsPer - 1
		}
		nodeCell[u] = int32(cy*cellsPer + cx)
		counts[nodeCell[u]+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	starts := slices.Clone(counts)
	order := make([]int32, n)
	// Ascending u fills each cell's segment in ascending node order —
	// the layout the classifier's contract requires.
	fill := slices.Clone(starts)
	for u := 0; u < n; u++ {
		c := nodeCell[u]
		order[fill[c]] = int32(u)
		fill[c]++
	}
	w.grid = Grid{NodeCell: nodeCell, Starts: starts, Order: order, Adjacent: w.adjacent}
	return w
}

func (w *testWorld) adjacent(u, v int) bool {
	dx := math.Abs(w.pos[u][0] - w.pos[v][0])
	dy := math.Abs(w.pos[u][1] - w.pos[v][1])
	if w.torus {
		if dx > 0.5 {
			dx = 1 - dx
		}
		if dy > 0.5 {
			dy = 1 - dy
		}
	}
	return dx*dx+dy*dy <= w.radius*w.radius
}

// bruteDelta recomputes the expected delta by scanning every pair with
// at least one moved endpoint — the oracle Classify must match.
func bruteDelta(old, new *testWorld, moved []int32) graph.Delta {
	isMoved := make([]bool, len(old.pos))
	for _, u := range moved {
		isMoved[u] = true
	}
	var d graph.Delta
	for u := 0; u < len(old.pos); u++ {
		for v := u + 1; v < len(old.pos); v++ {
			if !isMoved[u] && !isMoved[v] {
				continue
			}
			aOld := old.adjacent(u, v)
			aNew := new.adjacent(u, v)
			if aOld == aNew {
				continue
			}
			key := graph.PackEdge(u, v)
			if aNew {
				d.Births = append(d.Births, key)
			} else {
				d.Deaths = append(d.Deaths, key)
			}
		}
	}
	slices.Sort(d.Births)
	slices.Sort(d.Deaths)
	return d
}

// randWorlds builds an old/new world pair where a random subset of
// nodes jumps to fresh uniform positions. The cell radius keeps
// adjacency within one cell size, so the 3×3 scan is complete.
func randWorlds(t *testing.T, r *rng.RNG, n, cellsPer int, torus bool) (old, new *testWorld, moved []int32) {
	t.Helper()
	radius := 0.9 / float64(cellsPer)
	oldPos := make([][2]float64, n)
	for i := range oldPos {
		oldPos[i] = [2]float64{r.Float64(), r.Float64()}
	}
	newPos := slices.Clone(oldPos)
	for i := range newPos {
		if r.Bernoulli(0.3) {
			newPos[i] = [2]float64{r.Float64(), r.Float64()}
			moved = append(moved, int32(i))
		}
	}
	return newWorld(oldPos, cellsPer, torus, radius), newWorld(newPos, cellsPer, torus, radius), moved
}

func classifyConfig(old, new *testWorld, moved []int32, brute bool) Config {
	return Config{
		N:         len(old.pos),
		CellsPer:  old.cellsPer,
		Torus:     old.torus,
		Brute:     brute,
		Moved:     moved,
		MovedMark: make([]bool, len(old.pos)),
		Old:       old.grid,
		New:       new.grid,
	}
}

func deltasEqual(a, b graph.Delta) bool {
	return slices.Equal(a.Births, b.Births) && slices.Equal(a.Deaths, b.Deaths)
}

func TestClassifyMatchesBruteForceScan(t *testing.T) {
	for _, torus := range []bool{false, true} {
		r := rng.New(7)
		for trial := 0; trial < 20; trial++ {
			old, new, moved := randWorlds(t, r, 150, 5, torus)
			var c Classifier
			got := c.Classify(classifyConfig(old, new, moved, false), 1)
			want := bruteDelta(old, new, moved)
			if !deltasEqual(got, want) {
				t.Fatalf("torus=%v trial %d: cell delta %d births/%d deaths, brute %d/%d",
					torus, trial, len(got.Births), len(got.Deaths), len(want.Births), len(want.Deaths))
			}
			// Every birth must be adjacent only after, every death
			// only before, and every key must involve a moved node.
			isMoved := make(map[int32]bool)
			for _, u := range moved {
				isMoved[u] = true
			}
			for _, key := range got.Births {
				u, v := graph.UnpackEdge(key)
				if old.adjacent(u, v) || !new.adjacent(u, v) {
					t.Fatalf("birth (%d,%d) not a birth", u, v)
				}
				if !isMoved[int32(u)] && !isMoved[int32(v)] {
					t.Fatalf("birth (%d,%d) has no moved endpoint", u, v)
				}
			}
			for _, key := range got.Deaths {
				u, v := graph.UnpackEdge(key)
				if !old.adjacent(u, v) || new.adjacent(u, v) {
					t.Fatalf("death (%d,%d) not a death", u, v)
				}
			}
		}
	}
}

func TestClassifyBruteModeMatchesCellMode(t *testing.T) {
	r := rng.New(11)
	old, new, moved := randWorlds(t, r, 120, 4, true)
	var cCell, cBrute Classifier
	cell := cCell.Classify(classifyConfig(old, new, moved, false), 2)
	brute := cBrute.Classify(classifyConfig(old, new, moved, true), 2)
	if !deltasEqual(cell, brute) {
		t.Fatalf("cell scan and brute scan disagree: %d/%d vs %d/%d births/deaths",
			len(cell.Births), len(cell.Deaths), len(brute.Births), len(brute.Deaths))
	}
	if len(cell.Births)+len(cell.Deaths) == 0 {
		t.Fatal("degenerate test: no churn classified")
	}
}

func TestClassifyWorkerCountInvariance(t *testing.T) {
	r := rng.New(3)
	old, new, moved := randWorlds(t, r, 200, 6, false)
	var base Classifier
	want := base.Classify(classifyConfig(old, new, moved, false), 1)
	wantB, wantD := slices.Clone(want.Births), slices.Clone(want.Deaths)
	for _, workers := range []int{2, 3, 7, 16, 1000} {
		var c Classifier
		got := c.Classify(classifyConfig(old, new, moved, false), workers)
		if !slices.Equal(got.Births, wantB) || !slices.Equal(got.Deaths, wantD) {
			t.Fatalf("workers=%d: delta differs from serial classification", workers)
		}
	}
}

func TestClassifyEmptyMovedList(t *testing.T) {
	r := rng.New(5)
	old, _, _ := randWorlds(t, r, 50, 4, true)
	var c Classifier
	got := c.Classify(classifyConfig(old, old, nil, false), 4)
	if len(got.Births) != 0 || len(got.Deaths) != 0 {
		t.Fatalf("no moved nodes must yield an empty delta, got %d/%d", len(got.Births), len(got.Deaths))
	}
}

func TestClassifyEmptyCells(t *testing.T) {
	// All nodes packed into one corner cell leaves the rest of the
	// grid empty; the 3×3 scans must cope with empty segments.
	n := 20
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{0.01 + float64(i)*0.001, 0.01}
	}
	old := newWorld(pos, 8, false, 0.9/8)
	newPos := slices.Clone(pos)
	newPos[3] = [2]float64{0.95, 0.95} // far corner, leaves everyone's radius
	new := newWorld(newPos, 8, false, 0.9/8)
	moved := []int32{3}
	var c Classifier
	got := c.Classify(classifyConfig(old, new, moved, false), 2)
	want := bruteDelta(old, new, moved)
	if !deltasEqual(got, want) {
		t.Fatalf("corner-case delta mismatch: got %d/%d, want %d/%d",
			len(got.Births), len(got.Deaths), len(want.Births), len(want.Deaths))
	}
	if len(want.Deaths) == 0 {
		t.Fatal("degenerate test: moving node 3 away should kill edges")
	}
}

func TestClassifyClearsMovedMark(t *testing.T) {
	r := rng.New(9)
	old, new, moved := randWorlds(t, r, 80, 4, false)
	cfg := classifyConfig(old, new, moved, false)
	var c Classifier
	c.Classify(cfg, 3)
	for i, m := range cfg.MovedMark {
		if m {
			t.Fatalf("MovedMark[%d] left set after Classify", i)
		}
	}
}

func TestClassifyReusesClassifierAcrossCalls(t *testing.T) {
	// The returned slices alias classifier scratch; a second Classify
	// on different input must produce that input's delta, not remnants
	// of the first.
	r := rng.New(13)
	var c Classifier
	for trial := 0; trial < 5; trial++ {
		old, new, moved := randWorlds(t, r, 100, 5, trial%2 == 0)
		got := c.Classify(classifyConfig(old, new, moved, false), 1+trial)
		want := bruteDelta(old, new, moved)
		if !deltasEqual(got, want) {
			t.Fatalf("trial %d: reused classifier diverges from brute force", trial)
		}
	}
}
