// Package celldelta implements the moved-node edge-churn classifier
// the cell-list models (geommeg's lattice walk, mobility's continuous
// processes) share: given the cell structures describing node
// positions before and after one step and the list of nodes that
// actually moved, it returns the snapshot delta — every pair with at
// least one moved endpoint whose adjacency flipped — as sorted packed
// edge lists. Keeping the classifier in one place keeps the two
// models' ownership rule, candidate dedup, and merge semantics from
// ever diverging.
package celldelta

import (
	"slices"

	"meg/internal/graph"
	"meg/internal/par"
)

// Grid is one side (old or new) of a transition: the cell-list
// structure over the positions at that time, plus the adjacency
// predicate under those positions. Within a cell, Order must list
// nodes ascending (the counting-sort order both models produce).
type Grid struct {
	NodeCell []int32
	Starts   []int32
	Order    []int32
	// Adjacent reports whether u and v are within transmission radius
	// under this side's positions.
	Adjacent func(u, v int) bool
}

// Config describes one transition to classify.
type Config struct {
	// N is the node count, CellsPer the cells per axis, Torus whether
	// the 3×3 scan wraps.
	N        int
	CellsPer int
	Torus    bool
	// Morton, when non-nil, is the cell layout of both grids' cell
	// indices (NodeCell/Starts order); nil means row-major. The
	// classifier's output is independent of the layout.
	Morton *Morton
	// Brute disables the cell structures (models too small for a 3×3
	// scan): every moved node examines every other node.
	Brute bool
	// Moved lists the nodes whose position changed, ascending.
	Moved []int32
	// MovedMark is scratch of length N, all false on entry; Classify
	// sets it for Moved during the scan and clears it before returning.
	MovedMark []bool
	// Old and New describe the pre- and post-step sides. Both grids
	// are ignored under Brute.
	Old, New Grid
}

// Classifier owns the reusable per-worker scratch. The zero value is
// ready; one Classifier serves one model instance (calls must not
// overlap).
type Classifier struct {
	bufs   []classifyBuf
	births []uint64
	deaths []uint64
}

// classifyBuf is one worker's scratch: the block's birth/death keys
// plus a generation-stamped candidate-dedup array.
type classifyBuf struct {
	births []uint64
	deaths []uint64
	seen   []uint32
	gen    uint32
}

// Classify returns the transition's delta. Each moved node scans its
// old 3×3 neighborhood in the old grid and its new one in the new grid
// (a pair with both endpoints moved is owned by the smaller), in
// parallel over blocks of the moved list; per-block key lists are
// concatenated and sorted, so the delta is identical for every worker
// count. The returned slices are valid until the next Classify call.
func (c *Classifier) Classify(cfg Config, workers int) graph.Delta {
	moved := cfg.Moved
	if len(moved) == 0 {
		// Nothing moved, nothing flipped. The callers guard this case
		// themselves, but the classifier's contract should not depend
		// on it (the worker clamp below would otherwise leave the
		// scratch pool empty while ForBlocks still runs one block).
		return graph.Delta{}
	}
	for _, u := range moved {
		cfg.MovedMark[u] = true
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(moved) {
		workers = len(moved)
	}
	if len(c.bufs) < workers {
		c.bufs = append(c.bufs, make([]classifyBuf, workers-len(c.bufs))...)
	}
	par.ForBlocks(workers, len(moved), func(blk, lo, hi int) {
		db := &c.bufs[blk]
		db.births = db.births[:0]
		db.deaths = db.deaths[:0]
		if db.seen == nil {
			db.seen = make([]uint32, cfg.N)
		}
		for i := lo; i < hi; i++ {
			u := int(moved[i])
			db.gen++
			if db.gen == 0 {
				for j := range db.seen {
					db.seen[j] = 0
				}
				db.gen = 1
			}
			if cfg.Brute {
				for v := 0; v < cfg.N; v++ {
					db.examine(&cfg, u, v)
				}
			} else {
				db.scanCells(&cfg, &cfg.Old, int(cfg.Old.NodeCell[u]), u)
				db.scanCells(&cfg, &cfg.New, int(cfg.New.NodeCell[u]), u)
			}
		}
	})
	c.births = c.births[:0]
	c.deaths = c.deaths[:0]
	for blk := 0; blk < workers; blk++ {
		c.births = append(c.births, c.bufs[blk].births...)
		c.deaths = append(c.deaths, c.bufs[blk].deaths...)
	}
	slices.Sort(c.births)
	slices.Sort(c.deaths)
	for _, u := range moved {
		cfg.MovedMark[u] = false
	}
	return graph.Delta{Births: c.births, Deaths: c.deaths}
}

// examine classifies the candidate pair {u, v} under the worker's
// current dedup generation, appending a key when the pair's adjacency
// flipped between the two sides.
func (db *classifyBuf) examine(cfg *Config, u, v int) {
	if v == u || db.seen[v] == db.gen {
		return
	}
	db.seen[v] = db.gen
	if cfg.MovedMark[v] && v < u {
		return // pair owned by the smaller moved endpoint
	}
	aOld := cfg.Old.Adjacent(u, v)
	aNew := cfg.New.Adjacent(u, v)
	if aOld == aNew {
		return
	}
	key := graph.PackEdge(u, v)
	if aNew {
		db.births = append(db.births, key)
	} else {
		db.deaths = append(db.deaths, key)
	}
}

// scanCells examines every node in the 3×3 cell block around cell cu
// of the given grid as a candidate partner of moved node u.
func (db *classifyBuf) scanCells(cfg *Config, g *Grid, cu, u int) {
	ForBlockCellsLayout(cfg.CellsPer, cfg.Torus, cfg.Morton, cu, func(cell int) {
		for i := g.Starts[cell]; i < g.Starts[cell+1]; i++ {
			db.examine(cfg, u, int(g.Order[i]))
		}
	})
}
