package celldelta

import (
	"slices"
)

// Morton is a cache-aware cell indexing for the k×k grid: cells are
// numbered along the Z-order (Morton) curve instead of row-major, so
// the cells of a 3×3 block — and with them the per-cell segments the
// Blocks index gathers and the counting-sort runs the models build —
// sit near each other in memory. At 512k nodes the row-major grid is
// ~700 cells per axis and a vertical block neighbor is ~2800 node ids
// away; under Z-order it is usually within the same few cache lines.
//
// Because k is not generally a power of two, raw interleaved codes
// have holes; Morton ranks them into a dense [0, k²) numbering and
// keeps both directions as lookup tables. Everything downstream —
// within-cell ascending node order, block-segment sorting, the
// u-ascending edge sweep — is independent of how cells are numbered,
// which is what keeps snapshots and deltas byte-identical to the
// row-major layout.
type Morton struct {
	k     int
	index []int32 // row-major cy·k+cx → dense Z-order rank
	cellX []int32 // rank → cx
	cellY []int32 // rank → cy
}

// NewMorton builds the dense Z-order numbering of a k×k grid.
func NewMorton(k int) *Morton {
	cells := k * k
	ranks := make([]int32, cells)
	codes := make([]uint64, cells)
	for c := range ranks {
		ranks[c] = int32(c)
		codes[c] = spreadBits(uint64(c%k)) | spreadBits(uint64(c/k))<<1
	}
	slices.SortFunc(ranks, func(a, b int32) int {
		if codes[a] < codes[b] {
			return -1
		}
		return 1 // codes are distinct: one per grid cell
	})
	mo := &Morton{
		k:     k,
		index: make([]int32, cells),
		cellX: make([]int32, cells),
		cellY: make([]int32, cells),
	}
	for r, c := range ranks {
		mo.index[c] = int32(r)
		mo.cellX[r] = c % int32(k)
		mo.cellY[r] = c / int32(k)
	}
	return mo
}

// Cell returns the dense Z-order index of grid coordinates (cx, cy).
func (mo *Morton) Cell(cx, cy int) int32 { return mo.index[cy*mo.k+cx] }

// spreadBits spaces the low 32 bits of x one position apart (the
// classic part1by1 spread), the x half of a 64-bit Morton code.
func spreadBits(x uint64) uint64 {
	x &= 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
