package celldelta

import (
	"slices"
	"sort"

	"meg/internal/par"
)

// ForBlockCells invokes fn for each distinct cell of c's 3×3 block on
// a cellsPer×cellsPer grid, wrapping toroidally when torus is set.
// Callers guarantee cellsPer ≥ 3 (smaller grids use brute force), so
// the nine cells are distinct.
func ForBlockCells(cellsPer int, torus bool, c int, fn func(cell int)) {
	ForBlockCellsLayout(cellsPer, torus, nil, c, fn)
}

// ForBlockCellsLayout is ForBlockCells under an explicit cell layout:
// with mo nil, cell indices are row-major (cy·k+cx); with a Morton
// layout, c and the indices handed to fn are dense Z-order ranks. The
// nine cells visited are the same geometric block either way — only
// their numbering changes.
func ForBlockCellsLayout(cellsPer int, torus bool, mo *Morton, c int, fn func(cell int)) {
	k := cellsPer
	var cx, cy int
	if mo != nil {
		cx, cy = int(mo.cellX[c]), int(mo.cellY[c])
	} else {
		cx, cy = c%k, c/k
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if torus {
				x, y = (x+k)%k, (y+k)%k
			} else if x < 0 || x >= k || y < 0 || y >= k {
				continue
			}
			if mo != nil {
				fn(int(mo.index[y*k+x]))
			} else {
				fn(y*k + x)
			}
		}
	}
}

// Blocks is the merged 3×3 candidate index over a cell list: for every
// cell, the ascending node list of its whole block. Built once per
// snapshot, it lets an edge sweep binary-search straight to a node's
// v > u suffix instead of filtering (and sorting) the block per node —
// the sweep touches half the candidates and emits rows already in the
// canonical ascending order graph.Mutable merges against. The zero
// value is ready; buffers persist across rebuilds.
type Blocks struct {
	offs []int32
	nbhd []int32
}

// Build recomputes the index from a cell list (starts/order in the
// counting-sort layout both models produce: within a cell, node ids
// ascend). Per-cell segments are disjoint, so the parallel rebuild is
// byte-identical for every worker count.
func (b *Blocks) Build(cellsPer int, torus bool, starts, order []int32, workers int) {
	b.BuildLayout(cellsPer, torus, nil, starts, order, workers)
}

// BuildLayout is Build under an explicit cell layout (nil = row-major;
// see ForBlockCellsLayout). Each cell's merged segment is sorted by
// node id regardless of layout, so downstream sweeps see identical
// candidate lists — the layout only changes which segments are memory
// neighbors.
func (b *Blocks) BuildLayout(cellsPer int, torus bool, mo *Morton, starts, order []int32, workers int) {
	cells := cellsPer * cellsPer
	if len(b.offs) < cells+1 {
		b.offs = make([]int32, cells+1)
	}
	offs := b.offs
	offs[0] = 0
	for c := 0; c < cells; c++ {
		size := int32(0)
		ForBlockCellsLayout(cellsPer, torus, mo, c, func(bc int) { size += starts[bc+1] - starts[bc] })
		offs[c+1] = offs[c] + size
	}
	total := int(offs[cells])
	if cap(b.nbhd) < total {
		b.nbhd = make([]int32, total)
	}
	nbhd := b.nbhd[:total]
	b.nbhd = nbhd
	par.ForBlocks(workers, cells, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			seg := nbhd[offs[c]:offs[c+1]]
			i := 0
			ForBlockCellsLayout(cellsPer, torus, mo, c, func(bc int) {
				i += copy(seg[i:], order[starts[bc]:starts[bc+1]])
			})
			slices.Sort(seg)
		}
	})
}

// After returns the ascending candidates v > u of the given cell's
// block. The slice aliases the index and is valid until the next Build.
func (b *Blocks) After(cell int32, u int) []int32 {
	list := b.nbhd[b.offs[cell]:b.offs[cell+1]]
	i := sort.Search(len(list), func(i int) bool { return list[i] > int32(u) })
	return list[i:]
}
