// Package graph provides the static undirected graph snapshot type that
// every evolving-graph model in this repository materializes once per
// time step, together with the algorithms the experiments need: BFS,
// connected components, degree statistics, and neighborhood queries.
//
// Snapshots use a compressed sparse row (CSR) layout: two flat slices
// instead of per-node adjacency slices, which keeps per-step allocation
// and GC pressure low when a simulation rebuilds the graph thousands of
// times. A Builder can be reused across steps to recycle its buffers.
package graph

import (
	"fmt"
	"sync/atomic"

	"meg/internal/par"
)

// Graph is an undirected graph over the node set [0, n) in CSR form.
// Both directions of every edge are stored, so Degree and Neighbors are
// O(1) and O(deg) respectively.
//
// Two storage layouts share the type: the packed layout Build produces
// (lens == nil; the neighbor list of u is adj[offs[u]:offs[u+1]]) and
// the slack layout Mutable maintains (lens non-nil; row u occupies the
// capacity range adj[offs[u]:offs[u+1]] but only its first lens[u]
// entries are live). All read methods work on both.
type Graph struct {
	n      int
	offs   []int32 // len n+1; row u's storage is adj[offs[u]:offs[u+1]]
	adj    []int32
	lens   []int32 // nil for packed CSR; else live row lengths (slack layout)
	mCount int     // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.mCount }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	if g.lens != nil {
		return int(g.lens[u])
	}
	return int(g.offs[u+1] - g.offs[u])
}

// Neighbors returns the neighbor list of u. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	off := g.offs[u]
	if g.lens != nil {
		return g.adj[off : off+g.lens[u]]
	}
	return g.adj[off:g.offs[u+1]]
}

// HasEdge reports whether {u, v} is an edge. It scans u's (or v's,
// whichever is shorter) neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// MaxDegree returns the largest degree in the graph (0 for empty
// graphs).
func (g *Graph) MaxDegree() int {
	best := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > best {
			best = d
		}
	}
	return best
}

// AvgDegree returns the average degree 2m/n, or 0 for an empty node set.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.mCount) / float64(g.n)
}

// Builder accumulates undirected edges and produces CSR snapshots.
// Builders may be reused: Reset clears the edge list but keeps the
// allocated buffers, so steady-state simulation loops allocate nothing.
type Builder struct {
	n      int
	srcs   []int32
	dsts   []int32
	counts []int32
}

// NewBuilder returns a Builder for graphs over [0, n).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, counts: make([]int32, n+1)}
}

// N returns the node count the builder was created with.
func (b *Builder) N() int { return b.n }

// Reset clears accumulated edges, optionally resizing the node universe.
func (b *Builder) Reset(n int) {
	if n < 0 {
		panic("graph: negative node count")
	}
	b.n = n
	b.srcs = b.srcs[:0]
	b.dsts = b.dsts[:0]
	if cap(b.counts) < n+1 {
		b.counts = make([]int32, n+1)
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops and duplicate
// insertions are the caller's responsibility to avoid (the models in
// this repository never produce them). It panics if either endpoint is
// out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v {
		panic("graph: self-loop")
	}
	b.srcs = append(b.srcs, int32(u))
	b.dsts = append(b.dsts, int32(v))
}

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// AddEdgesBulk appends a batch of undirected edges {srcs[i], dsts[i]}.
// It validates endpoints like AddEdge but amortizes the call overhead,
// which matters when a parallel snapshot sweep hands over millions of
// edges in per-shard buffers.
func (b *Builder) AddEdgesBulk(srcs, dsts []int32) {
	if len(srcs) != len(dsts) {
		panic("graph: AddEdgesBulk length mismatch")
	}
	n := int32(b.n)
	for i := range srcs {
		u, v := srcs[i], dsts[i]
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
		}
		if u == v {
			panic("graph: self-loop")
		}
	}
	b.srcs = append(b.srcs, srcs...)
	b.dsts = append(b.dsts, dsts...)
}

// AddEdgeBlocks appends the edges of every (srcs[i], dsts[i]) block in
// block order, copying and validating blocks concurrently on up to
// workers goroutines — the handover path for parallel snapshot sweeps,
// whose per-shard buffers would otherwise funnel through a serial
// append. The resulting edge list is identical to calling AddEdgesBulk
// per block in order, for every worker count.
func (b *Builder) AddEdgeBlocks(workers int, srcs, dsts [][]int32) {
	if len(srcs) != len(dsts) {
		panic("graph: AddEdgeBlocks length mismatch")
	}
	offs := make([]int, len(srcs)+1)
	for i := range srcs {
		if len(srcs[i]) != len(dsts[i]) {
			panic("graph: AddEdgeBlocks length mismatch")
		}
		offs[i+1] = offs[i] + len(srcs[i])
	}
	base := len(b.srcs)
	b.srcs = growInt32(b.srcs, offs[len(srcs)])
	b.dsts = growInt32(b.dsts, offs[len(srcs)])
	n := int32(b.n)
	var bad atomic.Bool
	par.Do(workers, len(srcs), func(i int) {
		copy(b.srcs[base+offs[i]:base+offs[i+1]], srcs[i])
		copy(b.dsts[base+offs[i]:base+offs[i+1]], dsts[i])
		for j := range srcs[i] {
			u, v := srcs[i][j], dsts[i][j]
			if u < 0 || u >= n || v < 0 || v >= n || u == v {
				bad.Store(true)
			}
		}
	})
	if bad.Load() {
		panic("graph: AddEdgeBlocks: edge endpoint out of range or self-loop")
	}
}

// growInt32 extends s by extra entries (contents unspecified) without
// the intermediate allocation append(s, make(...)...) would cost.
func growInt32(s []int32, extra int) []int32 {
	want := len(s) + extra
	if cap(s) >= want {
		return s[:want]
	}
	ns := make([]int32, want)
	copy(ns, s)
	return ns
}

// BlockSweep is the reusable scaffold of a parallel snapshot sweep: it
// owns per-block edge buffers and runs the
// split-sweep-handover-build pipeline every evolving-graph model's
// Graph() shares. The zero value is ready for use; buffers persist
// across rounds so steady-state sweeps allocate nothing.
type BlockSweep struct {
	srcs, dsts [][]int32
}

// Run splits [0, items) into one contiguous block per worker, invokes
// sweep on each block to fill its private buffer pair (sweep must
// append edges in ascending block order and return the extended
// slices), hands the blocks to b in block order, and builds the CSR
// snapshot on the same pool. Because block concatenation reproduces the
// serial left-to-right emission and BuildParallel is byte-identical to
// Build, the snapshot is identical for every worker count.
func (bs *BlockSweep) Run(b *Builder, workers, items int, sweep func(lo, hi int, srcs, dsts []int32) ([]int32, []int32)) *Graph {
	p := workers
	if p > items {
		p = items
	}
	if p < 1 {
		p = 1
	}
	if len(bs.srcs) < p {
		bs.srcs = append(bs.srcs, make([][]int32, p-len(bs.srcs))...)
		bs.dsts = append(bs.dsts, make([][]int32, p-len(bs.dsts))...)
	}
	par.ForBlocks(p, items, func(blk, lo, hi int) {
		bs.srcs[blk], bs.dsts[blk] = sweep(lo, hi, bs.srcs[blk][:0], bs.dsts[blk][:0])
	})
	b.AddEdgeBlocks(p, bs.srcs[:p], bs.dsts[:p])
	return b.BuildParallel(p)
}

// Build produces the CSR snapshot for the recorded edges using a
// counting sort over endpoints; O(n + m) time.
func (b *Builder) Build() *Graph {
	n, m := b.n, len(b.srcs)
	counts := b.counts[:n+1]
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < m; i++ {
		counts[b.srcs[i]+1]++
		counts[b.dsts[i]+1]++
	}
	offs := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + counts[i+1]
	}
	adj := make([]int32, 2*m)
	cursor := make([]int32, n)
	copy(cursor, offs[:n])
	for i := 0; i < m; i++ {
		u, v := b.srcs[i], b.dsts[i]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	return &Graph{n: n, offs: offs, adj: adj, mCount: m}
}

// BuildParallel is Build on a worker pool. Both the degree count and
// the adjacency scatter are parallelized over contiguous node blocks:
// every worker scans the full edge list but touches only the counters
// and adjacency slots of nodes in its own block, so writes never race
// and — because each worker visits edges in the same global order the
// serial scatter does — the produced CSR arrays are byte-identical to
// Build's for every worker count. The extra work is one redundant edge
// scan per worker, which memory bandwidth absorbs long before the
// serial build's latency does.
//
// workers <= 1 falls back to the serial Build.
func (b *Builder) BuildParallel(workers int) *Graph {
	workers = par.Workers(workers)
	n, m := b.n, len(b.srcs)
	// Below ~1M endpoint updates the fork/join overhead and the
	// redundant scans cost more than the serial loop.
	if workers <= 1 || m < 1<<19 || n == 0 {
		return b.Build()
	}
	offs := make([]int32, n+1)
	adj := make([]int32, 2*m)
	srcs, dsts := b.srcs, b.dsts
	counts := b.counts[:n+1]
	par.ForBlocks(workers, n, func(_, lo, hi int) {
		l, h := int32(lo), int32(hi)
		// A node u in [lo, hi) increments counts[u+1], so this block
		// owns exactly counts[lo+1 .. hi] — disjoint from its
		// neighbors. counts[0] is never read or written.
		for i := lo + 1; i <= hi; i++ {
			counts[i] = 0
		}
		for i := 0; i < m; i++ {
			if u := srcs[i]; u >= l && u < h {
				//meg:shard-safe the l<=u<h guard above confines the slot to this block's counts[lo+1..hi]
				counts[u+1]++
			}
			if v := dsts[i]; v >= l && v < h {
				//meg:shard-safe the l<=v<h guard above confines the slot to this block's counts[lo+1..hi]
				counts[v+1]++
			}
		}
	})
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + counts[i+1]
	}
	par.ForBlocks(workers, n, func(_, lo, hi int) {
		l, h := int32(lo), int32(hi)
		cursor := make([]int32, hi-lo)
		copy(cursor, offs[lo:hi])
		for i := 0; i < m; i++ {
			if u := srcs[i]; u >= l && u < h {
				adj[cursor[u-l]] = dsts[i]
				cursor[u-l]++
			}
			if v := dsts[i]; v >= l && v < h {
				adj[cursor[v-l]] = srcs[i]
				cursor[v-l]++
			}
		}
	})
	return &Graph{n: n, offs: offs, adj: adj, mCount: m}
}

// FromEdges builds a graph over [0, n) from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Empty returns the edgeless graph over [0, n).
func Empty(n int) *Graph { return NewBuilder(n).Build() }

// Path returns the path graph 0-1-…-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n ≥ 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 nodes")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// BFS computes hop distances from src; unreachable nodes get -1.
// The optional dist slice is reused when it has length n.
func (g *Graph) BFS(src int, dist []int32) []int32 {
	if dist == nil || len(dist) != g.n {
		dist = make([]int32, g.n)
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src and
// whether every node is reachable.
func (g *Graph) Eccentricity(src int) (ecc int, connected bool) {
	dist := g.BFS(src, nil)
	connected = true
	for _, d := range dist {
		if d < 0 {
			connected = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, connected
}

// Components labels each node with a component id in [0, k) and returns
// the labels and the number k of connected components.
func (g *Graph) Components() (labels []int32, k int) {
	labels = make([]int32, g.n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(k)
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] < 0 {
					labels[v] = int32(k)
					queue = append(queue, v)
				}
			}
		}
		k++
	}
	return labels, k
}

// Connected reports whether the graph has exactly one connected
// component (true for the empty graph on ≤ 1 nodes).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	_, k := g.Components()
	return k == 1
}

// LargestComponentSize returns the size of the largest connected
// component (0 for an empty node set).
func (g *Graph) LargestComponentSize() int {
	if g.n == 0 {
		return 0
	}
	labels, k := g.Components()
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// Diameter returns the exact diameter (largest finite pairwise hop
// distance) by running BFS from every node: O(n·m). Use only on small
// graphs. The second result reports whether the graph is connected; for
// disconnected graphs the diameter is taken within components.
func (g *Graph) Diameter() (int, bool) {
	diam := 0
	connected := true
	dist := make([]int32, g.n)
	for s := 0; s < g.n; s++ {
		dist = g.BFS(s, dist)
		for _, d := range dist {
			if d < 0 {
				connected = false
			} else if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam, connected
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.n; u++ {
		h[g.Degree(u)]++
	}
	return h
}
