package graph

import (
	"fmt"

	"meg/internal/par"
)

// Mutable is an incrementally maintained snapshot: a CSR graph stored
// with per-row slack so that applying a birth/death Delta rebuilds only
// the rows the delta touches, in O(churn · degree) instead of the
// O(n + m) a full Builder pass costs. It is the engine-side half of the
// incremental snapshot path: a delta-capable dynamics emits Deltas
// (core.DeltaDynamics) and the engines fold them into a Mutable instead
// of re-materializing every round.
//
// Invariant: every adjacency row is sorted ascending — the canonical
// row order all delta-capable models produce — so dirty rows rebuild by
// linear three-way merge and the maintained view stays byte-identical
// to a from-scratch build of the same edge set.
//
// The *Graph returned by Graph is a live view: ApplyDelta updates it in
// place (same pointer), mirroring the "snapshot valid until the next
// Step" aliasing contract of the dynamics themselves.
type Mutable struct {
	view Graph

	// Per-row delta scatter, epoch-stamped so steady-state rounds touch
	// only O(churn) state.
	adds    [][]int32
	dels    [][]int32
	touched []uint32
	epoch   uint32
	dirty   []int32
	newLen  []int32

	// Per-worker merge scratch for the in-place rebuild.
	scratch [][]int32

	// rows, when attached, is kept coherent with the snapshot.
	rows *DenseRows
}

// rowSlack returns the storage capacity for a row of the given live
// length: 25% headroom plus a constant, so low-churn rounds almost
// never trigger a relayout and memory stays within ~1.3× the packed
// layout.
func rowSlack(l int) int { return l + l/4 + 4 }

// NewMutable returns a Mutable initialized to a copy of g. Every row of
// g must be sorted ascending (the canonical order of all delta-capable
// models); NewMutable panics otherwise, because the merge-based row
// rebuild would silently corrupt unsorted rows. g itself is not
// retained.
func NewMutable(g *Graph) *Mutable {
	m := &Mutable{}
	m.Reset(g)
	return m
}

// Reset reinitializes m to a copy of g, reusing the existing backing
// arrays wherever capacities allow — the trial-level counterpart of
// graph.Builder's round-level recycling, which is what lets the
// engines pool one Mutable across runs instead of paying a fresh
// O(n + m) allocation each time. Any attached DenseRows is detached
// (runs must never share a matrix), and the epoch stamps keep
// advancing so stale per-row scatter state can never alias the new
// run's. Like NewMutable it panics on unsorted rows.
func (m *Mutable) Reset(g *Graph) {
	n := g.N()
	if grow := n - len(m.adds); grow > 0 {
		m.adds = append(m.adds, make([][]int32, grow)...)
		m.dels = append(m.dels, make([][]int32, grow)...)
		m.touched = append(m.touched, make([]uint32, grow)...)
		m.newLen = append(m.newLen, make([]int32, grow)...)
	}
	m.adds = m.adds[:n]
	m.dels = m.dels[:n]
	m.touched = m.touched[:n]
	m.newLen = m.newLen[:n]
	m.dirty = m.dirty[:0]
	m.rows = nil

	offs := m.view.offs
	if cap(offs) >= n+1 {
		offs = offs[:n+1]
	} else {
		offs = make([]int32, n+1)
	}
	offs[0] = 0
	for u := 0; u < n; u++ {
		offs[u+1] = offs[u] + int32(rowSlack(g.Degree(u)))
	}
	adj := m.view.adj
	if total := int(offs[n]); cap(adj) >= total {
		adj = adj[:total]
	} else {
		adj = make([]int32, total)
	}
	lens := m.view.lens
	if cap(lens) >= n {
		lens = lens[:n]
	} else {
		lens = make([]int32, n)
	}
	for u := 0; u < n; u++ {
		row := g.Neighbors(u)
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				panic(fmt.Sprintf("graph: NewMutable requires sorted adjacency rows (row %d)", u))
			}
		}
		copy(adj[offs[u]:], row)
		lens[u] = int32(len(row))
	}
	m.view = Graph{n: n, offs: offs, adj: adj, lens: lens, mCount: g.M()}
}

// N returns the node count.
func (m *Mutable) N() int { return m.view.n }

// Graph returns the live snapshot view. The pointer stays valid across
// ApplyDelta calls — the contents update in place — and must be treated
// like any dynamics snapshot: stale copies of its rows are invalid
// after the next ApplyDelta.
func (m *Mutable) Graph() *Graph { return &m.view }

// SetDenseRows attaches a dense adjacency matrix that ApplyDelta keeps
// coherent with the snapshot (births set the mirrored bit pair, deaths
// clear it). The matrix must describe the current snapshot — typically
// NewDenseRows(m.Graph()) — and must span the same node universe.
func (m *Mutable) SetDenseRows(r *DenseRows) {
	if r != nil && r.n != m.view.n {
		panic("graph: SetDenseRows universe mismatch")
	}
	m.rows = r
}

// RowStamps exposes the per-row epoch stamps: row u was touched by the
// most recent non-empty ApplyDelta iff RowStamps()[u] == Epoch(). The
// test is conservative in the safe direction — after an empty apply
// (which changes nothing and leaves the epoch alone), after Reset, and
// before the first apply it may report rows changed that were not, but
// it never misses a row the last apply rebuilt. Kernels use the pair to
// skip re-examining nodes whose neighborhood provably did not change
// between rounds, comparing stamps inline instead of paying a call per
// node. The slice is valid until the next Reset; Epoch must be re-read
// after every ApplyDelta.
func (m *Mutable) RowStamps() []uint32 { return m.touched }

// Epoch returns the stamp value identifying rows touched by the most
// recent non-empty ApplyDelta; see RowStamps.
func (m *Mutable) Epoch() uint32 { return m.epoch }

// ApplyDelta advances the snapshot G_t → G_{t+1}: deaths are removed
// and births inserted, and only the adjacency rows incident to the
// delta are rebuilt — in parallel over dirty rows on up to workers
// goroutines. Because each row's new content is a pure function of its
// old content and the delta, and rows rebuild into disjoint storage,
// the resulting snapshot is byte-identical for every worker count.
//
// Births and Deaths must be ascending PackEdge lists, disjoint from
// each other, with births absent from and deaths present in the current
// snapshot; ApplyDelta panics on any violation rather than corrupting
// the view.
func (m *Mutable) ApplyDelta(d Delta, workers int) {
	if d.Empty() {
		return
	}
	if workers < 1 {
		workers = 1
	}
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		for i := range m.touched {
			m.touched[i] = 0
		}
		m.epoch = 1
	}
	m.dirty = m.dirty[:0]
	m.scatter(d.Births, m.adds, "births")
	m.scatter(d.Deaths, m.dels, "deaths")

	// Per dirty row the new length is exact arithmetic — births are
	// absent, deaths present — so capacity fits are known before any
	// merge runs.
	relayout := false
	for _, u := range m.dirty {
		nl := int(m.view.lens[u]) + len(m.adds[u]) - len(m.dels[u])
		if nl < 0 {
			panic(fmt.Sprintf("graph: ApplyDelta removes more edges than row %d holds", u))
		}
		m.newLen[u] = int32(nl)
		if nl > int(m.view.offs[u+1]-m.view.offs[u]) {
			relayout = true
		}
	}
	if relayout {
		m.relayout(workers)
	} else {
		m.rebuildInPlace(workers)
	}
	m.view.mCount += len(d.Births) - len(d.Deaths)
	if m.rows != nil {
		m.applyRows(d)
	}
}

// scatter distributes one delta list into per-row neighbor lists,
// recording first-touched rows in m.dirty. Because the list is sorted
// by (u, v) key, every row's scattered neighbors arrive ascending: for
// row w the (x, w) entries (x < w, ascending) all precede the (w, v)
// entries (v > w, ascending).
func (m *Mutable) scatter(keys []uint64, into [][]int32, kind string) {
	n := m.view.n
	var prev uint64
	for i, k := range keys {
		if i > 0 && k <= prev {
			panic("graph: ApplyDelta " + kind + " not strictly ascending")
		}
		prev = k
		u, v := UnpackEdge(k)
		if u < 0 || v <= u || v >= n {
			panic(fmt.Sprintf("graph: ApplyDelta %s edge (%d,%d) out of range n=%d", kind, u, v, n))
		}
		m.touch(int32(u))
		m.touch(int32(v))
		into[u] = append(into[u], int32(v))
		into[v] = append(into[v], int32(u))
	}
}

// touch marks a row dirty for this epoch, resetting its delta lists on
// first touch.
func (m *Mutable) touch(u int32) {
	if m.touched[u] != m.epoch {
		m.touched[u] = m.epoch
		m.adds[u] = m.adds[u][:0]
		m.dels[u] = m.dels[u][:0]
		m.dirty = append(m.dirty, u)
	}
}

// rebuildInPlace merges every dirty row into its existing storage slot
// (all fit was verified by the caller). Each worker merges into private
// scratch first because the target range overlaps the old row.
func (m *Mutable) rebuildInPlace(workers int) {
	if len(m.scratch) < workers {
		m.scratch = append(m.scratch, make([][]int32, workers-len(m.scratch))...)
	}
	par.ForBlocks(workers, len(m.dirty), func(blk, lo, hi int) {
		scratch := m.scratch[blk]
		for i := lo; i < hi; i++ {
			u := m.dirty[i]
			off := m.view.offs[u]
			old := m.view.adj[off : off+m.view.lens[u]]
			nl := int(m.newLen[u])
			if cap(scratch) < nl {
				scratch = make([]int32, nl+nl/2+4)
			}
			buf := scratch[:nl]
			mergeRow(buf, old, m.adds[u], m.dels[u], int(u))
			copy(m.view.adj[off:], buf)
			m.view.lens[u] = int32(nl)
		}
		m.scratch[blk] = scratch
	})
}

// relayout rebuilds the whole slack layout: fresh capacities from the
// post-delta row lengths, clean rows copied, dirty rows merged directly
// into their new (disjoint) slots. Amortized by the slack headroom, so
// steady-state low-churn rounds essentially never pay it.
func (m *Mutable) relayout(workers int) {
	n := m.view.n
	newOffs := make([]int32, n+1)
	for u := 0; u < n; u++ {
		l := int(m.view.lens[u])
		if m.touched[u] == m.epoch {
			l = int(m.newLen[u])
		}
		newOffs[u+1] = newOffs[u] + int32(rowSlack(l))
	}
	newAdj := make([]int32, newOffs[n])
	newLens := make([]int32, n)
	par.ForBlocks(workers, n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			off := m.view.offs[u]
			old := m.view.adj[off : off+m.view.lens[u]]
			if m.touched[u] == m.epoch {
				nl := int(m.newLen[u])
				mergeRow(newAdj[newOffs[u]:newOffs[u]+int32(nl)], old, m.adds[u], m.dels[u], u)
				newLens[u] = int32(nl)
			} else {
				copy(newAdj[newOffs[u]:], old)
				newLens[u] = m.view.lens[u]
			}
		}
	})
	m.view.offs, m.view.adj, m.view.lens = newOffs, newAdj, newLens
}

// mergeRow writes (old ∪ adds) \ dels into dst. All three inputs are
// ascending; adds must be disjoint from old and dels a subset of it —
// violations panic, naming the row.
func mergeRow(dst, old, adds, dels []int32, row int) {
	i, j, k, out := 0, 0, 0, 0
	for i < len(old) || j < len(adds) {
		if j >= len(adds) || (i < len(old) && old[i] < adds[j]) {
			v := old[i]
			i++
			if k < len(dels) && dels[k] == v {
				k++
				continue
			}
			dst[out] = v
			out++
		} else {
			if i < len(old) && old[i] == adds[j] {
				panic(fmt.Sprintf("graph: ApplyDelta birth of an edge already present in row %d", row))
			}
			dst[out] = adds[j]
			j++
			out++
		}
	}
	if k != len(dels) {
		panic(fmt.Sprintf("graph: ApplyDelta death of an edge absent from row %d", row))
	}
}

// applyRows folds the delta into the attached dense row matrix:
// O(churn) bit flips, no row rebuilds.
func (m *Mutable) applyRows(d Delta) {
	for _, k := range d.Births {
		u, v := UnpackEdge(k)
		m.rows.setBit(u, v)
		m.rows.setBit(v, u)
	}
	for _, k := range d.Deaths {
		u, v := UnpackEdge(k)
		m.rows.clearBit(u, v)
		m.rows.clearBit(v, u)
	}
}
