package graph

// PackEdge encodes the undirected edge {u, v} with u < v into a single
// uint64 key whose natural ordering equals the lexicographic (u, v)
// ordering. It is the wire format of Delta edge lists; edgemeg's
// internal pair keys use the same layout, so its deltas need no
// re-encoding.
func PackEdge(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// UnpackEdge decodes a PackEdge key into (u, v) with u < v.
func UnpackEdge(key uint64) (u, v int) {
	return int(key >> 32), int(uint32(key))
}

// Delta is the edge difference between two consecutive snapshots
// G_t → G_{t+1} of an evolving graph: the edges born this step and the
// edges that died. It is the currency of the incremental snapshot path
// (core.DeltaDynamics → Mutable.ApplyDelta), which rebuilds only the
// adjacency rows the delta touches instead of the whole CSR.
//
// Both lists hold PackEdge keys in ascending order. Births must be
// absent from G_t and deaths present in it, and the two lists must be
// disjoint — exactly the semantics of a per-edge birth/death process.
// The slices are only valid until the producing dynamics' next
// Step/StepDelta/Reset call; ApplyDelta consumes them immediately.
type Delta struct {
	// Births holds the edges present in G_{t+1} but not G_t.
	Births []uint64
	// Deaths holds the edges present in G_t but not G_{t+1}.
	Deaths []uint64
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Births) == 0 && len(d.Deaths) == 0 }
