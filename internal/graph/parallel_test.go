package graph

import (
	"testing"

	"meg/internal/rng"
)

// randomBuilder fills a builder with a deterministic pseudo-random edge
// list (duplicates avoided by construction: consecutive distinct pairs).
func randomBuilder(n, m int, seed uint64) *Builder {
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := r.Intn(n - 1)
		v := u + 1 + r.Intn(n-1-u)
		b.AddEdge(u, v)
	}
	return b
}

// graphsIdentical requires the exact same CSR content: node count, edge
// count, and every adjacency list in the same order.
func graphsIdentical(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree %d vs %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: adjacency order differs at %d: %d vs %d", u, i, na[i], nb[i])
			}
		}
	}
}

func TestBuildParallelByteIdentical(t *testing.T) {
	// BuildParallel must reproduce Build exactly — same counts, same
	// offsets, same adjacency order — for every worker count. The edge
	// list is made large enough to clear the parallel path's size gate.
	n := 300
	b := randomBuilder(n, 1<<19, 5)
	want := randomBuilder(n, 1<<19, 5).Build()
	for _, workers := range []int{1, 2, 3, 8} {
		got := b.BuildParallel(workers)
		graphsIdentical(t, want, got)
	}
}

func TestBuildParallelSmallFallsBackToSerial(t *testing.T) {
	b := randomBuilder(50, 200, 9)
	want := randomBuilder(50, 200, 9).Build()
	graphsIdentical(t, want, b.BuildParallel(8))
}

func TestAddEdgesBulkMatchesAddEdge(t *testing.T) {
	one := NewBuilder(20)
	bulk := NewBuilder(20)
	srcs := []int32{0, 3, 7, 3}
	dsts := []int32{1, 4, 9, 15}
	for i := range srcs {
		one.AddEdge(int(srcs[i]), int(dsts[i]))
	}
	bulk.AddEdgesBulk(srcs, dsts)
	graphsIdentical(t, one.Build(), bulk.Build())
}

func TestAddEdgeBlocksMatchesBulk(t *testing.T) {
	blocks := [][]int32{{0, 5}, {}, {2}, {7, 7, 9}}
	dblocks := [][]int32{{1, 6}, {}, {3}, {8, 19, 10}}
	want := NewBuilder(20)
	for i := range blocks {
		want.AddEdgesBulk(blocks[i], dblocks[i])
	}
	for _, workers := range []int{1, 2, 8} {
		got := NewBuilder(20)
		got.AddEdgeBlocks(workers, blocks, dblocks)
		graphsIdentical(t, want.Build(), got.Build())
	}
}

func TestAddEdgeBlocksValidates(t *testing.T) {
	for _, tc := range []struct {
		name       string
		srcs, dsts [][]int32
	}{
		{"block count mismatch", [][]int32{{1}}, [][]int32{{2}, {3}}},
		{"block length mismatch", [][]int32{{1}}, [][]int32{{2, 3}}},
		{"out of range", [][]int32{{1}}, [][]int32{{20}}},
		{"self loop", [][]int32{{4}}, [][]int32{{4}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewBuilder(10).AddEdgeBlocks(4, tc.srcs, tc.dsts)
		}()
	}
}

func TestAddEdgesBulkValidates(t *testing.T) {
	for _, tc := range []struct {
		name       string
		srcs, dsts []int32
	}{
		{"length mismatch", []int32{1}, []int32{2, 3}},
		{"out of range", []int32{1}, []int32{20}},
		{"self loop", []int32{4}, []int32{4}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewBuilder(10).AddEdgesBulk(tc.srcs, tc.dsts)
		}()
	}
}

func TestDenseRowsParallelByteIdentical(t *testing.T) {
	g := randomBuilder(500, 4000, 13).Build()
	want := NewDenseRows(g)
	for _, workers := range []int{1, 2, 8} {
		got := NewDenseRowsParallel(g, workers)
		if len(want.words) != len(got.words) {
			t.Fatalf("workers=%d: word counts differ", workers)
		}
		for i := range want.words {
			if want.words[i] != got.words[i] {
				t.Fatalf("workers=%d: word %d differs", workers, i)
			}
		}
	}
}
