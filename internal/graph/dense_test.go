package graph

import (
	"testing"

	"meg/internal/bitset"
)

func TestDenseRows(t *testing.T) {
	// 70 nodes crosses the one-word row boundary.
	g := Cycle(70)
	d := NewDenseRows(g)
	if d.N() != 70 {
		t.Fatalf("N = %d", d.N())
	}
	for u := 0; u < 70; u++ {
		row := d.Row(u)
		if len(row) != 2 {
			t.Fatalf("row stride %d, want 2 words", len(row))
		}
		for v := 0; v < 70; v++ {
			got := row[v>>6]&(1<<(uint(v)&63)) != 0
			if got != g.HasEdge(u, v) {
				t.Fatalf("row[%d] bit %d = %v, HasEdge = %v", u, v, got, g.HasEdge(u, v))
			}
		}
	}
}

func TestDenseRowsIntersects(t *testing.T) {
	g := Star(80)
	d := NewDenseRows(g)
	s := bitset.New(80)
	s.Add(0) // the hub
	for u := 1; u < 80; u++ {
		if !d.Intersects(u, s) {
			t.Fatalf("leaf %d should see informed hub", u)
		}
	}
	if d.Intersects(0, s) {
		t.Fatal("hub has no informed neighbor (only itself)")
	}
	s.Clear()
	s.Add(79)
	if !d.Intersects(0, s) {
		t.Fatal("hub should see informed leaf 79 (second word)")
	}
	if d.Intersects(5, s) {
		t.Fatal("leaves are not adjacent to each other")
	}
}
