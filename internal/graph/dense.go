package graph

import (
	"meg/internal/bitset"
	"meg/internal/par"
)

// DenseRows is a bit-matrix export of a snapshot's adjacency: row u is
// a packed bitmap over [0, n) with bit v set iff {u, v} is an edge.
// Building it costs O(n²/64 + m) time and n²/64 bits of memory, so it
// pays off only when one snapshot serves many row queries — e.g. the
// static-graph baseline, where flooding re-reads the same snapshot every
// round and the dense pull kernel can test "does u have an informed
// neighbor?" with a word-parallel intersection instead of a CSR scan.
type DenseRows struct {
	n      int
	stride int // words per row
	words  []uint64
}

// NewDenseRows materializes the dense adjacency rows of g.
func NewDenseRows(g *Graph) *DenseRows {
	return NewDenseRowsParallel(g, 1)
}

// NewDenseRowsParallel is NewDenseRows on a worker pool: rows are
// filled per contiguous node block, each worker writing only its own
// rows, so the matrix is byte-identical to the serial build for every
// worker count. workers <= 1 builds serially.
func NewDenseRowsParallel(g *Graph, workers int) *DenseRows {
	stride := (g.n + 63) / 64
	d := &DenseRows{n: g.n, stride: stride, words: make([]uint64, g.n*stride)}
	fill := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := d.words[u*stride : (u+1)*stride]
			for _, v := range g.Neighbors(u) {
				row[v>>6] |= 1 << (uint(v) & 63)
			}
		}
	}
	if workers <= 1 || g.n < 256 {
		fill(0, g.n)
		return d
	}
	par.ForBlocks(workers, g.n, func(_, lo, hi int) { fill(lo, hi) })
	return d
}

// N returns the node count.
func (d *DenseRows) N() int { return d.n }

// Row returns u's adjacency bitmap as (n+63)/64 words. The slice
// aliases the matrix storage and must not be modified.
func (d *DenseRows) Row(u int) []uint64 {
	return d.words[u*d.stride : (u+1)*d.stride]
}

// setBit and clearBit flip one adjacency bit; Mutable uses them to keep
// an attached matrix coherent under deltas.
func (d *DenseRows) setBit(u, v int) {
	d.words[u*d.stride+(v>>6)] |= 1 << (uint(v) & 63)
}

func (d *DenseRows) clearBit(u, v int) {
	d.words[u*d.stride+(v>>6)] &^= 1 << (uint(v) & 63)
}

// Intersects reports whether u has at least one neighbor in s: a
// word-parallel any-AND of u's row against the set, with early exit on
// the first hit. s must be over the universe [0, n).
func (d *DenseRows) Intersects(u int, s *bitset.Set) bool {
	if s.Len() != d.n {
		panic("graph: Intersects universe mismatch")
	}
	words := s.Words()
	for i, w := range d.Row(u) {
		if w&words[i] != 0 {
			return true
		}
	}
	return false
}
