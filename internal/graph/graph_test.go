package graph

import (
	"testing"
	"testing/quick"

	"meg/internal/rng"
)

func TestEmpty(t *testing.T) {
	g := Empty(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Errorf("degree(%d) = %d", u, g.Degree(u))
		}
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("path degrees wrong")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("path adjacency wrong")
	}
	if !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("M = %d", g.M())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d", u, g.Degree(u))
		}
	}
	if !g.HasEdge(5, 0) {
		t.Error("wrap edge missing")
	}
}

func TestCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestStarAndComplete(t *testing.T) {
	s := Star(6)
	if s.M() != 5 || s.Degree(0) != 5 || s.Degree(3) != 1 {
		t.Error("star wrong")
	}
	k := Complete(5)
	if k.M() != 10 {
		t.Fatalf("K5 has M=%d", k.M())
	}
	for u := 0; u < 5; u++ {
		if k.Degree(u) != 4 {
			t.Errorf("K5 degree(%d)=%d", u, k.Degree(u))
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(3)
	for _, fn := range []func(){
		func() { b.AddEdge(0, 3) },
		func() { b.AddEdge(-1, 0) },
		func() { b.AddEdge(1, 1) },
		func() { NewBuilder(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.Reset(4)
	b.AddEdge(2, 3)
	g2 := b.Build()
	if !g1.HasEdge(0, 1) || g1.HasEdge(2, 3) {
		t.Error("first build corrupted by reuse")
	}
	if !g2.HasEdge(2, 3) || g2.HasEdge(0, 1) {
		t.Error("second build wrong")
	}
	b.Reset(6)
	b.AddEdge(5, 0)
	g3 := b.Build()
	if g3.N() != 6 || !g3.HasEdge(0, 5) {
		t.Error("resize on Reset failed")
	}
}

func TestDegreeSumProperty(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(50)
		b := NewBuilder(n)
		edges := map[[2]int]bool{}
		for i := 0; i < n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if edges[[2]int{u, v}] {
				continue
			}
			edges[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		g := b.Build()
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		if sum != 2*g.M() {
			t.Fatalf("deg sum %d != 2M %d", sum, 2*g.M())
		}
	}
}

// TestCSRAgainstMapReference builds random graphs twice — once via the
// CSR builder, once as adjacency maps — and checks all queries agree.
func TestCSRAgainstMapReference(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(40)
		ref := make([]map[int]bool, n)
		for i := range ref {
			ref[i] = map[int]bool{}
		}
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v || ref[u][v] {
				continue
			}
			ref[u][v] = true
			ref[v][u] = true
			b.AddEdge(u, v)
		}
		g := b.Build()
		for u := 0; u < n; u++ {
			if g.Degree(u) != len(ref[u]) {
				t.Fatalf("degree(%d) = %d, want %d", u, g.Degree(u), len(ref[u]))
			}
			for _, w := range g.Neighbors(u) {
				if !ref[u][int(w)] {
					t.Fatalf("spurious neighbor %d of %d", w, u)
				}
			}
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) != ref[u][v] {
					t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), ref[u][v])
				}
			}
		}
	}
}

func TestForEachEdge(t *testing.T) {
	g := Cycle(7)
	count := 0
	g.ForEachEdge(func(u, v int) {
		if u >= v {
			t.Fatalf("ForEachEdge order violated: (%d,%d)", u, v)
		}
		count++
	})
	if count != g.M() {
		t.Fatalf("visited %d edges, M=%d", count, g.M())
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(6)
	dist := g.BFS(0, nil)
	for i := 0; i < 6; i++ {
		if int(dist[i]) != i {
			t.Fatalf("dist[%d] = %d", i, dist[i])
		}
	}
	dist = g.BFS(3, dist) // reuse buffer
	want := []int32{3, 2, 1, 0, 1, 2}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist from 3: [%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	dist := g.BFS(0, nil)
	if dist[2] != -1 || dist[3] != -1 || dist[4] != -1 {
		t.Error("unreachable nodes should have distance -1")
	}
	if dist[1] != 1 {
		t.Error("reachable distance wrong")
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	ecc, conn := g.Eccentricity(0)
	if ecc != 4 || !conn {
		t.Fatalf("ecc=%d conn=%v", ecc, conn)
	}
	ecc, conn = g.Eccentricity(2)
	if ecc != 2 || !conn {
		t.Fatalf("center ecc=%d conn=%v", ecc, conn)
	}
	d := FromEdges(4, [][2]int{{0, 1}})
	_, conn = d.Eccentricity(0)
	if conn {
		t.Error("disconnected graph reported connected")
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	labels, k := g.Components()
	if k != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("k = %d, want 4", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("component of 0,1,2 split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("component of 3,4 wrong")
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if !Cycle(5).Connected() {
		t.Error("cycle reported disconnected")
	}
	if g.LargestComponentSize() != 3 {
		t.Errorf("largest component = %d", g.LargestComponentSize())
	}
}

func TestDiameter(t *testing.T) {
	if d, conn := Path(6).Diameter(); d != 5 || !conn {
		t.Errorf("path diameter = %d, conn=%v", d, conn)
	}
	if d, _ := Cycle(8).Diameter(); d != 4 {
		t.Errorf("cycle diameter = %d", d)
	}
	if d, _ := Complete(5).Diameter(); d != 1 {
		t.Errorf("complete diameter = %d", d)
	}
	if d, conn := Star(9).Diameter(); d != 2 || !conn {
		t.Errorf("star diameter = %d conn=%v", d, conn)
	}
}

func TestMaxAvgDegree(t *testing.T) {
	g := Star(5)
	if g.MaxDegree() != 4 {
		t.Errorf("max degree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 2*4.0/5 {
		t.Errorf("avg degree = %v", got)
	}
	if Empty(3).MaxDegree() != 0 {
		t.Error("empty max degree")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestFromEdgesQuickProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 32
		seen := map[[2]int]bool{}
		var edges [][2]int
		for _, p := range pairs {
			u := int(p) % n
			v := int(p>>8) % n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		g := FromEdges(n, edges)
		if g.M() != len(edges) {
			return false
		}
		for _, e := range edges {
			if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n = 10000
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < 8*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, edge{u, v})
		}
	}
	builder := NewBuilder(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Reset(n)
		for _, e := range edges {
			builder.AddEdge(e.u, e.v)
		}
		_ = builder.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := Cycle(10000)
	dist := make([]int32, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = g.BFS(i%g.N(), dist)
	}
	_ = dist
}
