package graph

import (
	"sort"
	"testing"

	"meg/internal/rng"
)

// buildFromKeys materializes the packed edge set as a Builder-built
// graph. Keys are added in ascending order, so every CSR row comes out
// sorted — the canonical row order of the delta-capable models.
func buildFromKeys(n int, keys []uint64) *Graph {
	b := NewBuilder(n)
	for _, k := range keys {
		u, v := UnpackEdge(k)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// randomKeys samples each pair independently with probability p.
func randomKeys(n int, p float64, r *rng.RNG) []uint64 {
	var keys []uint64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				keys = append(keys, PackEdge(u, v))
			}
		}
	}
	return keys
}

// randomDelta derives a delta from the current edge set: present edges
// die with probability die, absent pairs are born with probability
// born. It returns the delta and the next edge set.
func randomDelta(n int, keys []uint64, born, die float64, r *rng.RNG) (Delta, []uint64) {
	present := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		present[k] = true
	}
	var d Delta
	var next []uint64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			k := PackEdge(u, v)
			if present[k] {
				if r.Bernoulli(die) {
					d.Deaths = append(d.Deaths, k)
				} else {
					next = append(next, k)
				}
			} else if r.Bernoulli(born) {
				d.Births = append(d.Births, k)
				next = append(next, k)
			}
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	return d, next
}

func graphsEqual(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: size (n=%d,m=%d) vs (n=%d,m=%d)", label, got.N(), got.M(), want.N(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		g, w := got.Neighbors(u), want.Neighbors(u)
		if len(g) != len(w) {
			t.Fatalf("%s: row %d length %d vs %d", label, u, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: row %d entry %d: %d vs %d", label, u, i, g[i], w[i])
			}
		}
	}
}

func TestPackEdgeRoundTripAndOrder(t *testing.T) {
	u, v := UnpackEdge(PackEdge(7, 3))
	if u != 3 || v != 7 {
		t.Fatalf("round trip gave (%d,%d)", u, v)
	}
	if PackEdge(1, 2) >= PackEdge(1, 3) || PackEdge(1, 500) >= PackEdge(2, 3) {
		t.Fatal("key order does not match lexicographic pair order")
	}
}

// TestMutableMatchesRebuild walks a random birth/death chain for many
// rounds, maintaining the snapshot incrementally, and checks it against
// a from-scratch rebuild of the same edge set every round.
func TestMutableMatchesRebuild(t *testing.T) {
	const n = 150
	r := rng.New(42)
	keys := randomKeys(n, 0.05, r)
	m := NewMutable(buildFromKeys(n, keys))
	for round := 0; round < 25; round++ {
		var d Delta
		d, keys = randomDelta(n, keys, 0.01, 0.15, r)
		m.ApplyDelta(d, 1+round%4)
		graphsEqual(t, "round", m.Graph(), buildFromKeys(n, keys))
	}
}

// TestMutableParallelDeterminism applies the same delta sequence with
// 1 and 8 workers: the maintained views must be byte-identical, the
// contract that keeps the snapshot hint outside the content hash.
func TestMutableParallelDeterminism(t *testing.T) {
	const n = 200
	r := rng.New(7)
	initial := randomKeys(n, 0.04, r)
	var deltas []Delta
	keys := initial
	for round := 0; round < 12; round++ {
		var d Delta
		d, keys = randomDelta(n, keys, 0.02, 0.2, r)
		deltas = append(deltas, d)
	}
	a := NewMutable(buildFromKeys(n, initial))
	b := NewMutable(buildFromKeys(n, initial))
	for _, d := range deltas {
		a.ApplyDelta(d, 1)
		b.ApplyDelta(d, 8)
	}
	graphsEqual(t, "p1-vs-p8", b.Graph(), a.Graph())
}

// TestMutableOverflowRelayout grows one hub row far past its slack so
// the relayout path runs, then shrinks it again.
func TestMutableOverflowRelayout(t *testing.T) {
	const n = 80
	m := NewMutable(buildFromKeys(n, []uint64{PackEdge(0, 1)}))
	keys := []uint64{PackEdge(0, 1)}
	for v := 2; v < n; v++ {
		d := Delta{Births: []uint64{PackEdge(0, v)}}
		m.ApplyDelta(d, 2)
		keys = append(keys, PackEdge(0, v))
	}
	graphsEqual(t, "grown", m.Graph(), buildFromKeys(n, keys))
	var deaths []uint64
	for v := 2; v < n; v += 2 {
		deaths = append(deaths, PackEdge(0, v))
	}
	m.ApplyDelta(Delta{Deaths: deaths}, 3)
	var rest []uint64
	for _, k := range keys {
		dead := false
		for _, dk := range deaths {
			if dk == k {
				dead = true
			}
		}
		if !dead {
			rest = append(rest, k)
		}
	}
	graphsEqual(t, "shrunk", m.Graph(), buildFromKeys(n, rest))
}

// TestMutableDenseRowsCoherent checks that an attached dense matrix
// tracks the snapshot bit for bit through deltas.
func TestMutableDenseRowsCoherent(t *testing.T) {
	const n = 100
	r := rng.New(11)
	keys := randomKeys(n, 0.08, r)
	m := NewMutable(buildFromKeys(n, keys))
	m.SetDenseRows(NewDenseRows(m.Graph()))
	for round := 0; round < 10; round++ {
		var d Delta
		d, keys = randomDelta(n, keys, 0.02, 0.2, r)
		m.ApplyDelta(d, 2)
	}
	want := NewDenseRows(buildFromKeys(n, keys))
	for u := 0; u < n; u++ {
		g, w := m.rows.Row(u), want.Row(u)
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("dense row %d word %d: %x vs %x", u, i, g[i], w[i])
			}
		}
	}
}

func expectPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", label)
		}
	}()
	fn()
}

func TestNewMutableRejectsUnsortedRows(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1) // row 0 comes out [3, 1]
	g := b.Build()
	expectPanic(t, "unsorted", func() { NewMutable(g) })
}

func TestApplyDeltaRejectsInconsistentDeltas(t *testing.T) {
	base := []uint64{PackEdge(0, 1), PackEdge(1, 2)}
	fresh := func() *Mutable { return NewMutable(buildFromKeys(4, base)) }
	expectPanic(t, "birth of present edge", func() {
		fresh().ApplyDelta(Delta{Births: []uint64{PackEdge(0, 1)}}, 1)
	})
	expectPanic(t, "death of absent edge", func() {
		fresh().ApplyDelta(Delta{Deaths: []uint64{PackEdge(0, 2)}}, 1)
	})
	expectPanic(t, "unsorted births", func() {
		fresh().ApplyDelta(Delta{Births: []uint64{PackEdge(0, 3), PackEdge(0, 2)}}, 1)
	})
}

// TestMutableResetMatchesFresh pins the pooling contract: a Mutable
// that has lived through one run — deltas applied, dense rows attached,
// rows relaid out — and is then Reset onto a different graph must be
// indistinguishable from a fresh NewMutable of that graph, across a
// whole delta chain. Shrinking and growing resets both take the reuse
// path.
func TestMutableResetMatchesFresh(t *testing.T) {
	r := rng.New(99)
	wear := randomKeys(120, 0.08, r)
	dirty := NewMutable(buildFromKeys(120, wear))
	for round := 0; round < 8; round++ {
		var d Delta
		d, wear = randomDelta(120, wear, 0.05, 0.2, r)
		dirty.ApplyDelta(d, 2)
	}
	rows := NewDenseRows(dirty.Graph())
	dirty.SetDenseRows(rows)
	before := append([]uint64(nil), rows.Row(0)...)

	for _, n := range []int{60, 200} { // shrink, then grow
		init := randomKeys(n, 0.07, r)
		g := buildFromKeys(n, init)
		dirty.Reset(g)
		fresh := NewMutable(buildFromKeys(n, init))
		graphsEqual(t, "post-reset", dirty.Graph(), fresh.Graph())
		chain := init
		for round := 0; round < 10; round++ {
			var d Delta
			d, chain = randomDelta(n, chain, 0.03, 0.15, r)
			dirty.ApplyDelta(d, 1+round%3)
			fresh.ApplyDelta(d, 1)
			graphsEqual(t, "post-reset chain", dirty.Graph(), fresh.Graph())
		}
	}

	// Reset must have detached the dense rows: the old matrix is the
	// caller's and the post-reset delta chain must not touch it.
	after := rows.Row(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("detached dense rows mutated at word %d", i)
		}
	}
}
