package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteEdgeList writes the graph as one "u v" pair per line (u < v),
// preceded by a comment header with n and m — the interchange format
// consumed by most graph tools.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.n, g.mCount); err != nil {
		return err
	}
	var err error
	g.ForEachEdge(func(u, v int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDOT writes the graph in Graphviz DOT format (undirected), for
// quick visual inspection of snapshots. Positions are not included;
// pass coordinates through WriteDOTPositioned when available.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	return g.writeDOT(w, name, nil)
}

// WriteDOTPositioned writes DOT with fixed node positions (pos="x,y!"),
// so neato/fdp render geometric snapshots geographically. coords must
// have length n.
func (g *Graph) WriteDOTPositioned(w io.Writer, name string, coords [][2]float64) error {
	if coords != nil && len(coords) != g.n {
		return fmt.Errorf("graph: %d coordinates for %d nodes", len(coords), g.n)
	}
	return g.writeDOT(w, name, coords)
}

func (g *Graph) writeDOT(w io.Writer, name string, coords [][2]float64) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=point];\n", name); err != nil {
		return err
	}
	if coords != nil {
		for u := 0; u < g.n; u++ {
			if _, err := fmt.Fprintf(bw, "  %d [pos=\"%g,%g!\"];\n", u, coords[u][0], coords[u][1]); err != nil {
				return err
			}
		}
	}
	var err error
	g.ForEachEdge(func(u, v int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
