package graph

import (
	"strings"
	"testing"
)

func TestWriteEdgeList(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# nodes 3 edges 2\n0 1\n1 2\n"
	if sb.String() != want {
		t.Fatalf("edge list = %q, want %q", sb.String(), want)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "p3"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`graph "p3" {`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "pos=") {
		t.Fatal("unpositioned DOT should not contain pos attributes")
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	var sb strings.Builder
	if err := Empty(1).WriteDOT(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `graph "G" {`) {
		t.Fatalf("default name missing:\n%s", sb.String())
	}
}

func TestWriteDOTPositioned(t *testing.T) {
	g := Path(2)
	var sb strings.Builder
	coords := [][2]float64{{0.5, 1}, {2, 3.25}}
	if err := g.WriteDOTPositioned(&sb, "geo", coords); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`pos="0.5,1!"`, `pos="2,3.25!"`, "0 -- 1;"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("positioned DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteDOTPositionedLengthMismatch(t *testing.T) {
	var sb strings.Builder
	err := Path(3).WriteDOTPositioned(&sb, "x", [][2]float64{{0, 0}})
	if err == nil {
		t.Fatal("length mismatch not reported")
	}
}
