// Package table renders the experiment harness's result tables as
// aligned monospaced text (for terminals and EXPERIMENTS.md) and as CSV
// (for downstream plotting).
package table

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table. Create one with New,
// append rows with AddRow, and render with WriteText or WriteCSV.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th data row.
func (t *Table) Row(i int) []string { return t.rows[i] }

// AddRow appends a row; cells are formatted with Cell. It panics if the
// number of cells differs from the number of headers.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("table: row has %d cells, want %d", len(cells), len(t.headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// tableJSON is the wire form of a Table (cells are already formatted
// strings, so nothing non-finite can leak into the encoder).
type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON implements json.Marshaler, exposing the unexported
// headers and rows for the -json CLI modes and the megserve API.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Title: t.Title, Headers: t.headers, Rows: t.rows})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.Title, t.headers, t.rows = j.Title, j.Headers, j.Rows
	return nil
}

// Cell formats a single value: floats compactly with 4 significant
// digits, everything else via %v.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	a := x
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.1f", x)
	case a >= 1:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4g", x)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the table to a string (see WriteText).
func (t *Table) Text() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}

// WriteCSV emits the header row followed by the data rows in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
