package table

import (
	"strings"
	"testing"
)

func TestAddRowAndText(t *testing.T) {
	tbl := New("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 2.5)
	out := tbl.Text()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width for col 2.
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestAddRowMismatchPanics(t *testing.T) {
	tbl := New("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.AddRow(1)
}

func TestCellFormats(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "42"},
		{float64(42), "42"},
		{3.14159, "3.142"},
		{0.000123456, "0.0001235"},
		{12345.678, "12345.7"},
		{"s", "s"},
		{true, "true"},
		{float32(2), "2"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tbl := New("t", "a", "b")
	tbl.AddRow("x,y", 1)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",1\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestMarkdown(t *testing.T) {
	tbl := New("title", "c1", "c2")
	tbl.AddRow(1, 2)
	md := tbl.Markdown()
	if !strings.Contains(md, "| c1 | c2 |") || !strings.Contains(md, "| --- | --- |") ||
		!strings.Contains(md, "| 1 | 2 |") || !strings.Contains(md, "**title**") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
}

func TestAccessors(t *testing.T) {
	tbl := New("t", "a")
	tbl.AddRow(7)
	if tbl.NumRows() != 1 || tbl.Row(0)[0] != "7" || tbl.Headers()[0] != "a" {
		t.Fatal("accessors wrong")
	}
}

func TestNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.AddRow(1)
	if strings.HasPrefix(tbl.Text(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}
