package geommeg

import "math"

// lattice captures the discrete support of node positions: the points
// {(iε, jε)} with integer i, j in [0, maxIdx] (square) or Z mod period
// (torus), together with the move-ball geometry.
type lattice struct {
	eps    float64
	maxIdx int // largest coordinate index (square: 0..maxIdx inclusive)
	period int // torus only: number of distinct indices per axis
	torus  bool

	// Move ball geometry: rho = ⌊r/ε⌋ in lattice units and, for each
	// |dx| ≤ rho, the largest |dy| with dx²+dy² ≤ (r/ε)².
	rho      int
	dyMax    []int32
	gammaMax int // |Γ(x)| for interior x (full disk point count)

	// Transmission radius in squared lattice units.
	radius2 float64
}

// newLattice derives the lattice from a validated config.
func newLattice(cfg Config) *lattice {
	cfg = cfg.withDefaults()
	side := cfg.Side()
	l := &lattice{eps: cfg.Eps, torus: cfg.Torus}
	if cfg.Torus {
		l.period = int(math.Floor(side / cfg.Eps))
		if l.period < 1 {
			l.period = 1
		}
		l.maxIdx = l.period - 1
	} else {
		l.maxIdx = int(math.Floor(side / cfg.Eps))
	}
	rhoF := cfg.MoveRadius / cfg.Eps
	l.rho = int(math.Floor(rhoF))
	l.dyMax = make([]int32, l.rho+1)
	rho2 := rhoF * rhoF
	for dx := 0; dx <= l.rho; dx++ {
		l.dyMax[dx] = int32(math.Floor(math.Sqrt(rho2 - float64(dx*dx))))
	}
	for dx := -l.rho; dx <= l.rho; dx++ {
		w := int(l.dyMax[abs(dx)])
		l.gammaMax += 2*w + 1
	}
	rl := cfg.R / cfg.Eps
	l.radius2 = rl * rl
	return l
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// points returns the number of lattice points per axis.
func (l *lattice) points() int {
	if l.torus {
		return l.period
	}
	return l.maxIdx + 1
}

// gamma returns |Γ(x)| for the position with indices (ix, iy): the
// number of lattice points within move distance r, clipped to the
// square (constant gammaMax on the torus). Γ always contains x itself.
func (l *lattice) gamma(ix, iy int) int {
	if l.torus {
		return l.gammaMax
	}
	count := 0
	for dx := -l.rho; dx <= l.rho; dx++ {
		x := ix + dx
		if x < 0 || x > l.maxIdx {
			continue
		}
		w := int(l.dyMax[abs(dx)])
		lo, hi := iy-w, iy+w
		if lo < 0 {
			lo = 0
		}
		if hi > l.maxIdx {
			hi = l.maxIdx
		}
		if hi >= lo {
			count += hi - lo + 1
		}
	}
	return count
}

// inDisk reports whether the lattice offset (dx, dy) lies in the move
// ball.
func (l *lattice) inDisk(dx, dy int) bool {
	if abs(dx) > l.rho {
		return false
	}
	return abs(dy) <= int(l.dyMax[abs(dx)])
}

// wrap maps index x into the torus range [0, period).
func (l *lattice) wrap(x int) int {
	x %= l.period
	if x < 0 {
		x += l.period
	}
	return x
}

// adjacent reports whether two positions are within transmission radius
// R, using the metric of the model (Euclidean, toroidal on the torus).
func (l *lattice) adjacent(ax, ay, bx, by int32) bool {
	dx := int(ax) - int(bx)
	dy := int(ay) - int(by)
	if l.torus {
		dx = l.torusDelta(dx)
		dy = l.torusDelta(dy)
	}
	d2 := float64(dx)*float64(dx) + float64(dy)*float64(dy)
	return d2 <= l.radius2
}

// torusDelta folds a coordinate difference into [-period/2, period/2].
func (l *lattice) torusDelta(d int) int {
	d = abs(d) % l.period
	if 2*d > l.period {
		d = l.period - d
	}
	return d
}
