package geommeg

import (
	"math"
	"testing"

	"meg/internal/geom"
	"meg/internal/rng"
)

func validCfg(n int) Config {
	return Config{N: n, R: 3, MoveRadius: 1.5}
}

func TestConfigValidate(t *testing.T) {
	if err := validCfg(64).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 1, R: 3},
		{N: 64, R: 0},
		{N: 64, R: 3, MoveRadius: -1},
		{N: 64, R: 3, Eps: -0.5},
		{N: 64, R: 3, Eps: 4}, // ε > R
		{N: 64, R: 3, Density: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{N: 100, R: 3}
	if got := c.Side(); got != 10 {
		t.Fatalf("Side = %v, want 10", got)
	}
	c.Density = 4
	if got := c.Side(); got != 5 {
		t.Fatalf("Side at δ=4 = %v, want 5", got)
	}
}

func TestConnectivityRadius(t *testing.T) {
	got := ConnectivityRadius(1024, 1, 2)
	want := 2 * math.Sqrt(math.Log(1024))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ConnectivityRadius = %v, want %v", got, want)
	}
	if ConnectivityRadius(1024, 0, 2) != want {
		t.Error("zero density should default to 1")
	}
}

// gammaBruteForce counts lattice points within move distance of (ix,iy)
// directly from the definition.
func gammaBruteForce(cfg Config, ix, iy int) int {
	cfg = cfg.withDefaults()
	maxIdx := int(math.Floor(cfg.Side() / cfg.Eps))
	rho := cfg.MoveRadius / cfg.Eps
	count := 0
	for x := 0; x <= maxIdx; x++ {
		for y := 0; y <= maxIdx; y++ {
			dx, dy := float64(x-ix), float64(y-iy)
			if dx*dx+dy*dy <= rho*rho {
				count++
			}
		}
	}
	return count
}

func TestGammaAgainstBruteForce(t *testing.T) {
	cfg := Config{N: 100, R: 3, MoveRadius: 2.3, Eps: 1}
	m := MustNew(cfg)
	pts := m.LatticePoints()
	positions := [][2]int{
		{0, 0}, {0, 5}, {pts - 1, pts - 1}, {pts / 2, pts / 2}, {1, pts - 2}, {2, 0},
	}
	for _, p := range positions {
		want := gammaBruteForce(cfg, p[0], p[1])
		if got := m.GammaAt(p[0], p[1]); got != want {
			t.Errorf("Gamma(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
}

func TestGammaFractionalEps(t *testing.T) {
	cfg := Config{N: 64, R: 2, MoveRadius: 1.2, Eps: 0.5}
	m := MustNew(cfg)
	pts := m.LatticePoints()
	for _, p := range [][2]int{{0, 0}, {3, 3}, {pts - 1, 0}} {
		want := gammaBruteForce(cfg, p[0], p[1])
		if got := m.GammaAt(p[0], p[1]); got != want {
			t.Errorf("ε=0.5 Gamma(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
}

func TestGammaMaxIsInterior(t *testing.T) {
	m := MustNew(Config{N: 400, R: 4, MoveRadius: 2})
	center := m.LatticePoints() / 2
	if m.GammaMax() != m.GammaAt(center, center) {
		t.Fatalf("GammaMax %d != interior gamma %d", m.GammaMax(), m.GammaAt(center, center))
	}
	if corner := m.GammaAt(0, 0); corner >= m.GammaMax() {
		t.Fatalf("corner gamma %d not smaller than interior %d", corner, m.GammaMax())
	}
}

func TestGammaTorusConstant(t *testing.T) {
	m := MustNew(Config{N: 256, R: 3, MoveRadius: 2, Torus: true})
	g00 := m.GammaAt(0, 0)
	if g00 != m.GammaMax() {
		t.Fatalf("torus gamma at corner %d != max %d", g00, m.GammaMax())
	}
}

func TestStationarySamplerMatchesGamma(t *testing.T) {
	// On a tiny lattice, the empirical position distribution must be
	// proportional to |Γ(x)|. Use a model with few positions and many
	// samples; compare cell frequencies with expected probabilities.
	cfg := Config{N: 2, R: 3.5, MoveRadius: 3, Eps: 1, Density: 2.0 / 36} // side = 6
	m := MustNew(cfg)
	pts := m.LatticePoints()
	total := 0.0
	weights := make([]float64, pts*pts)
	for x := 0; x < pts; x++ {
		for y := 0; y < pts; y++ {
			w := float64(m.GammaAt(x, y))
			weights[x*pts+y] = w
			total += w
		}
	}
	r := rng.New(3)
	counts := make([]int, pts*pts)
	const samples = 60000
	for i := 0; i < samples/2; i++ {
		m.Reset(r.Split())
		// Two nodes per reset: both positions are i.i.d. π.
		for u := 0; u < 2; u++ {
			counts[int(m.ix[u])*pts+int(m.iy[u])]++
		}
	}
	for idx, w := range weights {
		want := w / total * samples
		sd := math.Sqrt(want)
		if math.Abs(float64(counts[idx])-want) > 6*sd+1 {
			t.Fatalf("position %d: count %d, want %.1f ± %.1f", idx, counts[idx], want, 6*sd)
		}
	}
}

func TestStepStaysWithinMoveRadius(t *testing.T) {
	cfg := Config{N: 50, R: 4, MoveRadius: 2.5, Eps: 0.5}
	m := MustNew(cfg)
	m.Reset(rng.New(5))
	prev := m.Positions(nil)
	for s := 0; s < 20; s++ {
		m.Step()
		cur := m.Positions(nil)
		for u := range cur {
			if d := prev[u].Dist(cur[u]); d > cfg.MoveRadius+1e-9 {
				t.Fatalf("node %d moved %v > r=%v", u, d, cfg.MoveRadius)
			}
		}
		prev = cur
	}
}

func TestStepStaysInBounds(t *testing.T) {
	cfg := Config{N: 64, R: 3, MoveRadius: 2}
	m := MustNew(cfg)
	m.Reset(rng.New(7))
	side := m.Side()
	for s := 0; s < 30; s++ {
		m.Step()
		for u := 0; u < 64; u++ {
			p := m.Position(u)
			if p.X < 0 || p.X > side || p.Y < 0 || p.Y > side {
				t.Fatalf("node %d out of bounds: %+v", u, p)
			}
		}
	}
}

func TestStepUniformOverGamma(t *testing.T) {
	// A single node in a corner: the distribution of its next position
	// must be uniform over Γ(corner).
	cfg := Config{N: 2, R: 2.5, MoveRadius: 2, Eps: 1, Density: 2.0 / 64} // side 8
	m := MustNew(cfg)
	r := rng.New(11)
	m.Reset(r)
	gammaSize := m.GammaAt(0, 0)
	counts := map[[2]int32]int{}
	const reps = 30000
	for i := 0; i < reps; i++ {
		m.ix[0], m.iy[0] = 0, 0
		m.dirty = true
		m.Step()
		counts[[2]int32{m.ix[0], m.iy[0]}]++
	}
	if len(counts) != gammaSize {
		t.Fatalf("reached %d positions, want |Γ|=%d", len(counts), gammaSize)
	}
	want := float64(reps) / float64(gammaSize)
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("position %v: count %d, want %.1f", pos, c, want)
		}
	}
}

func TestZeroMoveRadiusFreezes(t *testing.T) {
	cfg := Config{N: 32, R: 3, MoveRadius: 0}
	m := MustNew(cfg)
	m.Reset(rng.New(13))
	before := m.Positions(nil)
	m.Step()
	after := m.Positions(nil)
	for u := range before {
		if before[u] != after[u] {
			t.Fatalf("node %d moved with r=0", u)
		}
	}
}

// TestGraphAgainstBruteForce is the central correctness test of the
// cell-list snapshot builder: for random configurations (square and
// torus), the built graph must exactly equal the O(n²) distance check.
func TestGraphAgainstBruteForce(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		torus := trial%2 == 1
		cfg := Config{
			N:          60 + r.Intn(60),
			R:          2 + 3*r.Float64(),
			MoveRadius: 2 * r.Float64(),
			Eps:        0.5 + 0.5*r.Float64(),
			Torus:      torus,
		}
		m := MustNew(cfg)
		m.Reset(r.Split())
		for s := 0; s < 3; s++ {
			g := m.Graph()
			n := cfg.N
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					want := m.lat.adjacent(m.ix[u], m.iy[u], m.ix[v], m.iy[v])
					if got := g.HasEdge(u, v); got != want {
						t.Fatalf("trial %d (torus=%v): edge (%d,%d) = %v, want %v",
							trial, torus, u, v, got, want)
					}
				}
			}
			m.Step()
		}
	}
}

func TestAdjacentMatchesPhysicalDistance(t *testing.T) {
	// lat.adjacent must agree with the physical-distance definition
	// d(P_u, P_v) ≤ R on the square.
	cfg := Config{N: 40, R: 2.7, MoveRadius: 1, Eps: 0.7}
	m := MustNew(cfg)
	m.Reset(rng.New(19))
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			want := m.Position(u).Dist(m.Position(v)) <= cfg.R+1e-9
			got := m.lat.adjacent(m.ix[u], m.iy[u], m.ix[v], m.iy[v])
			if got != want {
				du := m.Position(u).Dist(m.Position(v))
				if math.Abs(du-cfg.R) > 1e-6 { // ignore exact-boundary float ties
					t.Fatalf("adjacent(%d,%d) = %v, physical dist %v vs R=%v", u, v, got, du, cfg.R)
				}
			}
		}
	}
}

func TestCellOccupancySumsToN(t *testing.T) {
	cfg := Config{N: 500, R: 4, MoveRadius: 2}
	m := MustNew(cfg)
	m.Reset(rng.New(23))
	grid := geom.ClaimOneGrid(m.Side(), cfg.R)
	sum := 0
	for _, c := range m.CellOccupancy(grid) {
		sum += c
	}
	if sum != 500 {
		t.Fatalf("occupancy sums to %d", sum)
	}
}

func TestNearestNodes(t *testing.T) {
	cfg := Config{N: 200, R: 4, MoveRadius: 2}
	m := MustNew(cfg)
	m.Reset(rng.New(29))
	center := geom.Point{X: m.Side() / 2, Y: m.Side() / 2}
	got := m.NearestNodes(center, 20)
	if len(got) != 20 {
		t.Fatalf("NearestNodes returned %d", len(got))
	}
	// Every returned node must be at least as close as every excluded one.
	inSet := map[int]bool{}
	worstIn := 0.0
	for _, u := range got {
		inSet[u] = true
		if d := m.Position(u).Dist2(center); d > worstIn {
			worstIn = d
		}
	}
	for u := 0; u < 200; u++ {
		if !inSet[u] {
			if d := m.Position(u).Dist2(center); d < worstIn-1e-9 {
				t.Fatalf("excluded node %d closer (%v) than included worst (%v)", u, d, worstIn)
			}
		}
	}
	if len(m.NearestNodes(center, 500)) != 200 {
		t.Error("oversized h should clamp to n")
	}
}

func TestInitClustered(t *testing.T) {
	cfg := Config{N: 100, R: 4, MoveRadius: 2, Init: InitClustered}
	m := MustNew(cfg)
	m.Reset(rng.New(31))
	lim := float64(m.LatticePoints()/8) * 1.0
	for u := 0; u < 100; u++ {
		p := m.Position(u)
		if p.X > lim || p.Y > lim {
			t.Fatalf("clustered node %d at %+v beyond limit %v", u, p, lim)
		}
	}
}

func TestInitModeStrings(t *testing.T) {
	if InitStationary.String() != "stationary" || InitUniform.String() != "uniform" ||
		InitClustered.String() != "clustered" {
		t.Error("InitMode labels wrong")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 128, R: 3, MoveRadius: 1.5}
	a, b := MustNew(cfg), MustNew(cfg)
	a.Reset(rng.New(37))
	b.Reset(rng.New(37))
	for s := 0; s < 5; s++ {
		ga, gb := a.Graph(), b.Graph()
		if ga.M() != gb.M() {
			t.Fatalf("graphs diverged at step %d", s)
		}
		a.Step()
		b.Step()
	}
}

func TestStepBeforeResetPanics(t *testing.T) {
	m := MustNew(validCfg(64))
	defer func() {
		if recover() == nil {
			t.Fatal("Step before Reset did not panic")
		}
	}()
	m.Step()
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{N: 1, R: 1}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func BenchmarkStep(b *testing.B) {
	n := 4096
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	m := MustNew(Config{N: n, R: radius, MoveRadius: radius / 2})
	m.Reset(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	n := 4096
	radius := 2 * math.Sqrt(math.Log(float64(n)))
	m := MustNew(Config{N: n, R: radius, MoveRadius: radius / 2})
	m.Reset(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
		_ = m.Graph()
	}
}

func TestTorusSeamAdjacency(t *testing.T) {
	// Two nodes across the wrap seam must be adjacent on the torus and
	// non-adjacent on the square with the same coordinates.
	mkMod := func(torus bool) *Model {
		return MustNew(Config{N: 2, R: 3, MoveRadius: 1, Eps: 1,
			Density: 2.0 / 400, Torus: torus}) // side 20
	}
	for _, torus := range []bool{true, false} {
		m := mkMod(torus)
		m.Reset(rng.New(41))
		pts := m.LatticePoints()
		m.ix[0], m.iy[0] = 0, 5
		m.ix[1], m.iy[1] = int32(pts-1), 5
		m.dirty = true
		g := m.Graph()
		// Gap across the seam: square distance pts-1 ≈ 19…20 (never
		// adjacent); torus distance 20-(pts-1) = 1 or 2 (adjacent).
		if torus && !g.HasEdge(0, 1) {
			t.Fatal("torus seam pair not adjacent")
		}
		if !torus && g.HasEdge(0, 1) {
			t.Fatal("square boundary pair wrongly adjacent")
		}
	}
}

func TestStationaryResetIndependentOfHistory(t *testing.T) {
	// Reset must fully re-sample: two resets with the same child seed
	// give identical positions regardless of steps taken in between.
	cfg := Config{N: 64, R: 4, MoveRadius: 2}
	m := MustNew(cfg)
	m.Reset(rng.New(99))
	a := m.Positions(nil)
	for i := 0; i < 7; i++ {
		m.Step()
	}
	m.Reset(rng.New(99))
	b := m.Positions(nil)
	for u := range a {
		if a[u] != b[u] {
			t.Fatal("Reset depends on prior state")
		}
	}
}
