package geommeg

import (
	"testing"

	"meg/internal/rng"
)

// TestSnapshotParallelismByteIdentical pins the parallel cell sweep's
// contract: the CSR snapshot — adjacency order included — is identical
// for every worker count, because per-block edge buffers concatenate in
// the serial emission order.
func TestSnapshotParallelismByteIdentical(t *testing.T) {
	cfg := Config{N: 3000, R: 4, MoveRadius: 2}
	serial := MustNew(cfg)
	serial.SetParallelism(1)
	sharded := MustNew(cfg)
	sharded.SetParallelism(8)
	serial.Reset(rng.New(3))
	sharded.Reset(rng.New(3))
	for s := 0; s < 6; s++ {
		ga, gb := serial.Graph(), sharded.Graph()
		if ga.N() != gb.N() || ga.M() != gb.M() {
			t.Fatalf("step %d: snapshot shapes differ: m=%d vs %d", s, ga.M(), gb.M())
		}
		for u := 0; u < cfg.N; u++ {
			na, nb := ga.Neighbors(u), gb.Neighbors(u)
			if len(na) != len(nb) {
				t.Fatalf("step %d: node %d degree %d vs %d", s, u, len(na), len(nb))
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("step %d: node %d adjacency order differs at %d", s, u, i)
				}
			}
		}
		serial.Step()
		sharded.Step()
	}
}
