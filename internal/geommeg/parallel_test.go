package geommeg

import (
	"testing"

	"meg/internal/rng"
)

// TestSnapshotParallelismByteIdentical pins the parallel cell sweep's
// contract: the CSR snapshot — adjacency order included — is identical
// for every worker count, because per-block edge buffers concatenate in
// the serial emission order.
func TestSnapshotParallelismByteIdentical(t *testing.T) {
	cfg := Config{N: 3000, R: 4, MoveRadius: 2}
	serial := MustNew(cfg)
	serial.SetParallelism(1)
	sharded := MustNew(cfg)
	sharded.SetParallelism(8)
	serial.Reset(rng.New(3))
	sharded.Reset(rng.New(3))
	for s := 0; s < 6; s++ {
		ga, gb := serial.Graph(), sharded.Graph()
		if ga.N() != gb.N() || ga.M() != gb.M() {
			t.Fatalf("step %d: snapshot shapes differ: m=%d vs %d", s, ga.M(), gb.M())
		}
		for u := 0; u < cfg.N; u++ {
			na, nb := ga.Neighbors(u), gb.Neighbors(u)
			if len(na) != len(nb) {
				t.Fatalf("step %d: node %d degree %d vs %d", s, u, len(na), len(nb))
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("step %d: node %d adjacency order differs at %d", s, u, i)
				}
			}
		}
		serial.Step()
		sharded.Step()
	}
}

// TestWalkParallelismByteIdentical pins the sharded walk's contract
// directly on positions: because every node's round decisions come
// from the counter stream keyed (node, round), P1 and P8 walks — lazy
// and eager — land every node on the same lattice point, step after
// step.
func TestWalkParallelismByteIdentical(t *testing.T) {
	for _, jump := range []float64{1, 0.2} {
		cfg := Config{N: 2000, R: 4, MoveRadius: 2, Jump: jump}
		serial := MustNew(cfg)
		serial.SetParallelism(1)
		sharded := MustNew(cfg)
		sharded.SetParallelism(8)
		serial.Reset(rng.New(9))
		sharded.Reset(rng.New(9))
		for s := 0; s < 8; s++ {
			serial.Step()
			sharded.Step()
			for u := 0; u < cfg.N; u++ {
				if serial.ix[u] != sharded.ix[u] || serial.iy[u] != sharded.iy[u] {
					t.Fatalf("jump=%g step %d: node %d at (%d,%d) vs (%d,%d)",
						jump, s, u, serial.ix[u], serial.iy[u], sharded.ix[u], sharded.iy[u])
				}
			}
		}
	}
}

// TestLazyWalkHoldsMostNodes sanity-checks the lazy walk: with a small
// jump probability, most nodes hold their position each round, and the
// delta stream reflects only the movers.
func TestLazyWalkHoldsMostNodes(t *testing.T) {
	cfg := Config{N: 4000, R: 4, MoveRadius: 2, Jump: 0.05}
	m := MustNew(cfg)
	m.Reset(rng.New(4))
	m.Step()
	moved := len(m.movedNodes)
	if moved == 0 || moved > cfg.N/5 {
		t.Fatalf("jump=0.05 moved %d of %d nodes", moved, cfg.N)
	}
}
